"""Clock-spine design study: repeaters on a low-resistance global wire.

Clock distribution uses exactly the wires where the paper says
inductance bites hardest: wide, thick, upper-metal, low-R.  This example
sizes repeaters for an H-tree trunk three ways (RC, paper's closed form,
our numerical optimum), then *simulates* every candidate and reports
delay, area, power and skew-relevant rise time.

Run:  python examples/clock_tree.py
"""

from repro.analysis.comparison import compare_designs
from repro.core.repeater import RepeaterSystem, inductance_time_ratio
from repro.core.simulate import simulated_step_waveform
from repro.technology.nodes import node_by_name
from repro.units import format_si


def main() -> None:
    node = node_by_name("250nm")
    buffer = node.min_buffer()

    # A 40 mm H-tree trunk on the thick global layer.
    trunk = node.line(40e-3, layer="global")
    tlr = inductance_time_ratio(trunk, buffer)

    print(f"technology              : {node.name} (R0*C0 = "
          f"{format_si(node.intrinsic_delay, 's')})")
    r, l, c = node.wire_rlc("global")
    print(f"global wire             : R = {r / 1e3:.2f} ohm/mm, "
          f"L = {l * 1e6:.3f} nH/mm, C = {c * 1e9:.3f} pF/mm")
    print(f"trunk                   : 40 mm, Rt = {trunk.rt:.0f} ohm, "
          f"Lt = {format_si(trunk.lt, 'H')}, Ct = {format_si(trunk.ct, 'F')}")
    print(f"T_L/R                   : {tlr:.1f}  "
          "(paper: ~5 is 'common for a current 0.25 um technology')\n")

    results = compare_designs(trunk, buffer, simulate=True, n_segments=60)
    by_label = {r.label: r for r in results}

    print(f"{'design':16s} {'h':>6s} {'k':>5s} {'model delay':>12s} "
          f"{'sim delay':>12s} {'area':>7s} {'power @1GHz':>12s}")
    system = RepeaterSystem(trunk, buffer)
    for result in results:
        power = system.dynamic_power(
            result.design.quantized(), vdd=node.vdd, frequency=1e9
        )
        print(
            f"{result.label:16s} {result.design.h:6.1f} {result.design.k:5.1f} "
            f"{format_si(result.model_delay, 's'):>12s} "
            f"{format_si(result.simulated_delay, 's'):>12s} "
            f"{result.area:7.0f} {format_si(power, 'W'):>12s}"
        )

    rc = by_label["rc-bakoglu"]
    best = min(
        (by_label["rlc-paper"], by_label["rlc-numerical"]),
        key=lambda r: r.simulated_delay,
    )
    print(
        f"\nRC-based sizing costs {rc.delay_vs(best):+.1f}% simulated delay and "
        f"{rc.area_vs(best):+.0f}% repeater area vs the best RLC-aware design."
    )

    # Edge quality at the receiving end of one optimally driven section.
    section = system.section_line(best.design.quantized())
    waveform = simulated_step_waveform(section, n_segments=60)
    print(
        f"per-section edge        : rise time "
        f"{format_si(waveform.rise_time(v_final=1.0), 's')}, overshoot "
        f"{100 * waveform.overshoot(v_final=1.0):.0f}%"
    )


if __name__ == "__main__":
    main()
