"""Technology scaling: why inductance keeps getting more important.

Reproduces the paper's closing argument as a walk across synthetic
process generations: the gate time constant R0*C0 shrinks, the thick
global wiring does not, so T_{L/R} -- and with it every penalty for
RC-only design -- grows every node.

Run:  python examples/technology_scaling.py
"""

from repro.analysis.scaling_study import scaling_table
from repro.core.repeater import bakoglu_rc_design, optimal_rlc_design
from repro.technology.nodes import PREDEFINED_NODES
from repro.units import format_si


def main() -> None:
    print(f"{'node':>6s} {'R0*C0':>9s} {'T_L/R':>6s} "
          f"{'delay penalty':>14s} {'area penalty':>13s}")
    for row in scaling_table():
        print(
            f"{row.node:>6s} {format_si(row.intrinsic_delay, 's'):>9s} "
            f"{row.tlr:6.1f} {row.delay_increase_percent:13.1f}% "
            f"{row.area_increase_percent:12.0f}%"
        )

    print("\nrepeater sizing for a 30 mm global wire at each node:")
    print(f"{'node':>6s} {'h (RC)':>7s} {'k (RC)':>7s} "
          f"{'h (RLC)':>8s} {'k (RLC)':>8s}")
    for node in PREDEFINED_NODES:
        line = node.line(30e-3)
        buffer = node.min_buffer()
        rc = bakoglu_rc_design(line, buffer)
        rlc = optimal_rlc_design(line, buffer)
        print(f"{node.name:>6s} {rc.h:7.0f} {rc.k:7.1f} {rlc.h:8.0f} {rlc.k:8.1f}")

    print("\nAs T_L/R rises, the inductance-aware design inserts markedly")
    print("fewer, smaller repeaters -- on an LC-like wire, splitting the")
    print("line buys nothing and each repeater only adds gate delay.")


if __name__ == "__main__":
    main()
