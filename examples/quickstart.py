"""Quickstart: the paper's delay model in five minutes.

Builds the Fig. 1 circuit (a gate driving a distributed RLC line into a
load), evaluates the closed-form delay (eq. 9), checks it against a real
simulation, and sizes repeaters for a long wire.

Run:  python examples/quickstart.py
"""

from repro import (
    Buffer,
    DriverLineLoad,
    RepeaterSystem,
    bakoglu_rc_design,
    inductance_time_ratio,
    optimal_rlc_design,
    propagation_delay,
    sakurai_rc_delay_50,
    simulated_delay_50,
)
from repro.units import format_si


def main() -> None:
    # --- 1. a single wire --------------------------------------------------
    # 10 mm of wide upper-metal copper: 100 ohm, 25 nH, 2 pF total,
    # driven by a strong gate (50 ohm) into a 100 fF receiver.
    line = DriverLineLoad(rt=100.0, lt=25e-9, ct=2e-12, rtr=50.0, cl=1e-13)

    print("=== single wire ===")
    print(f"damping factor zeta       : {line.zeta:.3f} "
          f"({'underdamped' if line.is_underdamped else 'overdamped'})")
    print(f"time of flight            : {format_si(line.time_of_flight, 's')}")

    t_model = propagation_delay(line)
    print(f"eq. 9 closed-form delay   : {format_si(t_model, 's')}")

    t_rc = sakurai_rc_delay_50(line)
    print(f"RC-only (Sakurai) estimate: {format_si(t_rc, 's')} "
          f"({100 * (t_rc - t_model) / t_model:+.0f}% vs eq. 9)")

    t_sim = simulated_delay_50(line)
    print(f"simulated (ladder) delay  : {format_si(t_sim, 's')} "
          f"(eq. 9 error {100 * abs(t_model - t_sim) / t_sim:.1f}%)")

    # --- 2. repeater insertion ----------------------------------------------
    # A 50 mm version of the same wire needs repeaters.  Compare the
    # classic RC sizing (Bakoglu) with the paper's inductance-aware one.
    long_line = line.with_length_scaled(5.0)
    buffer = Buffer(r0=5000.0, c0=10e-15)  # minimum-size repeater
    system = RepeaterSystem(long_line, buffer)

    tlr = inductance_time_ratio(long_line, buffer)
    print("\n=== repeater insertion (50 mm spine) ===")
    print(f"T_L/R inductance ratio    : {tlr:.1f}")

    for label, design in (
        ("RC (Bakoglu eq. 11)", bakoglu_rc_design(long_line, buffer)),
        ("RLC (paper eqs. 14/15)", optimal_rlc_design(long_line, buffer)),
    ):
        total = system.total_delay(design.quantized())
        print(
            f"{label:24s}: h = {design.h:5.1f}, k = {design.k:4.1f}"
            f" -> total delay {format_si(total, 's')},"
            f" repeater area {design.area(buffer):.0f} (min-buffer units)"
        )
    print("\nThe RC design uses far more repeater area for a slower wire --")
    print("the paper's core argument for inductance-aware methodologies.")


if __name__ == "__main__":
    main()
