"""Repeater planning for an on-chip bus: when must you model inductance?

Walks a 32-bit bus through the design questions the paper answers:

1. Is this net inductive at all?  (The length-window criterion of the
   companion paper [8].)
2. What does an RC-only flow get wrong?  (Delay vs simulation.)
3. How many repeaters, how big?  (Eq. 11 vs eqs. 14/15, with the
   delay/area/power penalty of choosing the RC answer.)

Run:  python examples/bus_repeaters.py
      REPRO_EXAMPLES_FAST=1 python examples/bus_repeaters.py   (smoke mode)
"""

import os

from repro.analysis.merit import inductance_length_window
from repro.core.delay import propagation_delay
from repro.core.penalty import area_increase_closed_form, delay_increase_closed_form
from repro.core.repeater import (
    RepeaterSystem,
    bakoglu_rc_design,
    inductance_time_ratio,
    optimal_rlc_design,
)
from repro.core.baselines import sakurai_rc_delay_50
from repro.core.simulate import simulated_delay_50
from repro.technology.nodes import node_by_name
from repro.units import format_si

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    node = node_by_name("130nm")
    buffer = node.min_buffer()
    r, l, c = node.wire_rlc("global")

    # 1. Which bus lengths need RLC modeling at this node?
    window = inductance_length_window(r, l, c, node.rise_time)
    print(f"node {node.name}: inductance matters for wires between "
          f"{window.lower * 1e3:.2f} mm and {window.upper * 1e3:.1f} mm "
          f"(driver rise time {format_si(node.rise_time, 's')})")

    for length_mm in (8.0,) if FAST else (1.0, 8.0, 20.0):
        length = length_mm * 1e-3
        # Size the driver to the wire (RT ~ 0.4, capped at a realistic
        # h = 400), as a routed flow would: eq. 9 was fitted for RT, CT
        # in [0, 1], and short wires get driver-dominated (RC) anyway.
        bare = node.line(length)
        driver_size = min(400.0, buffer.r0 / (0.4 * bare.rt))
        line = node.line(length, driver_size=driver_size, load_size=80.0)
        needs_rlc = window.contains(length)
        t_rlc = propagation_delay(line)
        t_rc = sakurai_rc_delay_50(line)
        t_sim = simulated_delay_50(line, route="tline")
        print(
            f"  {length_mm:5.1f} mm (driver h={driver_size:4.0f}): "
            f"RLC model {format_si(t_rlc, 's'):>9s} "
            f"(sim {format_si(t_sim, 's'):>9s}, err "
            f"{100 * abs(t_rlc - t_sim) / t_sim:4.1f}%) | RC-only "
            f"{format_si(t_rc, 's'):>9s} ({100 * (t_rc - t_sim) / t_sim:+5.1f}%)"
            f" | inductive: {'yes' if needs_rlc else 'no'}"
        )

    print(
        "  (the window criterion assumes the node's finite rise time; the\n"
        "   simulation column drives an ideal step, so even 'no' rows show\n"
        "   flight-limited delay that RC models miss)"
    )

    # 2. Repeater the long bus line, both ways, per bit and for the bus.
    length = 20e-3
    line = node.line(length)
    tlr = inductance_time_ratio(line, buffer)
    system = RepeaterSystem(line, buffer)
    rc = bakoglu_rc_design(line, buffer)
    rlc = optimal_rlc_design(line, buffer)

    print(f"\n20 mm bus bit, T_L/R = {tlr:.1f}:")
    print(f"  RC sizing  : h = {rc.h:.0f}, k = {rc.k:.1f}")
    print(f"  RLC sizing : h = {rlc.h:.0f}, k = {rlc.k:.1f}")
    print(f"  closed-form penalties for the RC choice: "
          f"{delay_increase_closed_form(tlr):.0f}% delay, "
          f"{area_increase_closed_form(tlr):.0f}% repeater area")

    bits = 32
    area_saved = bits * (rc.area(buffer) - rlc.area(buffer))
    p_rc = system.dynamic_power(rc.quantized(), node.vdd, 2e9, activity=0.3)
    p_rlc = system.dynamic_power(rlc.quantized(), node.vdd, 2e9, activity=0.3)
    print(f"  across {bits} bits: {area_saved:.0f} min-buffer-areas saved, "
          f"bus repeater power {format_si(bits * p_rc, 'W')} -> "
          f"{format_si(bits * p_rlc, 'W')} at 2 GHz / 0.3 activity")


if __name__ == "__main__":
    main()
