"""Tour of the three simulation substrates (the "AS/X substitute").

The paper validated its model against IBM's AS/X dynamic circuit
simulator.  This library rebuilds that capability three independent
ways and cross-checks them on one Table 1 circuit:

1. exact frequency-domain line + numerical inverse Laplace (tline),
2. lumped PI-ladder in state-space form, matrix-exponential stepping,
3. the same ladder as a netlist through the MNA trapezoidal engine.

Also demonstrates the general-purpose SPICE layer on a circuit that has
nothing to do with the paper (an RLC band-pass filter).

Run:  python examples/simulator_tour.py
"""

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.core.simulate import simulated_step_waveform
from repro.spice.ac import ac_sweep
from repro.spice.netlist import Circuit, Sine, Step
from repro.spice.transient import simulate_transient
from repro.units import format_si


def line_three_ways() -> None:
    line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
    print("Table 1 circuit (zeta = %.3f):" % line.zeta)
    print(f"  eq. 9 model              : "
          f"{format_si(propagation_delay(line), 's')}")
    for route, kwargs in (
        ("tline", {}),
        ("statespace", {"n_segments": 150}),
        ("mna", {"n_segments": 60, "n_samples": 2001}),
    ):
        waveform = simulated_step_waveform(line, route=route, **kwargs)
        t50 = waveform.delay_50(v_final=1.0)
        print(
            f"  {route:25s}: {format_si(t50, 's')}  "
            f"(overshoot {100 * waveform.overshoot(v_final=1.0):.0f}%, "
            f"rise {format_si(waveform.rise_time(v_final=1.0), 's')})"
        )


def generic_spice() -> None:
    """A series-RLC band-pass: transient ring-down plus AC sweep."""
    ckt = Circuit("rlc bandpass")
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_inductor("l1", "in", "mid", 1e-6)
    ckt.add_capacitor("c1", "mid", "out", 1e-9)
    ckt.add_resistor("r1", "out", "0", 10.0)

    f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
    result = simulate_transient(ckt, t_stop=2e-5, dt=2e-8)
    ring = result.voltage("out")
    print("\ngeneric SPICE layer -- series RLC band-pass:")
    print(f"  resonance (analytic)     : {format_si(f0, 'Hz')}")

    omegas = 2 * np.pi * np.geomspace(f0 / 30, f0 * 30, 181)
    ac = ac_sweep(ckt, omegas)
    gain = np.abs(ac.transfer("out", "in"))
    peak = omegas[int(np.argmax(gain))] / (2 * np.pi)
    print(f"  resonance (AC sweep)     : {format_si(peak, 'Hz')}")
    print(f"  transient peak ring      : {ring.values.max():.3f} V")

    # Drive it at resonance and watch the steady-state build up.
    ckt2 = Circuit("driven at resonance")
    ckt2.add_voltage_source("vin", "in", "0", Sine(0.0, 1.0, f0))
    ckt2.add_inductor("l1", "in", "mid", 1e-6)
    ckt2.add_capacitor("c1", "mid", "out", 1e-9)
    ckt2.add_resistor("r1", "out", "0", 10.0)
    result2 = simulate_transient(ckt2, t_stop=4e-5, dt=1e-8)
    envelope = np.max(np.abs(result2.voltage("out").values[-400:]))
    print(f"  steady-state drive gain  : {envelope:.2f}x (Q-limited)")


def main() -> None:
    line_three_ways()
    generic_spice()


if __name__ == "__main__":
    main()
