"""Shield insertion on a multi-bit bus: buying noise margin with tracks.

An 8-bit bus on the 250 nm global layer at minimum pitch couples hard:
the middle bit sees a glitch of tens of percent of the swing when its
neighbors fire, and its 50% delay swings with the switching pattern.
The classic fix is to spend wiring tracks on grounded *shields*: a
shield intercepts the sidewall capacitance of its neighbors and gives
their return currents a close loop, attacking both coupling mechanisms
at once.

This example builds the same bus with 0, 1 and 2 evenly spread shields
(`repro.bus.BusSpec` / `repro.analysis.bus.shield_tradeoff`) and prints
the trade-off curve: tracks spent vs victim noise and worst-pattern
delay push-out.  Everything is measured by full MNA transient
simulation of the complete structure -- shields are ordinary lines tied
to ground, not a modeling shortcut.

Run:  python examples/bus_shielding.py
      REPRO_EXAMPLES_FAST=1 python examples/bus_shielding.py   (smoke mode)
"""

import os

from repro.analysis.bus import shield_tradeoff
from repro.experiments.shield_study import make_bus_spec
from repro.units import format_si

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    length = 8e-3
    n_lines = 4 if FAST else 8
    spec = make_bus_spec(
        length=length,
        n_lines=n_lines,
        n_segments=8 if FAST else 16,
    )
    print(
        f"{n_lines}-bit bus, {length * 1e3:.0f} mm on the 250nm global "
        f"layer (Cc = {format_si(spec.cct, 'F')}/side, km = {spec.km:.2f}, "
        "h=150 drivers)"
    )
    print(
        f"{'shields':>8s} {'tracks':>7s} {'noise+':>8s} {'noise-':>8s} "
        f"{'t50 solo':>9s} {'t50 even':>9s} {'t50 odd':>9s} {'push-out':>9s}"
    )
    # 1 and 3 shields both land a shield next to the middle victim; 2
    # evenly spread shields on an 8-bit bus do NOT (see the note below).
    shield_counts = (0, 1) if FAST else (0, 1, 2, 3)
    for shielded, report in shield_tradeoff(spec, shield_counts=shield_counts):
        print(
            f"{report.n_shields:8d} {shielded.n_physical:7d} "
            f"{100 * report.victim_peak_noise:7.1f}% "
            f"{100 * report.victim_min_noise:7.1f}% "
            f"{format_si(report.delay_solo, 's'):>9s} "
            f"{format_si(report.delay_even, 's'):>9s} "
            f"{format_si(report.delay_odd, 's'):>9s} "
            f"{100 * report.delay_push_out:8.1f}%"
        )

    print("\nEach shield costs one track, and *placement* matters as much as")
    print("count: 1 and 3 evenly spread shields flank the middle victim and")
    print("buy most of its noise margin back, while 2 leave it unflanked --")
    print("its direct aggressors stay adjacent and the inductive dip can")
    print("even worsen.  A tightened switching window is what lets a")
    print("crosstalk-aware repeater flow size its buffers closer to the")
    print("single-line optimum (see EXP-X8).")


if __name__ == "__main__":
    main()
