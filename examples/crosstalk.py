"""Crosstalk on coupled global wires: noise and switching-window study.

The wires whose self-inductance breaks RC delay models (this paper) also
couple to their neighbors.  This example sweeps the spacing of a
parallel pair on the 250 nm global layer and simulates, per spacing:

- the glitch injected onto a quiet victim (and its polarity -- positive
  spikes are capacitive, negative far-end dips are inductive),
- the aggressor's 50% delay when the victim is quiet / switching with
  it (even) / switching against it (odd).

On these low-R wires the odd mode is *faster* (loop inductance
L*(1 - k) wins over Miller capacitance) -- the reverse of the RC-world
rule of thumb.

Run:  python examples/crosstalk.py
      REPRO_EXAMPLES_FAST=1 python examples/crosstalk.py   (smoke mode)
"""

import os

from repro.analysis.crosstalk import analyze_crosstalk
from repro.spice.coupled import CoupledLadderSpec
from repro.technology.nodes import node_by_name
from repro.technology.parasitics import coupling_capacitance_per_length
from repro.units import format_si

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def coupling_for_spacing(node, spacing: float, length: float) -> tuple[float, float]:
    """Total coupling cap and a spacing-decaying inductive coefficient."""
    geometry = node.global_wire
    cc = coupling_capacitance_per_length(
        geometry.thickness, spacing, geometry.eps_r
    ) * length
    # Mutual coupling falls off slowly (log-like) with pitch; use a
    # simple decaying model anchored at k ~ 0.6 for minimum spacing.
    pitch = spacing + geometry.width
    km = 0.6 / (1.0 + pitch / (4.0 * geometry.width))
    return cc, km


def main() -> None:
    node = node_by_name("250nm")
    length = 10e-3  # 10 mm parallel run
    r, l, c = node.wire_rlc("global")
    driver = node.r0 / 150.0  # strong h=150 drivers on both lines

    print(f"coupled pair: 10 mm on the {node.name} global layer, "
          f"h=150 drivers ({driver:.0f} ohm)")
    print(f"{'spacing':>8s} {'Cc_total':>9s} {'km':>5s} "
          f"{'victim +noise':>13s} {'victim -noise':>13s} "
          f"{'t50 quiet':>10s} {'t50 even':>9s} {'t50 odd':>9s}")

    for spacing_um in (0.6, 4.0) if FAST else (0.6, 1.0, 2.0, 4.0):
        spacing = spacing_um * 1e-6
        cct, km = coupling_for_spacing(node, spacing, length)
        spec = CoupledLadderSpec(
            rt=r * length,
            lt=l * length,
            ct=c * length,
            cct=cct,
            km=km,
            rtr_aggressor=driver,
            rtr_victim=driver,
            cl=node.c0 * 150.0,
            n_segments=10 if FAST else 24,
        )
        report = analyze_crosstalk(spec)
        print(
            f"{spacing_um:7.1f}u {format_si(cct, 'F'):>9s} {km:5.2f} "
            f"{100 * report.victim_peak_noise:12.1f}% "
            f"{100 * report.victim_min_noise:12.1f}% "
            f"{format_si(report.aggressor_delay_quiet, 's'):>10s} "
            f"{format_si(report.aggressor_delay_even, 's'):>9s} "
            f"{format_si(report.aggressor_delay_odd, 's'):>9s}"
        )

    print("\nNote the regime crossover: at minimum spacing the huge coupling")
    print("capacitance Miller-dominates and the odd mode is SLOWEST (the RC")
    print("rule of thumb); by 2 um the inductive coupling has taken over and")
    print("the odd mode arrives FIRST, riding L*(1 - km).  Negative far-end")
    print("dips growing with spacing are the inductive signature.")


if __name__ == "__main__":
    main()
