"""H-tree clock skew under load imbalance, and what repeaters buy.

Builds a levels=2 clock H-tree with the new ``repro.topology``
generators, loads one sink 3x heavier than the rest, and shows the
sink-to-sink skew of the flat tree vs branch-point repeaters of
increasing strength -- the same study as experiment EXP-X9, narrated.
Also demonstrates the netlist text round trip: the flat tree is
exported with ``to_netlist()`` and re-parsed before simulation.

Run:  python examples/htree_skew.py
      REPRO_EXAMPLES_FAST=1 python examples/htree_skew.py   (smoke mode)
"""

import os

from repro.experiments.htree_study import make_tree_spec, run
from repro.experiments.common import render_table
from repro.spice.parser import parse_netlist, suggest_transient_window
from repro.spice.transient import simulate_transient
from repro.topology import build_htree_circuit
from repro.units import format_si

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    n_segments = 2 if FAST else 4
    repeater_sizes = (120.0,) if FAST else (60.0, 120.0, 240.0)

    # Round-trip demo: generate the tree, export the netlist text, parse
    # it back, and simulate the parsed circuit.
    spec = make_tree_spec(n_segments=n_segments)
    circuit = build_htree_circuit(spec)
    text = circuit.to_netlist()
    parsed = parse_netlist(text).bind()
    t_stop, dt = suggest_transient_window(parsed)
    result = simulate_transient(parsed, t_stop, dt)
    delay = result.voltage(spec.output_node).delay_50()
    print(
        f"balanced tree: {len(circuit)} elements, "
        f"{len(circuit.node_names())} nodes, netlist text "
        f"{len(text.splitlines())} lines"
    )
    print(
        f"parsed-netlist sink delay: {format_si(delay, 's')} "
        f"(sink {spec.output_node})\n"
    )

    table = run(n_segments=n_segments, repeater_sizes=repeater_sizes)
    print(render_table(table))

    flat_heavy = next(r for r in table.rows if r[0] == "flat+heavy")
    best = min(
        (r for r in table.rows if r[0] == "repeatered+heavy"),
        key=lambda r: r[-1],
    )
    outcome = (
        f"{best[1]} repeaters cut that to {best[-1]:g} ps"
        if best[-1] < flat_heavy[-1]
        else f"the strongest repeater tried ({best[1]}) still leaves "
        f"{best[-1]:g} ps -- size up to isolate the heavy subtree"
    )
    print(
        f"\nheavy sink skews the flat tree by {flat_heavy[-1]:g} ps; "
        f"{outcome}."
    )


if __name__ == "__main__":
    main()
