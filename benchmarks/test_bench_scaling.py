"""EXP-X4 benchmark: penalties across technology nodes.

The paper's closing scaling argument as a table: T_{L/R} and the
closed-form penalties per synthetic node, with the 0.25 um anchor.
"""

from __future__ import annotations

from repro.experiments import scaling


def test_bench_scaling(benchmark, record_table):
    table = benchmark.pedantic(scaling.run, rounds=1, iterations=1)
    record_table(table)
    rows = {row[0]: row for row in table.rows}
    # Paper anchor: T ~= 5 at 0.25 um.
    assert abs(rows["250nm"][2] - 5.5) < 1.0
    # Copper nodes: penalties rise monotonically with scaling.
    copper = [rows[n] for n in ("250nm", "180nm", "130nm", "100nm", "70nm")]
    tlrs = [r[2] for r in copper]
    delays = [r[3] for r in copper]
    areas = [r[4] for r in copper]
    assert all(b > a for a, b in zip(tlrs, tlrs[1:]))
    assert all(b >= a for a, b in zip(delays, delays[1:]))
    assert all(b > a for a, b in zip(areas, areas[1:]))
