"""EXP-E18 benchmark: repeater area and power cost of the RC model.

Regenerates the eq. 18 curve and the power-penalty columns; asserts the
paper's 154% / 435% anchors.
"""

from __future__ import annotations

from repro.experiments import eq18


def test_bench_eq18(benchmark, record_table):
    table = benchmark.pedantic(eq18.run, rounds=1, iterations=1)
    record_table(table)
    closed = dict(zip(table.column("T_L/R"), table.column("eq18_area_%")))
    assert abs(closed[3.0] - 154.0) < 1.0
    assert abs(closed[5.0] - 435.0) < 1.5
    # Repeater-only power equals the area penalty; wire-inclusive power
    # is strictly smaller but still grows with T.
    rep = table.column("power_rep_%")
    tot = table.column("power_tot_%")
    area = table.column("eq18_area_%")
    assert all(abs(p - a) < 0.5 for p, a in zip(rep, area))
    assert all(t < a + 1e-9 for t, a in zip(tot, area))
    assert all(b >= a for a, b in zip(tot, tot[1:]))
