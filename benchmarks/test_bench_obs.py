"""EXP-OBS benchmark: disabled-instrumentation overhead guard.

The observability layer lives permanently inside the hot loops of the
simulation stack, so its *disabled* fast path must be invisible: the
guard pins the estimated overhead of every gated call site exercised by
the 500-segment ladder transient (the EXP-SP-TRANSIENT workload) to
<= 2% of that transient's measured runtime.

Rather than differencing two noisy wall-clock runs (which cannot
resolve a 2% budget on a loaded shared runner), the guard measures the
two factors directly:

1. one *enabled* run counts exactly how many gated operations (spans,
   counter increments, histogram observations) the workload performs;
2. a tight microbenchmark prices one *disabled* gated call (a dict-free
   attribute check and branch);

and asserts ``ops x per-op cost <= 2% x runtime``.  Both factors
overestimate the true overhead (the microbenchmark includes its own
loop bookkeeping; the op count assumes every op is a span, the most
expensive kind), so the product is a conservative bound.
"""

from __future__ import annotations

import time

from repro import obs
from repro.experiments.common import ExperimentTable
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.transient import simulate_transient

LINE = dict(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
OVERHEAD_BUDGET = 0.02


def _count_gated_ops(run) -> int:
    """Gated operations (spans + metric writes) one workload performs."""
    with obs.capture():
        run()
        spans = 0
        stack = list(obs.trace_roots())
        while stack:
            span = stack.pop()
            spans += 1
            stack.extend(span.children)
        counters = histograms = 0
        for _name, _labels, kind in obs.REGISTRY:
            if kind == "histogram":
                histograms += 1
            elif kind == "counter":
                counters += 1
        # Each series may receive many writes; bound by total counts.
        writes = sum(
            entry["count"]
            for entries in obs.REGISTRY.snapshot()["histograms"].values()
            for entry in entries
        )
        # Counters can be incremented at most once per solve/step; the
        # per-backend solve counters dominate, one per time step.
        sizes = obs.REGISTRY.counter_total("spice.transient.steps")
        return int(spans + counters + histograms + writes + sizes)


def _disabled_op_cost_s(loops: int = 200_000) -> float:
    """Seconds per disabled gated call (span creation, the worst case)."""
    assert not obs.enabled()
    start = time.perf_counter()
    for _ in range(loops):
        with obs.span("bench.noop", n=1):
            pass
        obs.inc("bench.noop")
    elapsed = time.perf_counter() - start
    return elapsed / (2 * loops)


def test_bench_disabled_obs_overhead(
    benchmark, record_table, timing_enabled
):
    n_segments = 500 if timing_enabled else 60
    spec = LadderSpec(**LINE, n_segments=n_segments)
    circuit = build_ladder_circuit(spec)
    t_stop, dt = 2e-9, 5e-12  # 400 trapezoidal steps

    def run():
        return simulate_transient(circuit, t_stop=t_stop, dt=dt)

    # The guard must measure the *disabled* path, so it toggles the
    # global switch; restore whatever state the session was in (the CI
    # metrics-artifact fixture keeps instrumentation on session-wide).
    was_enabled = obs.enabled()
    obs.disable()
    try:
        run()  # warm-up (lazy imports, BLAS spin-up)
        start = time.perf_counter()
        benchmark.pedantic(run, rounds=1, iterations=1)
        runtime_s = time.perf_counter() - start

        ops = _count_gated_ops(run)
        assert not obs.enabled()  # capture() restored the disabled state
        per_op_s = _disabled_op_cost_s()
    finally:
        if was_enabled:
            obs.enable()
    overhead_s = ops * per_op_s
    ratio = overhead_s / runtime_s

    record_table(
        ExperimentTable(
            experiment_id="EXP-OBS-OVERHEAD",
            title="disabled-instrumentation overhead on the ladder transient",
            headers=(
                "segments", "runtime_ms", "gated_ops",
                "ns_per_op", "overhead_pct",
            ),
            rows=(
                (
                    n_segments,
                    round(runtime_s * 1e3, 2),
                    ops,
                    round(per_op_s * 1e9, 1),
                    round(ratio * 100, 4),
                ),
            ),
            notes=(
                f"budget: {OVERHEAD_BUDGET:.0%} of the transient runtime",
            ),
        )
    )

    assert ops > 0, "instrumented workload recorded no gated operations"
    if timing_enabled:
        assert ratio <= OVERHEAD_BUDGET, (
            f"disabled instrumentation costs {ratio:.2%} of the "
            f"{n_segments}-segment transient ({ops} ops at "
            f"{per_op_s * 1e9:.0f} ns), over the {OVERHEAD_BUDGET:.0%} budget"
        )
