"""EXP-T1 benchmark: regenerate the paper's Table 1.

Runs the full 36-cell sweep (3 RT x 3 CT x 4 Lt), comparing the eq. 9
closed form against ladder simulation, and asserts the paper's headline
accuracy claim.  The benchmark time is dominated by the 36 state-space
simulations -- i.e. it measures the library's "AS/X substitute" at the
paper's own workload.
"""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, record_table):
    table = benchmark.pedantic(
        table1.run,
        kwargs={"route": "statespace", "n_segments": 120},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    errors = table.column("err_%")
    assert len(table.rows) == 36
    # Paper: < 5% vs AS/X.  Against our exact-line-consistent simulators
    # the measured maximum is 7.9% (one cell -- the same one the paper
    # itself flags as its worst) with a ~2% median; see EXPERIMENTS.md.
    import statistics
    assert max(errors) < 8.5
    assert statistics.median(errors) < 3.0
    # The sweep must include both regimes.
    zetas = table.column("zeta")
    assert min(zetas) < 0.5 and max(zetas) > 3.0
