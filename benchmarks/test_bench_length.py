"""EXP-X1 benchmark: quadratic-to-linear length dependence.

Regenerates the Section II text claim as a table: fitted log-log
exponents in short/long windows for three inductance levels.
"""

from __future__ import annotations

from repro.experiments import length_dependence


def test_bench_length_dependence(benchmark, record_table):
    table = benchmark.pedantic(length_dependence.run, rounds=1, iterations=1)
    record_table(table)
    rows = {row[0]: row for row in table.rows}
    rc_like = rows["1e-06x L"]
    nominal = rows["1x L"]
    # RC modeling convention: quadratic everywhere.
    assert abs(rc_like[1] - 2.0) < 0.05 and abs(rc_like[2] - 2.0) < 0.05
    # Real inductance: linear (flight-limited) below the crossover.
    assert abs(nominal[1] - 1.0) < 0.1
    # Crossover length grows with inductance.
    assert rows["10x L"][3] > nominal[3]
