"""EXP-SP benchmarks: sparse/banded MNA backends vs dense LU.

Acceptance gates for the ``repro.spice.backend`` subsystem:

- a 500-segment PI-ladder transient (1503 MNA unknowns) runs >=10x
  faster on the best structure-aware backend (sparse SuperLU or
  RCM-banded LAPACK) than on the dense-LU reference, with max-abs
  state disagreement <= 1e-10;
- a 200-point AC sweep assembled in triplet form and solved on the
  sparse/banded path beats the dense per-frequency rebuild by >=10x at
  the same <= 1e-10 agreement.

Under ``--benchmark-disable`` (the CI smoke job) the workloads shrink
and the timing assertions are skipped -- the agreement assertions still
run, so the fast paths cannot silently rot.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentTable
from repro.spice.ac import ac_sweep
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.transient import simulate_transient

LINE = dict(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
FAST_BACKENDS = ("sparse", "banded")


def _timed(fn) -> float:
    """One timed run.  Callers warm every backend up (one untimed run
    each) before timing, so no path pays one-time costs -- lazy imports,
    BLAS thread-pool spin-up, allocator growth -- inside its stopwatch."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_bench_transient_backends(benchmark, record_table, timing_enabled):
    timed = timing_enabled
    n_segments = 500 if timed else 60
    spec = LadderSpec(**LINE, n_segments=n_segments)
    circuit = build_ladder_circuit(spec)
    t_stop, dt = 2e-9, 5e-12  # 400 trapezoidal steps

    def run(backend: str):
        return simulate_transient(circuit, t_stop=t_stop, dt=dt, backend=backend)

    reference = run("dense")  # warm-up doubling as the reference states
    t_dense = _timed(lambda: run("dense"))

    rows = []
    speedups = {}
    for backend in FAST_BACKENDS:
        result = run(backend)  # warm-up doubling as the agreement check
        elapsed = _timed(lambda: run(backend))
        disagreement = float(np.max(np.abs(result.states - reference.states)))
        assert disagreement <= 1e-10, (
            f"{backend} transient deviates from dense LU by {disagreement:g}"
        )
        speedups[backend] = t_dense / elapsed
        rows.append(
            (
                backend,
                round(t_dense * 1e3, 1),
                round(elapsed * 1e3, 1),
                round(speedups[backend], 1),
                f"{disagreement:.2e}",
            )
        )
    benchmark.pedantic(lambda: run("banded"), rounds=1, iterations=1)

    if timed:
        best = max(speedups.values())
        assert best >= 10.0, (
            f"best structure-aware backend only {best:.1f}x faster than "
            f"dense LU on the {n_segments}-segment ladder transient"
        )

    record_table(
        ExperimentTable(
            experiment_id="EXP-SP-TRANSIENT",
            title=f"{n_segments}-segment PI ladder transient -- "
            "backend speedups over dense LU",
            headers=("backend", "dense_ms", "backend_ms", "speedup_x", "max_abs_diff"),
            rows=tuple(rows),
            notes=(
                f"{int(round(t_stop / dt))} trapezoidal steps, one "
                "factorization reused across all steps",
                "reference: dense scipy.linalg.lu_factor/lu_solve",
            ),
        )
    )


def test_bench_ac_backends(benchmark, record_table, timing_enabled):
    timed = timing_enabled
    n_segments = 150 if timed else 30
    n_freq = 200 if timed else 20
    spec = LadderSpec(**LINE, n_segments=n_segments)
    circuit = build_ladder_circuit(spec)
    omegas = np.geomspace(1e7, 1e10, n_freq)

    def run(backend: str):
        return ac_sweep(circuit, omegas, backend=backend)

    reference = run("dense")  # warm-up doubling as the reference states
    t_dense = _timed(lambda: run("dense"))

    rows = []
    speedups = {}
    for backend in FAST_BACKENDS:
        result = run(backend)  # warm-up doubling as the agreement check
        elapsed = _timed(lambda: run(backend))
        disagreement = float(np.max(np.abs(result.states - reference.states)))
        assert disagreement <= 1e-10, (
            f"{backend} AC sweep deviates from dense LU by {disagreement:g}"
        )
        speedups[backend] = t_dense / elapsed
        rows.append(
            (
                backend,
                round(t_dense * 1e3, 1),
                round(elapsed * 1e3, 1),
                round(speedups[backend], 1),
                f"{disagreement:.2e}",
            )
        )
    benchmark.pedantic(lambda: run("sparse"), rounds=1, iterations=1)

    if timed:
        best = max(speedups.values())
        assert best >= 10.0, (
            f"best structure-aware backend only {best:.1f}x faster than "
            f"dense LU on the {n_freq}-point AC sweep"
        )

    record_table(
        ExperimentTable(
            experiment_id="EXP-SP-AC",
            title=f"{n_freq}-point AC sweep of a {n_segments}-segment ladder -- "
            "backend speedups over dense LU",
            headers=("backend", "dense_ms", "backend_ms", "speedup_x", "max_abs_diff"),
            rows=tuple(rows),
            notes=(
                "each frequency assembles G + jwC in triplet form; the "
                "dense path materializes and factors the full matrix "
                "per point",
            ),
        )
    )
