"""EXP-E17 benchmark: the delay cost of RC-based repeater insertion.

Regenerates the eq. 17 curve three ways (closed form, model-based
eq. 16, ladder-simulated) and asserts the paper's anchors on the closed
form plus the qualitative shape on the independent evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import eq17


def test_bench_eq17(benchmark, record_table):
    table = benchmark.pedantic(
        eq17.run,
        kwargs={"tlr_values": np.array([0.5, 1.0, 3.0, 5.0, 10.0])},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    closed = dict(zip(table.column("T_L/R"), table.column("eq17_%")))
    # Paper's quoted anchors.
    assert abs(closed[3.0] - 10.0) < 0.5
    assert abs(closed[5.0] - 20.0) < 0.5
    assert abs(closed[10.0] - 28.0) < 1.5  # paper rounds to 30%
    # Both independent evaluations grow monotonically from ~0.
    for column in ("model_%", "simulated_%"):
        series = table.column(column)
        assert series[0] < 2.0
        assert all(b >= a - 0.5 for a, b in zip(series, series[1:]))
        assert series[-1] > 5.0
