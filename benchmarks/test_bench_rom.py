"""EXP-ROM benchmark: the reduced-order tier vs the full-MNA batch.

Acceptance gate for the ``model="reduced"`` evaluation tier: the
EXP-TPL-BATCH workload -- a 256-point value-only transient sweep over
an 8-line x 200-segment coupled bus, chunked exactly like the sweep
runner -- served from one cached PRIMA-style projection must be
>= 20x faster than the full-MNA template batch (itself the winner of
EXP-TPL-BATCH), while every point's 50% far-end delay agrees to
<= 1%.

The full path runs the sweep runner's 32-point chunks (its memory
guard: each point's factorization lives for the chunk).  The reduced
path takes the whole grid in one batch call -- its per-point state is
a dense ``q x q`` pencil, so nothing motivates chunking, and one call
means the corner-enriched projection is built once for the grid's
actual value box.  The protocol is warm-vs-warm: the full path warms
on a two-point prefix (template cache, backend resolution, BLAS); the
reduced path runs the grid once cold -- that run's extra cost over
warm IS the projection build, reported in the ``build_s`` column --
and the stopwatch then takes the best warm repeat, which serves the
cached ``ReducedTemplate`` exactly as every later sweep chunk/rerun
does.

Under ``--benchmark-disable`` / ``REPRO_BENCH_SMOKE=1`` the workload
shrinks and the timing assertion is skipped; the <= 1% delay-agreement
assertion still runs, so the reduced path cannot silently rot.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bus.builder import build_bus_template
from repro.bus.spec import BusSpec
from repro.experiments.common import ExperimentTable
from repro.rom import prima
from repro.spice.transient import simulate_transient_batch

#: Points per batched chunk (the sweep runner's cap).
CHUNK = 32
#: Acceptance bounds: warm reduced vs warm full on the timed workload.
MIN_SPEEDUP = 20.0
MAX_DELAY_ERROR = 0.01


def _base_spec(n_lines: int, n_segments: int) -> BusSpec:
    return BusSpec(
        n_lines=n_lines,
        rt=1000.0,
        lt=1e-6,
        ct=1e-12,
        cct=4e-13,
        km=0.5,
        rtr=100.0,
        cl=1e-13,
        n_segments=n_segments,
    )


def _value_grid(n_rt: int, n_cct: int) -> list[dict]:
    """The EXP-TPL-BATCH value-only (rt, cct) grid; topology fixed."""
    rts = np.geomspace(600.0, 1400.0, n_rt)
    ccts = np.linspace(1e-13, 6e-13, n_cct)
    return [
        {"rt": float(rt), "cct": float(cct)} for rt in rts for cct in ccts
    ]


def _alternating_pattern(n_lines: int) -> tuple[str, ...]:
    return tuple("rise" if i % 2 == 0 else "fall" for i in range(n_lines))


def _chunked_full(template, points, t_stop, dt, out):
    """The sweep-runner protocol for the full tier: 32-point chunks."""
    waves = []
    times = None
    for lo in range(0, len(points), CHUNK):
        result = simulate_transient_batch(
            template,
            points[lo : lo + CHUNK],
            t_stop=t_stop,
            dt=dt,
            backend="auto",
            record=[out],
            model="full",
        )
        waves.append(result.voltage(out))
        times = result.times
    return times, np.concatenate(waves, axis=0)


def _reduced_batch(template, points, t_stop, dt, out):
    """One whole-grid batch call on the reduced tier (q x q state)."""
    result = simulate_transient_batch(
        template,
        points,
        t_stop=t_stop,
        dt=dt,
        backend="auto",
        record=[out],
        model="reduced",
    )
    return result.times, result.voltage(out)


def _delay_50(times, waves) -> np.ndarray:
    """Interpolated 50% crossings of unit-step waveforms, per point."""
    level = 0.5
    above = waves >= level
    first = np.argmax(above, axis=-1)
    delays = np.full(waves.shape[0], np.nan)
    for i, k in enumerate(first):
        if k == 0:
            continue  # no crossing (or crossed at t=0): leave NaN
        v0, v1 = waves[i, k - 1], waves[i, k]
        t0, t1 = times[k - 1], times[k]
        delays[i] = t0 + (level - v0) / (v1 - v0) * (t1 - t0)
    return delays


def test_bench_rom_vs_full_batch(benchmark, record_table, timing_enabled):
    timed = timing_enabled
    n_lines = 8 if timed else 4
    n_segments = 200 if timed else 30
    points = _value_grid(16, 16) if timed else _value_grid(3, 2)
    t_stop = 2e-9
    dt = t_stop / 24

    spec = _base_spec(n_lines, n_segments)
    pattern = _alternating_pattern(n_lines)
    out = spec.output_node(0)
    template = build_bus_template(spec, pattern)

    # Warm up the full path (template cache, backend resolution, BLAS).
    _chunked_full(template, points[:2], t_stop, dt, out)
    start = time.perf_counter()
    times_full, full = _chunked_full(template, points, t_stop, dt, out)
    t_full = time.perf_counter() - start

    # Cold reduced run: includes the one-per-structure projection
    # build; warm repeats serve the cached ReducedTemplate.
    prima._TEMPLATE_CACHE.clear()
    start = time.perf_counter()
    _reduced_batch(template, points, t_stop, dt, out)
    t_cold = time.perf_counter() - start
    t_reduced = np.inf
    for _ in range(3):
        start = time.perf_counter()
        times_red, reduced = _reduced_batch(template, points, t_stop, dt, out)
        t_reduced = min(t_reduced, time.perf_counter() - start)
    t_build = max(t_cold - t_reduced, 0.0)

    np.testing.assert_array_equal(times_full, times_red)
    d_full = _delay_50(times_full, full)
    d_reduced = _delay_50(times_red, reduced)
    assert np.all(np.isfinite(d_full)) and np.all(np.isfinite(d_reduced))
    delay_error = float(np.max(np.abs(d_reduced - d_full) / d_full))
    wave_error = float(np.max(np.abs(reduced - full)))

    assert delay_error <= MAX_DELAY_ERROR, (
        f"reduced tier's worst 50% delay error {delay_error * 100:.3f}% "
        f"exceeds {MAX_DELAY_ERROR * 100:.0f}% on the "
        f"{len(points)}-point {n_lines}x{n_segments} bus sweep"
    )
    speedup = t_full / t_reduced
    if timed:
        assert speedup >= MIN_SPEEDUP, (
            f"reduced tier only {speedup:.1f}x faster than the full-MNA "
            f"batch (need >= {MIN_SPEEDUP:.0f}x) on the "
            f"{len(points)}-point {n_lines}x{n_segments} bus sweep"
        )
    benchmark.pedantic(
        lambda: _reduced_batch(template, points, t_stop, dt, out),
        rounds=1,
        iterations=1,
    )

    record_table(
        ExperimentTable(
            experiment_id="EXP-ROM",
            title=f"{len(points)}-point value-only sweep over an "
            f"{n_lines}x{n_segments} bus -- reduced tier vs full-MNA batch",
            headers=(
                "points",
                "full_s",
                "reduced_s",
                "build_s",
                "speedup_x",
                "max_delay_err_%",
                "max_abs_dv",
            ),
            rows=(
                (
                    len(points),
                    round(t_full, 2),
                    round(t_reduced, 3),
                    round(t_build, 2),
                    round(speedup, 1),
                    round(delay_error * 100, 4),
                    f"{wave_error:.2e}",
                ),
            ),
            notes=(
                "full: the EXP-TPL-BATCH winner -- one CircuitTemplate, "
                "revalue + refactorize per point, lockstep trapezoidal "
                f"stepping in chunks of {CHUNK} (warmed)",
                "reduced: model='reduced', whole grid in one batch call "
                "(per-point state is a dense q x q pencil) -- best warm "
                "repeat; build_s is the cold run's projection-build "
                "surcharge, paid once per structure",
                f"{int(round(t_stop / dt))} steps per point; delay error "
                "is the worst interpolated 50% crossing shift",
            ),
        )
    )
