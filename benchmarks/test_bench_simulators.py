"""Micro-benchmarks of the three simulator routes and the core math.

Not a paper artifact: these measure the library itself, so performance
regressions in the substrates are visible (the experiment benches would
only show them indirectly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay, scaled_delay
from repro.core.repeater import Buffer, numerical_optimal_design
from repro.core.simulate import simulated_delay_50

LINE = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)


class TestSimulatorRoutes:
    @pytest.mark.parametrize("route,n", [("statespace", 100), ("mna", 40)])
    def test_bench_ladder_route(self, benchmark, route, n):
        t50 = benchmark.pedantic(
            simulated_delay_50,
            args=(LINE,),
            kwargs={"route": route, "n_segments": n, "n_samples": 2001},
            rounds=3,
            iterations=1,
        )
        assert 1.0e-9 < t50 < 1.15e-9

    def test_bench_tline_route(self, benchmark):
        t50 = benchmark.pedantic(
            simulated_delay_50,
            args=(LINE,),
            kwargs={"route": "tline", "n_samples": 2001},
            rounds=3,
            iterations=1,
        )
        assert 1.0e-9 < t50 < 1.15e-9


class TestCoreMath:
    def test_bench_eq9_scalar(self, benchmark):
        result = benchmark(propagation_delay, LINE)
        assert result > 0

    def test_bench_eq9_vectorized(self, benchmark):
        z = np.linspace(0.01, 5.0, 100_000)
        result = benchmark(scaled_delay, z)
        assert result.shape == z.shape

    def test_bench_repeater_optimization(self, benchmark):
        line = DriverLineLoad(rt=500.0, lt=125e-9, ct=10e-12)
        buffer = Buffer(r0=5000.0, c0=1e-14)
        design = benchmark.pedantic(
            numerical_optimal_design, args=(line, buffer), rounds=3, iterations=1
        )
        assert design.h > 0 and design.k > 0
