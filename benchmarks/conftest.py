"""Shared benchmark plumbing.

Each benchmark regenerates one paper artifact (table or figure), times
it with pytest-benchmark, and records the rendered rows both to stdout
(visible with ``-s``) and to ``benchmarks/output/<EXP-ID>.txt`` so the
reproduced numbers are always inspectable after a run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import obs
from repro.experiments.common import ExperimentTable, render_table

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session", autouse=True)
def metrics_artifact():
    """Collect and write session telemetry when REPRO_METRICS_OUT is set.

    The CI benchmark-smoke job points this at ``metrics.json`` so the
    whole benchmark session's counters (backend selections, cache hit
    rates, batch histograms) land next to the pytest-benchmark JSON
    artifact.  Without the environment knob this fixture does nothing
    -- in particular it does not enable instrumentation, keeping local
    timing runs on the disabled fast path (the overhead-guard benchmark
    manages its own enable/disable windows and resets what it records).
    """
    target = os.environ.get("REPRO_METRICS_OUT", "").strip()
    if not target:
        yield
        return
    obs.reset()
    obs.enable()
    yield
    obs.disable()
    obs.write_metrics(target, extra={"context": "benchmark-session"})


@pytest.fixture
def timing_enabled(request) -> bool:
    """False under ``--benchmark-disable`` or ``REPRO_BENCH_SMOKE=1``.

    Wall-clock speedup assertions are meaningless on loaded shared
    runners; benchmarks gate them on this fixture so fast mode still
    exercises every path and its agreement checks, timing aside.  The
    environment knob exists for CI jobs that want pytest-benchmark
    *enabled* (to emit ``--benchmark-json`` artifacts) while still
    running the shrunken smoke workloads.
    """
    if os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0"):
        return False
    try:
        return not request.config.getoption("--benchmark-disable")
    except ValueError:  # pytest-benchmark not installed
        return True


@pytest.fixture(scope="session")
def record_table():
    """Render, print and persist an :class:`ExperimentTable`."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _record(table: ExperimentTable) -> ExperimentTable:
        text = render_table(table)
        print()
        print(text)
        path = OUTPUT_DIR / f"{table.experiment_id}.txt"
        path.write_text(text + "\n")
        return table

    return _record
