"""EXP-X5 benchmark: re-run the paper's curve fits on our own data.

Times the full methodology loop: sweep zeta on the simulator, refit the
eq. 9 template; sweep T_{L/R} through the optimizer, refit the h'/k'
templates.  Asserts the refit eq. 9 constants land near the published
ones.
"""

from __future__ import annotations

from repro.experiments import refit


def test_bench_refit(benchmark, record_table):
    table = benchmark.pedantic(refit.run, rounds=1, iterations=1)
    record_table(table)
    rows = {row[0]: row for row in table.rows}
    # The delay-model constants recovered from OUR simulators should sit
    # near the published (2.9, 1.35, 1.48) -- same physics, same fit.
    assert abs(rows["eq9: exp coeff"][2] - 2.9) < 0.4
    assert abs(rows["eq9: exp power"][2] - 1.35) < 0.15
    assert abs(rows["eq9: linear coeff"][2] - 1.48) < 0.05
    # And the fit quality itself must be good.
    assert rows["eq9: linear coeff"][3] < 6.0  # max relative error, %
