"""EXP-X6 benchmark: coupled-line crosstalk study (extension).

Times the full spacing sweep (each point = three MNA transients of the
coupled pair) and asserts the physical signatures.
"""

from __future__ import annotations

from repro.experiments import crosstalk_study


def test_bench_crosstalk(benchmark, record_table):
    table = benchmark.pedantic(crosstalk_study.run, rounds=1, iterations=1)
    record_table(table)
    noise_pos = table.column("noise+_%")
    noise_neg = table.column("noise-_%")
    # Capacitive glitch shrinks with spacing; some inductive dip remains.
    assert noise_pos[0] > noise_pos[-1]
    assert all(n < 0 for n in noise_neg)
    # Regime flip: odd slower than even at minimum pitch (Miller),
    # faster at the widest (loop inductance).
    first, last = table.rows[0], table.rows[-1]
    assert first[7] > first[6]   # odd > even at 0.6 um
    assert last[7] < last[6]     # odd < even at 4 um
