"""EXP-TPL benchmarks: stamp-once / re-value-many vs per-point rebuilds.

Acceptance gate for the symbolic/numeric split: a 256-point value-only
transient sweep over an 8-line x 200-segment coupled bus, run through
``build_bus_template`` + ``simulate_transient_batch`` in chunks, must be
>= 5x faster than the per-point path the ``SweepRunner`` fan-out
historically used (fresh netlist + fresh MNA assembly + fresh
``backend="auto"`` resolution + fresh factorization per point), with
the recorded far-end waveforms of *every* point agreeing to <= 1e-12.

The per-point reference is timed serially -- exactly one worker's
workload; both paths ride the same worker pool in production, so the
single-worker ratio is the honest measure of the work eliminated.

Under ``--benchmark-disable`` / smoke mode the workload shrinks and the
timing assertion is skipped; the <= 1e-12 agreement assertions (on all
three backends plus ``auto``) still run, so the revaluation path cannot
silently rot.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.bus.builder import build_bus_circuit, build_bus_template
from repro.bus.spec import BusSpec
from repro.experiments.common import ExperimentTable
from repro.spice.transient import simulate_transient, simulate_transient_batch

TOL = 1e-12
#: Points per batched chunk (matches the sweep runner's cap: each
#: distinct point keeps its factorization alive for the chunk's run).
CHUNK = 32


def _base_spec(n_lines: int, n_segments: int) -> BusSpec:
    return BusSpec(
        n_lines=n_lines,
        rt=1000.0,
        lt=1e-6,
        ct=1e-12,
        cct=4e-13,
        km=0.5,
        rtr=100.0,
        cl=1e-13,
        n_segments=n_segments,
    )


def _value_grid(n_rt: int, n_cct: int) -> list[dict]:
    """A value-only (rt, cct) product grid; topology never changes."""
    rts = np.geomspace(600.0, 1400.0, n_rt)
    ccts = np.linspace(1e-13, 6e-13, n_cct)
    return [
        {"rt": float(rt), "cct": float(cct)} for rt in rts for cct in ccts
    ]


def _alternating_pattern(n_lines: int) -> tuple[str, ...]:
    return tuple("rise" if i % 2 == 0 else "fall" for i in range(n_lines))


def _per_point_waveforms(spec, pattern, points, t_stop, dt, out) -> np.ndarray:
    """The historical fan-out workload: fresh build + simulate per point."""
    waves = []
    for point in points:
        concrete = replace(spec, **point)
        circuit = build_bus_circuit(concrete, pattern)
        result = simulate_transient(circuit, t_stop=t_stop, dt=dt, backend="auto")
        waves.append(result.voltage(out).values)
    return np.asarray(waves)


def _batched_waveforms(spec, pattern, points, t_stop, dt, out) -> np.ndarray:
    """The template path, chunked exactly like the sweep runner."""
    template = build_bus_template(spec, pattern)
    waves = []
    for lo in range(0, len(points), CHUNK):
        chunk = points[lo : lo + CHUNK]
        result = simulate_transient_batch(
            template,
            chunk,
            t_stop=t_stop,
            dt=dt,
            backend="auto",
            record=[out],
        )
        waves.append(result.voltage(out))
    return np.concatenate(waves, axis=0)


def test_bench_template_batch_sweep(benchmark, record_table, timing_enabled):
    timed = timing_enabled
    n_lines = 8 if timed else 4
    n_segments = 200 if timed else 30
    points = _value_grid(16, 16) if timed else _value_grid(3, 2)
    t_stop = 2e-9
    dt = t_stop / 24  # 24 lockstep trapezoidal steps per point

    spec = _base_spec(n_lines, n_segments)
    pattern = _alternating_pattern(n_lines)
    out = spec.output_node(0)

    # Warm-up both paths on a tiny prefix (lazy imports, BLAS spin-up,
    # template cache) so neither stopwatch pays one-time costs.
    _per_point_waveforms(spec, pattern, points[:2], t_stop, dt, out)
    _batched_waveforms(spec, pattern, points[:2], t_stop, dt, out)

    start = time.perf_counter()
    reference = _per_point_waveforms(spec, pattern, points, t_stop, dt, out)
    t_per_point = time.perf_counter() - start

    # The batch timing still includes template construction, the one
    # structural MNA pass, backend resolution and every per-point
    # refactorization: clear the memo so nothing is smuggled out.
    from repro.bus.builder import _cached_bus_template

    _cached_bus_template.cache_clear()
    start = time.perf_counter()
    batched = _batched_waveforms(spec, pattern, points, t_stop, dt, out)
    t_batch = time.perf_counter() - start

    disagreement = float(np.max(np.abs(batched - reference)))
    assert disagreement <= TOL, (
        f"batched revaluation deviates from fresh builds by {disagreement:g}"
    )
    speedup = t_per_point / t_batch
    if timed:
        assert speedup >= 5.0, (
            f"batch path only {speedup:.1f}x faster than per-point "
            f"fan-out on the {len(points)}-point {n_lines}x{n_segments} bus sweep"
        )
    benchmark.pedantic(
        lambda: _batched_waveforms(spec, pattern, points[:CHUNK], t_stop, dt, out),
        rounds=1,
        iterations=1,
    )

    record_table(
        ExperimentTable(
            experiment_id="EXP-TPL-BATCH",
            title=f"{len(points)}-point value-only transient sweep over an "
            f"{n_lines}x{n_segments} bus -- template batch vs per-point rebuild",
            headers=(
                "points", "per_point_s", "batch_s", "speedup_x", "max_abs_diff",
            ),
            rows=(
                (
                    len(points),
                    round(t_per_point, 2),
                    round(t_batch, 2),
                    round(speedup, 1),
                    f"{disagreement:.2e}",
                ),
            ),
            notes=(
                "per-point: fresh netlist + MNA assembly + auto backend "
                "resolution + factorization each point (serial, one worker)",
                f"batch: one CircuitTemplate, revalue + refactorize per point, "
                f"lockstep stepping in chunks of {CHUNK}",
                f"{int(round(t_stop / dt))} trapezoidal steps per point",
                "both paths run the model='full' evaluation tier; the "
                "reduced-order tier on this same workload is EXP-ROM",
            ),
        )
    )


def test_bench_template_all_backends_agree(record_table, timing_enabled):
    """Small-bus equivalence of the batch path on every explicit backend."""
    spec = _base_spec(3, 16)
    pattern = _alternating_pattern(3)
    out = spec.output_node(0)
    points = _value_grid(2, 2)
    t_stop, dt = 2e-9, 1e-10
    template = build_bus_template(spec, pattern)
    rows = []
    for backend in ("dense", "sparse", "banded"):
        batch = simulate_transient_batch(
            template, points, t_stop=t_stop, dt=dt, backend=backend, record=[out]
        )
        worst = 0.0
        for j, point in enumerate(points):
            concrete = replace(spec, **point)
            ref = simulate_transient(
                build_bus_circuit(concrete, pattern),
                t_stop=t_stop,
                dt=dt,
                backend=backend,
            )
            worst = max(
                worst,
                float(np.max(np.abs(batch.voltage(out)[j] - ref.voltage(out).values))),
            )
        assert worst <= TOL, f"{backend}: batch deviates by {worst:g}"
        rows.append((backend, f"{worst:.2e}"))
    record_table(
        ExperimentTable(
            experiment_id="EXP-TPL-BACKENDS",
            title="template revaluation vs fresh builds -- per-backend agreement",
            headers=("backend", "max_abs_diff"),
            rows=tuple(rows),
            notes=("3x16 bus, 4 value points, 20 trapezoidal steps",),
        )
    )
