"""EXP-SW benchmark: the vectorized sweep engine vs the scalar loop.

Acceptance gates for the ``repro.sweep`` subsystem:

- the batch kernel evaluates a >=10,000-point eq. 9 grid >=10x faster
  than the historical per-point ``DriverLineLoad`` +
  ``propagation_delay`` loop (in practice the margin is orders of
  magnitude), producing identical numbers;
- a repeated :class:`~repro.sweep.runner.SweepRunner` run is a pure
  cache hit: zero kernel evaluations the second time, on both the
  in-memory and the on-disk layer.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.experiments.common import ExperimentTable
from repro.sweep import (
    Axis,
    ParameterGrid,
    Sweep,
    SweepRunner,
    batch_propagation_delay,
)

N_RT, N_LT = 100, 100  # 10,000-point grid
FIXED = {"ct": 2e-12, "rtr": 250.0, "cl": 5e-14}


def _grid() -> ParameterGrid:
    return ParameterGrid(
        Axis.log("rt", 10.0, 1e4, N_RT), Axis.log("lt", 1e-10, 1e-6, N_LT)
    )


def _sweep() -> Sweep:
    return Sweep("propagation_delay", _grid(), fixed=FIXED)


def test_bench_sweep_vectorized_speedup(benchmark, record_table, timing_enabled):
    grid = _grid()
    columns = grid.columns()
    n_points = grid.size
    assert n_points >= 10_000

    # Scalar baseline: the pre-engine idiom, one object + one call per point.
    start = time.perf_counter()
    scalar = np.array(
        [
            propagation_delay(DriverLineLoad(rt=rt, lt=lt, **FIXED))
            for rt, lt in zip(columns["rt"], columns["lt"])
        ]
    )
    t_scalar = time.perf_counter() - start

    # Vectorized engine: the same grid in one batch kernel call.
    def vectorized() -> np.ndarray:
        return batch_propagation_delay(
            columns["rt"],
            columns["lt"],
            FIXED["ct"],
            FIXED["rtr"],
            FIXED["cl"],
        )

    timings = []
    batch = None
    for _ in range(5):
        tick = time.perf_counter()
        batch = vectorized()
        timings.append(time.perf_counter() - tick)
    t_batch = min(timings)
    benchmark.pedantic(vectorized, rounds=5, iterations=1)
    speedup = t_scalar / t_batch

    # The scalar path's fast branch may differ from the array ufuncs by
    # a few ULP in exp/power; require agreement to that level.
    matches = np.allclose(scalar, batch, rtol=1e-13, atol=0.0)
    assert matches, "engine must reproduce the scalar loop"
    if timing_enabled:
        assert speedup >= 10.0, (
            f"vectorized engine only {speedup:.1f}x faster than the scalar loop"
        )

    record_table(
        ExperimentTable(
            experiment_id="EXP-SW",
            title="sweep engine -- vectorized batch vs scalar loop (eq. 9)",
            headers=("points", "scalar_ms", "batch_ms", "speedup_x", "matches"),
            rows=(
                (
                    n_points,
                    round(t_scalar * 1e3, 2),
                    round(t_batch * 1e3, 3),
                    round(speedup, 1),
                    matches,
                ),
            ),
            notes=(
                "scalar loop: one DriverLineLoad + propagation_delay per "
                "point (the kernels' scalar fast path, ~historical cost)",
                "batch: one repro.sweep.kernels.batch_propagation_delay call",
            ),
        )
    )


def test_bench_sweep_cache_layers(tmp_path):
    runner = SweepRunner(cache_dir=tmp_path)
    fresh = runner.run(_sweep())
    assert fresh.cache_hit is None
    assert runner.stats.kernel_evaluations == N_RT * N_LT

    # Second pass: pure in-memory hit, zero kernel evaluations.
    replay = runner.run(_sweep())
    assert replay.cache_hit == "memory"
    assert runner.stats.kernel_evaluations == N_RT * N_LT
    assert np.array_equal(replay.output(), fresh.output())

    # New runner, same cache dir: the disk layer replays it, still zero.
    cold = SweepRunner(cache_dir=tmp_path)
    replayed = cold.run(_sweep())
    assert replayed.cache_hit == "disk"
    assert cold.stats.kernel_evaluations == 0
    assert np.allclose(replayed.output(), fresh.output(), rtol=0, atol=0)
