"""EXP-F4 benchmark: regenerate Fig. 4 (h' and k' vs T_{L/R}).

Times the numerical optimization sweep behind the figure and records
both our optimizer's curves and the paper's closed-form fits.
"""

from __future__ import annotations

from repro.experiments import fig4


def test_bench_fig4(benchmark, record_table):
    table = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    record_table(table)
    h_num = table.column("h'_num")
    k_num = table.column("k'_num")
    h_fit = table.column("h'_eq14")
    k_fit = table.column("k'_eq15")
    # Monotone decay from ~1 in every curve; k' below h' throughout.
    for series in (h_num, k_num, h_fit, k_fit):
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
        assert series[0] > 0.99
    assert all(k <= h + 1e-9 for h, k in zip(h_num, k_num))
    assert all(k <= h + 1e-9 for h, k in zip(h_fit, k_fit))
