"""EXP-BUS benchmarks: N-line coupled-bus transients on the MNA backends.

Acceptance gates for the ``repro.bus`` subsystem:

- an 8-bit x 200-segment bus with one inserted shield (~5400 MNA
  unknowns, mutual inductances included) simulates through
  ``backend="auto"`` and yields victim-noise and worst-pattern delay
  metrics (:func:`repro.analysis.bus.analyze_bus`);
- on a mid-size bus the structure-aware backends (sparse SuperLU /
  RCM-banded LAPACK) beat the dense-LU reference by >= 4x at <= 1e-8
  state agreement, and on the full bus sparse and banded agree with
  each other to <= 1e-8 -- the dense path is already impractical there,
  which is the point.

Under ``--benchmark-disable`` (the CI smoke job) the workloads shrink
and the timing assertions are skipped; the agreement and metric
assertions still run.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.analysis.bus import analyze_bus
from repro.bus import BusSpec, build_bus_circuit, odd_pattern
from repro.experiments.common import ExperimentTable
from repro.spice.transient import simulate_transient
from repro.technology.nodes import node_by_name

FAST_BACKENDS = ("sparse", "banded")


def _bus_spec(n_segments: int, n_lines: int = 8) -> BusSpec:
    """The benchmark workload: a minimum-pitch 10 mm bus at 250 nm with
    one shield splitting the byte into two nibbles."""
    node = node_by_name("250nm")
    r, l, c = node.wire_rlc("global")
    length = 10e-3
    return BusSpec(
        n_lines=n_lines,
        rt=r * length,
        lt=l * length,
        ct=c * length,
        cct=0.5 * c * length,
        km=0.5,
        rtr=node.r0 / 150.0,
        cl=node.c0 * 150.0,
        n_segments=n_segments,
        shields=(n_lines // 2,),
    )


def _window(spec: BusSpec) -> float:
    rc = (spec.rtr[0] + spec.rt[0]) * (spec.ct[0] + 2 * spec.cct + spec.cl[0])
    flight = math.sqrt(spec.lt[0] * (spec.ct[0] + 2 * spec.cct))
    return 12.0 * max(rc, flight)


def _timed(fn) -> float:
    """One timed run (callers warm every backend up beforehand)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_bench_bus_transient_backends(benchmark, record_table, timing_enabled):
    timed = timing_enabled
    n_small = 50 if timed else 16
    n_full = 200 if timed else 30

    rows = []

    # Dense comparison on the mid-size bus (dense LU on the full one
    # would dominate the whole suite's runtime -- which is the point).
    small = _bus_spec(n_small)
    circuit = build_bus_circuit(small, odd_pattern(small.n_lines, 3))
    t_stop = _window(small)
    dt = t_stop / 800.0

    def run_small(backend: str):
        return simulate_transient(circuit, t_stop=t_stop, dt=dt, backend=backend)

    reference = run_small("dense")
    t_dense = _timed(lambda: run_small("dense"))
    speedups = {}
    for backend in FAST_BACKENDS:
        result = run_small(backend)  # warm-up doubling as agreement check
        elapsed = _timed(lambda: run_small(backend))
        disagreement = float(np.max(np.abs(result.states - reference.states)))
        assert disagreement <= 1e-8, (
            f"{backend} bus transient deviates from dense LU by {disagreement:g}"
        )
        speedups[backend] = t_dense / elapsed
        rows.append(
            (
                f"8x{n_small}",
                backend,
                round(t_dense * 1e3, 1),
                round(elapsed * 1e3, 1),
                round(speedups[backend], 1),
                f"{disagreement:.2e}",
            )
        )
    if timed:
        best = max(speedups.values())
        assert best >= 4.0, (
            f"best structure-aware backend only {best:.1f}x faster than "
            f"dense LU on the 8x{n_small} bus transient"
        )

    # Full-size bus: sparse vs banded only, cross-checked against each
    # other (no dense reference at ~5400 unknowns).
    full = _bus_spec(n_full)
    circuit_full = build_bus_circuit(full, odd_pattern(full.n_lines, 3))
    t_stop_full = _window(full)
    dt_full = t_stop_full / 800.0

    def run_full(backend: str):
        return simulate_transient(
            circuit_full, t_stop=t_stop_full, dt=dt_full, backend=backend
        )

    results = {}
    for backend in FAST_BACKENDS:
        results[backend] = run_full(backend)  # warm-up
        elapsed = _timed(lambda: run_full(backend))
        rows.append(
            (f"8x{n_full}+shield", backend, "-", round(elapsed * 1e3, 1), "-", "-")
        )
    cross = float(
        np.max(np.abs(results["sparse"].states - results["banded"].states))
    )
    assert cross <= 1e-8, f"sparse and banded disagree by {cross:g} on the full bus"
    rows[-1] = rows[-1][:5] + (f"{cross:.2e}",)
    benchmark.pedantic(lambda: run_full("banded"), rounds=1, iterations=1)

    record_table(
        ExperimentTable(
            experiment_id="EXP-BUS-TRANSIENT",
            title="coupled-bus transients -- backend speedups and agreement",
            headers=(
                "bus", "backend", "dense_ms", "backend_ms", "speedup_x",
                "max_abs_diff",
            ),
            rows=tuple(rows),
            notes=(
                "odd switching pattern, one grounded shield at the bus "
                "midpoint, mutual inductances between all adjacent tracks",
                "full-size row diff column: sparse vs banded cross-check "
                "(dense is impractical at that size)",
            ),
        )
    )


def test_bench_bus_metrics_auto_backend(benchmark, record_table, timing_enabled):
    """The acceptance workload: 8x200 bus + shield through backend='auto'."""
    n_segments = 200 if timing_enabled else 30
    spec = _bus_spec(n_segments)
    window = _window(spec)

    def run():
        return analyze_bus(spec, backend="auto", window=window, dt=window / 800.0)

    report = benchmark.pedantic(run, rounds=1, iterations=1) or run()

    assert report.worst_noise_magnitude > 0.01
    assert math.isfinite(report.worst_delay) and report.worst_delay > 0
    assert report.delay_odd != report.delay_even  # coupling visibly reshapes timing
    record_table(
        ExperimentTable(
            experiment_id="EXP-BUS-METRICS",
            title=f"8x{n_segments} bus + shield: victim metrics via "
            "backend='auto'",
            headers=(
                "noise+_%", "noise-_%", "t50_solo_ps", "t50_even_ps",
                "t50_odd_ps", "pushout_%",
            ),
            rows=(
                (
                    round(100 * report.victim_peak_noise, 1),
                    round(100 * report.victim_min_noise, 1),
                    round(report.delay_solo * 1e12, 1),
                    round(report.delay_even * 1e12, 1),
                    round(report.delay_odd * 1e12, 1),
                    round(100 * report.delay_push_out, 1),
                ),
            ),
            notes=(
                "victim = middle bit; four transients (noise/solo/even/odd) "
                "on ~5400 MNA unknowns each, auto-resolved to the banded "
                "backend",
            ),
        )
    )
