"""EXP-F2 benchmark: regenerate Fig. 2 (t'_pd vs zeta families).

Sweeps zeta over the figure's axis range for the three (RT, CT)
families, simulating each point with the exact transmission-line route.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig2


def test_bench_fig2(benchmark, record_table):
    table = benchmark.pedantic(
        fig2.run,
        kwargs={"zeta_values": np.linspace(0.1, 2.0, 14)},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    assert len(table.rows) == 14
    # Gate-loaded families track eq. 9 to ~9% at the deep-underdamped
    # edge (zeta = 0.1) and a few percent elsewhere; the bare line's
    # wavefront-limited knee (zeta ~ 0.7) is the documented worst case
    # at ~18% (see EXPERIMENTS.md).
    assert max(table.column("loaded_err_%")) < 10.0
    assert max(table.column("band_err_%")) < 20.0
    mid = [row for row in table.rows if row[0] >= 0.9]
    assert all(row[-1] < 5.0 for row in mid)  # loaded err, design band
    # The simulated families rise with zeta overall (RC-ward trend).
    eq9 = table.column("eq9")
    assert eq9[-1] > eq9[0]
