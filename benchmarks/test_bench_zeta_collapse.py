"""EXP-X2 benchmark: the zeta collapse, quantified.

Measures the simulated scaled-delay spread over an (RT, CT) grid at
fixed zeta -- the paper's 'dependence on RT and CT is fairly weak'
claim with numbers attached.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import zeta_collapse


def test_bench_zeta_collapse(benchmark, record_table):
    table = benchmark.pedantic(
        zeta_collapse.run,
        kwargs={"zeta_values": np.array([0.25, 0.5, 1.0, 1.5, 2.0])},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    spreads = table.column("spread_%")
    # The collapse tightens away from the wavefront-limited band: by
    # zeta = 2 the grid agrees to a few percent.
    assert spreads[-1] < 6.0
    # eq. 9's worst error over the grid stays bounded.
    assert max(table.column("eq9_err_%")) < 25.0
