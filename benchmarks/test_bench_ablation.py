"""EXP-X3 benchmark: delay-model ablation (Elmore / two-pole / eq. 9).

The implicit comparison behind the paper: how much better is eq. 9 than
the RC-era metrics across the Table 1 sweep?
"""

from __future__ import annotations

from repro.experiments import ablation


def test_bench_ablation(benchmark, record_table):
    table = benchmark.pedantic(
        ablation.run, kwargs={"n_segments": 100}, rounds=1, iterations=1
    )
    record_table(table)
    stats = {row[0]: row for row in table.rows}
    # eq. 9 is the most accurate model on every summary statistic.
    for metric_index, name in ((1, "mean"), (3, "max")):
        eq9_value = stats["eq9"][metric_index]
        for model in ("elmore", "sakurai-rc"):
            assert stats[model][metric_index] > eq9_value, (name, model)
    # eq. 9 keeps its few-percent budget; the RC metrics blow past it
    # in the underdamped corner.
    assert stats["eq9"][3] < 8.5
    assert stats["elmore"][3] > 30.0
    assert stats["sakurai-rc"][3] > 30.0
