"""Tests for :mod:`repro.lint` -- rules, engine, fingerprint, CLI.

The per-rule tests run the engine over small synthetic packages in a
temp directory (the rules never import the code they check, so a
two-file fixture tree is a complete test bed).  The repository-level
tests at the bottom assert the acceptance criteria directly: the real
``src/repro`` lints clean, and mutating a numeric kernel without a
version bump trips the fingerprint guard.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import textwrap

import pytest

import repro.units
from repro.__main__ import main as repro_main
from repro.lint import (
    DEFAULT_CONFIG,
    UNIT_DIMENSIONS,
    LintConfig,
    default_package_root,
    normalized_fingerprint,
    run_lint,
)
from repro.lint.engine import ERROR, META_RULE_ID, NOTE, WARNING

#: Minimal config for synthetic fixture packages.
MINI = LintConfig(
    kernel_modules=("kern.py", "tline_*.py"),
    version_sources=(
        ("simulator_version", "version.py", "SIMULATOR_VERSION"),
    ),
    cache_consumers=frozenset(),
    hot_path_modules=("hot.py",),
    manifest_relpath="manifest.json",
    baseline_relpath="baseline.json",
)

VERSION_MODULE = '"""Version sentinel."""\n\nSIMULATOR_VERSION = 1\n'

KERNEL_MODULE = '''\
"""A kernel."""

__all__ = ["delay"]


def delay(x):
    """Delay in seconds."""
    return 1.48 * x + 2.9
'''


def write_tree(root: pathlib.Path, files: dict) -> pathlib.Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


def lint(tmp_path, files, config=MINI, **kwargs):
    return run_lint(root=write_tree(tmp_path, files), config=config, **kwargs)


def with_rule(result, rule_id, include_baselined=False):
    return [
        f
        for f in result.findings
        if f.rule == rule_id and (include_baselined or not f.baselined)
    ]


class TestUnitLiteralRule:
    def test_flags_si_literal_keyword(self, tmp_path):
        result = lint(tmp_path, {"m.py": "f(ct=1e-12)\n"})
        (finding,) = with_rule(result, "UNI001")
        assert "1e-12" in finding.message
        assert finding.severity == WARNING

    def test_flags_mantissa_literal(self, tmp_path):
        result = lint(tmp_path, {"m.py": "f(cl=5e-13)\n"})
        assert len(with_rule(result, "UNI001")) == 1

    def test_units_constant_is_clean(self, tmp_path):
        result = lint(
            tmp_path,
            {"m.py": "from repro.units import PF\nf(ct=1 * PF)\n"},
        )
        assert with_rule(result, "UNI001") == []

    def test_non_si_keyword_is_clean(self, tmp_path):
        result = lint(tmp_path, {"m.py": "np.allclose(a, b, rtol=1e-12)\n"})
        assert with_rule(result, "UNI001") == []

    def test_plain_assignment_is_clean(self, tmp_path):
        result = lint(tmp_path, {"m.py": "ct = 1e-12\n"})
        assert with_rule(result, "UNI001") == []

    def test_small_exponent_is_clean(self, tmp_path):
        result = lint(tmp_path, {"m.py": "f(ct=0.5)\n"})
        assert with_rule(result, "UNI001") == []


class TestUnitMismatchRule:
    def test_flags_units_constant_mix(self, tmp_path):
        result = lint(tmp_path, {"m.py": "y = 1 * PF + 2 * OHM\n"})
        (finding,) = with_rule(result, "UNI002")
        assert "capacitance" in finding.message
        assert "resistance" in finding.message
        assert finding.severity == ERROR

    def test_same_dimension_is_clean(self, tmp_path):
        result = lint(tmp_path, {"m.py": "y = 1 * PF + 2 * FF\n"})
        assert with_rule(result, "UNI002") == []

    def test_attribute_form_is_flagged(self, tmp_path):
        result = lint(tmp_path, {"m.py": "y = units.NS - 3 * units.OHM\n"})
        assert len(with_rule(result, "UNI002")) == 1

    def test_docstring_declared_units_disagree(self, tmp_path):
        source = '''\
        def f(rt, ct):
            """Mix dimensions.

            Parameters
            ----------
            rt : float
                Driver resistance, ohms.
            ct : float
                Load capacitance, farads.
            """
            return rt + ct
        '''
        result = lint(tmp_path, {"m.py": source})
        assert len(with_rule(result, "UNI002")) == 1

    def test_docstring_declared_units_agree(self, tmp_path):
        source = '''\
        def f(t_rise, t_fall):
            """Sum times.

            Parameters
            ----------
            t_rise : float
                Rise time, seconds.
            t_fall : float
                Fall time, seconds.
            """
            return t_rise + t_fall
        '''
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "UNI002") == []

    def test_undeclared_names_are_clean(self, tmp_path):
        result = lint(tmp_path, {"m.py": "def f(a, b):\n    return a + b\n"})
        assert with_rule(result, "UNI002") == []


OBS_LOOP = """\
for i in range(n):
    obs.inc("x.events")
"""

OBS_GATED = """\
if obs.enabled():
    for i in range(n):
        obs.inc("x.events")
"""

OBS_EARLY_RETURN = '''\
def publish(n):
    """Gated publisher."""
    if not obs.enabled():
        return
    for i in range(n):
        obs.inc("x.events")
'''


class TestObsInLoopRule:
    def test_flags_ungated_call_in_hot_loop(self, tmp_path):
        result = lint(tmp_path, {"hot.py": OBS_LOOP})
        (finding,) = with_rule(result, "OBS001")
        assert "obs.inc" in finding.message

    def test_enabled_gate_is_clean(self, tmp_path):
        result = lint(tmp_path, {"hot.py": OBS_GATED})
        assert with_rule(result, "OBS001") == []

    def test_early_return_gate_is_clean(self, tmp_path):
        result = lint(tmp_path, {"hot.py": OBS_EARLY_RETURN})
        assert with_rule(result, "OBS001") == []

    def test_cold_module_is_exempt(self, tmp_path):
        result = lint(tmp_path, {"cold.py": OBS_LOOP})
        assert with_rule(result, "OBS001") == []

    def test_span_context_manager_in_loop(self, tmp_path):
        source = 'while True:\n    with obs.span("step"):\n        work()\n'
        result = lint(tmp_path, {"hot.py": source})
        assert len(with_rule(result, "OBS001")) == 1

    def test_call_outside_loop_is_clean(self, tmp_path):
        source = 'obs.inc("x.runs")\nfor i in range(n):\n    work()\n'
        result = lint(tmp_path, {"hot.py": source})
        assert with_rule(result, "OBS001") == []


class TestWallClockRule:
    def test_flags_time_time(self, tmp_path):
        result = lint(
            tmp_path, {"m.py": "import time\nstart = time.time()\n"}
        )
        (finding,) = with_rule(result, "OBS002")
        assert "perf_counter" in finding.message

    def test_perf_counter_is_clean(self, tmp_path):
        result = lint(
            tmp_path, {"m.py": "import time\nstart = time.perf_counter()\n"}
        )
        assert with_rule(result, "OBS002") == []

    def test_inline_suppression(self, tmp_path):
        source = (
            "import time\n"
            "stamp = time.time()  # repro-lint: disable=OBS002\n"
        )
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "OBS002") == []
        assert result.suppressed_count == 1


class TestAllDriftRule:
    def test_missing_all(self, tmp_path):
        result = lint(tmp_path, {"m.py": "def f():\n    return 1\n"})
        assert any(
            "no __all__" in f.message for f in with_rule(result, "API001")
        )

    def test_private_module_exempt_from_missing_all(self, tmp_path):
        result = lint(tmp_path, {"_m.py": "def f():\n    return 1\n"})
        assert with_rule(result, "API001") == []

    def test_all_entry_naming_nothing(self, tmp_path):
        result = lint(tmp_path, {"m.py": '__all__ = ["ghost"]\n'})
        assert any(
            "'ghost'" in f.message for f in with_rule(result, "API001")
        )

    def test_unexported_public_def(self, tmp_path):
        source = '__all__ = ["f"]\n\ndef f():\n    "F."\n\ndef g():\n    "G."\n'
        result = lint(tmp_path, {"m.py": source})
        assert any(
            "'g'" in f.message for f in with_rule(result, "API001")
        )

    def test_init_reexport_drift(self, tmp_path):
        files = {
            "pkg/__init__.py": '__all__ = []\nfrom pkg.mod import thing\n',
            "pkg/mod.py": '__all__ = ["thing"]\nthing = 1\n',
        }
        result = lint(tmp_path, files)
        assert any(
            "re-export" in f.message for f in with_rule(result, "API001")
        )

    def test_init_submodule_import_exempt(self, tmp_path):
        files = {
            "pkg/__init__.py": '__all__ = []\nfrom pkg import mod\n',
            "pkg/mod.py": "__all__ = []\n",
        }
        result = lint(tmp_path, files)
        assert with_rule(result, "API001") == []


class TestPublicDocstringRule:
    def test_flags_undocumented_public_function(self, tmp_path):
        result = lint(
            tmp_path, {"m.py": '__all__ = ["f"]\n\ndef f():\n    return 1\n'}
        )
        assert len(with_rule(result, "API002")) == 1

    def test_private_function_exempt(self, tmp_path):
        result = lint(
            tmp_path, {"m.py": "__all__ = []\n\ndef _f():\n    return 1\n"}
        )
        assert with_rule(result, "API002") == []


class TestMutableDefaultRule:
    def test_flags_list_default(self, tmp_path):
        source = '__all__ = ["f"]\n\ndef f(xs=[]):\n    "F."\n    return xs\n'
        result = lint(tmp_path, {"m.py": source})
        (finding,) = with_rule(result, "DEF001")
        assert finding.severity == ERROR

    def test_flags_dict_constructor_default(self, tmp_path):
        source = (
            '__all__ = ["f"]\n\ndef f(m=dict()):\n    "F."\n    return m\n'
        )
        result = lint(tmp_path, {"m.py": source})
        assert len(with_rule(result, "DEF001")) == 1

    def test_none_default_is_clean(self, tmp_path):
        source = '__all__ = ["f"]\n\ndef f(xs=None):\n    "F."\n    return xs\n'
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "DEF001") == []


class TestSilentExceptRule:
    def test_flags_bare_except(self, tmp_path):
        source = "try:\n    work()\nexcept:\n    handle()\n"
        result = lint(tmp_path, {"m.py": source})
        assert any(
            "bare except" in f.message for f in with_rule(result, "EXC001")
        )

    def test_flags_silent_pass(self, tmp_path):
        source = "try:\n    work()\nexcept ValueError:\n    pass\n"
        result = lint(tmp_path, {"m.py": source})
        assert any(
            "swallows" in f.message for f in with_rule(result, "EXC001")
        )

    def test_handled_exception_is_clean(self, tmp_path):
        source = "try:\n    work()\nexcept ValueError as exc:\n    log(exc)\n"
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "EXC001") == []


class TestSuppressions:
    def test_line_suppression_multiple_ids(self, tmp_path):
        source = (
            "f(ct=1e-12)  # repro-lint: disable=UNI001,UNI002\n"
        )
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "UNI001") == []
        assert result.suppressed_count == 1

    def test_file_suppression(self, tmp_path):
        source = (
            "# repro-lint: disable-file=UNI001\n"
            "f(ct=1e-12)\ng(ct=2e-12)\n"
        )
        result = lint(tmp_path, {"m.py": source})
        assert with_rule(result, "UNI001") == []
        assert result.suppressed_count == 2

    def test_suppression_is_line_scoped(self, tmp_path):
        source = (
            "f(ct=1e-12)  # repro-lint: disable=UNI001\n"
            "g(ct=2e-12)\n"
        )
        result = lint(tmp_path, {"m.py": source})
        assert len(with_rule(result, "UNI001")) == 1

    def test_unknown_rule_id_is_noted(self, tmp_path):
        source = "x = 1  # repro-lint: disable=NOPE999\n"
        result = lint(tmp_path, {"m.py": source})
        notes = with_rule(result, META_RULE_ID)
        assert any("NOPE999" in f.message for f in notes)
        assert all(f.severity == NOTE for f in notes)


class TestBaseline:
    def test_fix_baseline_grandfathers_findings(self, tmp_path):
        files = {"m.py": "f(ct=1e-12)\n"}
        fixed = lint(tmp_path, files, fix_baseline=True)
        assert fixed.exit_code == 0
        entries = json.loads((tmp_path / "baseline.json").read_text())
        assert any(e["rule"] == "UNI001" for e in entries["findings"])

        replay = run_lint(root=tmp_path, config=MINI)
        assert replay.exit_code == 0
        (finding,) = with_rule(replay, "UNI001", include_baselined=True)
        assert finding.baselined

    def test_stale_baseline_entry_is_noted(self, tmp_path):
        files = {"m.py": "f(ct=1e-12)\n"}
        lint(tmp_path, files, fix_baseline=True)
        (tmp_path / "m.py").write_text("f(ct=1 * PF)\n")
        result = run_lint(root=tmp_path, config=MINI)
        assert result.exit_code == 0
        assert any(
            "stale baseline" in f.message
            for f in with_rule(result, META_RULE_ID)
        )

    def test_unbaselined_finding_fails(self, tmp_path):
        files = {"m.py": "f(ct=1e-12)\n"}
        lint(tmp_path, files, fix_baseline=True)
        (tmp_path / "m.py").write_text("f(ct=1e-12)\nf(cl=3e-13)\n")
        result = run_lint(root=tmp_path, config=MINI)
        assert result.exit_code == 1
        assert len(with_rule(result, "UNI001")) == 1  # only the new one


class TestFingerprintGuard:
    @pytest.fixture
    def package(self, tmp_path):
        write_tree(
            tmp_path, {"kern.py": KERNEL_MODULE, "version.py": VERSION_MODULE}
        )
        result = run_lint(root=tmp_path, config=MINI, fix_baseline=True)
        assert result.exit_code == 0
        return tmp_path

    def test_missing_manifest_is_an_error(self, tmp_path):
        result = lint(
            tmp_path,
            {"kern.py": KERNEL_MODULE, "version.py": VERSION_MODULE},
        )
        assert any(
            "manifest is missing" in f.message
            for f in with_rule(result, "NUM003")
        )
        assert result.exit_code == 1

    def test_clean_after_fix_baseline(self, package):
        result = run_lint(root=package, config=MINI)
        assert result.exit_code == 0

    def test_body_edit_without_bump_fails(self, package):
        kern = package / "kern.py"
        kern.write_text(kern.read_text().replace("1.48", "1.50"))
        result = run_lint(root=package, config=MINI)
        (finding,) = with_rule(result, "NUM001")
        assert "SIMULATOR_VERSION" in finding.message
        assert "cache" in finding.message
        assert result.exit_code == 1

    def test_docstring_only_edit_is_clean(self, package):
        kern = package / "kern.py"
        kern.write_text(
            kern.read_text().replace("Delay in seconds.", "Better doc.")
        )
        assert run_lint(root=package, config=MINI).exit_code == 0

    def test_comment_and_formatting_edit_is_clean(self, package):
        kern = package / "kern.py"
        kern.write_text(kern.read_text() + "\n# a trailing comment\n")
        assert run_lint(root=package, config=MINI).exit_code == 0

    def test_bump_with_body_edit_is_clean_pending_refresh(self, package):
        (package / "kern.py").write_text(
            (package / "kern.py").read_text().replace("1.48", "1.50")
        )
        (package / "version.py").write_text(
            VERSION_MODULE.replace("= 1", "= 2")
        )
        result = run_lint(root=package, config=MINI)
        assert result.exit_code == 0
        assert any(
            "--fix-baseline" in f.message for f in with_rule(result, "NUM004")
        )

        refreshed = run_lint(root=package, config=MINI, fix_baseline=True)
        assert refreshed.exit_code == 0
        assert with_rule(refreshed, "NUM004") == []

    def test_bump_without_change_fails(self, package):
        (package / "version.py").write_text(
            VERSION_MODULE.replace("= 1", "= 2")
        )
        result = run_lint(root=package, config=MINI)
        assert len(with_rule(result, "NUM002")) == 1
        assert result.exit_code == 1

    def test_new_glob_matched_kernel_must_be_fingerprinted(self, package):
        write_tree(package, {"tline_new.py": KERNEL_MODULE})
        result = run_lint(root=package, config=MINI)
        assert any(
            "tline_new.py" in f.message for f in with_rule(result, "NUM003")
        )
        assert run_lint(
            root=package, config=MINI, fix_baseline=True
        ).exit_code == 0


class TestNormalizedFingerprint:
    def test_stable_under_doc_and_format_edits(self):
        a = "def f(x):\n    '''Doc.'''\n    return x + 1\n"
        b = "# comment\ndef f(x):\n    '''Other doc.'''\n    return x + 1\n"
        assert normalized_fingerprint(a) == normalized_fingerprint(b)

    def test_stable_under_all_and_version_edits(self):
        a = "__all__ = ['f']\nSIMULATOR_VERSION = 1\nx = 2\n"
        b = "__all__ = ['f', 'g']\nSIMULATOR_VERSION = 7\nx = 2\n"
        assert normalized_fingerprint(a) == normalized_fingerprint(b)

    def test_changed_by_expression_edit(self):
        a = "def f(x):\n    return x + 1\n"
        b = "def f(x):\n    return x + 2\n"
        assert normalized_fingerprint(a) != normalized_fingerprint(b)


class TestJsonOutput:
    def test_schema(self, tmp_path):
        result = lint(tmp_path, {"m.py": "f(ct=1e-12)\n"})
        doc = json.loads(json.dumps(result.as_dict()))
        assert doc["schema"] == 1
        assert doc["generated_by"] == "repro.lint"
        assert doc["clean"] is False
        for key in ("error", "warning", "note", "baselined", "suppressed"):
            assert key in doc["counts"]
        entry = [f for f in doc["findings"] if f["rule"] == "UNI001"][0]
        assert set(entry) == {
            "rule", "severity", "path", "line", "message", "baselined",
        }


class TestRepositoryIsClean:
    """The acceptance criteria, asserted against the real tree."""

    def test_repo_lints_clean(self):
        result = run_lint()
        assert result.exit_code == 0, result.render_text()

    def test_cli_json_on_repo(self, capsys):
        code = repro_main(["lint", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["clean"] is True

    def test_cli_text_on_repo(self, capsys):
        code = repro_main(["lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_kernel_mutation_trips_guard(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(default_package_root(), copy)
        delay = copy / "core" / "delay.py"
        delay.write_text(delay.read_text().replace("1.48", "1.50"))
        result = run_lint(root=copy)
        assert result.exit_code == 1
        findings = with_rule(result, "NUM001")
        assert any("core/delay.py" in f.message for f in findings)


class TestManifestDriftGuard:
    """New kernels and new cache consumers cannot escape the guard."""

    @pytest.fixture(scope="class")
    def manifest(self):
        root = default_package_root()
        path = root / DEFAULT_CONFIG.manifest_relpath
        return json.loads(path.read_text())

    def test_every_manifest_module_exists(self, manifest):
        root = default_package_root()
        for relpath in manifest["fingerprints"]:
            assert (root / relpath).is_file(), relpath

    def test_manifest_matches_configured_kernels(self, manifest):
        from repro.lint.engine import Project

        project = Project(default_package_root(), DEFAULT_CONFIG)
        assert set(manifest["fingerprints"]) == set(
            project.glob(DEFAULT_CONFIG.kernel_modules)
        )

    def test_version_importers_are_covered(self, manifest):
        """Any module touching the version sentinels is either
        fingerprinted or an allowed cache consumer."""
        import ast

        root = default_package_root()
        sentinels = {v for _, _, v in DEFAULT_CONFIG.version_sources}
        defining = {p for _, p, _ in DEFAULT_CONFIG.version_sources}
        allowed = (
            set(manifest["fingerprints"])
            | set(DEFAULT_CONFIG.cache_consumers)
            | defining
        )
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel.startswith("lint/"):
                continue  # the checker itself names the sentinels
            tree = ast.parse(path.read_text())
            uses = any(
                isinstance(node, ast.ImportFrom)
                and any((a.asname or a.name) in sentinels for a in node.names)
                for node in ast.walk(tree)
            )
            if uses:
                assert rel in allowed, (
                    f"{rel} imports a cache-key version sentinel but is "
                    "neither fingerprinted nor a declared cache consumer"
                )

    def test_versions_in_manifest_match_source(self, manifest):
        from repro.core.simulate import SIMULATOR_VERSION
        from repro.sweep.kernels import KERNEL_VERSION

        assert manifest["versions"] == {
            "simulator_version": SIMULATOR_VERSION,
            "kernel_version": KERNEL_VERSION,
        }


class TestUnitDimensionTable:
    def test_every_mapped_name_exists_in_units(self):
        for name in UNIT_DIMENSIONS:
            assert hasattr(repro.units, name), name

    def test_every_dimensioned_constant_is_mapped(self):
        multipliers = {
            "ATTO", "FEMTO", "PICO", "NANO", "MICRO", "MILLI", "UNIT",
            "KILO", "MEGA", "GIGA", "TERA",
        }
        for name in repro.units.__all__:
            if name.isupper() and name not in multipliers:
                assert name in UNIT_DIMENSIONS, name


class TestDocsCatalogue:
    def test_docs_page_mentions_every_rule(self):
        from repro.lint import rule_catalogue

        page = (
            pathlib.Path(__file__).parent.parent
            / "docs"
            / "static-analysis.md"
        ).read_text()
        for rule_id, _, _ in rule_catalogue():
            assert rule_id in page, f"docs/static-analysis.md misses {rule_id}"
        for extra in ("NUM002", "NUM003", "NUM004", "LNT001", "LNT002"):
            assert extra in page
