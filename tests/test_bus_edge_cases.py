"""Degenerate :class:`~repro.bus.spec.BusSpec` edge cases.

Exercises the pathological bus layouts -- a single-line "bus", an
all-``quiet`` pattern, and a signal line whose only neighbors are
grounded shields -- through both the scalar (concrete netlist) path and
the new batched template path, pinning the two against each other.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bus.builder import build_bus_circuit, build_bus_template
from repro.bus.spec import BusSpec
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.transient import simulate_transient, simulate_transient_batch

TOL = 1e-12
LINE = dict(rt=800.0, lt=8e-7, ct=1.2e-12, rtr=120.0, cl=1.5e-13)
T_STOP, DT = 2.5e-9, 2.5e-11


def _single_line_spec(n_segments=12, **overrides) -> BusSpec:
    kw = dict(
        n_lines=1,
        rt=LINE["rt"],
        lt=LINE["lt"],
        ct=LINE["ct"],
        cct=4e-13,  # no partner to couple to; must be inert
        km=0.5,
        rtr=LINE["rtr"],
        cl=LINE["cl"],
        n_segments=n_segments,
    )
    kw.update(overrides)
    return BusSpec(**kw)


class TestSingleLineBus:
    def test_matches_plain_ladder(self):
        """One line, no neighbors: the bus must reduce to the PI ladder."""
        spec = _single_line_spec()
        bus = simulate_transient(
            build_bus_circuit(spec, "rise"), t_stop=T_STOP, dt=DT
        )
        ladder_spec = LadderSpec(**LINE, n_segments=spec.n_segments)
        ladder = simulate_transient(
            build_ladder_circuit(ladder_spec), t_stop=T_STOP, dt=DT
        )
        v_bus = bus.voltage(spec.output_node(0)).values
        v_ladder = ladder.voltage(ladder_spec.output_node).values
        assert np.max(np.abs(v_bus - v_ladder)) <= 1e-9

    def test_batch_path_matches_scalar(self):
        spec = _single_line_spec()
        template = build_bus_template(spec, "rise")
        # A lone track has no coupling pairs, so no "cct" slot exists.
        assert "cct" not in template.param_names
        points = [{"rt": spec.rt[0] * f} for f in (0.6, 1.0, 1.7)]
        batch = simulate_transient_batch(
            template, points, t_stop=T_STOP, dt=DT, record=[spec.output_node(0)]
        )
        for j, point in enumerate(points):
            concrete = replace(spec, rt=point["rt"])
            ref = simulate_transient(
                build_bus_circuit(concrete, "rise"), t_stop=T_STOP, dt=DT
            )
            assert (
                np.max(
                    np.abs(
                        batch.voltage(spec.output_node(0))[j]
                        - ref.voltage(spec.output_node(0)).values
                    )
                )
                <= TOL
            )


class TestAllQuietPattern:
    def test_scalar_stays_at_zero(self):
        spec = _single_line_spec(n_segments=6, cl=0.0, n_lines=3)
        result = simulate_transient(
            build_bus_circuit(spec, "quiet"), t_stop=T_STOP, dt=DT
        )
        for line in range(spec.n_lines):
            v = result.voltage(spec.output_node(line)).values
            assert np.max(np.abs(v)) <= 1e-12

    def test_batch_stays_at_zero_and_matches(self):
        spec = _single_line_spec(n_segments=6, n_lines=3)
        template = build_bus_template(spec, "quiet")
        points = [{"cct": 0.0}, {"cct": 4e-13}]
        batch = simulate_transient_batch(
            template,
            points,
            t_stop=T_STOP,
            dt=DT,
            record=[spec.output_node(line) for line in range(spec.n_lines)],
        )
        assert np.max(np.abs(batch.states)) <= 1e-12
        for j, point in enumerate(points):
            concrete = replace(spec, cct=point["cct"])
            ref = simulate_transient(
                build_bus_circuit(concrete, "quiet"), t_stop=T_STOP, dt=DT
            )
            for line in range(spec.n_lines):
                out = spec.output_node(line)
                assert (
                    np.max(np.abs(batch.voltage(out)[j] - ref.voltage(out).values))
                    <= TOL
                )


class TestShieldOnlyNeighbors:
    """One signal line walled in by grounded shields on both sides."""

    def _spec(self, **overrides) -> BusSpec:
        kw = dict(
            n_lines=1,
            rt=LINE["rt"],
            lt=LINE["lt"],
            ct=LINE["ct"],
            cct=5e-13,
            km=0.45,
            rtr=LINE["rtr"],
            cl=LINE["cl"],
            n_segments=8,
            shields=(0, 2),  # signal sits in slot 1
        )
        kw.update(overrides)
        return BusSpec(**kw)

    def test_layout(self):
        spec = self._spec()
        assert spec.n_physical == 3
        assert spec.signal_slots == (1,)
        assert spec.slot_of_line(0) == 1

    def test_scalar_simulates_and_shield_damps_nothing_weird(self):
        spec = self._spec()
        result = simulate_transient(
            build_bus_circuit(spec, "rise"), t_stop=T_STOP, dt=DT
        )
        v = result.voltage(spec.output_node(0)).values
        assert 0.9 <= v[-1] <= 1.1  # settles to the step
        assert np.max(np.abs(v)) < 2.5  # no runaway ringing

    def test_batch_path_matches_scalar(self):
        spec = self._spec()
        template = build_bus_template(spec, "rise")
        # Shields follow the line parameters, so the template still
        # carries all six slots (coupling to the shields exists).
        assert set(template.param_names) == {"rt", "lt", "ct", "cct", "rtr", "cl"}
        points = [
            {"cct": 0.0, "cl": 0.0},
            {"cct": 5e-13, "cl": LINE["cl"]},
            {"cct": 9e-13, "cl": 3e-13},
        ]
        out = spec.output_node(0)
        batch = simulate_transient_batch(
            template, points, t_stop=T_STOP, dt=DT, record=[out]
        )
        for j, point in enumerate(points):
            concrete = replace(spec, **point)
            ref = simulate_transient(
                build_bus_circuit(concrete, "rise"), t_stop=T_STOP, dt=DT
            )
            assert (
                np.max(np.abs(batch.voltage(out)[j] - ref.voltage(out).values))
                <= TOL
            )

    def test_pinned_shield_rlc_stays_concrete(self):
        spec = self._spec(shield_rlc=(500.0, 5e-7, 8e-13))
        template = build_bus_template(spec, "rise")
        batch = simulate_transient_batch(
            template,
            [{"rt": 400.0}, {"rt": 1200.0}],
            t_stop=T_STOP,
            dt=DT,
            record=[spec.output_node(0)],
        )
        for j, rt in enumerate((400.0, 1200.0)):
            concrete = replace(spec, rt=rt)
            ref = simulate_transient(
                build_bus_circuit(concrete, "rise"), t_stop=T_STOP, dt=DT
            )
            out = spec.output_node(0)
            assert (
                np.max(np.abs(batch.voltage(out)[j] - ref.voltage(out).values))
                <= TOL
            )
