"""Tests for repro.spice.ac: frequency sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.ac import ac_sweep
from repro.spice.ladder import LadderSpec, build_ladder_circuit, build_ladder_state_space
from repro.spice.netlist import Circuit, Step


def rc_filter(r=1000.0, c=1e-12) -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", "0", c)
    return ckt


class TestAcSweep:
    def test_rc_pole(self):
        r, c = 1000.0, 1e-12
        omegas = np.array([0.0, 1.0 / (r * c), 10.0 / (r * c)])
        result = ac_sweep(rc_filter(r, c), omegas)
        h = result.transfer("out", "in")
        expected = 1.0 / (1.0 + 1j * omegas * r * c)
        assert np.allclose(h, expected)

    def test_input_node_unity(self):
        result = ac_sweep(rc_filter(), [1e9])
        assert np.allclose(result.voltage("in"), 1.0)

    def test_ground_is_zero(self):
        result = ac_sweep(rc_filter(), [1e9])
        assert np.allclose(result.voltage("0"), 0.0)

    def test_named_source_required_when_ambiguous(self):
        ckt = rc_filter()
        ckt.add_voltage_source("vbias", "b", "0", 1.0)
        ckt.add_resistor("rb", "b", "out", 1e6)
        with pytest.raises(NetlistError, match="input_source"):
            ac_sweep(ckt, [1e9])
        # Works when named.
        result = ac_sweep(ckt, [1e9], input_source="vin")
        assert result.states.shape[0] == 1

    def test_unknown_source(self):
        with pytest.raises(NetlistError, match="no voltage source"):
            ac_sweep(rc_filter(), [1e9], input_source="vx")

    def test_unknown_node_lookup(self):
        result = ac_sweep(rc_filter(), [1e9])
        with pytest.raises(NetlistError, match="unknown node"):
            result.voltage("zz")


class TestLadderCrossValidation:
    def test_ac_matches_statespace_transfer(self):
        """The MNA AC sweep of a ladder equals its state-space transfer."""
        spec = LadderSpec(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13,
                          n_segments=10, topology="PI")
        model = build_ladder_state_space(spec)
        omegas = np.array([1e7, 1e8, 1e9, 5e9])
        ac = ac_sweep(build_ladder_circuit(spec), omegas)
        h_ac = ac.transfer(spec.output_node, "in")
        h_ss = model.transfer_at(1j * omegas)[:, 0, 0]
        assert np.allclose(h_ac, h_ss, rtol=1e-10)

    def test_ladder_ac_converges_to_distributed(self):
        """Lumped frequency response approaches the exact line's."""
        from repro.tline.transfer import line_transfer_function

        kw = dict(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        exact = line_transfer_function(**kw)
        omegas = np.array([1e8, 5e8, 1e9])
        errors = []
        for n in (8, 64):
            spec = LadderSpec(**kw, n_segments=n, topology="PI")
            ac = ac_sweep(build_ladder_circuit(spec), omegas)
            h = ac.transfer(spec.output_node, "in")
            errors.append(np.max(np.abs(h - exact(1j * omegas))))
        assert errors[1] < errors[0]
        assert errors[1] < 5e-3
