"""Tests for the repro.analysis subpackage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import compare_designs
from repro.analysis.length_dependence import (
    delay_versus_length,
    fitted_length_exponent,
    rc_lc_crossover_length,
)
from repro.analysis.merit import inductance_length_window, inductance_matters
from repro.analysis.scaling_study import scaling_table
from repro.analysis.sensitivity import delay_elasticities
from repro.core.canonical import DriverLineLoad
from repro.errors import ParameterError


class TestLengthDependence:
    R, L, C = 2000.0, 3e-7, 1.8e-10  # ohm/m, H/m, F/m

    def test_pure_rc_exponent_is_two(self):
        lengths = np.geomspace(5e-3, 5e-2, 8)
        delays = delay_versus_length(self.R, 1e-20, self.C, lengths)
        assert fitted_length_exponent(lengths, delays) == pytest.approx(2.0, abs=0.02)

    def test_lossless_exponent_is_one(self):
        lengths = np.geomspace(1e-3, 1e-2, 8)
        delays = delay_versus_length(1e-9, self.L, self.C, lengths)
        assert fitted_length_exponent(lengths, delays) == pytest.approx(1.0, abs=0.02)

    def test_real_wire_transitions(self):
        """Short wires linear (flight), long wires quadratic-ward."""
        crossover = rc_lc_crossover_length(self.R, self.L, self.C)
        short = np.geomspace(crossover / 30, crossover / 10, 5)
        long = np.geomspace(10 * crossover, 50 * crossover, 5)
        exp_short = fitted_length_exponent(
            short, delay_versus_length(self.R, self.L, self.C, short)
        )
        exp_long = fitted_length_exponent(
            long, delay_versus_length(self.R, self.L, self.C, long)
        )
        assert exp_short < 1.2
        assert exp_long > 1.8

    def test_crossover_formula(self):
        got = rc_lc_crossover_length(self.R, self.L, self.C)
        assert got == pytest.approx(
            np.sqrt(self.L / self.C) / (0.37 * self.R), rel=1e-12
        )

    def test_custom_delay_function(self):
        lengths = np.array([1e-3, 2e-3])
        delays = delay_versus_length(
            self.R, self.L, self.C, lengths,
            delay_function=lambda line: line.rt,  # proxy: Rt grows linearly
        )
        assert delays[1] == pytest.approx(2 * delays[0])

    def test_validation(self):
        with pytest.raises(ParameterError):
            delay_versus_length(self.R, self.L, self.C, [0.0])
        with pytest.raises(ParameterError):
            fitted_length_exponent([1.0], [1.0])


class TestMerit:
    R, L, C = 2000.0, 3e-7, 1.8e-10

    def test_window_bounds(self):
        window = inductance_length_window(self.R, self.L, self.C, 5e-11)
        assert window.lower == pytest.approx(
            5e-11 / (2 * np.sqrt(self.L * self.C))
        )
        assert window.upper == pytest.approx(
            (2.0 / self.R) * np.sqrt(self.L / self.C)
        )
        assert window.exists

    def test_window_closes_for_slow_edges(self):
        window = inductance_length_window(self.R, self.L, self.C, 1e-8)
        assert not window.exists
        assert not window.contains(1e-2)

    def test_contains(self):
        window = inductance_length_window(self.R, self.L, self.C, 5e-11)
        mid = 0.5 * (window.lower + window.upper)
        assert window.contains(mid)
        assert not window.contains(window.upper * 2)

    def test_inductance_matters(self):
        assert inductance_matters(self.R, self.L, self.C, 1e-2, 5e-11)
        assert not inductance_matters(self.R, self.L, self.C, 1e-4, 1e-8)


class TestSensitivity:
    def test_rc_regime_elasticities(self):
        """Deep RC: delay ~ Rt*Ct, so elasticities (1, 0, 1)."""
        line = DriverLineLoad(rt=5000.0, lt=1e-13, ct=5e-12)
        e = delay_elasticities(line)
        assert e["rt"] == pytest.approx(1.0, abs=0.02)
        assert e["ct"] == pytest.approx(1.0, abs=0.02)
        assert abs(e["lt"]) < 0.02
        assert e["rtr"] == 0.0 and e["cl"] == 0.0

    def test_lc_regime_elasticities(self):
        """Lossless: delay ~ sqrt(Lt*Ct), elasticities (0, 1/2, 1/2)."""
        line = DriverLineLoad(rt=1e-3, lt=1e-9, ct=1e-12)
        e = delay_elasticities(line)
        assert e["lt"] == pytest.approx(0.5, abs=0.02)
        assert e["ct"] == pytest.approx(0.5, abs=0.02)
        assert abs(e["rt"]) < 0.02

    def test_homogeneity_sum(self):
        """Sum of elasticities: 2 in RC land, 1 in LC land."""
        rc = DriverLineLoad(rt=5000.0, lt=1e-13, ct=5e-12)
        lc = DriverLineLoad(rt=1e-3, lt=1e-9, ct=1e-12)
        assert sum(delay_elasticities(rc).values()) == pytest.approx(2.0, abs=0.05)
        assert sum(delay_elasticities(lc).values()) == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        line = DriverLineLoad(rt=100.0, lt=1e-9, ct=1e-12)
        with pytest.raises(ParameterError):
            delay_elasticities(line, relative_step=0.5)


class TestScalingTable:
    def test_rows_for_all_nodes(self):
        rows = scaling_table()
        assert len(rows) == 6

    def test_penalties_grow_on_copper_nodes(self):
        rows = [r for r in scaling_table() if r.node != "350nm"]
        delay_pcts = [r.delay_increase_percent for r in rows]
        area_pcts = [r.area_increase_percent for r in rows]
        assert all(b >= a for a, b in zip(delay_pcts, delay_pcts[1:]))
        assert all(b > a for a, b in zip(area_pcts, area_pcts[1:]))


class TestComparison:
    def test_scorecard_model_only(self, clock_spine, min_buffer):
        results = compare_designs(clock_spine, min_buffer, simulate=False)
        labels = [r.label for r in results]
        assert labels == ["rc-bakoglu", "rlc-paper", "rlc-numerical"]
        by_label = {r.label: r for r in results}
        # Model objective: our numerical optimum is the best of the three.
        assert (
            by_label["rlc-numerical"].model_delay
            <= by_label["rc-bakoglu"].model_delay
        )
        assert by_label["rc-bakoglu"].area > by_label["rlc-paper"].area

    def test_simulated_ordering(self, clock_spine, min_buffer):
        """Ground truth at T=5: inductance-aware designs beat Bakoglu."""
        results = compare_designs(
            clock_spine, min_buffer, simulate=True, n_segments=50
        )
        by_label = {r.label: r for r in results}
        rc = by_label["rc-bakoglu"]
        assert by_label["rlc-numerical"].simulated_delay < rc.simulated_delay
        assert by_label["rlc-paper"].simulated_delay < rc.simulated_delay
        # Positive penalty percentages.
        assert rc.delay_vs(by_label["rlc-numerical"]) > 0
        assert rc.area_vs(by_label["rlc-paper"]) > 100.0  # paper: 435% at T=5
