"""Tests for repro.errors."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            errors.ParameterError,
            errors.ConvergenceError,
            errors.SimulationError,
            errors.NetlistError,
            errors.AnalysisError,
        ):
            assert issubclass(exc_type, errors.ReproError)

    def test_parameter_error_is_value_error(self):
        assert issubclass(errors.ParameterError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(errors.SimulationError, RuntimeError)

    def test_netlist_error_is_value_error(self):
        assert issubclass(errors.NetlistError, ValueError)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert errors.require_positive("x", 2.5) == 2.5

    def test_returns_float(self):
        result = errors.require_positive("x", 3)
        assert isinstance(result, float)

    def test_rejects_zero(self):
        with pytest.raises(errors.ParameterError, match="x must be > 0"):
            errors.require_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(errors.ParameterError):
            errors.require_positive("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(errors.ParameterError, match="finite"):
            errors.require_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(errors.ParameterError, match="finite"):
            errors.require_positive("x", float("inf"))

    def test_rejects_bool(self):
        with pytest.raises(errors.ParameterError, match="real number"):
            errors.require_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(errors.ParameterError, match="real number"):
            errors.require_positive("x", "5")


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert errors.require_nonnegative("x", 0.0) == 0.0

    def test_accepts_positive(self):
        assert errors.require_nonnegative("x", 1.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(errors.ParameterError, match=">= 0"):
            errors.require_nonnegative("x", -1e-30)

    def test_error_message_includes_name(self):
        with pytest.raises(errors.ParameterError, match="inductance"):
            errors.require_nonnegative("inductance", -1.0)
