"""Tests for the observability layer (repro.obs) and its call sites."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.__main__ import main
from repro.spice.backend import BackendSelection, resolve_backend
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.mna import build_mna
from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.runner import SweepRunner


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends disabled with empty telemetry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _sweep(values=(100.0, 500.0, 2000.0)):
    grid = ParameterGrid(Axis("rt", values), Axis("lt", [1e-9, 1e-7]))
    return Sweep(
        "propagation_delay",
        grid,
        fixed={"ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
    )


class TestSpanTracing:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", n=3) is obs.NOOP_SPAN
        with obs.span("outer") as sp:
            assert sp is obs.NOOP_SPAN
            sp.set(key="value")  # silently ignored
        assert obs.trace_roots() == []

    def test_spans_nest_through_the_context(self):
        obs.enable()
        with obs.span("outer", kind="root") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        assert obs.current_span() is None

        roots = obs.trace_roots()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert roots[0].attrs == {"kind": "root"}
        assert roots[0].end_ns is not None
        assert roots[0].duration_ns >= roots[0].children[0].duration_ns

    def test_span_records_exception_type(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (root,) = obs.trace_roots()
        assert root.attrs["error"] == "ValueError"
        assert root.end_ns is not None  # closed despite the raise

    def test_set_attaches_attributes_late(self):
        obs.enable()
        with obs.span("work") as sp:
            sp.set(points=7, backend="dense")
        (root,) = obs.trace_roots()
        assert root.attrs == {"points": 7, "backend": "dense"}

    def test_clear_trace_drops_roots(self):
        obs.enable()
        with obs.span("one"):
            pass
        obs.clear_trace()
        assert obs.trace_roots() == []

    def test_render_trace_tree_shape(self):
        obs.enable()
        with obs.span("parent", n=2):
            with obs.span("child.a"):
                pass
            with obs.span("child.b"):
                pass
        text = obs.render_trace()
        lines = text.splitlines()
        assert lines[0].startswith("parent")
        assert "n=2" in lines[0]
        assert lines[1].startswith("+- child.a")
        assert lines[2].startswith("`- child.b")

    def test_render_trace_empty(self):
        assert obs.render_trace() == "(no spans recorded)"


class TestMetricsRegistry:
    def test_disabled_helpers_record_nothing(self):
        obs.inc("x.count")
        obs.set_gauge("x.level", 1.0)
        obs.observe("x.seconds", 0.5)
        assert obs.REGISTRY.counter("x.count") == 0.0
        assert obs.REGISTRY.gauge("x.level") is None
        assert obs.REGISTRY.histogram("x.seconds") is None

    def test_labeled_series_are_distinct(self):
        obs.enable()
        obs.inc("solves", backend="dense")
        obs.inc("solves", 2, backend="banded")
        assert obs.REGISTRY.counter("solves", backend="dense") == 1.0
        assert obs.REGISTRY.counter("solves", backend="banded") == 2.0
        assert obs.REGISTRY.counter("solves") == 0.0  # unlabeled series
        assert obs.REGISTRY.counter_total("solves") == 3.0

    def test_histogram_buckets_and_stats(self):
        obs.enable()
        for v in (1.5, 3.0, 40.0):
            obs.observe("widths", v, buckets=obs.COUNT_BUCKETS)
        hist = obs.REGISTRY.histogram("widths")
        assert hist.count == 3
        assert hist.min == 1.5
        assert hist.max == 40.0
        assert hist.mean == pytest.approx((1.5 + 3.0 + 40.0) / 3)
        summary = hist.as_dict()
        tallied = {bound: n for bound, n in summary["buckets"] if n}
        assert tallied == {2: 1, 5: 1, 50: 1}
        assert summary["overflow"] == 0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            obs.Histogram((1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            obs.Histogram(())

    def test_snapshot_and_reset(self):
        obs.enable()
        obs.inc("c", 2, kind="a")
        obs.set_gauge("g", 0.5)
        obs.observe("h", 1e-3)
        snap = obs.REGISTRY.snapshot()
        assert snap["counters"]["c"] == [{"labels": {"kind": "a"}, "value": 2.0}]
        assert snap["gauges"]["g"] == [{"labels": {}, "value": 0.5}]
        assert snap["histograms"]["h"][0]["count"] == 1
        obs.reset()
        empty = obs.REGISTRY.snapshot()
        assert empty == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_capture_restores_disabled_state(self):
        with obs.capture():
            assert obs.enabled()
            obs.inc("scoped")
        assert not obs.enabled()
        assert obs.REGISTRY.counter("scoped") == 1.0  # kept for inspection

    def test_metrics_payload_round_trips_json(self):
        obs.enable()
        obs.inc("events", backend="dense")
        obs.observe("seconds", 2e-3)
        payload = obs.metrics_payload(extra={"context": "unit-test"})
        encoded = json.loads(json.dumps(payload))
        assert encoded["schema"] == obs.METRICS_SCHEMA_VERSION
        assert encoded["context"] == "unit-test"
        names = [b["name"] for b in encoded["benchmarks"]]
        assert "seconds" in names
        assert "repro.obs.counters" in names


class TestBackendSelectionRecording:
    def _matrix(self, n_segments):
        spec = LadderSpec(
            rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13,
            n_segments=n_segments,
        )
        return build_mna(build_ladder_circuit(spec)).g_coo

    def test_small_system_reason_on_repr(self):
        backend = resolve_backend("auto", self._matrix(10))
        assert backend.name == "dense"
        assert backend.selection.rule == "small-system"
        assert "dense cutoff" in repr(backend)

    def test_narrow_band_reason_on_repr(self):
        backend = resolve_backend("auto", self._matrix(300))
        assert backend.name == "banded"
        assert backend.selection.rule == "narrow-band"
        assert backend.selection.band_width is not None
        assert "rcm band" in repr(backend)

    def test_selection_lands_in_registry(self):
        obs.enable()
        backend = resolve_backend("auto", self._matrix(300))
        assert (
            obs.REGISTRY.counter(
                "spice.backend.auto_selected",
                backend=backend.name,
                rule=backend.selection.rule,
            )
            == 1.0
        )

    def test_named_backends_have_no_selection(self):
        backend = resolve_backend("dense")
        assert backend.selection is None
        assert repr(backend) == "DenseLuBackend()"

    def test_selection_reason_text(self):
        sel = BackendSelection(
            backend="banded", rule="narrow-band", size=400, nnz=1200,
            band_width=3, band_limit=50,
        )
        assert sel.reason() == "n=400, rcm band 3 <= limit 50"


class TestSweepCacheAccounting:
    def test_miss_then_memory_hit_deltas(self):
        obs.enable()
        runner = SweepRunner()
        runner.run(_sweep())
        reg = obs.REGISTRY
        assert reg.counter("sweep.cache.misses") == 1.0
        assert reg.counter("sweep.cache.memory_hits") == 0.0
        assert reg.counter("sweep.evaluations", kind="kernel") == 6.0

        runner.run(_sweep())
        assert reg.counter("sweep.cache.misses") == 1.0
        assert reg.counter("sweep.cache.memory_hits") == 1.0
        assert reg.counter("sweep.evaluations", kind="kernel") == 6.0
        assert reg.gauge("sweep.cache.hit_rate") == 0.5

    def test_disk_hit_delta(self, tmp_path):
        obs.enable()
        SweepRunner(cache_dir=tmp_path).run(_sweep())
        obs.reset()
        obs.enable()

        replay = SweepRunner(cache_dir=tmp_path)
        result = replay.run(_sweep())
        assert result.cache_hit == "disk"
        reg = obs.REGISTRY
        assert reg.counter("sweep.cache.disk_hits") == 1.0
        assert reg.counter("sweep.cache.misses") == 0.0
        assert reg.counter_total("sweep.evaluations") == 0.0

    def test_disk_invalid_reevaluates_and_counts(self, tmp_path):
        obs.enable()
        SweepRunner(cache_dir=tmp_path).run(_sweep())
        (cache_file,) = tmp_path.glob("sweep-*.json")
        payload = json.loads(cache_file.read_text())
        payload["outputs"]["delay_s"] = payload["outputs"]["delay_s"][:-1]
        cache_file.write_text(json.dumps(payload))
        obs.reset()
        obs.enable()

        replay = SweepRunner(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="ignoring sweep cache"):
            result = replay.run(_sweep())
        assert result.cache_hit is None  # fell through to evaluation
        reg = obs.REGISTRY
        assert reg.counter("sweep.cache.disk_invalid") == 1.0
        assert reg.counter("sweep.cache.misses") == 1.0
        assert reg.counter("sweep.evaluations", kind="kernel") == 6.0

    def test_runner_stats_api(self):
        runner = SweepRunner()
        runner.run(_sweep())
        runner.run(_sweep())
        stats = runner.stats.as_dict()
        assert stats["kernel_evaluations"] == 6
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["elapsed_s"] > 0.0

        line = runner.stats.summary()
        assert "6 kernel" in line
        assert "1 memory" in line
        assert "50% hit rate" in line

        runner.stats.reset()
        assert runner.stats.as_dict() == {
            "kernel_evaluations": 0,
            "simulator_evaluations": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "disk_invalid": 0,
            "misses": 0,
            "elapsed_s": 0.0,
            "hit_rate": 0.0,
        }


class TestInstrumentedSimulation:
    POINTS = [
        {"rt": 500.0, "lt": 1e-7, "ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
        {"rt": 500.0, "lt": 1e-7, "ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
        {"rt": 2000.0, "lt": 1e-7, "ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
    ]

    def test_transient_batch_counters(self):
        from repro.spice.ladder import build_ladder_template
        from repro.spice.transient import simulate_transient_batch

        template = build_ladder_template(8, "PI", loaded=True)
        obs.enable()
        simulate_transient_batch(
            template, self.POINTS, t_stop=1e-9, dt=1e-11
        )
        reg = obs.REGISTRY
        assert reg.counter("spice.transient.batch_runs") == 1.0
        assert reg.counter("spice.transient.batch_points") == 3.0
        # Two identical points share one factorization.
        assert reg.counter("spice.transient.factorizations") == 2.0
        assert reg.counter("spice.transient.shared_factorization_reuse") == 1.0
        assert reg.histogram("spice.transient.batch_width").count == 1
        (root,) = [
            s for s in obs.trace_roots() if s.name == "transient.batch"
        ]
        assert root.attrs["points"] == 3
        assert root.attrs["groups"] == 2

    def test_ac_batch_counters(self):
        from repro.spice.ladder import build_ladder_template
        from repro.spice.ac import ac_sweep_batch

        template = build_ladder_template(6, "PI", loaded=True)
        obs.enable()
        ac_sweep_batch(
            template, self.POINTS, omegas=np.array([1e8, 1e9])
        )
        reg = obs.REGISTRY
        assert reg.counter("spice.ac.batch_runs") == 1.0
        assert reg.counter("spice.ac.batch_points") == 3.0
        assert reg.counter("spice.ac.shared_sweep_reuse") == 1.0
        # 2 distinct points x 2 frequencies refactorize.
        assert (
            obs.REGISTRY.counter_total("spice.backend.refactorize") == 4.0
        )


class TestCliIntegration:
    CLI = [
        "sweep", "propagation_delay",
        "--axis", "rt=log:100:5000:5",
        "--fixed", "lt=1e-8", "--fixed", "ct=1e-12",
    ]

    def test_stats_summary_always_printed(self, capsys):
        assert main(self.CLI) == 0
        out = capsys.readouterr().out
        assert "sweep stats:" in out

    def test_trace_prints_span_tree(self, capsys):
        assert main(self.CLI + ["--trace"]) == 0
        out = capsys.readouterr().out
        assert "sweep.run" in out
        assert "quantity=propagation_delay" in out

    def test_metrics_out_writes_artifact(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(self.CLI + ["--metrics-out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == obs.METRICS_SCHEMA_VERSION
        assert payload["stats"]["misses"] == 1
        assert payload["sweep"]["quantity"] == "propagation_delay"
        counters = payload["metrics"]["counters"]
        assert "sweep.cache.misses" in counters
        assert "metrics written to" in capsys.readouterr().out

    def test_run_metrics_footer(self, capsys):
        assert main(["run", "EXP-X4", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry" in out
