"""Conformance suite for the SPICE-like netlist text frontend.

Covers the grammar golden forms (one per element/waveform/value kind),
SPICE number suffixes, comment/continuation handling, ground aliases,
union-find wire collapsing, positioned syntax errors, the
``Circuit.add(text)`` / ``to_netlist()`` surface, the on-disk fixture
corpus in ``tests/netlists/``, and the ``--netlist`` CLI entry points.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.netlist import (
    Circuit,
    Dc,
    Param,
    ParamAffine,
    PiecewiseLinear,
    Pulse,
    Sine,
    Step,
)
from repro.spice.parser import (
    NetlistSyntaxError,
    UnionFind,
    parse_netlist,
    parse_netlist_file,
    parse_spice_number,
    parse_statement,
    run_corpus,
    suggest_transient_window,
)
from repro.spice.parser import main as parser_main
from repro.spice.transient import simulate_transient

NETLIST_DIR = pathlib.Path(__file__).parent / "netlists"


# ---------------------------------------------------------------------------
# Numbers
# ---------------------------------------------------------------------------


class TestSpiceNumbers:
    @pytest.mark.parametrize(
        ("token", "expected"),
        [
            ("2.2k", 2.2 * 1e3),
            ("100meg", 100 * 1e6),
            ("1u", 1 * 1e-6),
            ("5pF", 5 * 1e-12),
            ("10kOhm", 10 * 1e3),
            ("1mil", 1 * 25.4e-6),
            (".5", 0.5),
            ("1e-12", 1e-12),
            ("-3m", -3 * 1e-3),
            ("+2n", 2 * 1e-9),
            ("4.7t", 4.7 * 1e12),
            ("2g", 2 * 1e9),
            ("1f", 1 * 1e-15),
            ("3V", 3.0),
            ("50ohm", 50.0),
            ("1Hz", 1.0),
            ("  7  ", 7.0),
        ],
    )
    def test_suffix_forms(self, token, expected):
        assert parse_spice_number(token) == expected

    @pytest.mark.parametrize(
        "token", ["abc", "1x", "5pQ", "", "1.2.3", "0x10", "1e", "{rt}"]
    )
    def test_bad_numbers_raise(self, token):
        with pytest.raises(NetlistError):
            parse_spice_number(token)

    def test_meg_beats_m(self):
        assert parse_spice_number("1meg") == 1e6
        assert parse_spice_number("1m") == 1e-3
        assert parse_spice_number("1mF") == 1e-3


# ---------------------------------------------------------------------------
# Golden element forms
# ---------------------------------------------------------------------------

GOLDEN = """\
* one statement per element kind, plain values
V1 in 0 STEP(0 1 1n 0.2n)
Vdc a 0 DC 2.5
I1 0 b 1m
R1 in mid 50
C1 mid 0 1p ic=0.25
L1 mid out 10n ic=-1m
R2 out 0 1k
Rb a b 2k
L2 b 0 1u
L3 c 0 1u
Rc c out 100
K1 L2 L3 0.6
E1 e 0 out 0 2
Re e 0 1k
G1 0 g mid 0 1m
Rg g 0 1k
H1 h 0 V1 50
Rh h 0 1k
F1 0 f Vdc 3
Rf f 0 1k
"""


def golden_circuit() -> Circuit:
    """The hand-built equivalent of the GOLDEN netlist text."""
    ckt = Circuit("")
    ckt.add_voltage_source("V1", "in", "0", Step(0.0, 1.0, 1 * 1e-9, 0.2 * 1e-9))
    ckt.add_voltage_source("Vdc", "a", "0", Dc(2.5))
    ckt.add_current_source("I1", "0", "b", Dc(1 * 1e-3))
    ckt.add_resistor("R1", "in", "mid", 50.0)
    ckt.add_capacitor("C1", "mid", "0", 1 * 1e-12, initial_voltage=0.25)
    ckt.add_inductor("L1", "mid", "out", 10 * 1e-9, initial_current=-1 * 1e-3)
    ckt.add_resistor("R2", "out", "0", 1 * 1e3)
    ckt.add_resistor("Rb", "a", "b", 2 * 1e3)
    ckt.add_inductor("L2", "b", "0", 1 * 1e-6)
    ckt.add_inductor("L3", "c", "0", 1 * 1e-6)
    ckt.add_resistor("Rc", "c", "out", 100.0)
    ckt.add_mutual_inductance("K1", "L2", "L3", 0.6)
    ckt.add_vcvs("E1", "e", "0", "out", "0", 2.0)
    ckt.add_resistor("Re", "e", "0", 1 * 1e3)
    ckt.add_vccs("G1", "0", "g", "mid", "0", 1 * 1e-3)
    ckt.add_resistor("Rg", "g", "0", 1 * 1e3)
    ckt.add_ccvs("H1", "h", "0", "V1", 50.0)
    ckt.add_resistor("Rh", "h", "0", 1 * 1e3)
    ckt.add_cccs("F1", "0", "f", "Vdc", 3.0)
    ckt.add_resistor("Rf", "f", "0", 1 * 1e3)
    return ckt


class TestGoldenElements:
    def test_every_element_kind_parses_to_the_handbuilt_circuit(self):
        parsed = parse_netlist(GOLDEN)
        expected = golden_circuit()
        assert parsed.circuit.elements == expected.elements
        assert parsed.circuit.mutual_inductances == expected.mutual_inductances
        assert parsed.circuit.node_names() == expected.node_names()

    @pytest.mark.parametrize(
        ("text", "waveform"),
        [
            ("V1 a 0 2.5", Dc(2.5)),
            ("V1 a 0 DC 2.5", Dc(2.5)),
            ("V1 a 0 STEP(1)", Step(0.0, 1.0)),
            ("V1 a 0 STEP(0 1)", Step(0.0, 1.0)),
            ("V1 a 0 STEP(0 1 1n)", Step(0.0, 1.0, 1 * 1e-9)),
            ("V1 a 0 STEP (0 1 1n 2n)", Step(0.0, 1.0, 1 * 1e-9, 2 * 1e-9)),
            (
                "V1 a 0 PULSE(0 1 0 0.1n 0.1n 5n 10n)",
                Pulse(0.0, 1.0, 0.0, 0.1 * 1e-9, 0.1 * 1e-9, 5 * 1e-9, 10 * 1e-9),
            ),
            ("V1 a 0 SIN(0 0.5 100meg)", Sine(0.0, 0.5, 100 * 1e6)),
            ("V1 a 0 SIN(0 0.5 1g 1n)", Sine(0.0, 0.5, 1 * 1e9, 1 * 1e-9)),
            (
                "V1 a 0 PWL(0 0, 1n 1, 2n 0.5)",
                PiecewiseLinear(
                    ((0.0, 0.0), (1 * 1e-9, 1.0), (2 * 1e-9, 0.5))
                ),
            ),
        ],
    )
    def test_waveform_forms(self, text, waveform):
        circuit = parse_netlist(f"{text}\nR1 a 0 1k").circuit
        assert circuit.elements[0].waveform == waveform

    @pytest.mark.parametrize(
        "text",
        [
            "V1 a 0 STEP(0 1 2 3 4)",
            "V1 a 0 PULSE(0 1)",
            "V1 a 0 SIN(0)",
            "V1 a 0 PWL(0 0 1n)",
            "V1 a 0 RAMP(0 1)",
            "V1 a 0 DC 1 2",
            "V1 a 0 one two",
        ],
    )
    def test_bad_waveforms_raise(self, text):
        with pytest.raises(NetlistError):
            parse_netlist(f"{text}\nR1 a 0 1k")


# ---------------------------------------------------------------------------
# Comments, continuations, ground aliases
# ---------------------------------------------------------------------------


class TestLexical:
    def test_comments_and_continuations(self):
        text = (
            "* full-line comment\n"
            "V1 in 0 1 ; trailing comment\n"
            "R1 in out $ dollar comment too\n"
            "+ 1k\n"
            "\n"
            "C1 out 0 1p\n"
        )
        circuit = parse_netlist(text).circuit
        expected = Circuit("")
        expected.add_voltage_source("V1", "in", "0", Dc(1.0))
        expected.add_resistor("R1", "in", "out", 1 * 1e3)
        expected.add_capacitor("C1", "out", "0", 1 * 1e-12)
        assert circuit.elements == expected.elements

    def test_semicolon_inside_group_is_not_a_comment(self):
        # _strip_comment must not cut inside (...) groups.
        circuit = parse_netlist(
            "V1 in 0 STEP(0 1) ; real comment\nR1 in 0 1k"
        ).circuit
        assert circuit.elements[0].waveform == Step(0.0, 1.0)

    def test_continuation_without_statement_raises(self):
        with pytest.raises(NetlistSyntaxError) as exc:
            parse_netlist("+ 1k\n")
        assert exc.value.line_no == 1

    @pytest.mark.parametrize("alias", ["0", "gnd", "GND", "ground"])
    def test_ground_aliases(self, alias):
        circuit = parse_netlist(f"V1 in {alias} 1\nR1 in {alias} 1k").circuit
        assert circuit.elements[0].node_neg == "0"
        assert circuit.node_names() == ["in"]

    def test_title_and_end(self):
        parsed = parse_netlist(
            ".title my circuit\nV1 a 0 1\nR1 a 0 1k\n.end\nR2 a 0 junk"
        )
        assert parsed.title == "my circuit"
        # .end stops parsing: the junk line after it is never seen.
        assert len(parsed.circuit) == 2

    def test_file_title_defaults_to_stem(self):
        parsed = parse_netlist_file(NETLIST_DIR / "rc_ladder.cir")
        assert parsed.title == "rc_ladder"
        assert parsed.path == str(NETLIST_DIR / "rc_ladder.cir")


# ---------------------------------------------------------------------------
# Parameters: .param and {...} expressions
# ---------------------------------------------------------------------------


class TestParameters:
    def test_param_slots_and_defaults(self):
        parsed = parse_netlist(
            ".param rt=100 ct=1p\n"
            "V1 in 0 STEP(0 1)\n"
            "R1 in mid {rt/2}\n"
            "R2 mid out {rt/2}\n"
            "C1 out 0 {ct/2 + 0.1*ct}\n"
            "C2 mid 0 {ct}\n"
        )
        assert parsed.is_parametric
        assert parsed.circuit.parameter_names() == ("ct", "rt")
        assert parsed.defaults == {"rt": 100.0, "ct": 1e-12}
        r1 = parsed.circuit.elements[1]
        assert isinstance(r1.value, Param)
        assert r1.value.name == "rt"
        assert r1.value.scale == 0.5
        c1 = parsed.circuit.elements[3]
        assert isinstance(c1.value, (Param, ParamAffine))

    def test_bind_uses_defaults_and_overrides(self):
        parsed = parse_netlist(
            ".param rt=100\nV1 in 0 1\nR1 in out {rt}\nR2 out 0 {rt/2}\n"
        )
        bound = parsed.bind()
        assert bound.elements[1].value == 100.0
        assert bound.elements[2].value == 50.0
        bound = parsed.bind({"rt": 500.0})
        assert bound.elements[1].value == 500.0

    def test_template_feeds_the_batch_path(self):
        parsed = parse_netlist(
            ".param rt=100\nV1 in 0 STEP(0 1)\nR1 in out {rt}\nC1 out 0 1p\n"
        )
        template = parsed.template()
        assert template.defaults == {"rt": 100.0}
        assert template.bind().elements == parsed.bind().elements

    def test_unused_param_raises(self):
        with pytest.raises(NetlistError, match="no element value"):
            parse_netlist(".param zz=1\nV1 a 0 1\nR1 a 0 1k\n")

    def test_concrete_netlist_rejects_bind_params(self):
        parsed = parse_netlist("V1 a 0 1\nR1 a 0 1k\n")
        assert not parsed.is_parametric
        assert parsed.bind() is parsed.circuit
        with pytest.raises(NetlistError, match="no parameter slots"):
            parsed.bind({"rt": 1.0})

    @pytest.mark.parametrize(
        "expr",
        [
            "{rt*ct}",  # param * param is not affine
            "{1/rt}",  # division by a param
            "{rt/0}",  # division by zero
            "{rt +}",  # dangling operator
            "{(rt}",  # unbalanced parens
            "{}",  # empty
        ],
    )
    def test_bad_expressions_raise(self, expr):
        with pytest.raises(NetlistError):
            parse_netlist(f"V1 a 0 1\nR1 a 0 {expr}\n")

    def test_affine_expression_binds_correctly(self):
        parsed = parse_netlist(
            ".param ct=2p cl=1p\n"
            "V1 a 0 STEP(0 1)\n"
            "R1 a b 1k\n"
            "C1 b 0 {ct/2 + cl}\n"
        )
        bound = parsed.bind()
        assert bound.elements[2].value == pytest.approx(2e-12, rel=1e-12)


# ---------------------------------------------------------------------------
# Wire collapsing (union-find)
# ---------------------------------------------------------------------------


class TestWireCollapse:
    def test_union_find_basics(self):
        uf = UnionFind()
        for name in "abcd":
            uf.add(name)
        uf.union("a", "b")
        uf.union("c", "d")
        assert uf.find("a") == uf.find("b")
        assert uf.find("a") != uf.find("c")
        uf.union("b", "c")
        assert len({uf.find(n) for n in "abcd"}) == 1
        assert "a" in uf and "z" not in uf

    def test_wires_collapse_to_premerged_netlist(self):
        wired = parse_netlist(
            "V1 in 0 1\nW1 in a\nR1 a b 50\nRs b c 0\nC1 c 0 1p\n"
        ).circuit
        premerged = parse_netlist(
            "V1 in 0 1\nR1 in b 50\nC1 b 0 1p\n"
        ).circuit
        assert wired.elements == premerged.elements
        assert wired.node_names() == premerged.node_names()

    def test_ground_wins_the_merge(self):
        circuit = parse_netlist(
            "V1 in 0 1\nR1 in a 50\nW1 a gnd\nR2 a b 50\nC1 b 0 1p\n"
        ).circuit
        # node 'a' was shorted to ground: R1 now terminates at '0'.
        assert circuit.elements[1].node_neg == "0"
        assert "a" not in circuit.node_names()

    def test_transitive_wire_chain(self):
        circuit = parse_netlist(
            "V1 in 0 1\nW1 a b\nW2 b c\nW3 c d\nR1 in a 50\nC1 d 0 1p\n"
        ).circuit
        assert circuit.elements[1].node_neg == "a"
        assert circuit.elements[2].node_pos == "a"

    def test_shorted_element_raises_with_position(self):
        with pytest.raises(NetlistSyntaxError, match="short-circuited"):
            parse_netlist("V1 in 0 1\nR1 in out 50\nW1 in out\nC1 out 0 1p\n")

    def test_fixture_matches_premerged(self):
        parsed = parse_netlist_file(NETLIST_DIR / "wires_short.cir")
        expected = Circuit("wires_short")
        expected.add_voltage_source("V1", "in", "0", Dc(1.0))
        expected.add_resistor("R1", "in", "b", 50.0)
        expected.add_capacitor("C1", "b", "0", 1 * 1e-12)
        assert parsed.circuit.elements == expected.elements


# ---------------------------------------------------------------------------
# Positioned errors
# ---------------------------------------------------------------------------


class TestSyntaxErrors:
    def test_unknown_element_type_position(self):
        with pytest.raises(NetlistSyntaxError) as exc:
            parse_netlist("V1 a 0 1\nQ1 a 0 5\n")
        err = exc.value
        assert "unknown element type" in str(err)
        assert err.line_no == 2
        assert err.column == 1
        assert err.line == "Q1 a 0 5"
        assert "(line 2, column 1)" in str(err)
        assert "^" in str(err)

    def test_duplicate_name_reports_both_lines(self):
        with pytest.raises(NetlistSyntaxError) as exc:
            parse_netlist("V1 a 0 1\nR1 a b 50\nR1 b 0 50\n")
        err = exc.value
        assert err.line_no == 3
        assert "first defined on line 2" in str(err)

    def test_bad_unit_suffix_position(self):
        with pytest.raises(NetlistSyntaxError) as exc:
            parse_netlist("V1 a 0 1\nR1 a 0 5qq\n")
        err = exc.value
        assert "unknown unit suffix" in str(err)
        assert err.line_no == 2
        assert err.column == 8  # the value token '5qq'

    def test_dangling_node_raises(self):
        # 'c' hangs off a capacitor only -- fine; 'float1/float2' form an
        # island with no path to ground.
        with pytest.raises(NetlistError, match="not connected to ground"):
            parse_netlist(
                "V1 a 0 1\nR1 a 0 1k\nR2 float1 float2 50\n"
            )

    def test_indented_statement_column_accounts_for_indent(self):
        with pytest.raises(NetlistSyntaxError) as exc:
            parse_netlist("V1 a 0 1\n   R1 a 0 5qq\n")
        assert exc.value.column == 11

    @pytest.mark.parametrize(
        ("text", "match"),
        [
            ("R1 a 0\n", "needs at least"),
            ("R1 a 0 50 60\n", "one value field"),
            ("C1 a 0 1p ic=0.1 ic=0.2\n", "more than one ic"),
            ("R1 a 0 1k ic=1\n", "does not take an ic"),
            ("R1 a {x} 1k\n", "expected a node name"),
            ("K1 L1 L2\n", "takes: K L1 L2 coupling"),
            ("E1 a 0 b 2\n", "takes: E n\\+"),
            ("W1 a b c\n", "exactly two nodes"),
            (".parm x=1\n", "unsupported directive"),
            (".param x\n", "expected NAME=VALUE"),
            ("V1 a 0 STEP(0 1\n", "unclosed"),
        ],
    )
    def test_malformed_statements(self, text, match):
        with pytest.raises(NetlistSyntaxError, match=match):
            parse_netlist("V1 src 0 1\n" + text)

    def test_mutual_referencing_unknown_inductor(self):
        with pytest.raises(NetlistSyntaxError, match="unknown inductor"):
            parse_netlist("V1 a 0 1\nL1 a 0 1u\nK1 L1 Lx 0.5\n")

    def test_no_ground_raises(self):
        with pytest.raises(NetlistError, match="ground"):
            parse_netlist("V1 a b 1\nR1 a b 1k\n")


# ---------------------------------------------------------------------------
# Circuit.add(text) and to_netlist()
# ---------------------------------------------------------------------------


class TestCircuitAddText:
    def test_add_string_matches_programmatic(self):
        via_text = Circuit("t")
        via_text.add("V1 in 0 STEP(0 1)")
        element = via_text.add("R1 in out 2.2k")
        via_text.add("C1 out 0 1p ic=0.5")
        expected = Circuit("t")
        expected.add_voltage_source("V1", "in", "0", Step(0.0, 1.0))
        expected.add_resistor("R1", "in", "out", 2.2 * 1e3)
        expected.add_capacitor("C1", "out", "0", 1 * 1e-12, initial_voltage=0.5)
        assert via_text.elements == expected.elements
        assert element == expected.elements[1]

    def test_add_multiline_returns_list(self):
        circuit = Circuit("t")
        added = circuit.add("V1 in 0 1\nR1 in out 1k\n+ ; continued nothing\n")
        assert isinstance(added, list) and len(added) == 2

    def test_add_mutual_by_text(self):
        circuit = Circuit("t")
        circuit.add("L1 a 0 1u")
        circuit.add("L2 b 0 1u")
        circuit.add("K1 L1 L2 0.5")
        assert circuit.mutual_inductances[0].coupling == 0.5

    def test_add_rejects_directives_wires_and_duplicates(self):
        circuit = Circuit("t")
        circuit.add("R1 a b 50")
        with pytest.raises(NetlistSyntaxError, match="directives"):
            circuit.add(".param x=1")
        with pytest.raises(NetlistSyntaxError, match="wire statements"):
            circuit.add("W1 a b")
        with pytest.raises(NetlistSyntaxError, match="wire statements"):
            circuit.add("R2 a b 0")  # zero-ohm resistor is a wire
        with pytest.raises(NetlistError, match="duplicate"):
            circuit.add("R1 b c 50")

    def test_add_k_rejects_unknown_inductor(self):
        circuit = Circuit("t")
        circuit.add("L1 a 0 1u")
        with pytest.raises(NetlistError, match="unknown inductor"):
            circuit.add("K1 L1 Lmissing 0.5")


class TestToNetlist:
    def test_round_trips_golden_circuit(self):
        original = golden_circuit()
        reparsed = parse_netlist(original.to_netlist())
        assert reparsed.circuit.elements == original.elements
        assert (
            reparsed.circuit.mutual_inductances
            == original.mutual_inductances
        )

    def test_round_trips_parametric_values(self):
        original = Circuit("parametric")
        original.add_voltage_source("V1", "in", "0", Step(0.0, 1.0))
        original.add_resistor("R1", "in", "out", Param("rt", 0.5))
        original.add_capacitor(
            "C1",
            "out",
            "0",
            ParamAffine((("ct", 0.5), ("cl", 1.0)), 0.0),
            initial_voltage=0.25,
        )
        text = original.to_netlist()
        reparsed = parse_netlist(text)
        assert reparsed.circuit.elements == original.elements
        assert reparsed.circuit.parameter_names() == ("cl", "ct", "rt")

    def test_emits_title_and_end(self):
        circuit = Circuit("hello world")
        circuit.add("V1 a 0 1")
        circuit.add("R1 a 0 1k")
        text = circuit.to_netlist()
        assert text.startswith(".title hello world\n")
        assert text.rstrip().endswith(".end")
        assert parse_netlist(text).title == "hello world"


# ---------------------------------------------------------------------------
# Fixture corpus
# ---------------------------------------------------------------------------


def _rc_ladder_equivalent() -> Circuit:
    ckt = Circuit("rc_ladder")
    ckt.add_voltage_source("V1", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("R1", "in", "n1", 1 * 1e3)
    ckt.add_resistor("R2", "n1", "n2", 1 * 1e3)
    ckt.add_capacitor("C1", "n1", "0", 1 * 1e-12)
    ckt.add_capacitor("C2", "n2", "0", 1 * 1e-12)
    return ckt


def _sources_zoo_equivalent() -> Circuit:
    ckt = Circuit("source and controlled-source zoo")
    ckt.add_voltage_source(
        "V1",
        "in",
        "0",
        Pulse(0.0, 1.0, 0.0, 0.1 * 1e-9, 0.1 * 1e-9, 5 * 1e-9, 10 * 1e-9),
    )
    ckt.add_resistor("R1", "in", "a", 100.0)
    ckt.add_inductor("L1", "a", "0", 1 * 1e-9)
    ckt.add_inductor("L2", "b", "0", 1 * 1e-9)
    ckt.add_mutual_inductance("K1", "L1", "L2", 0.5)
    ckt.add_resistor("R2", "b", "out", 100.0)
    ckt.add_capacitor("C2", "out", "0", 1 * 1e-12)
    ckt.add_voltage_source("V2", "s2", "0", Sine(0.0, 0.5, 100 * 1e6))
    ckt.add_resistor("R3", "s2", "s3", 1 * 1e3)
    ckt.add_capacitor("C3", "s3", "0", 1 * 1e-12)
    ckt.add_voltage_source(
        "V3",
        "p1",
        "0",
        PiecewiseLinear(((0.0, 0.0), (1 * 1e-9, 1.0), (2 * 1e-9, 0.5))),
    )
    ckt.add_resistor("R4", "p1", "p2", 1 * 1e3)
    ckt.add_capacitor("C4", "p2", "0", 1 * 1e-12)
    ckt.add_vcvs("E1", "e1", "0", "out", "0", 2.0)
    ckt.add_resistor("R5", "e1", "e2", 1 * 1e3)
    ckt.add_capacitor("C5", "e2", "0", 1 * 1e-12)
    ckt.add_vccs("G1", "0", "g1", "out", "0", 1 * 1e-3)
    ckt.add_resistor("R6", "g1", "0", 1 * 1e3)
    ckt.add_cccs("F1", "0", "f1", "V3", 2.0)
    ckt.add_resistor("R7", "f1", "0", 1 * 1e3)
    ckt.add_ccvs("H1", "h1", "0", "V2", 100.0)
    ckt.add_resistor("R8", "h1", "h2", 50.0)
    ckt.add_capacitor("C8", "h2", "0", 1 * 1e-12)
    return ckt


class TestFixtureCorpus:
    def test_corpus_is_nonempty(self):
        assert len(sorted(NETLIST_DIR.glob("*.cir"))) >= 4

    @pytest.mark.parametrize(
        ("fixture", "builder"),
        [
            ("rc_ladder.cir", _rc_ladder_equivalent),
            ("sources_zoo.cir", _sources_zoo_equivalent),
        ],
    )
    def test_fixture_equals_handbuilt(self, fixture, builder):
        parsed = parse_netlist_file(NETLIST_DIR / fixture)
        expected = builder()
        assert parsed.circuit.elements == expected.elements
        assert (
            parsed.circuit.mutual_inductances
            == expected.mutual_inductances
        )

    @pytest.mark.parametrize(
        "fixture", ["rc_ladder.cir", "rlc_param.cir", "sources_zoo.cir"]
    )
    def test_fixture_simulates_like_handbuilt(self, fixture):
        parsed = parse_netlist_file(NETLIST_DIR / fixture)
        circuit = parsed.bind()
        t_stop, dt = suggest_transient_window(circuit, n_samples=400)
        result = simulate_transient(circuit, t_stop, dt)
        # Re-parse the emitted netlist text and simulate that too: the
        # fixture, its text round trip, and the hand-built equivalent
        # (where one exists) must all agree.
        reparsed = parse_netlist(circuit.to_netlist()).bind()
        again = simulate_transient(reparsed, t_stop, dt)
        for node in circuit.node_names():
            delta = np.abs(result.voltage(node).values
                           - again.voltage(node).values)
            assert delta.max() <= 1e-12

    def test_rlc_param_fixture_structure(self):
        parsed = parse_netlist_file(NETLIST_DIR / "rlc_param.cir")
        assert parsed.title == "parametric two-segment RLC line"
        assert parsed.circuit.parameter_names() == ("ct", "lt", "rt")
        assert parsed.defaults == {"rt": 100.0, "lt": 1 * 1e-9, "ct": 1 * 1e-12}

    def test_run_corpus_summary(self, tmp_path):
        summary = run_corpus([str(NETLIST_DIR)])
        assert summary["n_files"] == len(list(NETLIST_DIR.glob("*.cir")))
        assert summary["n_ok"] == summary["n_files"]
        assert all(record["ok"] for record in summary["files"])

    def test_parser_main_writes_summary(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        status = parser_main([str(NETLIST_DIR), "--summary", str(out)])
        assert status == 0
        document = json.loads(out.read_text())
        assert document["n_ok"] == document["n_files"]
        assert "netlists ok" in capsys.readouterr().out

    def test_parser_main_reports_failures(self, tmp_path, capsys):
        bad = tmp_path / "bad.cir"
        bad.write_text("R1 a b 5qq\n")
        status = parser_main([str(bad)])
        assert status == 1
        assert "FAIL" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI entry points
# ---------------------------------------------------------------------------


class TestNetlistCli:
    def test_run_netlist(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rlc_param.cir"
        status = main(["run", "--netlist", str(fixture), "--node", "out"])
        assert status == 0
        out = capsys.readouterr().out
        assert "v(out)" in out
        assert "delay_50" in out

    def test_run_netlist_with_overrides(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rlc_param.cir"
        status = main(
            ["run", "--netlist", str(fixture), "--param", "rt=500"]
        )
        assert status == 0
        assert "rt=500" in capsys.readouterr().out

    def test_run_requires_experiment_or_netlist(self, capsys):
        from repro.__main__ import main

        assert main(["run"]) == 2
        assert "required" in capsys.readouterr().err

    def test_run_rejects_both(self, capsys):
        from repro.__main__ import main

        assert main(["run", "EXP-T1", "--netlist", "x.cir"]) == 2

    def test_run_netlist_bad_node(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rc_ladder.cir"
        assert main(["run", "--netlist", str(fixture), "--node", "zz"]) == 2
        assert "not in netlist" in capsys.readouterr().err

    def test_sweep_netlist(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rlc_param.cir"
        status = main(
            [
                "sweep",
                "--netlist",
                str(fixture),
                "--axis",
                "rt=10,100",
                "--node",
                "out",
                "--n-samples",
                "200",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "netlist sweep" in out
        assert "delay_50_s" in out

    def test_sweep_netlist_requires_parametric(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rc_ladder.cir"
        status = main(
            ["sweep", "--netlist", str(fixture), "--axis", "rt=1,2"]
        )
        assert status == 2
        assert "no {...} parameter slots" in capsys.readouterr().err

    def test_sweep_netlist_rejects_unknown_param(self, capsys):
        from repro.__main__ import main

        fixture = NETLIST_DIR / "rlc_param.cir"
        status = main(
            ["sweep", "--netlist", str(fixture), "--axis", "zz=1,2"]
        )
        assert status == 2
        assert "unknown netlist parameter" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# suggest_transient_window
# ---------------------------------------------------------------------------


class TestSuggestWindow:
    def test_rc_window_covers_settling(self):
        circuit = parse_netlist("V1 in 0 STEP(0 1)\nR1 in out 1k\nC1 out 0 1p\n").circuit
        t_stop, dt = suggest_transient_window(circuit, n_samples=500)
        assert t_stop >= 5 * 1e3 * 1e-12  # > 5 RC
        assert dt == pytest.approx(t_stop / 500)
        result = simulate_transient(circuit, t_stop, dt)
        assert result.voltage("out").final_value == pytest.approx(1.0, abs=1e-3)

    def test_floor_for_degenerate_circuits(self):
        circuit = parse_netlist("V1 in 0 1\nR1 in 0 1k\n").circuit
        t_stop, _ = suggest_transient_window(circuit)
        assert t_stop >= 1e-9
