"""Tests for repro.spice.statespace: exact LTI integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.spice.statespace import StateSpace, simulate_step


def first_order(tau: float = 1e-9) -> StateSpace:
    """dx/dt = (u - x)/tau, y = x -- the RC low-pass."""
    return StateSpace(a=[[-1.0 / tau]], b=[1.0 / tau], c=[1.0])


def series_rlc(r: float, l: float, c: float) -> StateSpace:
    """States (i, v_c); step drives through R-L into C."""
    a = [[-r / l, -1.0 / l], [1.0 / c, 0.0]]
    b = [1.0 / l, 0.0]
    c_row = [0.0, 1.0]
    return StateSpace(a=a, b=b, c=c_row)


class TestConstruction:
    def test_dimensions(self):
        model = series_rlc(10.0, 1e-9, 1e-12)
        assert model.order == 2
        assert model.n_inputs == 1
        assert model.n_outputs == 1

    def test_1d_promotion(self):
        model = first_order()
        assert model.b.shape == (1, 1)
        assert model.c.shape == (1, 1)
        assert model.d.shape == (1, 1)

    def test_shape_validation(self):
        with pytest.raises(ParameterError, match="square"):
            StateSpace(a=np.zeros((2, 3)), b=np.zeros(2), c=np.zeros(2))
        with pytest.raises(ParameterError, match="rows"):
            StateSpace(a=np.zeros((2, 2)), b=np.zeros(3), c=np.zeros(2))
        with pytest.raises(ParameterError, match="columns"):
            StateSpace(a=np.zeros((2, 2)), b=np.zeros(2), c=np.zeros(3))

    def test_d_validation(self):
        with pytest.raises(ParameterError, match="D"):
            StateSpace(a=np.zeros((1, 1)), b=np.zeros(1), c=np.zeros(1),
                       d=np.zeros((2, 2)))


class TestDiscretize:
    def test_matches_scalar_exponential(self):
        tau = 1e-9
        e, f = first_order(tau).discretize(1e-10)
        assert e[0, 0] == pytest.approx(np.exp(-0.1))
        assert f[0, 0] == pytest.approx(1.0 - np.exp(-0.1))

    def test_singular_a_handled(self):
        """Pure integrator: A = 0, F = B*dt via the augmented expm."""
        model = StateSpace(a=[[0.0]], b=[2.0], c=[1.0])
        e, f = model.discretize(0.5)
        assert e[0, 0] == pytest.approx(1.0)
        assert f[0, 0] == pytest.approx(1.0)

    def test_bad_dt(self):
        with pytest.raises(ParameterError):
            first_order().discretize(-1.0)


class TestSimulateStep:
    def test_first_order_exact_at_samples(self):
        tau = 1e-9
        (w,) = simulate_step(first_order(tau), t_stop=5e-9, n_samples=51)
        expected = 1.0 - np.exp(-w.times / tau)
        assert np.max(np.abs(w.values - expected)) < 1e-12

    def test_rlc_against_analytic(self):
        r, l, c = 20.0, 1e-9, 1e-12
        (w,) = simulate_step(series_rlc(r, l, c), t_stop=1e-9, n_samples=401)
        alpha = r / (2 * l)
        omega_d = np.sqrt(1.0 / (l * c) - alpha**2)
        expected = 1.0 - np.exp(-alpha * w.times) * (
            np.cos(omega_d * w.times) + alpha / omega_d * np.sin(omega_d * w.times)
        )
        assert np.max(np.abs(w.values - expected)) < 1e-10

    def test_scaled_input(self):
        (w,) = simulate_step(first_order(), t_stop=3e-8, u=2.5)
        assert w.values[-1] == pytest.approx(2.5, rel=1e-6)

    def test_initial_state(self):
        (w,) = simulate_step(
            first_order(), t_stop=1e-8, x0=np.array([1.0]), u=1.0
        )
        assert np.allclose(w.values, 1.0)

    def test_validation(self):
        with pytest.raises(ParameterError, match="n_samples"):
            simulate_step(first_order(), 1e-9, n_samples=1)
        with pytest.raises(ParameterError, match="t_stop"):
            simulate_step(first_order(), -1e-9)
        with pytest.raises(ParameterError, match="x0"):
            simulate_step(first_order(), 1e-9, x0=np.zeros(3))


class TestTransferAt:
    def test_first_order_transfer(self):
        tau = 1e-9
        model = first_order(tau)
        s = np.array([1j / tau])
        h = model.transfer_at(s)[:, 0, 0]
        expected = 1.0 / (1.0 + 1j)
        assert np.allclose(h, expected)

    def test_rlc_transfer_matches_formula(self):
        r, l, c = 50.0, 2e-9, 1e-12
        model = series_rlc(r, l, c)
        s = np.array([1e9j, 1e8 + 3e9j])
        h = model.transfer_at(s)[:, 0, 0]
        expected = 1.0 / (1.0 + s * r * c + s * s * l * c)
        assert np.allclose(h, expected)
