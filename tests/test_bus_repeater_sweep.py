"""Tests for the crosstalk-aware repeater stage and its sweep surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import DriverLineLoad
from repro.core.repeater import (
    Buffer,
    CoupledRepeaterSystem,
    coupled_line,
    crosstalk_aware_design,
    miller_switch_factor,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.errors import ParameterError
from repro.experiments import bus_repeater_study, shield_study
from repro.sweep import (
    Axis,
    ParameterGrid,
    Sweep,
    SweepRunner,
    batch_crosstalk_aware_design,
    batch_effective_capacitance,
)

LINE = DriverLineLoad(rt=100.0, lt=1e-8, ct=2e-12)
BUFFER = Buffer(r0=1000.0, c0=1e-14)
CCT = 1e-12


class TestMillerFactor:
    def test_named_patterns(self):
        assert miller_switch_factor("even") == 0.0
        assert miller_switch_factor("quiet") == 1.0
        assert miller_switch_factor("odd") == 2.0

    def test_numeric_pass_through(self):
        assert miller_switch_factor(1.5) == 1.5

    def test_enum_like_value(self):
        from repro.bus import LineSwitch

        assert miller_switch_factor(LineSwitch.QUIET) == 1.0

    def test_rejects_unknown_and_negative(self):
        with pytest.raises(ParameterError):
            miller_switch_factor("sideways")
        with pytest.raises(ParameterError):
            miller_switch_factor(-1.0)


class TestCoupledLine:
    def test_effective_capacitance(self):
        eff = coupled_line(LINE, CCT, switch_factor=2.0, n_neighbors=2.0)
        assert eff.ct == pytest.approx(LINE.ct + 4.0 * CCT)
        assert (eff.rt, eff.lt) == (LINE.rt, LINE.lt)

    def test_even_mode_is_identity(self):
        assert coupled_line(LINE, CCT, switch_factor=0.0) == LINE

    def test_pattern_names_accepted(self):
        assert coupled_line(LINE, CCT, "quiet").ct == pytest.approx(
            LINE.ct + 2.0 * CCT
        )


class TestCrosstalkAwareDesign:
    def test_zero_factor_recovers_single_line_optimum(self):
        solo = optimal_rlc_design(LINE, BUFFER)
        aware = crosstalk_aware_design(LINE, BUFFER, CCT, switch_factor=0.0)
        assert aware.h == pytest.approx(solo.h)
        assert aware.k == pytest.approx(solo.k)

    def test_zero_coupling_recovers_single_line_optimum(self):
        solo = optimal_rlc_design(LINE, BUFFER)
        aware = crosstalk_aware_design(LINE, BUFFER, 0.0)
        assert aware.h == pytest.approx(solo.h)
        assert aware.k == pytest.approx(solo.k)

    def test_design_grows_with_switch_factor(self):
        designs = [
            crosstalk_aware_design(LINE, BUFFER, CCT, switch_factor=f)
            for f in (0.0, 1.0, 2.0)
        ]
        hs = [d.h for d in designs]
        ks = [d.k for d in designs]
        assert hs == sorted(hs) and hs[0] < hs[-1]
        assert ks == sorted(ks) and ks[0] < ks[-1]

    def test_matches_scalar_kernel(self):
        aware = crosstalk_aware_design(LINE, BUFFER, CCT)
        h, k = batch_crosstalk_aware_design(
            LINE.rt, LINE.lt, LINE.ct, CCT, BUFFER.r0, BUFFER.c0
        )
        assert aware.h == pytest.approx(float(h))
        assert aware.k == pytest.approx(float(k))


class TestCoupledRepeaterSystem:
    SYSTEM = CoupledRepeaterSystem(LINE, BUFFER, cct=CCT)

    def test_aware_design_beats_single_line_under_odd(self):
        solo = optimal_rlc_design(LINE, BUFFER)
        penalty = self.SYSTEM.worst_case_penalty(solo)
        assert penalty > 0.0

    def test_closed_form_gap_is_pattern_invariant(self):
        """The closed-form-vs-numerical delay gap depends only on
        ``T_{L/R}`` (paper appendix, eq. 28), which the coupling
        capacitance does not enter -- so it must be identical across
        switching patterns."""

        def gap(switch_factor: float) -> float:
            aware = self.SYSTEM.design(switch_factor=switch_factor)
            numerical = numerical_optimal_design(
                self.SYSTEM.effective_line(switch_factor), BUFFER
            )
            t_aware = self.SYSTEM.total_delay(aware, switch_factor)
            t_best = self.SYSTEM.total_delay(numerical, switch_factor)
            assert t_aware >= t_best * (1.0 - 1e-9)  # numerical is optimal
            return t_aware / t_best

        assert gap(0.0) == pytest.approx(gap(2.0), rel=1e-5)

    def test_requires_resistive_line(self):
        with pytest.raises(ParameterError):
            CoupledRepeaterSystem(
                DriverLineLoad(rt=0.0, lt=1e-8, ct=2e-12), BUFFER, cct=CCT
            )


class TestKernels:
    def test_effective_capacitance_broadcast(self):
        ct_eff = batch_effective_capacitance(
            2e-12, CCT, switch_factor=np.array([0.0, 1.0, 2.0])
        )
        assert ct_eff == pytest.approx(2e-12 + np.array([0.0, 2.0, 4.0]) * CCT)

    def test_scalar_fast_path_matches_array(self):
        scalar = batch_effective_capacitance(2e-12, CCT, 1.5, 2.0)
        array = batch_effective_capacitance(np.array(2e-12), CCT, 1.5, 2.0)
        assert scalar == pytest.approx(float(array))

    def test_domain_validation(self):
        with pytest.raises(ParameterError):
            batch_effective_capacitance(0.0, CCT)
        with pytest.raises(ParameterError):
            batch_effective_capacitance(2e-12, -CCT)


class TestSweepSurface:
    FIXED = dict(
        rt=100.0, lt=1e-8, ct=2e-12, cct=CCT, r0=1000.0, c0=1e-14
    )

    def test_crosstalk_aware_design_quantity(self):
        grid = ParameterGrid(Axis("switch_factor", [0.0, 2.0]))
        result = SweepRunner().run(
            Sweep("crosstalk_aware_design", grid, fixed=self.FIXED)
        )
        solo = optimal_rlc_design(LINE, BUFFER)
        assert result.outputs["h"][0] == pytest.approx(solo.h)
        assert result.outputs["h"][1] > result.outputs["h"][0]

    def test_pattern_axis_derives_switch_factor(self):
        grid = ParameterGrid(Axis("pattern", ["even", "quiet", "odd"]))
        result = SweepRunner().run(
            Sweep("crosstalk_aware_design", grid, fixed=self.FIXED)
        )
        assert result.columns["switch_factor"] == pytest.approx(
            [0.0, 1.0, 2.0]
        )
        h = result.outputs["h"]
        assert h[0] < h[1] < h[2]

    def test_pattern_axis_conflicts_with_explicit_factor(self):
        grid = ParameterGrid(Axis("pattern", ["even", "odd"]))
        sweep = Sweep(
            "crosstalk_aware_design",
            grid,
            fixed={**self.FIXED, "switch_factor": 1.0},
        )
        with pytest.raises(ParameterError):
            SweepRunner().run(sweep)

    def test_effective_capacitance_quantity(self):
        grid = ParameterGrid(Axis("pattern", ["even", "quiet", "odd"]))
        result = SweepRunner().run(
            Sweep(
                "effective_capacitance",
                grid,
                fixed={"ct": 2e-12, "cct": CCT},
            )
        )
        assert result.output("ct_eff") == pytest.approx(
            2e-12 + np.array([0.0, 2.0, 4.0]) * CCT
        )


class TestShieldStudyDriver:
    def test_small_run(self):
        table = shield_study.run(
            n_lines=3, shield_counts=(0, 1), n_segments=6, length=4e-3
        )
        assert len(table.rows) == 2
        noise = table.column("noise+_%")
        assert noise[1] < noise[0]  # the shield must help
        tracks = table.column("tracks")
        assert tracks == [3, 4]


class TestBusRepeaterStudyDriver:
    def test_small_run(self):
        table = bus_repeater_study.run(
            patterns=("even", "odd"), validate_numerically=False
        )
        assert len(table.rows) == 2
        penalties = table.column("penalty_%")
        assert penalties[0] == pytest.approx(0.0, abs=1e-6)
        assert penalties[1] > 0.0

    def test_numerical_validation_column(self):
        table = bus_repeater_study.run(patterns=("odd",))
        gap = table.column("fit_gap_%")[0]
        assert np.isfinite(gap) and gap >= 0.0
