"""Tests for repro.tline.waveform: measurement utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, ParameterError
from repro.tline.waveform import (
    Waveform,
    first_crossing,
    overshoot,
    propagation_delay_50,
    rise_time,
    settling_time,
)


def exponential_rise(tau: float = 1.0, t_end: float = 10.0, n: int = 2001):
    t = np.linspace(0.0, t_end, n)
    return t, 1.0 - np.exp(-t / tau)


class TestFirstCrossing:
    def test_linear_ramp_exact(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([0.0, 1.0, 2.0])
        assert first_crossing(t, v, 0.5) == pytest.approx(0.5)
        assert first_crossing(t, v, 1.5) == pytest.approx(1.5)

    def test_starts_above_level_is_not_a_crossing(self):
        # Starting beyond the level is not a transition; the historical
        # behavior returned t[0] here, reporting a crossing that never
        # happened.
        t = np.array([0.0, 1.0])
        v = np.array([2.0, 3.0])
        with pytest.raises(AnalysisError, match="actual transition"):
            first_crossing(t, v, 1.0)

    def test_starts_above_level_later_recrossing_found(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        v = np.array([2.0, 0.0, 0.0, 1.0])
        # Rising search skips the initial above-level sample and finds
        # the genuine upward transition between t=2 and t=3.
        assert first_crossing(t, v, 0.5) == pytest.approx(2.5)

    def test_starts_at_level_departing_in_direction(self):
        # Starting exactly at the level and moving through it counts as
        # a crossing at t[0] -- for both directions.
        t = np.array([0.0, 1.0, 2.0])
        up = np.array([1.0, 2.0, 3.0])
        down = np.array([1.0, 0.5, 0.0])
        assert first_crossing(t, up, 1.0, rising=True) == 0.0
        assert first_crossing(t, down, 1.0, rising=False) == 0.0

    def test_starts_at_level_departing_against_direction(self):
        # A waveform that starts at the level and *rises* never crosses
        # it falling: the seed reported t[0] here.
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([1.0, 2.0, 3.0])
        with pytest.raises(AnalysisError, match="never crosses"):
            first_crossing(t, v, 1.0, rising=False)

    def test_falling_crossing(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([2.0, 1.0, 0.0])
        assert first_crossing(t, v, 0.5, rising=False) == pytest.approx(1.5)

    def test_never_crosses(self):
        t = np.array([0.0, 1.0])
        v = np.array([0.0, 0.4])
        with pytest.raises(AnalysisError, match="never crosses"):
            first_crossing(t, v, 0.5)

    def test_first_of_many_crossings(self):
        t = np.linspace(0.0, 4 * np.pi, 4001)
        v = np.sin(t)
        got = first_crossing(t, v, 0.5)
        assert got == pytest.approx(np.arcsin(0.5), abs=1e-3)

    def test_validation_mismatched(self):
        with pytest.raises(ParameterError):
            first_crossing([0.0, 1.0], [0.0], 0.5)

    def test_validation_nonmonotone_time(self):
        with pytest.raises(ParameterError, match="strictly increasing"):
            first_crossing([0.0, 1.0, 0.5], [0.0, 1.0, 2.0], 0.5)

    def test_validation_nonfinite(self):
        with pytest.raises(ParameterError, match="finite"):
            first_crossing([0.0, 1.0], [0.0, np.nan], 0.5)

    @settings(max_examples=30, deadline=None)
    @given(level=st.floats(min_value=0.05, max_value=0.95))
    def test_interpolation_property(self, level):
        """On a dense exponential, crossing matches the analytic inverse."""
        t, v = exponential_rise()
        got = first_crossing(t, v, level)
        assert got == pytest.approx(-np.log(1.0 - level), abs=5e-3)


class TestDelayAndRise:
    def test_exponential_delay_50(self):
        t, v = exponential_rise()
        assert propagation_delay_50(t, v, v_final=1.0) == pytest.approx(
            np.log(2.0), abs=1e-3
        )

    def test_default_final_value(self):
        t, v = exponential_rise(t_end=20.0)
        assert propagation_delay_50(t, v) == pytest.approx(np.log(2.0), abs=1e-2)

    def test_delay_requires_rise(self):
        t = np.array([0.0, 1.0])
        v = np.array([1.0, 1.0])
        with pytest.raises(AnalysisError, match="does not exceed"):
            propagation_delay_50(t, v, v_final=1.0)

    def test_exponential_rise_time(self):
        t, v = exponential_rise()
        expected = np.log(0.9 / 0.1)  # ln 9
        assert rise_time(t, v, v_final=1.0) == pytest.approx(expected, abs=2e-3)

    def test_custom_thresholds(self):
        t, v = exponential_rise()
        got = rise_time(t, v, v_final=1.0, low=0.2, high=0.8)
        assert got == pytest.approx(np.log(0.8 / 0.2), abs=2e-3)

    def test_rise_threshold_validation(self):
        t, v = exponential_rise()
        with pytest.raises(ParameterError):
            rise_time(t, v, low=0.9, high=0.1)


class TestOvershootAndSettling:
    def test_no_overshoot(self):
        t, v = exponential_rise()
        assert overshoot(t, v, v_final=1.0) == 0.0

    def test_damped_oscillation_overshoot(self):
        t = np.linspace(0.0, 20.0, 4001)
        v = 1.0 - np.exp(-0.3 * t) * np.cos(2.0 * t)
        got = overshoot(t, v, v_final=1.0)
        # peak near t = pi/2 ... first max of 1 + e^{-0.3t}; analytic peak:
        peak = np.max(v)
        assert got == pytest.approx(peak - 1.0, abs=1e-9)
        assert 0.2 < got < 0.8

    def test_settling_time(self):
        t, v = exponential_rise(t_end=12.0, n=4001)
        got = settling_time(t, v, v_final=1.0, band=0.05)
        assert got == pytest.approx(-np.log(0.05), abs=2e-2)

    def test_settling_unsettled(self):
        t = np.linspace(0.0, 1.0, 100)
        v = t  # still rising at the end
        with pytest.raises(AnalysisError, match="not settled"):
            settling_time(t, v, v_final=2.0)


class TestWaveformClass:
    def test_construction_and_measurements(self):
        t, v = exponential_rise()
        w = Waveform(t, v)
        assert w.delay_50(v_final=1.0) == pytest.approx(np.log(2.0), abs=1e-3)
        assert w.final_value == pytest.approx(1.0, abs=1e-4)

    def test_from_samples(self):
        w = Waveform.from_samples([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert w.crossing(0.25) == pytest.approx(0.5)

    def test_resampled(self):
        t, v = exponential_rise()
        w = Waveform(t, v).resampled(np.linspace(0.0, 5.0, 11))
        assert w.times.size == 11
        assert w.values[0] == pytest.approx(0.0)

    def test_immutable_validation(self):
        with pytest.raises(ParameterError):
            Waveform(np.array([1.0]), np.array([1.0]))
