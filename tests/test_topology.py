"""Cross-validation suite for the repro.topology generators.

Pins every generator to an independent reference: degenerate trees
against the equivalent single ladder (transient, AC and delay all
<= 1e-12), symmetric trees against their own sink symmetry, meshes
against analytic resistor-grid DC solutions, and every template
against the batched analysis paths (``simulate_transient_batch`` /
``ac_sweep_batch`` vs per-point binds -- the PR's acceptance
criterion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.spice.ac import ac_sweep, ac_sweep_batch
from repro.spice.dc import dc_operating_point
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.netlist import Circuit, Step
from repro.spice.parser import parse_netlist, suggest_transient_window
from repro.spice.transient import simulate_transient, simulate_transient_batch
from repro.topology import (
    FanoutTreeSpec,
    HTreeSpec,
    MeshSpec,
    add_rlc_line,
    build_fanout_circuit,
    build_fanout_template,
    build_htree_circuit,
    build_htree_template,
    build_mesh_circuit,
    build_mesh_template,
    htree_sink_nodes,
    mesh_node,
)

BACKENDS = ("dense", "sparse", "banded")

RT, LT, CT = 200.0, 2e-8, 2e-12
RTR, CL = 50.0, 2e-13


def _max_dv(result_a, node_a, result_b, node_b) -> float:
    return float(
        np.abs(
            result_a.voltage(node_a).values - result_b.voltage(node_b).values
        ).max()
    )


# ---------------------------------------------------------------------------
# Degenerate trees == ladders
# ---------------------------------------------------------------------------


class TestLadderEquivalence:
    def test_levels0_htree_is_a_ladder(self):
        n = 8
        tree = build_htree_circuit(
            HTreeSpec(
                levels=0, rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n
            )
        )
        ladder = build_ladder_circuit(
            LadderSpec(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n)
        )
        t_stop, dt = suggest_transient_window(ladder, n_samples=500)
        spec = LadderSpec(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n)
        for backend in BACKENDS:
            res_tree = simulate_transient(tree, t_stop, dt, backend=backend)
            res_lad = simulate_transient(ladder, t_stop, dt, backend=backend)
            assert (
                _max_dv(res_tree, "b", res_lad, spec.output_node) <= 1e-12
            ), backend
            delay_tree = res_tree.voltage("b").delay_50()
            delay_lad = res_lad.voltage(spec.output_node).delay_50()
            assert abs(delay_tree - delay_lad) <= 1e-12

    def test_levels0_htree_matches_ladder_in_ac(self):
        n = 8
        tree = build_htree_circuit(
            HTreeSpec(
                levels=0, rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n
            )
        )
        spec = LadderSpec(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n)
        ladder = build_ladder_circuit(spec)
        omegas = np.logspace(6, 11, 40)
        h_tree = ac_sweep(tree, omegas).voltage("b")
        h_lad = ac_sweep(ladder, omegas).voltage(spec.output_node)
        assert np.abs(h_tree - h_lad).max() <= 1e-12

    def test_fanout1_star_is_a_ladder(self):
        n = 8
        star = build_fanout_circuit(
            FanoutTreeSpec(
                fanout=1,
                brt=RT,
                blt=LT,
                bct=CT,
                rtr=RTR,
                cl=CL,
                branch_segments=n,
            )
        )
        spec = LadderSpec(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n)
        ladder = build_ladder_circuit(spec)
        t_stop, dt = suggest_transient_window(ladder, n_samples=500)
        for backend in BACKENDS:
            res_star = simulate_transient(star, t_stop, dt, backend=backend)
            res_lad = simulate_transient(ladder, t_stop, dt, backend=backend)
            assert (
                _max_dv(res_star, "s0", res_lad, spec.output_node) <= 1e-12
            ), backend

    def test_fanout1_with_trunk_is_a_two_wire_chain(self):
        # trunk wire + single branch wire == one ladder carrying the
        # summed totals, segment counts matched per wire half.
        star = build_fanout_circuit(
            FanoutTreeSpec(
                fanout=1,
                rt=RT,
                lt=LT,
                ct=CT,
                brt=RT,
                blt=LT,
                bct=CT,
                rtr=RTR,
                cl=CL,
                trunk_segments=4,
                branch_segments=4,
            )
        )
        spec = LadderSpec(
            rt=2 * RT, lt=2 * LT, ct=2 * CT, rtr=RTR, cl=CL, n_segments=8
        )
        ladder = build_ladder_circuit(spec)
        t_stop, dt = suggest_transient_window(ladder, n_samples=500)
        res_star = simulate_transient(star, t_stop, dt)
        res_lad = simulate_transient(ladder, t_stop, dt)
        assert _max_dv(res_star, "s0", res_lad, spec.output_node) <= 1e-12

    def test_add_rlc_line_matches_ladder_builder(self):
        n = 6
        ckt = Circuit("bare line")
        ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
        ckt.add_resistor("rdrv", "in", "a", RTR)
        add_rlc_line(ckt, "w", "a", "z", RT, LT, CT, n)
        ckt.add_capacitor("cl", "z", "0", CL)
        spec = LadderSpec(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=n)
        ladder = build_ladder_circuit(spec)
        t_stop, dt = suggest_transient_window(ladder, n_samples=500)
        res_line = simulate_transient(ckt, t_stop, dt)
        res_lad = simulate_transient(ladder, t_stop, dt)
        assert _max_dv(res_line, "z", res_lad, spec.output_node) <= 1e-12


# ---------------------------------------------------------------------------
# Symmetry and skew behavior
# ---------------------------------------------------------------------------


class TestTreeSymmetry:
    def test_symmetric_htree_sinks_are_identical(self):
        spec = HTreeSpec(
            levels=2, rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=4
        )
        circuit = build_htree_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=400)
        result = simulate_transient(circuit, t_stop, dt)
        reference = result.voltage(spec.sink_nodes[0]).values
        for sink in spec.sink_nodes[1:]:
            delta = np.abs(result.voltage(sink).values - reference).max()
            assert delta <= 1e-12, sink

    def test_heavy_sink_arrives_last(self):
        spec = HTreeSpec(
            levels=1,
            rt=RT,
            lt=LT,
            ct=CT,
            rtr=RTR,
            cl=CL,
            n_segments=4,
            sink_cl_weights=(3.0, 1.0),
        )
        circuit = build_htree_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=400)
        result = simulate_transient(circuit, t_stop, dt)
        heavy = result.voltage("b0").delay_50()
        light = result.voltage("b1").delay_50()
        assert heavy > light

    def test_symmetric_fanout_sinks_are_identical(self):
        spec = FanoutTreeSpec(
            fanout=4, brt=RT, blt=LT, bct=CT, rtr=RTR, cl=CL,
            branch_segments=4,
        )
        circuit = build_fanout_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=400)
        result = simulate_transient(circuit, t_stop, dt)
        reference = result.voltage("s0").values
        for sink in spec.sink_nodes[1:]:
            assert np.abs(result.voltage(sink).values - reference).max() <= 1e-12

    def test_htree_sink_nodes(self):
        assert htree_sink_nodes(0) == ("b",)
        assert htree_sink_nodes(1) == ("b0", "b1")
        assert htree_sink_nodes(2) == ("b00", "b01", "b10", "b11")
        with pytest.raises(ParameterError):
            htree_sink_nodes(-1)


# ---------------------------------------------------------------------------
# Mesh DC vs analytic resistor-grid solutions
# ---------------------------------------------------------------------------


class TestMeshAnalytic:
    def test_1x3_mesh_is_a_voltage_divider(self):
        spec = MeshSpec(
            rows=1, cols=3, r_edge=5.0, rtr=10.0, r_load=100.0
        )
        circuit = build_mesh_circuit(spec)
        # the Step source switches at t=0; evaluate past it.
        op = dc_operating_point(circuit, time=1.0)
        total = 10.0 + 2 * 5.0 + 100.0
        assert op.voltage(spec.output_node) == pytest.approx(
            100.0 / total, abs=1e-12
        )
        assert op.voltage(mesh_node(0, 1)) == pytest.approx(
            105.0 / total, abs=1e-12
        )

    def test_2x2_mesh_series_parallel_reduction(self):
        # two parallel 2-edge paths from corner to corner: R_eq = r_edge
        spec = MeshSpec(
            rows=2, cols=2, r_edge=8.0, rtr=12.0, r_load=100.0
        )
        circuit = build_mesh_circuit(spec)
        op = dc_operating_point(circuit, time=1.0)
        total = 12.0 + 8.0 + 100.0
        assert op.voltage(spec.output_node) == pytest.approx(
            100.0 / total, abs=1e-12
        )
        # symmetry: the two mid corners sit at the same potential
        assert op.voltage(mesh_node(0, 1)) == pytest.approx(
            op.voltage(mesh_node(1, 0)), abs=1e-12
        )

    def test_rc_mesh_settles_to_source(self):
        spec = MeshSpec(
            rows=3, cols=3, r_edge=10.0, rtr=25.0, c_node=1e-13
        )
        circuit = build_mesh_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=400)
        result = simulate_transient(circuit, t_stop, dt)
        assert result.voltage(spec.output_node).final_value == pytest.approx(
            1.0, abs=1e-3
        )

    def test_mesh_requires_a_load(self):
        with pytest.raises(ParameterError, match="needs a load"):
            MeshSpec(rows=2, cols=2, r_edge=1.0, rtr=1.0)
        with pytest.raises(ParameterError, match="template needs"):
            build_mesh_template(2, 2, with_node_caps=False)


# ---------------------------------------------------------------------------
# Templates feed the batched analysis paths (acceptance criterion)
# ---------------------------------------------------------------------------


class TestTemplateBatch:
    def test_htree_batch_matches_per_point_binds(self):
        template = build_htree_template(levels=2, n_segments=3)
        points = [
            {"rt": RT, "lt": LT, "ct": CT, "rtr": RTR, "cl": CL},
            {"rt": 3 * RT, "lt": LT / 2, "ct": 2 * CT, "rtr": RTR, "cl": 3 * CL},
        ]
        slowest = template.bind(points[1])
        t_stop, dt = suggest_transient_window(slowest, n_samples=300)
        sinks = htree_sink_nodes(2)
        for backend in BACKENDS:
            batch = simulate_transient_batch(
                template,
                {k: np.array([p[k] for p in points]) for k in points[0]},
                t_stop,
                dt,
                backend=backend,
                record=list(sinks),
            )
            for i, point in enumerate(points):
                single = simulate_transient(
                    template.bind(point), t_stop, dt, backend=backend
                )
                for sink in sinks:
                    delta = np.abs(
                        batch.voltage(sink)[i] - single.voltage(sink).values
                    ).max()
                    assert delta <= 1e-12, (backend, i, sink)

    def test_fanout_batch_matches_per_point_ac(self):
        template = build_fanout_template(fanout=3, branch_segments=3)
        points = [
            {"brt": RT, "blt": LT, "bct": CT, "rtr": RTR, "cl": CL},
            {"brt": RT / 4, "blt": 2 * LT, "bct": CT, "rtr": 2 * RTR, "cl": CL},
        ]
        omegas = np.logspace(7, 10, 25)
        batch = ac_sweep_batch(
            template,
            {k: np.array([p[k] for p in points]) for k in points[0]},
            omegas,
            record=["s0"],
        )
        for i, point in enumerate(points):
            single = ac_sweep(template.bind(point), omegas)
            delta = np.abs(
                batch.voltage("s0")[i] - single.voltage("s0")
            ).max()
            assert delta <= 1e-12, i

    def test_mesh_template_revalue_matches_spec_bind(self):
        template = build_mesh_template(2, 3, with_node_caps=True)
        spec = MeshSpec(
            rows=2, cols=3, r_edge=4.0, rtr=20.0, c_node=5e-13
        )
        from_template = template.bind(
            {"re": spec.r_edge, "rtr": spec.rtr, "cn": spec.c_node}
        )
        from_spec = build_mesh_circuit(spec)
        assert from_template.elements == from_spec.elements

    def test_netlist_text_round_trip_of_generated_topology(self):
        # Generated topologies survive the text frontend like any
        # other circuit: emit, parse, simulate, agree.
        spec = HTreeSpec(
            levels=1, rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL, n_segments=3
        )
        circuit = build_htree_circuit(spec)
        reparsed = parse_netlist(circuit.to_netlist())
        assert reparsed.circuit.elements == circuit.elements
        t_stop, dt = suggest_transient_window(circuit, n_samples=300)
        res_a = simulate_transient(circuit, t_stop, dt)
        res_b = simulate_transient(reparsed.circuit, t_stop, dt)
        for sink in spec.sink_nodes:
            assert _max_dv(res_a, sink, res_b, sink) <= 1e-12


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_htree_weight_validation(self):
        with pytest.raises(ParameterError, match="entries"):
            HTreeSpec(
                levels=2,
                rt=RT,
                lt=LT,
                ct=CT,
                rtr=RTR,
                cl=CL,
                sink_cl_weights=(1.0, 2.0),
            )
        with pytest.raises(ParameterError, match="> 0"):
            HTreeSpec(
                levels=1,
                rt=RT,
                lt=LT,
                ct=CT,
                rtr=RTR,
                cl=CL,
                sink_cl_weights=(1.0, 0.0),
            )

    def test_fanout_trunk_totals_need_trunk_segments(self):
        with pytest.raises(ParameterError, match="trunk_segments"):
            FanoutTreeSpec(
                fanout=2, brt=RT, blt=LT, bct=CT, rtr=RTR, cl=CL, rt=10.0
            )

    def test_mesh_rejects_degenerate_extent(self):
        with pytest.raises(ParameterError, match="at least two nodes"):
            MeshSpec(rows=1, cols=1, r_edge=1.0, rtr=1.0, cl=1e-13)

    def test_fanout_rejects_nonpositive_fanout(self):
        with pytest.raises(ParameterError, match="fanout"):
            FanoutTreeSpec(
                fanout=0, brt=RT, blt=LT, bct=CT, rtr=RTR, cl=CL
            )
