"""Tests for repro.tline.transfer: the exact Fig. 1 transfer function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.tline.transfer import (
    DriverLineLoadTransfer,
    denominator_coefficients,
    line_transfer_function,
    transfer_moments,
)

RT, LT, CT, RTR, CL = 1000.0, 1e-6, 1e-12, 100.0, 1e-13


class TestTransferFunction:
    def test_dc_gain_unity(self):
        h = line_transfer_function(RT, LT, CT, RTR, CL)
        assert np.allclose(h(np.array([1e-3 + 0j])), 1.0, rtol=1e-6)

    def test_decays_at_high_frequency(self):
        h = line_transfer_function(RT, LT, CT, RTR, CL)
        val = h(np.array([1e14 + 0j]))
        assert np.all(np.abs(val) < 1e-6)

    def test_no_overflow_at_extreme_s(self):
        h = line_transfer_function(RT, LT, CT, RTR, CL)
        s = np.array([1e18 + 0j, -1e10 + 1e18j, 1e16 + 1e16j])
        val = h(s)
        assert np.all(np.isfinite(val))

    def test_matches_abcd_formulation(self):
        """Scaled evaluation agrees with the generic two-port route."""
        from repro.tline.abcd import rlc_line

        h_scaled = line_transfer_function(RT, LT, CT, RTR, CL)
        h_abcd = rlc_line(RT, LT, CT).transfer_function(
            source_impedance=RTR, load_admittance=lambda s: s * CL
        )
        s = np.array([1e8 + 2e8j, 5e8j, 1e9 + 0j])
        assert np.allclose(h_scaled(s), h_abcd(s), rtol=1e-10)

    def test_scalar_input_promoted(self):
        h = line_transfer_function(RT, LT, CT)
        assert h(1e6).shape == (1,)

    def test_validation(self):
        with pytest.raises(ParameterError):
            line_transfer_function(RT, LT, 0.0)
        with pytest.raises(ParameterError):
            line_transfer_function(-1.0, LT, CT)


class TestDenominatorCoefficients:
    def test_a0_is_one(self):
        a = denominator_coefficients(RT, LT, CT, RTR, CL)
        assert a[0] == pytest.approx(1.0)

    def test_a1_matches_hand_derivation(self):
        """a1 = Rtr*CL + Rt*Ct/2 + Rt*CL + Rtr*Ct (paper eq. 7)."""
        a = denominator_coefficients(RT, LT, CT, RTR, CL)
        expected = RTR * CL + RT * CT / 2 + RT * CL + RTR * CT
        assert a[1] == pytest.approx(expected, rel=1e-12)

    def test_a2_includes_inductance(self):
        without_l = denominator_coefficients(RT, 1e-30, CT, RTR, CL)
        with_l = denominator_coefficients(RT, LT, CT, RTR, CL)
        # d(a2)/d(Lt) = Ct/2 + CL for the line + load terms.
        delta = with_l[2] - without_l[2]
        assert delta == pytest.approx(LT * (CT / 2 + CL), rel=1e-9)

    def test_matches_numerical_derivative(self):
        """Series evaluation matches finite differences of 1/H at 0."""
        h = line_transfer_function(RT, LT, CT, RTR, CL)
        a = denominator_coefficients(RT, LT, CT, RTR, CL, order=2)
        eps = 1e3  # |s| small vs 1/a1 ~ 1e9
        d_plus = 1.0 / complex(h(np.array([eps + 0j]))[0])
        d_minus = 1.0 / complex(h(np.array([-eps + 0j]))[0])
        slope = (d_plus - d_minus).real / (2 * eps)
        assert slope == pytest.approx(a[1], rel=1e-4)

    def test_bare_line_coefficients(self):
        """No gate impedances: D = cosh(theta), a1 = RtCt/2, a2 exact."""
        a = denominator_coefficients(RT, LT, CT, 0.0, 0.0, order=4)
        assert a[1] == pytest.approx(RT * CT / 2)
        # cosh: a2 = (RtCt)^2/24 + LtCt/2
        assert a[2] == pytest.approx((RT * CT) ** 2 / 24 + LT * CT / 2)

    def test_order_validation(self):
        with pytest.raises(ParameterError, match="order"):
            denominator_coefficients(RT, LT, CT, order=0)


class TestTransferMoments:
    def test_reciprocal_relation(self):
        """Convolving H's series with D's series gives [1, 0, 0...]."""
        a = denominator_coefficients(RT, LT, CT, RTR, CL, order=5)
        m = transfer_moments(RT, LT, CT, RTR, CL, order=5)
        product = np.convolve(a, m)[:6]
        assert product[0] == pytest.approx(1.0)
        assert np.allclose(product[1:], 0.0, atol=1e-22)

    def test_first_moment_is_minus_elmore(self):
        m = transfer_moments(RT, LT, CT, RTR, CL)
        elmore = RTR * CL + RT * CT / 2 + RT * CL + RTR * CT
        assert m[1] == pytest.approx(-elmore, rel=1e-12)


class TestDriverLineLoadTransfer:
    def test_step_response_monotone_for_overdamped(self):
        h = DriverLineLoadTransfer(rt=RT, lt=1e-9, ct=CT, rtr=500.0, cl=CL)
        t = np.linspace(0.0, 5e-9, 400)
        v = h.step_response(t)
        assert v[0] == 0.0
        # Overdamped: no overshoot beyond numerical ripple.
        assert np.max(v) < 1.02

    def test_step_response_overshoots_when_underdamped(self):
        h = DriverLineLoadTransfer(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL)
        t = np.linspace(0.0, 12e-9, 1200)
        v = h.step_response(t)
        assert np.max(v) > 1.1  # pronounced ringing

    def test_frequency_response_magnitude_bounded_at_dc(self):
        h = DriverLineLoadTransfer(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL)
        assert abs(h.frequency_response([1.0])[0]) == pytest.approx(1.0, rel=1e-6)

    def test_dc_gain(self):
        h = DriverLineLoadTransfer(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL)
        assert h.dc_gain() == pytest.approx(1.0, rel=1e-6)

    def test_moments_shortcut(self):
        h = DriverLineLoadTransfer(rt=RT, lt=LT, ct=CT, rtr=RTR, cl=CL)
        assert h.moments()[1] == pytest.approx(
            transfer_moments(RT, LT, CT, RTR, CL)[1]
        )
