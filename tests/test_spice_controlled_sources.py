"""Tests for controlled sources and mutual inductance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.ac import ac_sweep
from repro.spice.dc import dc_operating_point
from repro.spice.netlist import Circuit, MutualInductance, Step
from repro.spice.transient import simulate_transient


class TestVcvs:
    def test_ideal_amplifier(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 0.2)
        ckt.add_resistor("rin", "a", "0", 1e6)
        ckt.add_vcvs("e1", "out", "0", "a", "0", gain=5.0)
        ckt.add_resistor("rload", "out", "0", 50.0)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(1.0)

    def test_differential_sensing(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "p", "0", 3.0)
        ckt.add_voltage_source("v2", "n", "0", 1.0)
        ckt.add_resistor("r1", "p", "0", 1e3)
        ckt.add_resistor("r2", "n", "0", 1e3)
        ckt.add_vcvs("e1", "out", "0", "p", "n", gain=2.0)
        ckt.add_resistor("rload", "out", "0", 1e3)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(4.0)

    def test_drives_stiffly(self):
        """An ideal VCVS holds its output against any load."""
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 1.0)
        ckt.add_resistor("rin", "a", "0", 1e3)
        ckt.add_vcvs("e1", "out", "0", "a", "0", gain=1.0)
        ckt.add_resistor("rload", "out", "0", 0.001)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(1.0)


class TestVccs:
    def test_transconductance(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 2.0)
        ckt.add_resistor("rin", "a", "0", 1e6)
        # 1 mS * 2 V = 2 mA pulled out of node "out" -> -2 V across 1k.
        ckt.add_vccs("g1", "out", "0", "a", "0", transconductance=1e-3)
        ckt.add_resistor("rload", "out", "0", 1e3)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(-2.0)

    def test_gyrator_inverts_impedance(self):
        """Two back-to-back VCCS make a gyrator: a capacitor at port 2
        looks inductive at port 1 (L_eff = C / gm^2)."""
        gm, cap = 1e-3, 1e-9
        ckt = Circuit()
        ckt.add_voltage_source("vin", "p1", "0", 1.0)
        ckt.add_vccs("gfwd", "p2", "0", "p1", "0", transconductance=gm)
        ckt.add_vccs("grev", "p1", "0", "p2", "0", transconductance=-gm)
        ckt.add_capacitor("c1", "p2", "0", cap)
        omega = 2 * np.pi * 1e5
        ac = ac_sweep(ckt, [omega])
        # Current drawn from the source: I = V / (j*w*L_eff).
        i_source = -ac.current("vin")[0]
        l_eff = cap / gm**2
        expected = 1.0 / (1j * omega * l_eff)
        assert np.isclose(i_source, expected, rtol=1e-9)


class TestCccsCcvs:
    def test_current_mirror(self):
        ckt = Circuit()
        ckt.add_voltage_source("vref", "a", "0", 1.0)
        ckt.add_resistor("rref", "a", "b", 1e3)
        ckt.add_voltage_source("vsense", "b", "0", 0.0)  # ammeter
        ckt.add_cccs("f1", "out", "0", "vsense", gain=2.0)
        ckt.add_resistor("rload", "out", "0", 500.0)
        sol = dc_operating_point(ckt)
        # 1 mA sensed, mirrored x2, pulled OUT of node "out".
        assert sol.voltage("out") == pytest.approx(-1.0)

    def test_transresistance(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 1.0)
        ckt.add_resistor("r1", "a", "b", 1e3)
        ckt.add_voltage_source("vsense", "b", "0", 0.0)
        ckt.add_ccvs("h1", "out", "0", "vsense", transresistance=5e3)
        ckt.add_resistor("rload", "out", "0", 1e3)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(5.0)

    def test_unknown_control_rejected(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 1.0)
        ckt.add_resistor("r1", "a", "0", 1e3)
        ckt.add_cccs("f1", "a", "0", "nope", gain=1.0)
        with pytest.raises(NetlistError, match="branch current"):
            ckt.validate()


class TestMutualInductance:
    def coupled_series(self, coupling: float) -> complex:
        """Input impedance of two series coupled inductors at 1 Mrad/s."""
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 1.0)
        ckt.add_inductor("l1", "a", "b", 1e-6)
        ckt.add_inductor("l2", "b", "c", 4e-6)
        ckt.add_resistor("rload", "c", "0", 1e-3)
        ckt.add_mutual_inductance("k12", "l1", "l2", coupling)
        omega = 1e6
        ac = ac_sweep(ckt, [omega])
        return 1.0 / (-ac.current("vin")[0])

    def test_series_aiding(self):
        """Z = jw(L1 + L2 + 2M) with M = k*sqrt(L1*L2)."""
        z = self.coupled_series(0.5)
        m = 0.5 * np.sqrt(1e-6 * 4e-6)
        expected = 1j * 1e6 * (5e-6 + 2 * m)
        assert np.isclose(z.imag, expected.imag, rtol=1e-6)

    def test_series_opposing(self):
        z = self.coupled_series(-0.5)
        m = 0.5 * np.sqrt(4e-12)
        expected = 1j * 1e6 * (5e-6 - 2 * m)
        assert np.isclose(z.imag, expected.imag, rtol=1e-6)

    def test_transformer_voltage_ratio(self):
        """Open secondary: V2/V1 = M/L1 = k*sqrt(L2/L1)."""
        k = 0.6
        ckt = Circuit()
        ckt.add_voltage_source("vin", "p", "0", 1.0)
        ckt.add_inductor("lp", "p", "0", 1e-6)
        ckt.add_inductor("ls", "s", "0", 4e-6)
        ckt.add_resistor("rsec", "s", "0", 1e9)  # ~open secondary
        ckt.add_mutual_inductance("k1", "lp", "ls", k)
        ac = ac_sweep(ckt, [1e7])
        ratio = abs(ac.transfer("s", "p")[0])
        assert ratio == pytest.approx(k * np.sqrt(4e-6 / 1e-6), rel=1e-3)

    def test_transient_energy_transfer(self):
        """A step into the primary induces secondary voltage ~ M dI/dt."""
        ckt = Circuit()
        ckt.add_voltage_source("vin", "p", "0", Step(0.0, 1.0))
        ckt.add_resistor("rp", "p", "x", 50.0)
        ckt.add_inductor("lp", "x", "0", 1e-6)
        ckt.add_inductor("ls", "s", "0", 1e-6)
        ckt.add_resistor("rs", "s", "0", 1e6)
        ckt.add_mutual_inductance("k1", "lp", "ls", 0.8)
        result = simulate_transient(ckt, 1e-7, 1e-10)
        secondary = result.voltage("s")
        # At t -> 0+, I' = V/L_p... with open secondary V_s = (M/L1)*V_x.
        early = secondary.values[2]
        assert early == pytest.approx(0.8 * result.voltage("x").values[2], rel=0.05)

    def test_validation(self):
        ckt = Circuit()
        ckt.add_voltage_source("vin", "a", "0", 1.0)
        ckt.add_inductor("l1", "a", "0", 1e-6)
        with pytest.raises(NetlistError, match="unknown"):
            ckt.add_mutual_inductance("k1", "l1", "l2", 0.5)
            ckt.validate()
        with pytest.raises(NetlistError, match="coupling"):
            MutualInductance("k2", "l1", "l2", 1.5)
        with pytest.raises(NetlistError, match="itself"):
            MutualInductance("k3", "l1", "l1", 0.5)
