"""Tests for repro.core.repeater: eqs. 11, 13-15, 19-22 and Fig. 4."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import DriverLineLoad
from repro.core.repeater import (
    Buffer,
    RepeaterDesign,
    RepeaterSystem,
    bakoglu_rc_design,
    error_factors,
    inductance_time_ratio,
    normalized_system,
    numerical_error_factors,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.errors import ParameterError


class TestBuffer:
    def test_scaling(self, min_buffer):
        assert min_buffer.output_resistance(10.0) == pytest.approx(500.0)
        assert min_buffer.input_capacitance(10.0) == pytest.approx(1e-13)
        assert min_buffer.intrinsic_delay == pytest.approx(5e-11)

    def test_validation(self):
        with pytest.raises(ParameterError):
            Buffer(r0=0.0, c0=1e-15)
        with pytest.raises(ParameterError):
            Buffer(r0=1.0, c0=1e-15, c_out_ratio=-0.5)


class TestDesign:
    def test_area(self, min_buffer):
        design = RepeaterDesign(h=40.0, k=5.0)
        assert design.area(min_buffer) == pytest.approx(200.0)
        assert design.buffer_capacitance(min_buffer) == pytest.approx(2e-12)

    def test_quantized(self):
        assert RepeaterDesign(h=3.0, k=4.4).quantized().k == 4.0
        assert RepeaterDesign(h=3.0, k=0.3).quantized().k == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            RepeaterDesign(h=0.0, k=1.0)


class TestInductanceTimeRatio:
    def test_clock_spine(self, clock_spine, min_buffer):
        assert inductance_time_ratio(clock_spine, min_buffer) == pytest.approx(5.0)

    def test_length_invariance(self, clock_spine, min_buffer):
        """T_{L/R} uses per-unit-length L/R: length cancels (eq. 13)."""
        longer = clock_spine.with_length_scaled(3.0)
        assert inductance_time_ratio(longer, min_buffer) == pytest.approx(
            inductance_time_ratio(clock_spine, min_buffer)
        )

    def test_requires_resistance(self, min_buffer):
        line = DriverLineLoad(rt=0.0, lt=1e-9, ct=1e-12)
        with pytest.raises(ParameterError):
            inductance_time_ratio(line, min_buffer)


class TestBakoglu:
    def test_formulas(self, clock_spine, min_buffer):
        design = bakoglu_rc_design(clock_spine, min_buffer)
        expected_h = math.sqrt(
            min_buffer.r0 * clock_spine.ct / (clock_spine.rt * min_buffer.c0)
        )
        expected_k = math.sqrt(
            clock_spine.rt * clock_spine.ct / (2 * min_buffer.r0 * min_buffer.c0)
        )
        assert design.h == pytest.approx(expected_h)
        assert design.k == pytest.approx(expected_k)

    def test_is_rc_objective_stationary_point(self, min_buffer):
        """Bakoglu's (h, k) minimizes the RC-limit total delay."""
        line = DriverLineLoad(rt=500.0, lt=1e-15, ct=10e-12)  # negligible L
        system = RepeaterSystem(line, min_buffer)
        best = bakoglu_rc_design(line, min_buffer)
        t_best = system.total_delay(best)
        for dh in (0.95, 1.05):
            for dk in (0.95, 1.05):
                perturbed = RepeaterDesign(h=best.h * dh, k=best.k * dk)
                assert system.total_delay(perturbed) >= t_best


class TestErrorFactors:
    def test_rc_limit_is_unity(self):
        h_prime, k_prime = error_factors(0.0)
        assert h_prime == 1.0 and k_prime == 1.0

    def test_monotone_decreasing(self):
        t = np.linspace(0.0, 10.0, 50)
        h_prime, k_prime = error_factors(t)
        assert np.all(np.diff(h_prime) < 0)
        assert np.all(np.diff(k_prime) < 0)

    def test_k_decays_faster_than_h(self):
        h_prime, k_prime = error_factors(5.0)
        assert k_prime < h_prime

    def test_paper_values(self):
        """Spot values of eqs. 14/15 at T = 3 and 5."""
        h3, k3 = error_factors(3.0)
        assert h3 == pytest.approx((1 + 0.16 * 27) ** -0.24, rel=1e-12)
        assert k3 == pytest.approx((1 + 0.18 * 27) ** -0.3, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ParameterError):
            error_factors(-1.0)


class TestSectionMath:
    """The appendix identities (eqs. 20, 24) hold for our section model."""

    def test_section_ratios(self, clock_spine, min_buffer):
        system = RepeaterSystem(clock_spine, min_buffer)
        design = RepeaterDesign(h=40.0, k=5.0)
        section = system.section_line(design)
        # RTsec = (R0/h)/(Rt/k) = k R0 / (h Rt); CTsec = h k C0 / Ct.
        assert section.r_ratio == pytest.approx(
            design.k * min_buffer.r0 / (design.h * clock_spine.rt)
        )
        assert section.c_ratio == pytest.approx(
            design.h * design.k * min_buffer.c0 / clock_spine.ct
        )

    def test_error_factor_parameterization(self, clock_spine, min_buffer):
        """At h = h_rc*h', k = k_rc*k': RTsec = k'/(h' sqrt(2)) and
        CTsec = h'k'/sqrt(2) (paper eq. 24)."""
        rc = bakoglu_rc_design(clock_spine, min_buffer)
        h_prime, k_prime = 0.7, 0.6
        design = RepeaterDesign(h=rc.h * h_prime, k=rc.k * k_prime)
        section = RepeaterSystem(clock_spine, min_buffer).section_line(design)
        assert section.r_ratio == pytest.approx(
            k_prime / (h_prime * math.sqrt(2.0)), rel=1e-12
        )
        assert section.c_ratio == pytest.approx(
            h_prime * k_prime / math.sqrt(2.0), rel=1e-12
        )

    def test_total_delay_is_k_times_section(self, clock_spine, min_buffer):
        system = RepeaterSystem(clock_spine, min_buffer)
        design = RepeaterDesign(h=40.0, k=5.0)
        assert system.total_delay(design) == pytest.approx(
            5.0 * system.section_delay(design)
        )


class TestNumericalOptimum:
    def test_rc_limit_recovers_bakoglu(self, min_buffer):
        line = DriverLineLoad(rt=500.0, lt=1e-15, ct=10e-12)
        best = numerical_optimal_design(line, min_buffer)
        rc = bakoglu_rc_design(line, min_buffer)
        assert best.h == pytest.approx(rc.h, rel=1e-3)
        assert best.k == pytest.approx(rc.k, rel=1e-3)

    def test_local_optimality(self, clock_spine, min_buffer):
        system = RepeaterSystem(clock_spine, min_buffer)
        best = numerical_optimal_design(clock_spine, min_buffer)
        t_best = system.total_delay(best)
        for dh in (0.97, 1.03):
            for dk in (0.97, 1.03):
                perturbed = RepeaterDesign(h=best.h * dh, k=best.k * dk)
                assert system.total_delay(perturbed) >= t_best * (1 - 1e-9)

    def test_beats_both_closed_forms_on_model(self, clock_spine, min_buffer):
        """By construction the numerical optimum of the model objective
        is at least as good as any closed-form candidate."""
        system = RepeaterSystem(clock_spine, min_buffer)
        t_best = system.total_delay(numerical_optimal_design(clock_spine, min_buffer))
        t_rc = system.total_delay(bakoglu_rc_design(clock_spine, min_buffer))
        t_paper = system.total_delay(optimal_rlc_design(clock_spine, min_buffer))
        assert t_best <= t_rc and t_best <= t_paper

    @settings(max_examples=10, deadline=None)
    @given(
        scale_r=st.floats(min_value=0.1, max_value=10.0),
        scale_c=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_error_factors_are_dimensionless(self, scale_r, scale_c):
        """h', k' depend on T_{L/R} only -- rescaling impedances while
        holding T fixed leaves them unchanged (paper appendix claim)."""
        t = 4.0
        line1, buffer1 = normalized_system(t)
        line2 = DriverLineLoad(
            rt=scale_r, lt=t * scale_r * scale_r * scale_c, ct=scale_c
        )
        buffer2 = Buffer(r0=scale_r, c0=scale_c)
        assert inductance_time_ratio(line2, buffer2) == pytest.approx(t)
        rc1 = bakoglu_rc_design(line1, buffer1)
        rc2 = bakoglu_rc_design(line2, buffer2)
        best1 = numerical_optimal_design(line1, buffer1)
        best2 = numerical_optimal_design(line2, buffer2)
        assert best1.h / rc1.h == pytest.approx(best2.h / rc2.h, rel=1e-4)
        assert best1.k / rc1.k == pytest.approx(best2.k / rc2.k, rel=1e-4)

    def test_numerical_error_factors_decrease(self):
        h1, k1 = numerical_error_factors(1.0)
        h5, k5 = numerical_error_factors(5.0)
        assert h5 < h1 <= 1.0 + 1e-9
        assert k5 < k1 <= 1.0 + 1e-9


class TestRepeaterSystem:
    def test_requires_resistive_line(self, min_buffer):
        with pytest.raises(ParameterError):
            RepeaterSystem(DriverLineLoad(rt=0.0, lt=1e-9, ct=1e-12), min_buffer)

    def test_switched_capacitance(self, clock_spine, min_buffer):
        system = RepeaterSystem(clock_spine, min_buffer)
        design = RepeaterDesign(h=50.0, k=4.0)
        no_wire = system.switched_capacitance(design, include_wire=False)
        assert no_wire == pytest.approx(200.0 * min_buffer.c0)
        with_wire = system.switched_capacitance(design, include_wire=True)
        assert with_wire == pytest.approx(no_wire + clock_spine.ct)

    def test_dynamic_power(self, clock_spine, min_buffer):
        system = RepeaterSystem(clock_spine, min_buffer)
        design = RepeaterDesign(h=50.0, k=4.0)
        p = system.dynamic_power(design, vdd=2.5, frequency=1e9, activity=0.5)
        c = system.switched_capacitance(design)
        assert p == pytest.approx(0.5 * 1e9 * 6.25 * c)
        with pytest.raises(ParameterError):
            system.dynamic_power(design, vdd=2.5, frequency=1e9, activity=0.0)

    def test_simulated_total_close_to_model(self, clock_spine, min_buffer):
        """Eq. 9 modeled total within ~8% of ladder-simulated total."""
        system = RepeaterSystem(clock_spine, min_buffer)
        design = numerical_optimal_design(clock_spine, min_buffer).quantized()
        t_model = system.total_delay(design)
        t_sim = system.total_delay_simulated(design, n_segments=60)
        assert abs(t_model - t_sim) / t_sim < 0.08


class TestPracticalDesign:
    def test_integer_sections(self, clock_spine, min_buffer):
        from repro.core.repeater import practical_design

        design = practical_design(clock_spine, min_buffer)
        assert design.k == int(design.k) and design.k >= 1

    def test_no_worse_than_quantized_continuous(self, clock_spine, min_buffer):
        from repro.core.repeater import practical_design

        system = RepeaterSystem(clock_spine, min_buffer)
        practical = practical_design(clock_spine, min_buffer)
        naive = numerical_optimal_design(clock_spine, min_buffer).quantized()
        assert system.total_delay(practical) <= system.total_delay(naive) * (
            1 + 1e-9
        )

    def test_single_driver_when_line_is_lc(self, min_buffer):
        """On a strongly inductive line splitting buys nothing: k = 1."""
        from repro.core.repeater import practical_design

        line = DriverLineLoad(rt=20.0, lt=100e-9, ct=2e-12)
        design = practical_design(line, min_buffer)
        assert design.k == 1.0

    def test_max_sections_validation(self, clock_spine, min_buffer):
        from repro.core.repeater import practical_design

        with pytest.raises(ParameterError):
            practical_design(clock_spine, min_buffer, max_sections=0)
