"""Tests for repro.core.awe: moment-matched reduced-order models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.awe import awe_delay_50, awe_reduce
from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.core.moments import elmore_delay, two_pole_delay_50
from repro.core.simulate import simulated_delay_50
from repro.errors import AnalysisError, ParameterError


class TestReduction:
    def test_order_one_is_single_pole_elmore(self, overdamped_line):
        """q = 1 matches m0, m1: the pole is -1/ElmoreDelay."""
        model = awe_reduce(overdamped_line, q=1)
        assert model.order == 1
        assert model.poles[0].real == pytest.approx(
            -1.0 / elmore_delay(overdamped_line), rel=1e-9
        )

    def test_conjugate_pole_pairs(self, underdamped_line):
        model = awe_reduce(underdamped_line, q=2)
        assert model.is_stable
        p = np.sort_complex(model.poles)
        assert p[0] == pytest.approx(np.conj(p[1]))

    def test_step_response_is_real_and_settles(self, underdamped_line):
        model = awe_reduce(underdamped_line, q=3)
        t = np.linspace(0.0, 2e-8, 500)
        v = model.step_response(t)
        assert np.all(np.isfinite(v))
        assert v[0] == pytest.approx(0.0, abs=1e-6) or abs(v[0]) < 0.2
        assert v[-1] == pytest.approx(1.0, abs=2e-2)

    def test_transfer_matches_exact_at_low_frequency(self, critical_line):
        model = awe_reduce(critical_line, q=3)
        exact = critical_line.transfer()
        s = np.array([1e7 + 0j, 1e8 + 0j])
        assert np.allclose(model.transfer_at(s), exact(s), rtol=1e-3)

    def test_validation(self, critical_line):
        with pytest.raises(ParameterError):
            awe_reduce(critical_line, q=0)


class TestDelayAccuracy:
    def test_order_ladder_improves_accuracy(self, critical_line):
        """Elmore-ish -> two-pole -> AWE-3: errors shrink monotonically."""
        sim = simulated_delay_50(critical_line, n_segments=120)

        def err(value: float) -> float:
            return abs(value - sim) / sim

        e2 = err(two_pole_delay_50(critical_line))
        e3 = err(awe_delay_50(critical_line, q=3))
        assert e3 < e2
        assert e3 < 0.05

    def test_awe3_competitive_with_eq9_on_loaded_lines(self, overdamped_line):
        sim = simulated_delay_50(overdamped_line, n_segments=100)
        e_awe = abs(awe_delay_50(overdamped_line, q=3) - sim) / sim
        e_eq9 = abs(propagation_delay(overdamped_line) - sim) / sim
        # Both are good in the overdamped regime; AWE must be sane.
        assert e_awe < max(0.05, 2 * e_eq9)

    def test_underdamped_line(self, underdamped_line):
        sim = simulated_delay_50(underdamped_line, n_segments=120)
        got = awe_delay_50(underdamped_line, q=4)
        assert abs(got - sim) / sim < 0.10


class TestFailureModes:
    def test_high_order_instability_is_flagged(self):
        """Some order eventually fails on a distributed line -- the
        classic AWE breakdown must raise, not return garbage."""
        line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        failed = False
        for q in range(3, 10):
            try:
                awe_reduce(line, q=q)
            except AnalysisError:
                failed = True
                break
        assert failed, "expected AWE to break down by order 9"

    def test_every_order_returns_finite_or_raises(self):
        """The ill-conditioning guards: any order up to well past the
        breakdown either yields a finite, stable model or raises a
        clear AnalysisError -- never NaN poles or silent garbage."""
        line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        for q in range(1, 17):
            try:
                model = awe_reduce(line, q=q)
            except AnalysisError as exc:
                assert "order" in str(exc)
                continue
            assert np.all(np.isfinite(model.poles))
            assert np.all(np.isfinite(model.residues))
            assert model.is_stable

    def test_condition_guard_names_the_failure(self):
        """Deep into the breakdown the error message should point at
        the Hankel conditioning (or the unstable-pole check), and the
        documented valid range q ~ 1-8 should actually work up front."""
        line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        sim = simulated_delay_50(line, n_segments=100)
        valid = 0
        for q in range(1, 9):
            try:
                delay = awe_delay_50(line, q=q)
            except AnalysisError:
                continue
            valid += 1
            if q >= 2:  # q=1 is the single-pole Elmore-like estimate
                assert abs(delay - sim) / sim < 0.10
        assert valid >= 4
        with pytest.raises(AnalysisError, match="condition|unstable|order"):
            awe_reduce(line, q=20)
