"""Tests for repro.tline.abcd: two-port algebra and the exact line."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.tline.abcd import (
    TwoPort,
    cosh_theta,
    rlc_line,
    series_impedance,
    series_inductor,
    series_resistor,
    shunt_admittance,
    shunt_capacitor,
    sinhc_theta,
)

S_POINTS = np.array([1e6 + 0j, 1e8 + 5e8j, -2e8 + 1e9j])


class TestHyperbolicHelpers:
    def test_cosh_small_argument_series(self):
        theta_sq = np.array([1e-16 + 0j])
        assert np.allclose(cosh_theta(theta_sq), 1.0 + theta_sq / 2, rtol=1e-14)

    def test_cosh_moderate(self):
        theta_sq = np.array([4.0 + 0j])
        assert np.allclose(cosh_theta(theta_sq), np.cosh(2.0))

    def test_sinhc_small_argument(self):
        theta_sq = np.array([1e-16 + 0j])
        assert np.allclose(sinhc_theta(theta_sq), 1.0 + theta_sq / 6, rtol=1e-14)

    def test_sinhc_moderate(self):
        theta_sq = np.array([9.0 + 0j])
        assert np.allclose(sinhc_theta(theta_sq), np.sinh(3.0) / 3.0)

    def test_branch_independence(self):
        """Even functions of theta: value same for theta_sq on any branch."""
        theta_sq = np.array([-4.0 + 0j])  # theta = 2j
        assert np.allclose(cosh_theta(theta_sq), np.cos(2.0))
        assert np.allclose(sinhc_theta(theta_sq), np.sin(2.0) / 2.0)


class TestElementaryTwoPorts:
    def test_series_impedance_entries(self):
        tp = series_impedance(50.0)
        a, b, c, d = tp.abcd(S_POINTS)
        assert np.allclose(a, 1.0) and np.allclose(d, 1.0)
        assert np.allclose(b, 50.0) and np.allclose(c, 0.0)

    def test_shunt_admittance_entries(self):
        tp = shunt_admittance(0.02)
        a, b, c, d = tp.abcd(S_POINTS)
        assert np.allclose(a, 1.0) and np.allclose(d, 1.0)
        assert np.allclose(b, 0.0) and np.allclose(c, 0.02)

    def test_series_inductor_scales_with_s(self):
        tp = series_inductor(1e-9)
        _, b, _, _ = tp.abcd(S_POINTS)
        assert np.allclose(b, S_POINTS * 1e-9)

    def test_shunt_capacitor_scales_with_s(self):
        tp = shunt_capacitor(1e-12)
        _, _, c, _ = tp.abcd(S_POINTS)
        assert np.allclose(c, S_POINTS * 1e-12)

    def test_negative_value_rejected(self):
        with pytest.raises(ParameterError):
            series_resistor(-1.0)


class TestCascade:
    def test_reciprocity(self):
        """AD - BC == 1 for reciprocal networks, preserved by cascade."""
        network = (
            series_resistor(100.0)
            @ shunt_capacitor(1e-12)
            @ series_inductor(1e-9)
            @ shunt_capacitor(2e-12)
        )
        a, b, c, d = network.abcd(S_POINTS)
        assert np.allclose(a * d - b * c, 1.0)

    def test_rc_divider_transfer(self):
        """R into C: H = 1/(1 + sRC)."""
        network = series_resistor(1000.0)
        h = network.transfer_function(load_admittance=lambda s: s * 1e-12)
        s = np.array([1e9 * 1j])
        expected = 1.0 / (1.0 + s * 1e-9)
        assert np.allclose(h(s), expected)

    def test_cascade_matches_matrix_product(self):
        t1 = series_resistor(10.0)
        t2 = shunt_capacitor(1e-12)
        s = S_POINTS
        a1, b1, c1, d1 = t1.abcd(s)
        a2, b2, c2, d2 = t2.abcd(s)
        a, b, c, d = (t1 @ t2).abcd(s)
        assert np.allclose(a, a1 * a2 + b1 * c2)
        assert np.allclose(d, c1 * b2 + d1 * d2)

    def test_cascade_rejects_non_twoport(self):
        with pytest.raises(ParameterError):
            series_resistor(1.0).cascade(42)  # type: ignore[arg-type]


class TestRlcLine:
    RT, LT, CT = 1000.0, 1e-6, 1e-12

    def test_reciprocity(self):
        line = rlc_line(self.RT, self.LT, self.CT)
        a, b, c, d = line.abcd(S_POINTS)
        assert np.allclose(a * d - b * c, 1.0, rtol=1e-9)

    def test_symmetry(self):
        line = rlc_line(self.RT, self.LT, self.CT)
        a, _, _, d = line.abcd(S_POINTS)
        assert np.allclose(a, d)

    def test_low_frequency_is_lumped(self):
        """As s -> 0 the line looks like series R + shunt C."""
        line = rlc_line(self.RT, self.LT, self.CT)
        s = np.array([1e3 + 0j])
        a, b, c, _ = line.abcd(s)
        assert np.allclose(b, self.RT, rtol=1e-3)
        assert np.allclose(c, s * self.CT, rtol=1e-3)
        assert np.allclose(a, 1.0, rtol=1e-3)

    def test_matches_fine_lumped_cascade(self):
        """The distributed line is the n -> inf limit of lumped sections."""
        line = rlc_line(self.RT, self.LT, self.CT)
        n = 400
        section = (
            series_impedance(lambda s: self.RT / n + s * self.LT / n)
            @ shunt_admittance(lambda s: s * self.CT / n)
        )
        lumped = section
        for _ in range(n - 1):
            lumped = lumped @ section
        s = np.array([2e8j, 1e8 + 1e8j])
        a_exact, b_exact, _, _ = line.abcd(s)
        a_lump, b_lump, _, _ = lumped.abcd(s)
        assert np.allclose(a_exact, a_lump, rtol=2e-2)
        assert np.allclose(b_exact, b_lump, rtol=2e-2)

    def test_requires_shunt_element(self):
        with pytest.raises(ParameterError, match="ct > 0"):
            rlc_line(100.0, 1e-9, 0.0)

    def test_input_impedance_dc_is_resistance(self):
        """DC input impedance with shorted far end ... open: just check
        a resistive line terminated by large admittance ~ Rt."""
        line = rlc_line(self.RT, self.LT, self.CT)
        zin = line.input_impedance(load_admittance=1e6)  # near-short
        z = zin(np.array([1.0 + 0j]))
        assert np.allclose(z, self.RT, rtol=1e-3)
