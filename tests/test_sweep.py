"""Tests for the repro.sweep batch-evaluation engine."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.canonical import DriverLineLoad, omega_n, zeta
from repro.core.delay import (
    lc_limit_delay,
    propagation_delay,
    rc_limit_delay,
    scaled_delay,
)
from repro.core.penalty import (
    area_increase_closed_form,
    delay_increase_closed_form,
)
from repro.core.repeater import (
    Buffer,
    bakoglu_rc_design,
    error_factors,
    inductance_time_ratio,
    optimal_rlc_design,
)
from repro.core.simulate import simulated_delay_50
from repro.errors import ParameterError
from repro.sweep import (
    Axis,
    ParameterGrid,
    Sweep,
    SweepRunner,
    batch_error_factors,
    batch_lt_for_zeta,
    batch_omega_n,
    batch_optimal_rlc_design,
    batch_propagation_delay,
    batch_rc_limit_delay,
    batch_scaled_delay,
    batch_zeta,
)
from repro.technology.nodes import node_by_name


class TestAxis:
    def test_explicit_values_coerced_to_float(self):
        axis = Axis("rt", [1, 2.5, np.float64(3)])
        assert axis.values == (1.0, 2.5, 3.0)
        assert axis.is_numeric

    def test_string_axis(self):
        axis = Axis("node", ["250nm", "180nm"])
        assert axis.values == ("250nm", "180nm")
        assert not axis.is_numeric

    def test_linear_and_log(self):
        assert Axis.linear("x", 0.0, 1.0, 3).values == (0.0, 0.5, 1.0)
        log = Axis.log("x", 1.0, 100.0, 3)
        assert log.values == pytest.approx((1.0, 10.0, 100.0))

    def test_validation(self):
        with pytest.raises(ParameterError):
            Axis("", [1.0])
        with pytest.raises(ParameterError):
            Axis("x", [])
        with pytest.raises(ParameterError):
            Axis("x", [np.inf])
        with pytest.raises(ParameterError):
            Axis.log("x", -1.0, 10.0, 3)
        with pytest.raises(ParameterError, match="mixes numeric"):
            Axis("rt", [10.0, "1o0"])  # a typo'd number, not a name axis

    def test_non_numeric_input_is_a_parameter_error(self):
        from repro.sweep import SweepRunner

        grid = ParameterGrid(Axis("rt", [10.0, 100.0]))
        with pytest.raises(ParameterError, match="must be numeric"):
            SweepRunner().run(
                Sweep(
                    "propagation_delay",
                    grid,
                    fixed={"lt": 1e-9, "ct": "abc"},
                )
            )


class TestParameterGrid:
    def test_cartesian_order_first_axis_slowest(self):
        grid = ParameterGrid(Axis("a", [1.0, 2.0]), Axis("b", [10.0, 20.0, 30.0]))
        assert grid.size == 6 and grid.shape == (2, 3)
        cols = grid.columns()
        assert cols["a"].tolist() == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        assert cols["b"].tolist() == [10.0, 20.0, 30.0, 10.0, 20.0, 30.0]

    def test_zipped_axes_advance_together(self):
        grid = ParameterGrid(
            (Axis("rt", [1.0, 2.0]), Axis("lt", [5.0, 6.0])),
            Axis("ct", [7.0, 8.0]),
        )
        assert grid.size == 4
        cols = grid.columns()
        assert cols["rt"].tolist() == [1.0, 1.0, 2.0, 2.0]
        assert cols["lt"].tolist() == [5.0, 5.0, 6.0, 6.0]
        assert cols["ct"].tolist() == [7.0, 8.0, 7.0, 8.0]

    def test_points_iteration(self):
        grid = ParameterGrid(Axis("a", [1.0]), Axis("n", ["x", "y"]))
        points = list(grid.points())
        assert points == [{"a": 1.0, "n": "x"}, {"a": 1.0, "n": "y"}]

    def test_validation(self):
        with pytest.raises(ParameterError):
            ParameterGrid()
        with pytest.raises(ParameterError):
            ParameterGrid(Axis("a", [1.0]), Axis("a", [2.0]))
        with pytest.raises(ParameterError):
            ParameterGrid((Axis("a", [1.0]), Axis("b", [1.0, 2.0])))


class TestSweepSpec:
    GRID = ParameterGrid(Axis("rt", [1.0, 2.0]))

    def test_fixed_and_axes_must_not_overlap(self):
        with pytest.raises(ParameterError):
            Sweep("zeta", self.GRID, fixed={"rt": 1.0})

    def test_cache_key_is_deterministic(self):
        a = Sweep("zeta", self.GRID, fixed={"lt": 1e-9, "ct": 1e-12})
        b = Sweep("zeta", self.GRID, fixed={"ct": 1e-12, "lt": 1e-9})
        assert a.cache_key() == b.cache_key()

    def test_cache_key_tracks_every_spec_field(self):
        base = Sweep("zeta", self.GRID, fixed={"lt": 1e-9, "ct": 1e-12})
        keys = {
            base.cache_key(),
            Sweep("omega_n", self.GRID, fixed={"lt": 1e-9, "ct": 1e-12}).cache_key(),
            Sweep("zeta", self.GRID, fixed={"lt": 2e-9, "ct": 1e-12}).cache_key(),
            Sweep(
                "zeta",
                ParameterGrid(Axis("rt", [1.0, 3.0])),
                fixed={"lt": 1e-9, "ct": 1e-12},
            ).cache_key(),
        }
        assert len(keys) == 4

    def test_spec_is_json_serializable(self):
        sweep = Sweep(
            "simulated_delay_50",
            self.GRID,
            fixed={"lt": 1e-9, "ct": 1e-12},
            options={"route": "tline"},
        )
        assert json.loads(json.dumps(sweep.spec()))["quantity"] == (
            "simulated_delay_50"
        )


class TestKernelsMatchScalarImplementations:
    """The batch kernels ARE the scalar implementations -- bit for bit."""

    RNG = np.random.default_rng(7)

    def _random_lines(self, n=64):
        rt = np.concatenate([[0.0, 0.0], 10 ** self.RNG.uniform(0, 4, n - 2)])
        lt = 10 ** self.RNG.uniform(-10, -6, n)
        ct = 10 ** self.RNG.uniform(-13, -11, n)
        rtr = np.concatenate([[0.0, 50.0], 10 ** self.RNG.uniform(0, 3, n - 2)])
        cl = np.concatenate([[0.0], 10 ** self.RNG.uniform(-14, -12, n - 1)])
        return rt, lt, ct, rtr, cl

    def test_zeta_and_omega_n(self):
        rt, lt, ct, rtr, cl = self._random_lines()
        z = batch_zeta(rt, lt, ct, rtr, cl)
        w = batch_omega_n(lt, ct, cl)
        for i in range(rt.size):
            assert z[i] == zeta(rt[i], lt[i], ct[i], rtr[i], cl[i])
            assert w[i] == omega_n(lt[i], ct[i], cl[i])

    def test_propagation_delay(self):
        rt, lt, ct, rtr, cl = self._random_lines()
        batch = batch_propagation_delay(rt, lt, ct, rtr, cl)
        for i in range(rt.size):
            line = DriverLineLoad(
                rt=rt[i], lt=lt[i], ct=ct[i], rtr=rtr[i], cl=cl[i]
            )
            # The scalar fast path may differ from the array ufuncs by
            # a few ULP in exp/power; everything else is bitwise.
            assert batch[i] == pytest.approx(
                propagation_delay(line), rel=1e-13
            )

    def test_limit_delays(self):
        rt, lt, ct, rtr, cl = self._random_lines()
        keep = rt > 0
        rc = batch_rc_limit_delay(rt[keep], ct[keep], rtr[keep], cl[keep])
        for i, j in enumerate(np.flatnonzero(keep)):
            line = DriverLineLoad(
                rt=rt[j], lt=lt[j], ct=ct[j], rtr=rtr[j], cl=cl[j]
            )
            assert rc[i] == rc_limit_delay(line)
            assert lc_limit_delay(line) == 1.0 / omega_n(lt[j], ct[j], cl[j])

    def test_scaled_delay_scalar_and_array_round_trip(self):
        zs = np.array([0.0, 0.3, 1.0, 5.0])
        assert np.array_equal(batch_scaled_delay(zs), scaled_delay(zs))
        assert isinstance(scaled_delay(1.0), float)
        with pytest.raises(ParameterError):
            scaled_delay(-0.1)
        with pytest.raises(ParameterError):
            batch_scaled_delay(np.nan)

    def test_repeater_design_kernels(self):
        buffer = Buffer(r0=5000.0, c0=1e-14)
        rts = np.array([100.0, 500.0, 2000.0])
        lts = np.array([1e-8, 1.25e-7, 1e-9])
        cts = np.array([2e-12, 1e-11, 5e-12])
        h, k = batch_optimal_rlc_design(rts, lts, cts, buffer.r0, buffer.c0)
        hp, kp = batch_error_factors(
            np.array(
                [
                    inductance_time_ratio(
                        DriverLineLoad(rt=r, lt=l, ct=c), buffer
                    )
                    for r, l, c in zip(rts, lts, cts)
                ]
            )
        )
        for i in range(rts.size):
            line = DriverLineLoad(rt=rts[i], lt=lts[i], ct=cts[i])
            design = optimal_rlc_design(line, buffer)
            rc = bakoglu_rc_design(line, buffer)
            assert h[i] == pytest.approx(design.h, rel=1e-12)
            assert k[i] == pytest.approx(design.k, rel=1e-12)
            scalar_hp, scalar_kp = error_factors(
                inductance_time_ratio(line, buffer)
            )
            assert hp[i] == pytest.approx(scalar_hp, rel=1e-13)
            assert kp[i] == pytest.approx(scalar_kp, rel=1e-13)
            assert (h[i] / hp[i]) == pytest.approx(rc.h, rel=1e-12)

    def test_penalty_kernels_back_the_closed_forms(self):
        tlrs = np.array([0.0, 1.0, 3.0, 5.0, 10.0])
        delays = delay_increase_closed_form(tlrs)
        areas = area_increase_closed_form(tlrs)
        assert delays[3] == pytest.approx(20.0, abs=2.0)  # paper: ~20% at T=5
        assert areas[3] == pytest.approx(435.0, abs=10.0)  # paper: 435% at T=5
        assert isinstance(delay_increase_closed_form(5.0), float)
        with pytest.raises(ParameterError):
            delay_increase_closed_form(-1.0)

    def test_lt_for_zeta_matches_constructor(self):
        for z, r_ratio, c_ratio in [(0.3, 0.0, 0.0), (1.0, 0.5, 1.0), (2.5, 1.0, 0.25)]:
            line = DriverLineLoad.for_zeta(z, r_ratio=r_ratio, c_ratio=c_ratio)
            assert float(batch_lt_for_zeta(z, r_ratio, c_ratio)) == line.lt

    def test_validation_domains(self):
        with pytest.raises(ParameterError):
            batch_zeta(-1.0, 1e-9, 1e-12)
        with pytest.raises(ParameterError):
            batch_zeta(1.0, 0.0, 1e-12)
        with pytest.raises(ParameterError):
            batch_rc_limit_delay(0.0, 1e-12, rtr=10.0)
        with pytest.raises(ParameterError):
            batch_omega_n(1e-9, -1e-12)


class TestSweepRunner:
    def _sweep(self, values=(100.0, 500.0, 2000.0)):
        grid = ParameterGrid(Axis("rt", values), Axis("lt", [1e-9, 1e-7]))
        return Sweep(
            "propagation_delay",
            grid,
            fixed={"ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
        )

    def test_fresh_run_counts_kernel_evaluations(self):
        runner = SweepRunner()
        result = runner.run(self._sweep())
        assert result.cache_hit is None
        assert runner.stats.kernel_evaluations == 6
        assert runner.stats.misses == 1
        assert result.output("delay_s").shape == (6,)

    def test_memory_cache_hit_skips_evaluation(self):
        runner = SweepRunner()
        runner.run(self._sweep())
        before = runner.stats.kernel_evaluations
        again = runner.run(self._sweep())
        assert again.cache_hit == "memory"
        assert runner.stats.kernel_evaluations == before
        assert runner.stats.memory_hits == 1

    def test_disk_cache_round_trip(self, tmp_path):
        first = SweepRunner(cache_dir=tmp_path)
        fresh = first.run(self._sweep())
        second = SweepRunner(cache_dir=tmp_path)
        replayed = second.run(self._sweep())
        assert replayed.cache_hit == "disk"
        assert second.stats.kernel_evaluations == 0
        assert np.array_equal(replayed.output(), fresh.output())
        assert np.array_equal(
            replayed.columns["rt"], fresh.columns["rt"]
        )

    def test_spec_change_misses_cache(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run(self._sweep())
        changed = runner.run(self._sweep(values=(100.0, 500.0, 2500.0)))
        assert changed.cache_hit is None
        assert runner.stats.misses == 2

    def test_invalidate_and_refresh(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run(self._sweep())
        assert runner.invalidate(self._sweep())
        assert not runner.invalidate(self._sweep())
        result = runner.run(self._sweep())
        assert result.cache_hit is None
        refreshed = runner.run(self._sweep(), refresh=True)
        assert refreshed.cache_hit is None
        assert runner.stats.kernel_evaluations == 18

    def test_memory_lru_eviction(self):
        runner = SweepRunner(memory_entries=1)
        runner.run(self._sweep())
        runner.run(self._sweep(values=(1.0, 2.0, 3.0)))
        evicted = runner.run(self._sweep())
        assert evicted.cache_hit is None  # pushed out by the second sweep

    def test_unknown_quantity_and_missing_inputs(self):
        grid = ParameterGrid(Axis("rt", [1.0]))
        with pytest.raises(ParameterError, match="unknown sweep quantity"):
            SweepRunner().run(Sweep("nope", grid))
        with pytest.raises(ParameterError, match="missing input"):
            SweepRunner().run(Sweep("propagation_delay", grid))
        with pytest.raises(ParameterError, match="takes no options"):
            SweepRunner().run(
                Sweep(
                    "propagation_delay",
                    ParameterGrid(Axis("rt", [1.0])),
                    fixed={"lt": 1e-9, "ct": 1e-12},
                    options={"route": "tline"},
                )
            )

    def test_node_axis_resolution(self):
        grid = ParameterGrid(Axis("node", ["250nm", "180nm"]))
        result = SweepRunner().run(
            Sweep("propagation_delay", grid, fixed={"length": 0.01})
        )
        for i, name in enumerate(("250nm", "180nm")):
            node = node_by_name(name)
            expected = propagation_delay(node.line(0.01))
            assert result.output()[i] == pytest.approx(expected, rel=1e-12)
        tlr_result = SweepRunner().run(Sweep("area_increase_percent", grid))
        expected_tlr = node_by_name("250nm").tlr()
        assert tlr_result.columns["tlr"][0] == pytest.approx(
            expected_tlr, rel=1e-12
        )

    def test_derivation_conflicts_are_rejected(self):
        zeta_grid = ParameterGrid(Axis("zeta", [0.5]))
        with pytest.raises(ParameterError, match="derivation computes"):
            SweepRunner().run(
                Sweep("propagation_delay", zeta_grid, fixed={"rtr": 50.0})
            )
        node_grid = ParameterGrid(Axis("node", ["250nm"]))
        with pytest.raises(ParameterError, match="derivation computes"):
            SweepRunner().run(
                Sweep(
                    "propagation_delay",
                    node_grid,
                    fixed={"length": 0.01, "rt": 999.0},
                )
            )

    def test_unknown_simulator_route_is_a_parameter_error(self):
        grid = ParameterGrid(Axis("zeta", [0.5]))
        with pytest.raises(ParameterError, match="unknown simulator route"):
            SweepRunner().run(
                Sweep("simulated_delay_50", grid, options={"route": "bogus"})
            )

    def test_result_arrays_are_read_only(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        result = runner.run(self._sweep())
        with pytest.raises(ValueError):
            result.output()[0] = 0.0
        with pytest.raises(ValueError):
            result.columns["rt"][0] = 0.0
        replayed = SweepRunner(cache_dir=tmp_path).run(self._sweep())
        with pytest.raises(ValueError):
            replayed.output()[0] = 0.0
        assert result.output().copy().flags.writeable

    def test_to_table_truncation(self):
        result = SweepRunner().run(self._sweep())
        table = result.to_table(max_rows=3)
        assert len(table.rows) == 3
        assert table.headers[-1] == "delay_s"
        assert any("showing 3 of 6 rows" in note for note in table.notes)

    def test_unknown_simulator_backend_is_a_parameter_error(self):
        grid = ParameterGrid(Axis("zeta", [0.5]))
        with pytest.raises(ParameterError, match="unknown simulation backend"):
            SweepRunner().run(
                Sweep("simulated_delay_50", grid, options={"backend": "bogus"})
            )

    # -- disk-cache validation (stale / hand-edited files) -----------------

    def _cache_file(self, tmp_path):
        files = list(tmp_path.glob("sweep-*.json"))
        assert len(files) == 1
        return files[0]

    def _tampered_replay(self, tmp_path, mutate):
        """Seed the disk cache, corrupt it with ``mutate``, replay."""
        fresh = SweepRunner(cache_dir=tmp_path).run(self._sweep())
        path = self._cache_file(tmp_path)
        payload = json.loads(path.read_text())
        mutate(payload)
        path.write_text(json.dumps(payload))
        replayer = SweepRunner(cache_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="ignoring sweep cache file"):
            replayed = replayer.run(self._sweep())
        assert replayed.cache_hit is None  # fell back to re-evaluation
        assert replayer.stats.disk_invalid == 1
        assert replayer.stats.kernel_evaluations == 6
        assert np.array_equal(replayed.output(), fresh.output())
        return replayer

    def test_tampered_axis_values_are_rejected(self, tmp_path):
        def mutate(payload):
            payload["columns"]["rt"][0] = 123.456

        self._tampered_replay(tmp_path, mutate)

    def test_truncated_output_is_rejected(self, tmp_path):
        def mutate(payload):
            payload["outputs"]["delay_s"] = payload["outputs"]["delay_s"][:-1]

        self._tampered_replay(tmp_path, mutate)

    def test_missing_axis_column_is_rejected(self, tmp_path):
        def mutate(payload):
            del payload["columns"]["lt"]

        self._tampered_replay(tmp_path, mutate)

    def test_injected_extra_column_is_rejected(self, tmp_path):
        def mutate(payload):
            payload["columns"]["phantom"] = payload["columns"]["rt"]

        self._tampered_replay(tmp_path, mutate)

    def test_tampered_derived_column_is_rejected(self, tmp_path):
        # Non-axis columns (fixed/derived inputs) are validated too.
        def mutate(payload):
            payload["columns"]["ct"] = [9e-9] * len(payload["columns"]["rt"])

        self._tampered_replay(tmp_path, mutate)

    def test_renamed_output_is_rejected(self, tmp_path):
        def mutate(payload):
            payload["outputs"]["wrong_name"] = payload["outputs"].pop("delay_s")

        self._tampered_replay(tmp_path, mutate)

    def test_valid_replay_stays_silent(self, tmp_path):
        SweepRunner(cache_dir=tmp_path).run(self._sweep())
        replayer = SweepRunner(cache_dir=tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            replayed = replayer.run(self._sweep())
        assert replayed.cache_hit == "disk"
        assert replayer.stats.disk_invalid == 0


class TestAtomicDiskCache:
    def _sweep(self):
        grid = ParameterGrid(Axis("rt", [100.0, 500.0]))
        return Sweep("propagation_delay", grid, fixed={"lt": 1e-6, "ct": 1e-12})

    def test_no_tmp_litter_after_store(self, tmp_path):
        SweepRunner(cache_dir=tmp_path).run(self._sweep())
        assert list(tmp_path.glob("sweep-*.json"))
        assert not list(tmp_path.glob("sweep-*.tmp"))

    def test_stale_tmp_file_is_ignored_and_cleared(self, tmp_path):
        # A crash between write and rename leaves only a *.tmp file;
        # _load must treat the cache as a miss and clear() must sweep
        # the leftover away.
        runner = SweepRunner(cache_dir=tmp_path)
        first = runner.run(self._sweep())
        path = next(tmp_path.glob("sweep-*.json"))
        stale = path.with_suffix(".123.456.tmp")
        path.rename(stale)  # simulate: publish never happened
        fresh = SweepRunner(cache_dir=tmp_path).run(self._sweep())
        assert fresh.cache_hit is None
        assert np.array_equal(fresh.output(), first.output())
        runner.clear()
        assert not list(tmp_path.glob("sweep-*.tmp"))

    def test_truncated_payload_is_replayed_safely(self, tmp_path):
        # Even a torn *published* file (e.g. pre-fsync kernels) must not
        # poison the runner: it re-evaluates instead of crashing.
        SweepRunner(cache_dir=tmp_path).run(self._sweep())
        path = next(tmp_path.glob("sweep-*.json"))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        result = SweepRunner(cache_dir=tmp_path).run(self._sweep())
        assert result.cache_hit is None

    def test_failed_write_leaves_no_partial_cache(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_mod

        def exploding_fsync(fd):
            raise OSError("disk full")

        monkeypatch.setattr(runner_mod.os, "fsync", exploding_fsync)
        runner = SweepRunner(cache_dir=tmp_path)
        with pytest.raises(OSError, match="disk full"):
            runner.run(self._sweep())
        assert not list(tmp_path.glob("sweep-*"))


class TestSimulatedFanOut:
    def _sweep(self):
        grid = ParameterGrid(
            Axis("zeta", [0.5, 2.0]), Axis("r_ratio", [0.0, 1.0])
        )
        return Sweep(
            "simulated_delay_50",
            grid,
            fixed={"c_ratio": 0.5},
            options={"route": "tline", "n_segments": 20, "n_samples": 1501},
        )

    def test_matches_direct_simulation(self):
        runner = SweepRunner(max_workers=1)
        result = runner.run(self._sweep())
        assert runner.stats.simulator_evaluations == 4
        line = DriverLineLoad.for_zeta(2.0, r_ratio=1.0, c_ratio=0.5)
        direct = simulated_delay_50(
            line, route="tline", n_segments=20, n_samples=1501
        )
        assert result.output()[3] == pytest.approx(direct, rel=1e-12)

    def test_worker_pool_agrees_with_serial(self):
        serial = SweepRunner(max_workers=1).run(self._sweep())
        pooled = SweepRunner(max_workers=3, executor="thread").run(self._sweep())
        assert np.array_equal(serial.output(), pooled.output())

    def _mna_sweep(self, n_points=5, options=None):
        grid = ParameterGrid(Axis.log("rt", 200.0, 2000.0, n_points))
        opts = {"route": "mna", "n_segments": 12, "n_samples": 401}
        opts.update(options or {})
        return Sweep(
            "simulated_delay_50",
            grid,
            fixed={"lt": 1e-6, "ct": 1e-12, "rtr": 100.0, "cl": 1e-13},
            options=opts,
        )

    def test_mna_batch_route_matches_per_point(self):
        """The chunked template path reproduces scalar evaluations."""
        result = SweepRunner(max_workers=1).run(self._mna_sweep())
        for rt, delay in zip(result.columns["rt"], result.output()):
            line = DriverLineLoad(rt=rt, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
            direct = simulated_delay_50(
                line, route="mna", n_segments=12, n_samples=401
            )
            assert delay == pytest.approx(direct, rel=1e-12)

    def test_mna_mixed_structure_classes(self):
        """cl = 0 and cl > 0 points split into structure classes."""
        grid = ParameterGrid(
            (Axis("rt", [500.0, 500.0, 900.0]), Axis("cl", [0.0, 1e-13, 0.0]))
        )
        sweep = Sweep(
            "simulated_delay_50",
            grid,
            fixed={"lt": 1e-6, "ct": 1e-12, "rtr": 100.0},
            options={"route": "mna", "n_segments": 10, "n_samples": 301},
        )
        result = SweepRunner(max_workers=1).run(sweep)
        for rt, cl, delay in zip(
            result.columns["rt"], result.columns["cl"], result.output()
        ):
            line = DriverLineLoad(rt=rt, lt=1e-6, ct=1e-12, rtr=100.0, cl=cl)
            direct = simulated_delay_50(
                line, route="mna", n_segments=10, n_samples=301
            )
            assert delay == pytest.approx(direct, rel=1e-12)

    def test_chunked_pool_agrees_with_serial_mna(self):
        serial = SweepRunner(max_workers=1).run(self._mna_sweep())
        pooled = SweepRunner(max_workers=3, executor="thread").run(
            self._mna_sweep()
        )
        assert np.array_equal(serial.output(), pooled.output())

    def test_chunk_partition_covers_all_points_in_order(self):
        from repro.sweep import runner as runner_mod

        recorded = []
        original = runner_mod._simulate_chunk

        def tracking(payload):
            columns, options = payload
            recorded.append(len(next(iter(columns.values()))))
            return original(payload)

        runner = SweepRunner(max_workers=2)
        sweep = self._mna_sweep(n_points=5)
        try:
            runner_mod._simulate_chunk = tracking
            result = runner.run(sweep)
        finally:
            runner_mod._simulate_chunk = original
        assert sum(recorded) == 5
        assert len(recorded) >= 2  # chunked, not one monolithic payload
        # Order preserved: strictly increasing rt maps to its own delay.
        ref = SweepRunner(max_workers=1).run(self._mna_sweep(n_points=5))
        assert np.array_equal(result.output(), ref.output())

    def test_mna_route_accepts_backend_option(self):
        grid = ParameterGrid(Axis("zeta", [1.0]))
        results = {}
        for backend in ("dense", "sparse"):
            sweep = Sweep(
                "simulated_delay_50",
                grid,
                fixed={"r_ratio": 0.5, "c_ratio": 0.5},
                options={
                    "route": "mna",
                    "n_segments": 12,
                    "n_samples": 801,
                    "backend": backend,
                },
            )
            results[backend] = SweepRunner(max_workers=1).run(sweep).output()[0]
        assert results["sparse"] == pytest.approx(results["dense"], rel=1e-9)


class TestSweepCli:
    def test_list_quantities(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "propagation_delay" in out and "simulated_delay_50" in out

    def test_basic_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "propagation_delay",
                "--axis",
                "rt=log:100:5000:3",
                "--axis",
                "lt=1e-9,1e-8",
                "--fixed",
                "ct=1e-12",
                "--fixed",
                "rtr=100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXP-SWEEP" in out and "delay_s" in out
        assert "6 grid points" in out

    def test_zipped_axes(self, capsys):
        code = main(
            [
                "sweep",
                "propagation_delay",
                "--axis",
                "rt=100,200",
                "--axis",
                "lt=1e-9,2e-9",
                "--zip",
                "rt,lt",
                "--fixed",
                "ct=1e-12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 grid points" in out

    def test_node_axis(self, capsys):
        code = main(
            [
                "sweep",
                "propagation_delay",
                "--axis",
                "node=250nm,180nm",
                "--fixed",
                "length=0.01",
            ]
        )
        assert code == 0
        assert "250nm" in capsys.readouterr().out

    def test_disk_cache_across_invocations(self, capsys, tmp_path):
        argv = [
            "sweep",
            "zeta",
            "--axis",
            "rt=lin:100:1000:4",
            "--fixed",
            "lt=1e-8",
            "--fixed",
            "ct=1e-12",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        assert "cache=miss" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache=disk" in capsys.readouterr().out

    def test_missing_quantity(self, capsys):
        assert main(["sweep"]) == 2
        assert "quantity is required" in capsys.readouterr().err

    def test_unknown_quantity(self, capsys):
        assert main(["sweep", "nope", "--axis", "rt=1,2"]) == 2
        assert "unknown sweep quantity" in capsys.readouterr().err

    def test_bad_axis_spec(self, capsys):
        assert main(["sweep", "zeta", "--axis", "rt"]) == 2
        assert "bad axis" in capsys.readouterr().err

    def test_bad_zip(self, capsys):
        code = main(
            ["sweep", "zeta", "--axis", "rt=1,2", "--zip", "rt,missing"]
        )
        assert code == 2
        assert "bad --zip" in capsys.readouterr().err


class TestAnalysisIntegration:
    def test_delay_versus_length_engine_equals_loop(self):
        from repro.analysis.length_dependence import delay_versus_length

        lengths = np.geomspace(1e-3, 1e-2, 5)
        r, l, c = 2000.0, 3e-7, 1.8e-10
        engine = delay_versus_length(r, l, c, lengths, rtr=10.0, cl=1e-14)
        loop = delay_versus_length(
            r,
            l,
            c,
            lengths,
            rtr=10.0,
            cl=1e-14,
            delay_function=lambda line: propagation_delay(line),
        )
        np.testing.assert_allclose(engine, loop, rtol=1e-13)

    def test_sensitivity_batch_equals_loop(self, underdamped_line):
        from repro.analysis.sensitivity import delay_elasticities

        batched = delay_elasticities(underdamped_line)
        looped = delay_elasticities(
            underdamped_line,
            delay_function=lambda line: propagation_delay(line),
        )
        for name in batched:
            assert batched[name] == pytest.approx(looped[name], rel=1e-9)

    def test_collapse_spread_runs_through_runner(self):
        from repro.analysis.zeta_collapse import collapse_spread

        runner = SweepRunner(max_workers=2)
        points = collapse_spread(
            [0.5, 2.0],
            ratio_grid=(0.0, 1.0),
            n_segments=20,
            runner=runner,
        )
        assert runner.stats.simulator_evaluations == 8
        assert len(points) == 2
        assert points[0].minimum <= points[0].mean <= points[0].maximum
        again = collapse_spread(
            [0.5, 2.0], ratio_grid=(0.0, 1.0), n_segments=20, runner=runner
        )
        assert runner.stats.simulator_evaluations == 8  # cache hit
        assert again[0].mean == points[0].mean
