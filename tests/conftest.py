"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.canonical import DriverLineLoad
from repro.core.repeater import Buffer


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for property-based tests.

    Override the seed with ``REPRO_TEST_SEED`` to reproduce a failing
    draw (failed assertions should include the seed in their message).
    """
    seed = int(os.environ.get("REPRO_TEST_SEED", "20260808"))
    return np.random.default_rng(seed)


@pytest.fixture
def underdamped_line() -> DriverLineLoad:
    """A strongly inductive Table 1 case (zeta ~ 0.34, overshoots)."""
    return DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)


@pytest.fixture
def overdamped_line() -> DriverLineLoad:
    """An RC-dominated Table 1 case (zeta ~ 7, no overshoot)."""
    return DriverLineLoad(rt=1000.0, lt=1e-8, ct=1e-12, rtr=500.0, cl=5e-13)


@pytest.fixture
def critical_line() -> DriverLineLoad:
    """A case near critical damping (zeta ~ 1.07)."""
    return DriverLineLoad(rt=1000.0, lt=1e-7, ct=1e-12, rtr=100.0, cl=1e-13)


@pytest.fixture
def clock_spine() -> DriverLineLoad:
    """A realistic 50 mm global clock wire (T_{L/R} = 5 with min_buffer)."""
    return DriverLineLoad(rt=500.0, lt=125e-9, ct=10e-12)


@pytest.fixture
def min_buffer() -> Buffer:
    """A 0.25 um-flavored minimum buffer (R0*C0 = 50 ps ... 5e-11 s)."""
    return Buffer(r0=5000.0, c0=1e-14)
