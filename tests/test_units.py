"""Tests for repro.units."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_time_constants(self):
        assert units.PS == 1e-12
        assert units.NS == 1e-9
        assert units.FS == 1e-15

    def test_impedance_constants(self):
        assert units.PF == 1e-12
        assert units.NH == 1e-9
        assert units.KILOOHM == 1e3

    def test_length_constants(self):
        assert units.UM == 1e-6
        assert units.MM == 1e-3

    def test_composable(self):
        assert 500 * units.OHM == 500.0
        assert 1 * units.PF == 1e-12


class TestSiScale:
    def test_picoseconds(self):
        scaled, prefix = units.si_scale(2.2e-12)
        assert prefix == "p"
        assert math.isclose(scaled, 2.2)

    def test_kilo(self):
        scaled, prefix = units.si_scale(5000.0)
        assert prefix == "k"
        assert math.isclose(scaled, 5.0)

    def test_unity(self):
        scaled, prefix = units.si_scale(1.0)
        assert prefix == ""
        assert scaled == 1.0

    def test_zero_unscaled(self):
        assert units.si_scale(0.0) == (0.0, "")

    def test_nan_unscaled(self):
        scaled, prefix = units.si_scale(float("nan"))
        assert math.isnan(scaled)
        assert prefix == ""

    def test_negative_values(self):
        scaled, prefix = units.si_scale(-3.3e-9)
        assert prefix == "n"
        assert math.isclose(scaled, -3.3)

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False))
    def test_scaled_magnitude_in_band(self, value):
        scaled, _ = units.si_scale(value)
        assert 1.0 <= abs(scaled) < 1000.0 or value < 1e-15

    @given(st.floats(min_value=1e-15, max_value=1e12, allow_nan=False))
    def test_round_trip(self, value):
        scaled, prefix = units.si_scale(value)
        factors = {p: f for f, p in units._SI_PREFIXES}
        assert math.isclose(scaled * factors[prefix], value, rel_tol=1e-12)


class TestFormatting:
    def test_format_si(self):
        assert units.format_si(1.48e-9, "s") == "1.48 ns"

    def test_format_si_no_unit(self):
        assert units.format_si(2500.0) == "2.5 k"

    def test_format_si_digits(self):
        assert units.format_si(1234.5678, "Hz", digits=6) == "1.23457 kHz"

    def test_format_percent(self):
        assert units.format_percent(0.0534) == "5.34%"

    def test_format_percent_digits(self):
        assert units.format_percent(0.3, digits=2) == "30%"
