"""Tests for the N-line coupled bus subsystem (repro.bus)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bus import (
    analyze_bus,
    batch_delay_50,
    evenly_spread_shields,
    shield_tradeoff,
    simulate_bus,
)
from repro.bus import (
    BusSpec,
    LineSwitch,
    build_bus_circuit,
    even_pattern,
    odd_pattern,
    quiet_victim_pattern,
    solo_pattern,
)
from repro.errors import ParameterError
from repro.spice.coupled import (
    CoupledLadderSpec,
    VictimMode,
    build_coupled_ladder_circuit,
)
from repro.spice.netlist import Circuit, Step
from repro.spice.transient import simulate_transient

SPEC3 = dict(
    rt=100.0, lt=25e-9, ct=2e-12, cct=1e-12, km=0.5,
    rtr=50.0, cl=5e-14, n_segments=6,
)


class TestPatterns:
    def test_even(self):
        assert even_pattern(3) == (LineSwitch.RISE,) * 3

    def test_odd(self):
        assert odd_pattern(3, 1) == (
            LineSwitch.FALL, LineSwitch.RISE, LineSwitch.FALL,
        )

    def test_quiet_victim(self):
        assert quiet_victim_pattern(3, 0) == (
            LineSwitch.QUIET, LineSwitch.RISE, LineSwitch.RISE,
        )

    def test_solo(self):
        assert solo_pattern(3, 2) == (
            LineSwitch.QUIET, LineSwitch.QUIET, LineSwitch.RISE,
        )

    def test_bad_victim_index(self):
        with pytest.raises(ParameterError):
            odd_pattern(3, 3)
        with pytest.raises(ParameterError):
            quiet_victim_pattern(3, -1)

    def test_normalize_broadcast_and_strings(self):
        spec = BusSpec(n_lines=2, **SPEC3)
        assert spec.normalized_pattern("rise") == (LineSwitch.RISE,) * 2
        assert spec.normalized_pattern(("fall", LineSwitch.HIGH)) == (
            LineSwitch.FALL, LineSwitch.HIGH,
        )

    def test_normalize_rejects_bad_entries(self):
        spec = BusSpec(n_lines=2, **SPEC3)
        with pytest.raises(ParameterError):
            spec.normalized_pattern(("rise",))
        with pytest.raises(ParameterError):
            spec.normalized_pattern(("rise", "wiggle"))


class TestBusSpec:
    def test_scalar_broadcast(self):
        spec = BusSpec(n_lines=3, **SPEC3)
        assert spec.rt == (100.0,) * 3
        assert spec.rtr == (50.0,) * 3

    def test_per_line_sequences(self):
        spec = BusSpec(
            n_lines=2, **{**SPEC3, "rt": (100.0, 200.0), "rtr": (50.0, 25.0)}
        )
        assert spec.rt == (100.0, 200.0)
        assert spec.rtr == (50.0, 25.0)

    def test_sequence_length_mismatch(self):
        with pytest.raises(ParameterError):
            BusSpec(n_lines=3, **{**SPEC3, "rt": (100.0, 200.0)})

    @pytest.mark.parametrize(
        "overrides",
        [
            {"km": 1.0},
            {"cct": -1e-15},
            {"coupling_range": 0},
            {"cct_decay": 1.5},
            {"rtr_shield": 0.0},
            {"n_segments": 0},
        ],
    )
    def test_domain_errors(self, overrides):
        with pytest.raises(ParameterError):
            BusSpec(n_lines=2, **{**SPEC3, **overrides})

    def test_bad_n_lines(self):
        with pytest.raises(ParameterError):
            BusSpec(n_lines=0, **SPEC3)

    def test_shield_slots(self):
        spec = BusSpec(n_lines=3, **SPEC3, shields=(1, 3))
        assert spec.n_physical == 5
        assert spec.signal_slots == (0, 2, 4)
        assert spec.slot_of_line(1) == 2
        assert spec.is_shield_slot(1) and not spec.is_shield_slot(2)
        assert spec.output_node(2) == "b4_6"

    def test_shield_slot_validation(self):
        with pytest.raises(ParameterError):
            BusSpec(n_lines=2, **SPEC3, shields=(0, 0))
        with pytest.raises(ParameterError):
            BusSpec(n_lines=2, **SPEC3, shields=(3,))

    def test_with_shields(self):
        spec = BusSpec(n_lines=4, **SPEC3)
        shielded = spec.with_shields((2,))
        assert shielded.shields == (2,)
        assert shielded.n_physical == 5
        assert spec.shields == ()

    def test_shield_rlc_defaults_to_mean(self):
        spec = BusSpec(
            n_lines=2, **{**SPEC3, "rt": (100.0, 300.0)}, shields=(1,)
        )
        assert spec.slot_rlc(1)[0] == pytest.approx(200.0)

    def test_shield_rlc_override(self):
        spec = BusSpec(
            n_lines=2, **SPEC3, shields=(1,), shield_rlc=(10.0, 1e-9, 1e-13)
        )
        assert spec.slot_rlc(1) == (10.0, 1e-9, 1e-13)

    def test_coupling_terms_nearest_neighbor(self):
        spec = BusSpec(n_lines=3, **SPEC3)
        terms = list(spec.coupling_terms())
        assert [(p, q) for p, q, _, _ in terms] == [(0, 1), (1, 2)]
        assert all(c == SPEC3["cct"] and k == SPEC3["km"] for _, _, c, k in terms)

    def test_coupling_terms_range_and_decay(self):
        spec = BusSpec(
            n_lines=3, **SPEC3, coupling_range=2, cct_decay=0.25, km_decay=0.5
        )
        terms = {(p, q): (c, k) for p, q, c, k in spec.coupling_terms()}
        assert set(terms) == {(0, 1), (1, 2), (0, 2)}
        c2, k2 = terms[(0, 2)]
        assert c2 == pytest.approx(0.25 * SPEC3["cct"])
        assert k2 == pytest.approx(0.5 * SPEC3["km"])


def _legacy_coupled_circuit(
    spec: CoupledLadderSpec, mode: VictimMode, v_step: float = 1.0
) -> Circuit:
    """The pre-bus two-line builder, frozen here as the reference.

    Copied verbatim from the original ``repro.spice.coupled`` so the
    bus-based reimplementation is pinned to the historical netlist.
    """
    n = spec.n_segments
    ckt = Circuit("legacy coupled pair")
    ckt.add_voltage_source("vina", "ina", "0", Step(0.0, v_step))
    ckt.add_resistor("rtra", "ina", "a0", spec.rtr_aggressor)
    if mode is VictimMode.QUIET:
        victim_wave = Step(0.0, 0.0)
    elif mode is VictimMode.EVEN:
        victim_wave = Step(0.0, v_step)
    else:
        victim_wave = Step(v_step, 0.0)
    ckt.add_voltage_source("vinv", "inv", "0", victim_wave)
    ckt.add_resistor("rtrv", "inv", "v0", spec.rtr_victim)
    r_seg, l_seg = spec.rt / n, spec.lt / n
    c_seg, cc_seg = spec.ct / n, spec.cct / n
    for prefix in ("a", "v"):
        for i in range(n):
            ckt.add_resistor(
                f"r{prefix}{i + 1}", f"{prefix}{i}", f"x{prefix}{i + 1}", r_seg
            )
            ckt.add_inductor(
                f"l{prefix}{i + 1}", f"x{prefix}{i + 1}", f"{prefix}{i + 1}", l_seg
            )
    weights = [1.0] * (n + 1)
    weights[0] = weights[n] = 0.5
    for i, w in enumerate(weights):
        for prefix in ("a", "v"):
            ckt.add_capacitor(f"cg{prefix}{i}", f"{prefix}{i}", "0", w * c_seg)
        if spec.cct > 0:
            ckt.add_capacitor(f"cc{i}", f"a{i}", f"v{i}", w * cc_seg)
    if spec.cl > 0:
        ckt.add_capacitor("cla", spec.aggressor_output, "0", spec.cl)
        ckt.add_capacitor("clv", spec.victim_output, "0", spec.cl)
    if spec.km > 0:
        for i in range(1, n + 1):
            ckt.add_mutual_inductance(f"k{i}", f"la{i}", f"lv{i}", spec.km)
    return ckt


class TestLegacyAgreement:
    """The bus builder must reproduce the historical two-line netlist."""

    SPEC = CoupledLadderSpec(
        rt=100.0, lt=25e-9, ct=2e-12, cct=1e-12, km=0.5,
        rtr_aggressor=50.0, rtr_victim=80.0, cl=5e-14, n_segments=6,
    )

    @pytest.mark.parametrize("mode", list(VictimMode))
    def test_states_match_legacy_path(self, mode):
        window, dt = 2e-9, 1e-12
        new = simulate_transient(
            build_coupled_ladder_circuit(self.SPEC, mode=mode),
            t_stop=window, dt=dt, backend="dense",
        )
        old = simulate_transient(
            _legacy_coupled_circuit(self.SPEC, mode),
            t_stop=window, dt=dt, backend="dense",
        )
        new_nodes = set(new.system.node_index)
        old_nodes = set(old.system.node_index)
        assert new_nodes == old_nodes
        scale = float(np.max(np.abs(old.states)))
        worst = 0.0
        for node in old_nodes:
            va = new.states[:, new.system.voltage_row(node)]
            vb = old.states[:, old.system.voltage_row(node)]
            worst = max(worst, float(np.max(np.abs(va - vb))) / scale)
        assert worst <= 1e-9

    def test_output_node_names_preserved(self):
        ckt = build_coupled_ladder_circuit(self.SPEC)
        nodes = set(ckt.node_names())
        assert self.SPEC.aggressor_output in nodes
        assert self.SPEC.victim_output in nodes

    def test_as_bus_spec(self):
        bus = self.SPEC.as_bus_spec()
        assert bus.n_lines == 2
        assert bus.rtr == (50.0, 80.0)
        assert bus.cct == self.SPEC.cct and bus.km == self.SPEC.km


class TestBuilder:
    def test_prefix_validation(self):
        spec = BusSpec(n_lines=2, **SPEC3)
        with pytest.raises(ParameterError):
            build_bus_circuit(spec, prefixes=("a",))
        with pytest.raises(ParameterError):
            build_bus_circuit(spec, prefixes=("a", "a"))

    def test_shield_elements_present(self):
        spec = BusSpec(n_lines=2, **SPEC3, shields=(1,))
        ckt = build_bus_circuit(spec)
        names = {e.name for e in ckt.elements}
        assert "rshb1_" in names and "rshfb1_" in names
        # Shields carry no driver source.
        assert "vinb1_" not in names

    def test_zero_coupling_adds_no_elements(self):
        spec = BusSpec(n_lines=2, **{**SPEC3, "cct": 0.0, "km": 0.0})
        ckt = build_bus_circuit(spec)
        assert not ckt.mutual_inductances
        assert not [e.name for e in ckt.elements if e.name.startswith("cc")]

    def test_circuit_validates_and_simulates(self):
        spec = BusSpec(n_lines=3, **SPEC3, shields=(2,))
        ckt = build_bus_circuit(spec, odd_pattern(3, 1))
        ckt.validate()
        result = simulate_transient(ckt, t_stop=1e-9, dt=1e-12, backend="auto")
        assert np.all(np.isfinite(result.states))


class TestBatchDelay50:
    def test_matches_waveform_measurement(self):
        times = np.linspace(0.0, 10.0, 2001)
        rising = 1.0 - np.exp(-times)
        falling = np.exp(-times)
        voltages = np.stack([rising, falling], axis=1)
        delays = batch_delay_50(times, voltages, rising=(True, False))
        assert delays[0] == pytest.approx(math.log(2.0), rel=1e-5)
        assert delays[1] == pytest.approx(math.log(2.0), rel=1e-5)

    def test_nan_when_no_crossing(self):
        times = np.linspace(0.0, 1.0, 100)
        voltages = np.full((100, 1), 0.1)
        assert math.isnan(batch_delay_50(times, voltages)[0])

    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            batch_delay_50(np.linspace(0, 1, 10), np.zeros((5, 2)))


class TestSimulateBus:
    def test_waveforms_shape_and_delays(self):
        spec = BusSpec(n_lines=3, **SPEC3)
        waves = simulate_bus(spec, solo_pattern(3, 1))
        assert waves.voltages.shape == (waves.times.size, 3)
        delays = waves.delays_50()
        assert math.isnan(delays[0]) and math.isnan(delays[2])
        assert delays[1] > 0

    def test_falling_line_measured_on_falling_edge(self):
        spec = BusSpec(n_lines=2, **SPEC3)
        waves = simulate_bus(spec, ("rise", "fall"))
        delays = waves.delays_50()
        assert np.all(np.isfinite(delays))

    def test_window_validation(self):
        spec = BusSpec(n_lines=2, **SPEC3)
        with pytest.raises(ParameterError):
            simulate_bus(spec, window=-1.0)


class TestAnalyzeBus:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_bus(BusSpec(n_lines=3, **SPEC3))

    def test_metrics_are_physical(self, report):
        assert report.victim == 1
        assert report.victim_peak_noise > 0.0
        assert report.victim_min_noise <= 0.0
        assert report.delay_solo > 0
        assert report.worst_delay >= min(report.delay_even, report.delay_odd)
        assert report.worst_pattern in ("even", "odd")

    def test_spread_and_pushout_consistent(self, report):
        assert report.delay_push_out == pytest.approx(
            (report.worst_delay - report.delay_solo) / report.delay_solo
        )
        assert report.delay_spread == pytest.approx(
            (report.delay_odd - report.delay_even) / report.delay_solo
        )

    def test_victim_validation(self):
        spec = BusSpec(n_lines=3, **SPEC3)
        with pytest.raises(ParameterError):
            analyze_bus(spec, victim=3)

    def test_two_line_matches_crosstalk_report(self):
        """The 2-line bus must agree with the legacy pair analysis."""
        from repro.analysis.crosstalk import analyze_crosstalk

        pair = CoupledLadderSpec(
            rt=100.0, lt=25e-9, ct=2e-12, cct=1e-12, km=0.5,
            rtr_aggressor=50.0, rtr_victim=50.0, cl=5e-14, n_segments=6,
        )
        window, dt = 6e-9, 1.5e-12
        legacy = analyze_crosstalk(pair, window=window, dt=dt)
        report = analyze_bus(pair.as_bus_spec(), victim=0, window=window, dt=dt)
        # Identical circuits on an identical grid: the victim-0 even/odd
        # delays are the legacy aggressor delays under the same modes.
        assert report.delay_even == pytest.approx(
            legacy.aggressor_delay_even, rel=1e-9
        )
        assert report.delay_odd == pytest.approx(
            legacy.aggressor_delay_odd, rel=1e-9
        )


class TestShields:
    def test_shield_cuts_victim_noise(self):
        spec = BusSpec(n_lines=3, **SPEC3)
        bare = analyze_bus(spec)
        shielded = analyze_bus(spec.with_shields(evenly_spread_shields(3, 1)))
        assert (
            shielded.worst_noise_magnitude < 0.7 * bare.worst_noise_magnitude
        )

    def test_evenly_spread_shields(self):
        assert evenly_spread_shields(8, 0) == ()
        assert evenly_spread_shields(8, 1) == (4,)
        assert evenly_spread_shields(8, 3) == (2, 5, 8)
        assert evenly_spread_shields(3, 2) == (1, 3)

    def test_evenly_spread_shields_validation(self):
        with pytest.raises(ParameterError):
            evenly_spread_shields(3, 3)
        with pytest.raises(ParameterError):
            evenly_spread_shields(0, 0)
        with pytest.raises(ParameterError):
            evenly_spread_shields(3, -1)

    def test_shield_tradeoff_replaces_shields(self):
        spec = BusSpec(n_lines=3, **SPEC3, shields=(1,))
        results = shield_tradeoff(spec, shield_counts=(0,))
        shielded, report = results[0]
        assert shielded.shields == ()
        assert report.n_shields == 0
