"""Tests for the documentation build and docs/README drift guards."""

from __future__ import annotations

import importlib.util
import pathlib
import re

import pytest

from repro.experiments import REGISTRY

REPO_ROOT = pathlib.Path(__file__).parent.parent
README = REPO_ROOT / "README.md"


@pytest.fixture(scope="module")
def docs_build():
    """The ``docs/build.py`` module, imported by path (docs/ is not a
    package)."""
    spec = importlib.util.spec_from_file_location(
        "docs_build", REPO_ROOT / "docs" / "build.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsBuild:
    @pytest.fixture(scope="class")
    def built(self, docs_build, tmp_path_factory):
        out = tmp_path_factory.mktemp("site")
        return docs_build.build(out), out

    def test_strict_build_has_zero_warnings(self, built):
        builder, _ = built
        assert builder.warnings == []

    def test_core_pages_generated(self, built):
        _, out = built
        for page in (
            "index.html",
            "architecture.html",
            "equations.html",
            "api/index.html",
            "api/repro.core.delay.html",
            "api/repro.bus.spec.html",
            "api/repro.analysis.bus.html",
        ):
            assert (out / page).is_file(), f"missing {page}"

    def test_equation_page_covers_every_core_callable(self, built, docs_build):
        """The acceptance criterion, asserted directly: every public
        ``repro.core`` callable is linked from the cross-index."""
        _, out = built
        source = (REPO_ROOT / "docs" / "equations.md").read_text()
        for module_name, names in docs_build.core_public_callables().items():
            for name in names:
                assert f"api/{module_name}.html#{name}" in source, (
                    f"equations.md does not cover {module_name}.{name}"
                )

    def test_api_pages_have_anchors_for_all_exports(self, built):
        _, out = built
        page = (out / "api/repro.core.repeater.html").read_text()
        import repro.core.repeater as mod

        for name in mod.__all__:
            assert f'id="{name}"' in page


class TestDocsBuildGuards:
    def test_link_checker_flags_broken_links(self, docs_build):
        builder = docs_build.Builder()
        builder.add_page("a.html", "a", '<a href="missing.html">x</a>')
        builder.check_links()
        assert any("broken link" in w for w in builder.warnings)

    def test_link_checker_flags_missing_anchor(self, docs_build):
        builder = docs_build.Builder()
        builder.add_page("a.html", "a", '<a href="b.html#nope">x</a>')
        builder.add_page("b.html", "b", '<h1 id="yes">b</h1>')
        builder.check_links()
        assert any("missing" in w and "#nope" in w for w in builder.warnings)

    def test_link_checker_accepts_valid_links(self, docs_build):
        builder = docs_build.Builder()
        builder.add_page(
            "sub/a.html", "a", '<a href="../b.html#yes">x</a>'
        )
        builder.add_page("b.html", "b", '<h1 id="yes">b</h1>')
        builder.check_links()
        assert builder.warnings == []

    def test_coverage_check_flags_missing_function(self, docs_build):
        builder = docs_build.Builder()
        docs_build.check_equation_coverage(builder, "an empty page")
        assert any("propagation_delay" in w for w in builder.warnings)

    def test_markdown_table_and_code(self, docs_build):
        html = docs_build.markdown_to_html(
            "# T\n\n| a | b |\n| - | - |\n| 1 | `x` |\n\n```\nraw <tag>\n```\n"
        )
        assert "<table>" in html and "<th>a</th>" in html
        assert "<code>x</code>" in html
        assert "raw &lt;tag&gt;" in html


class TestReadmeRegistryDrift:
    """The README experiment table must match the live registry."""

    def _readme_table_ids(self) -> set[str]:
        text = README.read_text()
        match = re.search(
            r"## Experiment registry(.*?)(?:\n## |\Z)", text, re.DOTALL
        )
        assert match, "README has no 'Experiment registry' section"
        ids = set()
        for line in match.group(1).splitlines():
            cell = re.match(r"\|\s*(EXP-[A-Z0-9]+)\s*\|", line)
            if cell:
                ids.add(cell.group(1))
        return ids

    def test_readme_table_matches_registry(self):
        readme_ids = self._readme_table_ids()
        assert readme_ids == set(REGISTRY), (
            f"README experiment table drifted from the registry: "
            f"missing {sorted(set(REGISTRY) - readme_ids)}, "
            f"stale {sorted(readme_ids - set(REGISTRY))}"
        )

    def test_readme_mentions_docs_build(self):
        text = README.read_text()
        assert "docs/build.py" in text, (
            "README should document the docs-build workflow"
        )
