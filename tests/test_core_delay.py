"""Tests for repro.core.delay: eq. 9 and its limits."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import DriverLineLoad
from repro.core.delay import (
    delay_error_vs_reference,
    lc_limit_delay,
    propagation_delay,
    rc_limit_delay,
    scaled_delay,
    time_of_flight,
)
from repro.errors import ParameterError


class TestScaledDelay:
    def test_zeta_zero_is_unity(self):
        """Pure LC: scaled delay = 1 (arrival exactly at 1/omega_n)."""
        assert scaled_delay(0.0) == pytest.approx(1.0)

    def test_large_zeta_linear(self):
        assert scaled_delay(10.0) == pytest.approx(14.8, rel=1e-6)

    def test_vectorized(self):
        z = np.array([0.0, 1.0, 2.0])
        out = scaled_delay(z)
        assert out.shape == (3,)
        assert out[1] == pytest.approx(math.exp(-2.9) + 1.48)

    def test_scalar_returns_float(self):
        assert isinstance(scaled_delay(1.0), float)

    def test_validation(self):
        with pytest.raises(ParameterError):
            scaled_delay(-0.1)
        with pytest.raises(ParameterError):
            scaled_delay(float("nan"))

    @settings(max_examples=100, deadline=None)
    @given(z=st.floats(min_value=0.0, max_value=50.0))
    def test_never_beats_time_of_flight(self, z):
        """t'_pd >= 1: no 50% crossing before the wavefront arrives."""
        assert scaled_delay(z) >= 1.0 - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(z=st.floats(min_value=0.5, max_value=50.0))
    def test_monotone_beyond_dip(self, z):
        """For zeta >= 0.5 the curve increases (RC-ward)."""
        assert scaled_delay(z * 1.01) > scaled_delay(z)


class TestPaperTable1Anchors:
    """Cells of the paper's Table 1 whose parameters are unambiguous.

    The '(9)' column printed in the paper is reproduced by our eq. 9
    implementation to within the table's own rounding (see DESIGN.md for
    the provenance discussion of the RT = 0.1 row group).
    """

    @pytest.mark.parametrize(
        "rt, rtr, lt, cl, expected_ps",
        [
            (1000.0, 100.0, 1e-6, 1e-13, 1062),  # RT=0.1 group (Rt = 1000)
            (1000.0, 100.0, 1e-6, 5e-13, 1277),  # RT=0.1 group, CT=0.5
            (1000.0, 500.0, 1e-6, 5e-13, 1489),  # RT=0.5, CT=0.5
            (1000.0, 500.0, 1e-8, 1e-13, 850),   # RT=0.5, CT=0.1 (paper: 841)
            (500.0, 500.0, 1e-7, 1e-13, 634),    # RT=1.0, CT=0.1
            (500.0, 500.0, 1e-8, 1e-12, 1294),   # RT=1.0, CT=1.0
        ],
    )
    def test_cell(self, rt, rtr, lt, cl, expected_ps):
        line = DriverLineLoad(rt=rt, lt=lt, ct=1e-12, rtr=rtr, cl=cl)
        got_ps = propagation_delay(line) * 1e12
        assert got_ps == pytest.approx(expected_ps, rel=0.01)


class TestLimits:
    def test_rc_limit_bare_line(self):
        """L -> 0, RT = CT = 0: delay -> 0.37 * Rt * Ct (paper text)."""
        rt, ct = 2000.0, 3e-12
        line = DriverLineLoad(rt=rt, lt=1e-30, ct=ct)
        assert propagation_delay(line) == pytest.approx(0.37 * rt * ct, rel=1e-2)

    def test_rc_limit_function_matches_eq9_tail(self):
        line = DriverLineLoad(rt=1000.0, lt=1e-12, ct=1e-12, rtr=500.0, cl=2e-13)
        assert propagation_delay(line) == pytest.approx(
            rc_limit_delay(line), rel=1e-6
        )

    def test_rc_limit_requires_resistance(self):
        line = DriverLineLoad(rt=0.0, lt=1e-9, ct=1e-12, rtr=10.0)
        with pytest.raises(ParameterError):
            rc_limit_delay(line)

    def test_lc_limit_bare_line(self):
        """R -> 0: delay -> sqrt(Lt*Ct), linear in length."""
        line = DriverLineLoad(rt=1e-6, lt=1e-9, ct=1e-12)
        assert propagation_delay(line) == pytest.approx(
            math.sqrt(1e-21), rel=1e-3
        )
        assert lc_limit_delay(line) == pytest.approx(math.sqrt(1e-21), rel=1e-9)

    def test_quadratic_vs_linear_length_scaling(self):
        """RC delay quadruples with doubled length; LC delay doubles."""
        rc_wire = DriverLineLoad(rt=5000.0, lt=1e-12, ct=1e-12)
        lc_wire = DriverLineLoad(rt=1e-3, lt=1e-9, ct=1e-12)
        for wire, factor in ((rc_wire, 4.0), (lc_wire, 2.0)):
            t1 = propagation_delay(wire)
            t2 = propagation_delay(wire.with_length_scaled(2.0))
            assert t2 / t1 == pytest.approx(factor, rel=2e-2)

    def test_time_of_flight(self):
        assert time_of_flight(4e-9, 1e-12) == pytest.approx(math.sqrt(4e-21))


class TestErrorMetric:
    def test_basic(self):
        assert delay_error_vs_reference(1.05, 1.0) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            delay_error_vs_reference(1.0, 0.0)
