"""Tests for repro.spice.coupled and repro.analysis.crosstalk."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.crosstalk import analyze_crosstalk
from repro.errors import ParameterError
from repro.spice.coupled import (
    CoupledLadderSpec,
    VictimMode,
    build_coupled_ladder_circuit,
)
from repro.spice.netlist import Capacitor, Inductor
from repro.spice.transient import simulate_transient


def make_spec(**overrides) -> CoupledLadderSpec:
    base = dict(
        rt=100.0,
        lt=25e-9,
        ct=2e-12,
        cct=1e-12,
        km=0.5,
        rtr_aggressor=50.0,
        rtr_victim=50.0,
        cl=5e-14,
        n_segments=12,
    )
    base.update(overrides)
    return CoupledLadderSpec(**base)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ParameterError):
            make_spec(km=1.0)
        with pytest.raises(ParameterError):
            make_spec(rtr_victim=0.0)
        with pytest.raises(ParameterError):
            make_spec(n_segments=0)

    def test_output_names(self):
        spec = make_spec(n_segments=8)
        assert spec.aggressor_output == "a8"
        assert spec.victim_output == "v8"


class TestCircuitBuilder:
    def test_element_budget(self):
        spec = make_spec(n_segments=8)
        ckt = build_coupled_ladder_circuit(spec)
        # 2 lines x 8 inductors, coupled pairwise.
        assert len(ckt.elements_of_type(Inductor)) == 16
        assert len(ckt.mutual_inductances) == 8
        # Ground caps: 2 x 9 nodes; coupling: 9; loads: 2.
        assert len(ckt.elements_of_type(Capacitor)) == 18 + 9 + 2
        ckt.validate()

    def test_coupling_capacitance_conserved(self):
        spec = make_spec(n_segments=10)
        ckt = build_coupled_ladder_circuit(spec)
        cc_total = sum(
            e.value
            for e in ckt.elements_of_type(Capacitor)
            if e.name.startswith("cc")
        )
        assert cc_total == pytest.approx(spec.cct, rel=1e-12)

    def test_victim_modes_set_drivers(self):
        spec = make_spec()
        for mode, v0, v1 in (
            (VictimMode.QUIET, 0.0, 0.0),
            (VictimMode.EVEN, 0.0, 1.0),
            (VictimMode.ODD, 1.0, 0.0),
        ):
            ckt = build_coupled_ladder_circuit(spec, mode=mode)
            vinv = next(e for e in ckt.elements if e.name == "vinv")
            assert vinv.waveform.v0 == v0 and vinv.waveform.v1 == v1


class TestSymmetry:
    def test_uncoupled_victim_stays_quiet(self):
        spec = make_spec(cct=0.0, km=0.0)
        report = analyze_crosstalk(spec)
        assert report.worst_noise_magnitude < 1e-9
        assert report.aggressor_delay_even == pytest.approx(
            report.aggressor_delay_quiet, rel=1e-6
        )

    def test_even_mode_keeps_lines_identical(self):
        """Both lines switching together see no differential coupling."""
        spec = make_spec()
        ckt = build_coupled_ladder_circuit(spec, mode=VictimMode.EVEN)
        result = simulate_transient(ckt, 1.5e-9, 5e-13)
        a = result.voltage(spec.aggressor_output).values
        v = result.voltage(spec.victim_output).values
        assert np.max(np.abs(a - v)) < 1e-9


class TestNoisePolarity:
    def test_capacitive_coupling_positive_glitch(self):
        report = analyze_crosstalk(make_spec(cct=1e-12, km=0.0))
        assert report.victim_peak_noise > 0.2
        assert abs(report.victim_min_noise) < report.victim_peak_noise / 5

    def test_inductive_coupling_negative_far_end(self):
        report = analyze_crosstalk(make_spec(cct=1e-15, km=0.6))
        assert report.victim_min_noise < -0.15
        assert abs(report.victim_min_noise) > report.victim_peak_noise

    def test_noise_grows_with_coupling_cap(self):
        weak = analyze_crosstalk(make_spec(cct=2e-13, km=0.0))
        strong = analyze_crosstalk(make_spec(cct=1.5e-12, km=0.0))
        assert strong.victim_peak_noise > weak.victim_peak_noise


class TestSwitchingDelay:
    def test_inductive_regime_odd_is_faster(self):
        """LC-dominated pair: odd mode rides L*(1-km) -- pull-in."""
        report = analyze_crosstalk(make_spec(km=0.5))
        assert report.aggressor_delay_odd < report.aggressor_delay_quiet
        assert report.delay_spread < 0.0

    def test_rc_regime_odd_is_slower(self):
        """RC-dominated pair: Miller-doubled Cc -- push-out."""
        spec = make_spec(
            rt=2000.0, lt=2e-10, ct=2e-12, cct=1.5e-12, km=0.0,
            rtr_aggressor=500.0, rtr_victim=500.0,
        )
        report = analyze_crosstalk(spec)
        assert report.aggressor_delay_odd > report.aggressor_delay_even
        assert report.delay_spread > 0.05

    def test_window_validation(self):
        with pytest.raises(ParameterError):
            analyze_crosstalk(make_spec(), window=-1.0)
