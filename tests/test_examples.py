"""Smoke tests for every shipped example script.

Each ``examples/*.py`` runs in a subprocess with
``REPRO_EXAMPLES_FAST=1`` (the examples' own downsizing knob), so a
tutorial that drifts out of sync with the library API fails the suite
instead of rotting silently.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_runs_clean(example: pathlib.Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLES_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
