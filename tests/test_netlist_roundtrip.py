"""Property-based netlist round-trip: Circuit -> to_netlist -> parse.

Random well-posed RLC circuits (chains with shunt capacitors, bridge
resistors, shunt inductors with optional mutual coupling, randomized
source waveforms and initial conditions) are exported to netlist text
and re-parsed; the reconstruction must reproduce the element list
exactly, the MNA node maps identically, the assembled matrices to
<= 1e-12, and the simulated transients to <= 1e-12 on every linear
solver backend.  Seeded through the shared ``rng`` fixture
(``REPRO_TEST_SEED`` reproduces a failing draw).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spice.mna import CircuitTemplate, build_mna_structure
from repro.spice.netlist import (
    Circuit,
    Dc,
    Param,
    PiecewiseLinear,
    Pulse,
    Sine,
    Step,
)
from repro.spice.parser import parse_netlist, suggest_transient_window
from repro.spice.transient import simulate_transient

BACKENDS = ("dense", "sparse", "banded")

N_TRIALS = 6


def _random_waveform(rng) -> object:
    kind = int(rng.integers(0, 5))
    if kind == 0:
        return Dc(float(rng.uniform(0.5, 2.0)))
    if kind == 1:
        return Step(
            0.0,
            float(rng.uniform(0.5, 2.0)),
            float(rng.uniform(0.0, 1e-10)),
            float(rng.uniform(0.0, 1e-10)),
        )
    if kind == 2:
        return Pulse(
            0.0,
            1.0,
            0.0,
            float(rng.uniform(1e-11, 1e-10)),
            float(rng.uniform(1e-11, 1e-10)),
            float(rng.uniform(1e-9, 2e-9)),
            float(rng.uniform(4e-9, 8e-9)),
        )
    if kind == 3:
        return Sine(
            0.0,
            float(rng.uniform(0.5, 1.0)),
            float(rng.uniform(1e8, 1e9)),
        )
    return PiecewiseLinear(
        (
            (0.0, 0.0),
            (float(rng.uniform(1e-10, 1e-9)), 1.0),
            (float(rng.uniform(2e-9, 4e-9)), float(rng.uniform(0.0, 1.0))),
        )
    )


def random_circuit(rng, index: int) -> Circuit:
    """A random well-posed RLC network.

    A resistive chain from the source with a capacitor to ground at
    every chain node guarantees connectivity and a nonsingular system;
    bridges, series RL splits, shunt inductors and mutual coupling add
    topology variety on top.
    """
    ckt = Circuit(f"random roundtrip {index}")
    ckt.add_voltage_source("v1", "in", "0", _random_waveform(rng))
    n_chain = int(rng.integers(2, 6))
    chain = ["in"] + [f"n{i}" for i in range(n_chain)]
    for i in range(n_chain):
        here, there = chain[i], chain[i + 1]
        if rng.random() < 0.3:
            # split the segment into R + L through an internal node
            split = f"x{i}"
            ckt.add_resistor(f"r{i}", here, split, float(rng.uniform(10, 1e4)))
            ckt.add_inductor(
                f"l{i}",
                split,
                there,
                float(rng.uniform(1e-9, 1e-7)),
                initial_current=(
                    float(rng.uniform(-1e-3, 1e-3))
                    if rng.random() < 0.5
                    else 0.0
                ),
            )
        else:
            ckt.add_resistor(f"r{i}", here, there, float(rng.uniform(10, 1e4)))
        ckt.add_capacitor(
            f"c{i}",
            there,
            "0",
            float(rng.uniform(1e-13, 1e-11)),
            initial_voltage=(
                float(rng.uniform(0.0, 1.0)) if rng.random() < 0.5 else 0.0
            ),
        )
    for j in range(int(rng.integers(0, 3))):
        a, b = rng.choice(len(chain), size=2, replace=False)
        ckt.add_resistor(
            f"rb{j}",
            chain[int(a)],
            chain[int(b)],
            float(rng.uniform(100, 1e4)),
        )
    if rng.random() < 0.4:
        spots = rng.choice(n_chain, size=2, replace=False)
        ckt.add_inductor(
            "lk0", chain[int(spots[0]) + 1], "0", float(rng.uniform(1e-9, 1e-7))
        )
        ckt.add_inductor(
            "lk1", chain[int(spots[1]) + 1], "0", float(rng.uniform(1e-9, 1e-7))
        )
        ckt.add_mutual_inductance(
            "k1", "lk0", "lk1", float(rng.uniform(0.1, 0.8))
        )
    return ckt


class TestConcreteRoundTrip:
    def test_elements_nodes_matrices_and_transients_survive(self, rng):
        for trial in range(N_TRIALS):
            original = random_circuit(rng, trial)
            text = original.to_netlist()
            reparsed = parse_netlist(text)
            context = f"trial {trial} (REPRO_TEST_SEED to reproduce)"

            assert reparsed.circuit.elements == original.elements, context
            assert (
                reparsed.circuit.mutual_inductances
                == original.mutual_inductances
            ), context
            assert reparsed.title == original.title, context
            assert (
                reparsed.circuit.node_names() == original.node_names()
            ), context

            s_orig = build_mna_structure(original)
            s_back = build_mna_structure(reparsed.circuit)
            assert s_orig.node_index == s_back.node_index, context
            assert s_orig.branch_index == s_back.branch_index, context
            g1, c1 = s_orig.revalue()
            g2, c2 = s_back.revalue()
            assert np.abs(g1 - g2).max() <= 1e-12, context
            assert np.abs(c1 - c2).max() <= 1e-12, context

            t_stop, dt = suggest_transient_window(original, n_samples=300)
            for backend in BACKENDS:
                res_o = simulate_transient(
                    original, t_stop, dt, backend=backend
                )
                res_b = simulate_transient(
                    reparsed.circuit, t_stop, dt, backend=backend
                )
                for node in original.node_names():
                    delta = np.abs(
                        res_o.voltage(node).values
                        - res_b.voltage(node).values
                    ).max()
                    assert delta <= 1e-12, (
                        f"{context}: backend {backend}, node {node}, "
                        f"max |dv| = {delta:g}"
                    )

    def test_double_round_trip_is_idempotent(self, rng):
        original = random_circuit(rng, 999)
        once = parse_netlist(original.to_netlist())
        twice = parse_netlist(once.circuit.to_netlist())
        assert once.circuit.elements == twice.circuit.elements
        assert once.circuit.to_netlist() == twice.circuit.to_netlist()


class TestParametricRoundTrip:
    def test_param_slots_survive_the_text_form(self, rng):
        for trial in range(N_TRIALS):
            ckt = Circuit(f"parametric roundtrip {trial}")
            ckt.add_voltage_source("v1", "in", "0", Step(0.0, 1.0))
            scale_r = float(rng.uniform(0.25, 2.0))
            scale_c = float(rng.uniform(0.25, 2.0))
            ckt.add_resistor("r1", "in", "mid", Param("rt", scale_r))
            ckt.add_resistor("r2", "mid", "out", Param("rt", 1.0))
            ckt.add_capacitor(
                "c1", "mid", "0", Param("ct", scale_c) + Param("cl")
            )
            ckt.add_capacitor("c2", "out", "0", Param("ct", 0.5))
            reparsed = parse_netlist(ckt.to_netlist())
            context = f"trial {trial}"
            assert reparsed.circuit.elements == ckt.elements, context
            assert reparsed.circuit.parameter_names() == (
                "cl",
                "ct",
                "rt",
            ), context

            params = {
                "rt": float(rng.uniform(50, 5000)),
                "ct": float(rng.uniform(1e-13, 1e-11)),
                "cl": float(rng.uniform(1e-14, 1e-12)),
            }
            g1, c1 = build_mna_structure(ckt).revalue(params)
            g2, c2 = build_mna_structure(reparsed.circuit).revalue(params)
            assert np.abs(g1 - g2).max() <= 1e-12, context
            assert np.abs(c1 - c2).max() <= 1e-12, context

            bound = reparsed.bind(params)
            reference = CircuitTemplate(ckt).bind(params)
            t_stop, dt = suggest_transient_window(bound, n_samples=300)
            for backend in BACKENDS:
                res = simulate_transient(bound, t_stop, dt, backend=backend)
                ref = simulate_transient(
                    reference, t_stop, dt, backend=backend
                )
                delta = np.abs(
                    res.voltage("out").values - ref.voltage("out").values
                ).max()
                assert delta <= 1e-12, f"{context}: backend {backend}"
