"""Tests for repro.spice.dc and repro.spice.transient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.spice.dc import dc_operating_point
from repro.spice.netlist import Circuit, Step
from repro.spice.transient import IntegrationMethod, simulate_transient


class TestDcOperatingPoint:
    def test_resistor_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", "0", 10.0)
        ckt.add_resistor("r1", "in", "out", 3000.0)
        ckt.add_resistor("r2", "out", "0", 1000.0)
        sol = dc_operating_point(ckt)
        assert sol.voltage("out") == pytest.approx(2.5)
        assert sol.voltage("in") == pytest.approx(10.0)
        assert sol.voltage("0") == 0.0

    def test_source_current(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", "0", 10.0)
        ckt.add_resistor("r1", "in", "0", 2000.0)
        sol = dc_operating_point(ckt)
        # Positive branch current flows + -> - inside the source, so a
        # sourcing supply reads negative.
        assert sol.current("v1") == pytest.approx(-10.0 / 2000.0)

    def test_inductor_is_dc_short(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "in", "0", 1.0)
        ckt.add_inductor("l1", "in", "mid", 1e-9)
        ckt.add_resistor("r1", "mid", "0", 100.0)
        sol = dc_operating_point(ckt)
        assert sol.voltage("mid") == pytest.approx(1.0)
        assert sol.current("l1") == pytest.approx(0.01)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add_current_source("i1", "0", "a", 1e-3)
        ckt.add_resistor("r1", "a", "0", 1000.0)
        sol = dc_operating_point(ckt)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_floating_node_raises(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", "0", 1.0)
        ckt.add_resistor("r1", "a", "b", 1.0)
        ckt.add_capacitor("c1", "b", "c", 1e-12)
        ckt.add_capacitor("c2", "c", "0", 1e-12)
        with pytest.raises(SimulationError, match="singular"):
            dc_operating_point(ckt)

    def test_gmin_rescues_floating_node(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", "0", 1.0)
        ckt.add_resistor("r1", "a", "b", 1.0)
        ckt.add_capacitor("c1", "b", "c", 1e-12)
        ckt.add_capacitor("c2", "c", "0", 1e-12)
        sol = dc_operating_point(ckt, gmin=1e-12)
        assert np.isfinite(sol.voltage("c"))

    def test_time_dependent_source(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", "0", Step(1.0, 5.0, t_delay=1.0))
        ckt.add_resistor("r1", "a", "0", 1.0)
        assert dc_operating_point(ckt, time=0.0).voltage("a") == 1.0
        assert dc_operating_point(ckt, time=2.0).voltage("a") == 5.0


def rc_charge_circuit(r=1000.0, c=1e-12) -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "out", r)
    ckt.add_capacitor("c1", "out", "0", c)
    return ckt


def series_rlc_circuit(r=20.0, l=1e-9, c=1e-12) -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "mid", r)
    ckt.add_inductor("l1", "mid", "out", l)
    ckt.add_capacitor("c1", "out", "0", c)
    return ckt


class TestTransientRc:
    @pytest.mark.parametrize(
        "method", [IntegrationMethod.TRAPEZOIDAL, IntegrationMethod.BACKWARD_EULER]
    )
    def test_rc_charging_curve(self, method):
        tau = 1e-9
        result = simulate_transient(
            rc_charge_circuit(), t_stop=5e-9, dt=2e-12, method=method
        )
        w = result.voltage("out")
        expected = 1.0 - np.exp(-w.times / tau)
        tol = 5e-3 if method is IntegrationMethod.TRAPEZOIDAL else 3e-2
        assert np.max(np.abs(w.values - expected)) < tol

    def test_trapezoidal_second_order_convergence(self):
        """Second-order convergence on a smooth (ramped) input.

        An ideal step lands between grid points and degrades any
        integrator to first order; the ramp keeps the input resolved.
        """
        tau, t_rise = 1e-9, 5e-10

        def ramp_response(t: np.ndarray) -> np.ndarray:
            def y(tt: np.ndarray) -> np.ndarray:
                tt = np.maximum(tt, 0.0)
                return (tt - tau + tau * np.exp(-tt / tau)) / t_rise

            return y(t) - y(t - t_rise)

        def max_error(dt: float) -> float:
            ckt = Circuit()
            ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0, t_rise=t_rise))
            ckt.add_resistor("r1", "in", "out", 1000.0)
            ckt.add_capacitor("c1", "out", "0", 1e-12)
            result = simulate_transient(ckt, 4e-9, dt)
            w = result.voltage("out")
            return float(np.max(np.abs(w.values - ramp_response(w.times))))

        coarse, fine = max_error(1e-11), max_error(2.5e-12)
        assert coarse / fine > 8.0  # ~16x for a second-order method

    def test_source_current_waveform(self):
        result = simulate_transient(rc_charge_circuit(), 5e-9, 2e-12)
        i = result.current("vin")
        # Charging current starts near -V/R (sourcing) and decays to ~0.
        assert i.values[1] == pytest.approx(-1e-3, rel=0.1)
        assert abs(i.values[-1]) < 1e-5

    def test_ground_voltage_is_zero(self):
        result = simulate_transient(rc_charge_circuit(), 1e-9, 1e-12)
        assert np.all(result.voltage("0").values == 0.0)


class TestTransientRlc:
    def test_underdamped_oscillation_frequency(self):
        r, l, c = 20.0, 1e-9, 1e-12
        result = simulate_transient(series_rlc_circuit(r, l, c), 1e-9, 2e-13)
        w = result.voltage("out")
        alpha = r / (2 * l)
        omega_d = np.sqrt(1.0 / (l * c) - alpha**2)
        expected = 1.0 - np.exp(-alpha * w.times) * (
            np.cos(omega_d * w.times) + alpha / omega_d * np.sin(omega_d * w.times)
        )
        assert np.max(np.abs(w.values - expected)) < 2e-2

    def test_overshoot_matches_damping_theory(self):
        """Peak overshoot = exp(-pi*zeta/sqrt(1-zeta^2)) for 2nd order."""
        r, l, c = 20.0, 1e-9, 1e-12
        result = simulate_transient(series_rlc_circuit(r, l, c), 2e-9, 2e-13)
        zeta = (r / 2.0) * np.sqrt(c / l)
        expected = np.exp(-np.pi * zeta / np.sqrt(1.0 - zeta * zeta))
        got = result.voltage("out").overshoot(v_final=1.0)
        assert got == pytest.approx(expected, rel=2e-2)

    def test_inductor_current_settles_to_zero(self):
        result = simulate_transient(series_rlc_circuit(), 2e-8, 1e-12)
        assert abs(result.current("l1").values[-1]) < 1e-4


class TestTransientValidation:
    def test_bad_dt(self):
        with pytest.raises(ParameterError, match="dt"):
            simulate_transient(rc_charge_circuit(), 1e-9, 0.0)

    def test_bad_span(self):
        with pytest.raises(ParameterError, match="t_stop"):
            simulate_transient(rc_charge_circuit(), 0.0, 1e-12)

    def test_explicit_initial_state_shape(self):
        with pytest.raises(ParameterError, match="shape"):
            simulate_transient(
                rc_charge_circuit(), 1e-9, 1e-12, initial=np.zeros(99)
            )

    def test_initial_zero(self):
        result = simulate_transient(
            rc_charge_circuit(), 1e-9, 1e-12, initial="zero"
        )
        assert result.voltage("out").values[0] == 0.0

    def test_unknown_initial(self):
        with pytest.raises(ParameterError, match="initial"):
            simulate_transient(rc_charge_circuit(), 1e-9, 1e-12, initial="warm")

    def test_n_steps(self):
        result = simulate_transient(rc_charge_circuit(), 1e-9, 1e-10)
        assert result.n_steps == 10


class TestTimeGridClamp:
    """The grid must end exactly at t_stop, never overshoot it."""

    def test_divisible_span_keeps_requested_step(self):
        result = simulate_transient(rc_charge_circuit(), 1e-9, 2e-10)
        assert result.n_steps == 5
        assert result.times[-1] == 1e-9

    def test_non_divisible_span_never_exceeds_t_stop(self):
        # 1e-9 / 3e-10 = 3.33..: the seed produced 4 steps of 3e-10,
        # with the final sample landing at 1.2e-9 -- past t_stop.
        result = simulate_transient(rc_charge_circuit(), 1e-9, 3e-10)
        assert result.times[-1] == 1e-9
        assert np.all(result.times <= 1e-9)
        assert result.n_steps == 4  # step shrinks, count rounds up
        assert np.allclose(np.diff(result.times), 1e-9 / 4)

    def test_non_divisible_span_with_offset_start(self):
        result = simulate_transient(
            rc_charge_circuit(), t_stop=2.05e-9, dt=3e-10, t_start=1e-9
        )
        assert result.times[0] == 1e-9
        assert result.times[-1] == 2.05e-9
        assert np.all(result.times <= 2.05e-9)

    def test_delay_50_unchanged_vs_divisible_grid(self):
        # A non-divisible span shrinks dt slightly; with a second-order
        # integrator the measured delay must be indistinguishable from
        # the divisible-grid reference.
        t_stop = 5e-9
        reference = simulate_transient(rc_charge_circuit(), t_stop, 2e-12)
        clamped = simulate_transient(rc_charge_circuit(), t_stop, 2.03e-12)
        d_ref = reference.voltage("out").delay_50(v_final=1.0)
        d_clamped = clamped.voltage("out").delay_50(v_final=1.0)
        assert d_clamped == pytest.approx(d_ref, rel=1e-4)
        # ~dt/2 onset offset from the step-at-t_start convention.
        assert d_ref == pytest.approx(1e-9 * np.log(2.0), rel=3e-3)
