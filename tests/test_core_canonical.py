"""Tests for repro.core.canonical: the Fig. 1 object and eqs. 3/5/6."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import DriverLineLoad, omega_n, zeta, zeta_from_ratios
from repro.errors import ParameterError

impedance = st.floats(min_value=1e-3, max_value=1e4)
ratios = st.floats(min_value=0.0, max_value=10.0)


class TestOmegaN:
    def test_formula(self):
        assert omega_n(1e-6, 1e-12, 1e-13) == pytest.approx(
            1.0 / math.sqrt(1e-6 * 1.1e-12)
        )

    def test_no_load(self):
        assert omega_n(1e-9, 1e-12) == pytest.approx(1.0 / math.sqrt(1e-21))

    def test_validation(self):
        with pytest.raises(ParameterError):
            omega_n(0.0, 1e-12)


class TestZeta:
    def test_table1_cell(self):
        """Hand-checked value for the paper's Lt=1e-6 corner."""
        got = zeta(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        assert got == pytest.approx(0.338479, rel=1e-5)

    def test_bare_line(self):
        """RT = CT = 0: zeta = (Rt/4) * sqrt(Ct/Lt)."""
        got = zeta(rt=1000.0, lt=1e-7, ct=1e-12)
        assert got == pytest.approx(0.25 * 1000.0 * math.sqrt(1e-5), rel=1e-12)

    def test_matches_transfer_function_coefficient(self):
        """2*zeta equals a1 * omega_n -- eq. 6 is exactly the scaled
        first denominator coefficient (paper eq. 7)."""
        from repro.tline.transfer import denominator_coefficients

        rt, lt, ct, rtr, cl = 1200.0, 3e-7, 2e-12, 250.0, 5e-13
        a = denominator_coefficients(rt, lt, ct, rtr, cl)
        z = zeta(rt, lt, ct, rtr, cl)
        assert 2.0 * z == pytest.approx(a[1] * omega_n(lt, ct, cl), rel=1e-12)

    def test_zero_resistance_limit(self):
        """rt -> 0 with rtr fixed stays finite and continuous."""
        exact_zero = zeta(rt=0.0, lt=1e-9, ct=1e-12, rtr=100.0, cl=1e-13)
        tiny = zeta(rt=1e-9, lt=1e-9, ct=1e-12, rtr=100.0, cl=1e-13)
        assert exact_zero == pytest.approx(tiny, rel=1e-6)
        assert exact_zero > 0

    def test_fully_lossless(self):
        assert zeta(rt=0.0, lt=1e-9, ct=1e-12) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(rt=impedance, scale=st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariance(self, rt, scale):
        """zeta depends only on dimensionless groups: scaling (Rt, Rtr)
        by x and (Lt) by x**2 leaves zeta unchanged."""
        base = zeta(rt, 1e-9, 1e-12, rtr=0.5 * rt, cl=2e-13)
        scaled = zeta(
            rt * scale, 1e-9 * scale**2, 1e-12, rtr=0.5 * rt * scale, cl=2e-13
        )
        assert scaled == pytest.approx(base, rel=1e-9)

    def test_zeta_from_ratios_consistency(self):
        rt, lt, ct = 800.0, 2e-8, 1e-12
        pref = 0.5 * rt * math.sqrt(ct / lt)
        assert zeta_from_ratios(pref, 0.3, 0.7) == pytest.approx(
            zeta(rt, lt, ct, rtr=0.3 * rt, cl=0.7 * ct), rel=1e-12
        )


class TestDriverLineLoad:
    def test_ratios(self, underdamped_line):
        assert underdamped_line.r_ratio == pytest.approx(0.1)
        assert underdamped_line.c_ratio == pytest.approx(0.1)

    def test_properties(self, underdamped_line):
        assert underdamped_line.is_underdamped
        assert underdamped_line.time_of_flight == pytest.approx(1e-9)
        assert underdamped_line.characteristic_impedance == pytest.approx(1000.0)
        assert underdamped_line.total_capacitance == pytest.approx(1.1e-12)

    def test_from_per_unit_length(self):
        line = DriverLineLoad.from_per_unit_length(
            r=2000.0, l=3e-7, c=2e-10, length=0.01, rtr=50.0, cl=1e-13
        )
        assert line.rt == pytest.approx(20.0)
        assert line.lt == pytest.approx(3e-9)
        assert line.ct == pytest.approx(2e-12)

    def test_with_length_scaled(self, underdamped_line):
        double = underdamped_line.with_length_scaled(2.0)
        assert double.rt == pytest.approx(2 * underdamped_line.rt)
        assert double.lt == pytest.approx(2 * underdamped_line.lt)
        assert double.ct == pytest.approx(2 * underdamped_line.ct)
        assert double.rtr == underdamped_line.rtr  # gate unchanged

    def test_section(self, underdamped_line):
        quarter = underdamped_line.section(4)
        assert quarter.rt == pytest.approx(underdamped_line.rt / 4)
        assert quarter.cl == underdamped_line.cl

    def test_section_validation(self, underdamped_line):
        with pytest.raises(ParameterError):
            underdamped_line.section(0)

    def test_r_ratio_degenerate(self):
        line = DriverLineLoad(rt=0.0, lt=1e-9, ct=1e-12, rtr=10.0)
        assert math.isinf(line.r_ratio)

    @settings(max_examples=50, deadline=None)
    @given(
        target=st.floats(min_value=0.05, max_value=10.0),
        r_ratio=ratios,
        c_ratio=ratios,
    )
    def test_for_zeta_roundtrip(self, target, r_ratio, c_ratio):
        line = DriverLineLoad.for_zeta(target, r_ratio=r_ratio, c_ratio=c_ratio)
        assert line.zeta == pytest.approx(target, rel=1e-9)
        assert line.r_ratio == pytest.approx(r_ratio, abs=1e-12)
        assert line.c_ratio == pytest.approx(c_ratio, abs=1e-12)

    def test_transfer_view(self, underdamped_line):
        h = underdamped_line.transfer()
        assert h.dc_gain() == pytest.approx(1.0, rel=1e-6)

    def test_ladder_view(self, underdamped_line):
        spec = underdamped_line.ladder(n_segments=10)
        assert spec.n_segments == 10
        assert spec.rtr == underdamped_line.rtr

    def test_ladder_view_zero_driver(self):
        line = DriverLineLoad(rt=100.0, lt=1e-9, ct=1e-12)
        spec = line.ladder()
        assert spec.rtr > 0  # tiny surrogate resistance

    def test_validation(self):
        with pytest.raises(ParameterError):
            DriverLineLoad(rt=-1.0, lt=1e-9, ct=1e-12)
        with pytest.raises(ParameterError):
            DriverLineLoad(rt=1.0, lt=0.0, ct=1e-12)
