"""Backend-equivalence suite for repro.spice.backend.

Every analysis (transient, AC, DC) must produce the same numbers on all
three linear-solver backends, on RC, RLC and coupled-line circuits --
including the singular-``G`` error paths, which must raise the same
exception class no matter which implementation is active.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.spice.ac import ac_sweep
from repro.spice.backend import (
    BACKENDS,
    BandedLuBackend,
    CooMatrix,
    DenseLuBackend,
    SparseLuBackend,
    rcm_band_profile,
    resolve_backend,
)
from repro.spice.coupled import CoupledLadderSpec, build_coupled_ladder_circuit
from repro.spice.dc import dc_operating_point
from repro.spice.ladder import LadderSpec, build_ladder_circuit
from repro.spice.mna import build_mna
from repro.spice.netlist import Circuit, Step
from repro.spice.transient import simulate_transient

BACKEND_NAMES = sorted(BACKENDS)  # banded, dense, sparse


def rc_circuit() -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "out", 1000.0)
    ckt.add_capacitor("c1", "out", "0", 1e-12)
    return ckt


def rlc_circuit() -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "mid", 20.0)
    ckt.add_inductor("l1", "mid", "out", 1e-9)
    ckt.add_capacitor("c1", "out", "0", 1e-12)
    ckt.add_resistor("rload", "out", "0", 1e6)
    return ckt


def ladder_circuit() -> Circuit:
    spec = LadderSpec(
        rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13, n_segments=24
    )
    return build_ladder_circuit(spec)


def coupled_circuit() -> Circuit:
    spec = CoupledLadderSpec(
        rt=100.0,
        lt=25e-9,
        ct=2e-12,
        cct=1e-12,
        km=0.5,
        rtr_aggressor=50.0,
        rtr_victim=50.0,
        cl=5e-14,
        n_segments=6,
    )
    return build_coupled_ladder_circuit(spec)


def floating_node_circuit() -> Circuit:
    """Capacitor-only island: G has a structurally zero row."""
    ckt = Circuit()
    ckt.add_voltage_source("v1", "a", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "a", "b", 1.0)
    ckt.add_capacitor("c1", "b", "c", 1e-12)
    ckt.add_capacitor("c2", "c", "0", 1e-12)
    return ckt


CIRCUITS = {
    "rc": rc_circuit,
    "rlc": rlc_circuit,
    "ladder": ladder_circuit,
    "coupled": coupled_circuit,
}

TRANSIENT_SETTINGS = {
    "rc": dict(t_stop=5e-9, dt=2e-12),
    "rlc": dict(t_stop=2e-9, dt=2e-13),
    "ladder": dict(t_stop=2e-9, dt=2e-12),
    "coupled": dict(t_stop=5e-9, dt=5e-12),
}


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("circuit_name", sorted(CIRCUITS))
class TestEquivalence:
    def test_transient_states_match_dense(self, circuit_name, backend):
        settings = TRANSIENT_SETTINGS[circuit_name]
        reference = simulate_transient(
            CIRCUITS[circuit_name](), backend="dense", **settings
        )
        result = simulate_transient(
            CIRCUITS[circuit_name](), backend=backend, **settings
        )
        assert np.array_equal(result.times, reference.times)
        assert result.times[-1] == settings["t_stop"]
        assert np.max(np.abs(result.states - reference.states)) <= 1e-10

    def test_transient_initial_zero(self, circuit_name, backend):
        settings = TRANSIENT_SETTINGS[circuit_name]
        result = simulate_transient(
            CIRCUITS[circuit_name](), backend=backend, initial="zero", **settings
        )
        assert np.all(result.states[0] == 0.0)

    def test_ac_states_match_dense(self, circuit_name, backend):
        omegas = np.geomspace(1e6, 1e10, 9)
        kwargs = {}
        if circuit_name == "coupled":
            kwargs["input_source"] = "vina"
        reference = ac_sweep(
            CIRCUITS[circuit_name](), omegas, backend="dense", **kwargs
        )
        result = ac_sweep(
            CIRCUITS[circuit_name](), omegas, backend=backend, **kwargs
        )
        assert np.max(np.abs(result.states - reference.states)) <= 1e-10

    def test_dc_matches_dense(self, circuit_name, backend):
        reference = dc_operating_point(CIRCUITS[circuit_name](), backend="dense")
        solution = dc_operating_point(CIRCUITS[circuit_name](), backend=backend)
        assert np.max(np.abs(solution.vector - reference.vector)) <= 1e-10


@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestSingularPaths:
    def test_dc_floating_node_raises(self, backend):
        with pytest.raises(SimulationError, match="singular"):
            dc_operating_point(floating_node_circuit(), backend=backend)

    def test_dc_gmin_rescues(self, backend):
        sol = dc_operating_point(
            floating_node_circuit(), gmin=1e-12, backend=backend
        )
        assert np.isfinite(sol.voltage("c"))

    def test_transient_initial_dc_singular_g_raises(self, backend):
        with pytest.raises(SimulationError, match="initial operating"):
            simulate_transient(
                floating_node_circuit(),
                t_stop=1e-9,
                dt=1e-11,
                initial="dc",
                backend=backend,
            )

    def test_transient_initial_zero_sidesteps_singular_g(self, backend):
        # The transient LHS (G + a*C) is nonsingular even when G alone
        # is not; initial='zero' must therefore succeed.
        result = simulate_transient(
            floating_node_circuit(),
            t_stop=1e-9,
            dt=1e-11,
            initial="zero",
            backend=backend,
        )
        assert np.all(np.isfinite(result.states))


def _chain_matrix(n: int) -> CooMatrix:
    i = np.arange(n - 1)
    rows = np.concatenate([np.arange(n), i, i + 1])
    cols = np.concatenate([np.arange(n), i + 1, i])
    data = np.concatenate([np.full(n, 2.0), np.full(n - 1, -1.0), np.full(n - 1, -1.0)])
    return CooMatrix(rows, cols, data, (n, n))


def _expander_matrix(n: int) -> CooMatrix:
    """Diagonal + two random-permutation couplings (degree-4 expander).

    Random expanders have no small separators, so no reordering -- RCM
    included -- can compress them into a narrow band.
    """
    rng = np.random.default_rng(42)
    p1, p2 = rng.permutation(n), rng.permutation(n)
    i = np.arange(n)
    rows = np.concatenate([i, i, p1, i, p2])
    cols = np.concatenate([i, p1, i, p2, i])
    data = np.concatenate([np.full(n, 6.0)] + [np.full(n, -1.0)] * 4)
    return CooMatrix(rows, cols, data, (n, n))


class TestResolution:
    def test_small_system_resolves_dense(self):
        assert isinstance(
            resolve_backend("auto", _chain_matrix(16)), DenseLuBackend
        )

    def test_large_chain_resolves_banded(self):
        assert isinstance(
            resolve_backend("auto", _chain_matrix(600)), BandedLuBackend
        )

    def test_large_unstructured_resolves_sparse(self):
        matrix = _expander_matrix(600)
        profile = rcm_band_profile(matrix)
        assert profile.band_width > 600 // 8  # precondition of the pick
        assert isinstance(resolve_backend("auto", matrix), SparseLuBackend)

    def test_explicit_names(self):
        for name, cls in BACKENDS.items():
            assert isinstance(resolve_backend(name), cls)

    def test_instance_passthrough(self):
        backend = SparseLuBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError, match="unknown simulation backend"):
            resolve_backend("cholesky")
        with pytest.raises(ParameterError, match="unknown simulation backend"):
            simulate_transient(rc_circuit(), 1e-9, 1e-11, backend="cholesky")

    def test_ladder_auto_selects_banded(self):
        spec = LadderSpec(
            rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13, n_segments=200
        )
        system = build_mna(build_ladder_circuit(spec))
        backend = resolve_backend("auto", system.combine(1.0, 1.0))
        assert isinstance(backend, BandedLuBackend)


class TestCooMatrix:
    def test_duplicate_entries_sum_everywhere(self):
        coo = CooMatrix([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        expected = np.array([[3.0, 0.0], [0.0, 5.0]])
        assert np.array_equal(coo.to_dense(), expected)
        assert np.array_equal(coo.to_csr().toarray(), expected)
        assert np.array_equal(coo.to_csc().toarray(), expected)

    def test_scaled_promotes_complex(self):
        coo = CooMatrix([0], [0], [2.0], (1, 1)).scaled(1j)
        assert coo.data.dtype.kind == "c"
        assert coo.to_dense()[0, 0] == 2j

    def test_mna_dense_properties_match_coo(self):
        system = build_mna(ladder_circuit())
        assert np.array_equal(system.g, system.g_coo.to_dense())
        assert np.array_equal(system.c, system.c_coo.to_dense())
        combined = system.combine(2.0, 3.0)
        assert np.allclose(combined.to_dense(), 2.0 * system.g + 3.0 * system.c)
