"""Tests for repro.technology: materials, parasitics, nodes."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.technology import materials
from repro.technology.nodes import PREDEFINED_NODES, node_by_name
from repro.technology.parasitics import (
    WireGeometry,
    coupling_capacitance_per_length,
    extract_rlc,
    partial_self_inductance_per_length,
    wire_capacitance_per_length,
    wire_inductance_per_length,
    wire_resistance_per_length,
)

UM = 1e-6


class TestMaterials:
    def test_copper_beats_aluminum(self):
        assert materials.COPPER_RESISTIVITY < materials.ALUMINUM_RESISTIVITY

    def test_lowk_below_sio2(self):
        assert (
            materials.LOWK_RELATIVE_PERMITTIVITY
            < materials.SIO2_RELATIVE_PERMITTIVITY
        )

    def test_effective_resistivity_grows_when_narrow(self):
        bulk = materials.COPPER_RESISTIVITY
        wide = materials.effective_resistivity(bulk, 10e-6, 10e-6)
        narrow = materials.effective_resistivity(bulk, 50e-9, 50e-9)
        assert wide == pytest.approx(bulk, rel=0.01)
        assert narrow > 1.4 * bulk

    def test_light_speed_consistency(self):
        c = 1.0 / math.sqrt(materials.MU0 * materials.EPS0)
        assert c == pytest.approx(2.9979e8, rel=1e-4)


class TestResistance:
    def test_formula(self):
        r = wire_resistance_per_length(1.72e-8, 1 * UM, 1 * UM)
        assert r == pytest.approx(1.72e4)

    def test_size_effect_increases(self):
        base = wire_resistance_per_length(1.72e-8, 0.1 * UM, 0.1 * UM)
        degraded = wire_resistance_per_length(
            1.72e-8, 0.1 * UM, 0.1 * UM, size_effect=True
        )
        assert degraded > base

    def test_validation(self):
        with pytest.raises(ParameterError):
            wire_resistance_per_length(-1.0, UM, UM)


class TestCapacitance:
    def test_plausible_magnitude(self):
        """On-chip wires run ~100-300 pF/m."""
        c = wire_capacitance_per_length(1 * UM, 1 * UM, 1 * UM)
        assert 5e-11 < c < 5e-10

    def test_wider_wire_more_cap(self):
        narrow = wire_capacitance_per_length(0.5 * UM, UM, UM)
        wide = wire_capacitance_per_length(4 * UM, UM, UM)
        assert wide > narrow

    def test_scales_with_dielectric(self):
        sio2 = wire_capacitance_per_length(UM, UM, UM, eps_r=3.9)
        lowk = wire_capacitance_per_length(UM, UM, UM, eps_r=2.7)
        assert lowk == pytest.approx(sio2 * 2.7 / 3.9, rel=1e-12)

    def test_coupling_formula(self):
        c = coupling_capacitance_per_length(UM, UM, eps_r=3.9)
        assert c == pytest.approx(materials.EPS0 * 3.9, rel=1e-12)

    def test_coupling_added_in_extract(self):
        isolated = WireGeometry(width=UM, thickness=UM, height=UM)
        coupled = WireGeometry(width=UM, thickness=UM, height=UM, spacing=UM)
        _, _, c_iso = extract_rlc(isolated)
        _, _, c_cpl = extract_rlc(coupled)
        assert c_cpl == pytest.approx(
            c_iso + 2 * coupling_capacitance_per_length(UM, UM), rel=1e-12
        )


class TestInductance:
    def test_narrow_branch_continuous_with_wide(self):
        just_below = wire_inductance_per_length(0.999 * UM, UM)
        just_above = wire_inductance_per_length(1.001 * UM, UM)
        assert just_below == pytest.approx(just_above, rel=0.05)

    def test_wider_wire_less_inductance(self):
        narrow = wire_inductance_per_length(0.5 * UM, UM)
        wide = wire_inductance_per_length(8 * UM, UM)
        assert wide < narrow

    def test_plausible_magnitude(self):
        """On-chip wires run ~0.2-1 uH/m (0.2-1 pH/um)."""
        l = wire_inductance_per_length(2 * UM, UM)
        assert 1e-7 < l < 1.5e-6

    def test_partial_inductance_grows_with_length(self):
        short = partial_self_inductance_per_length(UM, UM, 1e-3)
        long = partial_self_inductance_per_length(UM, UM, 1e-2)
        assert long > short

    def test_partial_inductance_needs_slender_wire(self):
        with pytest.raises(ParameterError, match="length"):
            partial_self_inductance_per_length(1e-3, 1e-3, 1e-4)

    def test_extract_requires_length_without_plane(self):
        geom = WireGeometry(
            width=UM, thickness=UM, height=UM, has_return_plane=False
        )
        with pytest.raises(ParameterError, match="length"):
            extract_rlc(geom)
        r, l, c = extract_rlc(geom, length=1e-2)
        assert l > 0


class TestExtractProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        width=st.floats(min_value=0.1, max_value=10.0),
        thickness=st.floats(min_value=0.1, max_value=5.0),
        height=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_all_positive(self, width, thickness, height):
        geom = WireGeometry(
            width=width * UM, thickness=thickness * UM, height=height * UM
        )
        r, l, c = extract_rlc(geom)
        assert r > 0 and l > 0 and c > 0

    @settings(max_examples=30, deadline=None)
    @given(width=st.floats(min_value=0.2, max_value=10.0))
    def test_lc_product_near_dielectric_limit(self, width):
        """For a microstrip, L*C ~ mu0*eps (within geometry fudge)."""
        geom = WireGeometry(width=width * UM, thickness=UM, height=UM)
        _, l, c = extract_rlc(geom)
        ideal = materials.MU0 * materials.EPS0 * geom.eps_r
        assert 0.3 * ideal < l * c < 30.0 * ideal


class TestNodes:
    def test_lookup(self):
        node = node_by_name("250nm")
        assert node.feature_size == pytest.approx(250e-9)

    def test_unknown_node(self):
        with pytest.raises(ParameterError, match="known nodes"):
            node_by_name("3nm")

    def test_paper_anchor_tlr_at_250nm(self):
        """T_{L/R} ~= 5 'common for a current 0.25 um technology'."""
        assert node_by_name("250nm").tlr("global") == pytest.approx(5.5, abs=1.0)

    def test_intrinsic_delay_shrinks_with_scaling(self):
        delays = [node.intrinsic_delay for node in PREDEFINED_NODES]
        assert all(b < a for a, b in zip(delays, delays[1:]))

    def test_tlr_grows_on_copper_nodes(self):
        copper = [n for n in PREDEFINED_NODES if n.name != "350nm"]
        tlrs = [n.tlr("global") for n in copper]
        assert all(b > a for a, b in zip(tlrs, tlrs[1:]))

    def test_line_construction(self):
        node = node_by_name("250nm")
        line = node.line(0.01, driver_size=100.0, load_size=100.0)
        assert line.rtr == pytest.approx(node.r0 / 100.0)
        assert line.cl == pytest.approx(node.c0 * 100.0)
        assert line.rt > 0 and line.lt > 0 and line.ct > 0

    def test_intermediate_layer_more_resistive(self):
        node = node_by_name("250nm")
        r_global, _, _ = node.wire_rlc("global")
        r_mid, _, _ = node.wire_rlc("intermediate")
        assert r_mid > r_global

    def test_unknown_layer(self):
        with pytest.raises(ParameterError, match="layer"):
            node_by_name("250nm").wire_rlc("poly")

    def test_min_buffer(self):
        node = node_by_name("250nm")
        buffer = node.min_buffer()
        assert buffer.intrinsic_delay == pytest.approx(node.intrinsic_delay)
