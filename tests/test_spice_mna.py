"""Tests for repro.spice.mna: Modified Nodal Analysis stamps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.spice.mna import build_mna
from repro.spice.netlist import Circuit, Step


def rc_circuit() -> Circuit:
    ckt = Circuit()
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("r1", "in", "out", 1000.0)
    ckt.add_capacitor("c1", "out", "0", 1e-12)
    return ckt


class TestAssembly:
    def test_unknown_count(self):
        system = build_mna(rc_circuit())
        # 2 nodes + 1 voltage-source branch.
        assert system.size == 3
        assert system.n_nodes == 2

    def test_resistor_stamp(self):
        system = build_mna(rc_circuit())
        i = system.node_index["in"]
        j = system.node_index["out"]
        g = 1.0 / 1000.0
        assert system.g[i, i] == pytest.approx(g)
        assert system.g[j, j] == pytest.approx(g)
        assert system.g[i, j] == pytest.approx(-g)
        assert system.g[j, i] == pytest.approx(-g)

    def test_capacitor_stamp_in_dynamic_matrix(self):
        system = build_mna(rc_circuit())
        j = system.node_index["out"]
        assert system.c[j, j] == pytest.approx(1e-12)
        assert np.all(system.g[j, j] != system.c[j, j])

    def test_voltage_source_stamp(self):
        system = build_mna(rc_circuit())
        i = system.node_index["in"]
        m = system.branch_index["vin"]
        assert system.g[i, m] == 1.0
        assert system.g[m, i] == 1.0

    def test_inductor_stamp(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", "0", 1.0)
        ckt.add_inductor("l1", "a", "b", 2e-9)
        ckt.add_resistor("r1", "b", "0", 10.0)
        system = build_mna(ckt)
        m = system.branch_index["l1"]
        a = system.node_index["a"]
        b = system.node_index["b"]
        assert system.g[m, a] == 1.0
        assert system.g[m, b] == -1.0
        assert system.g[a, m] == 1.0
        assert system.g[b, m] == -1.0
        assert system.c[m, m] == pytest.approx(-2e-9)

    def test_current_source_rhs(self):
        ckt = Circuit()
        ckt.add_current_source("i1", "0", "a", 2.0)  # injects into a
        ckt.add_resistor("r1", "a", "0", 5.0)
        system = build_mna(ckt)
        b = system.rhs(0.0)
        assert b[system.node_index["a"]] == pytest.approx(2.0)

    def test_rhs_matrix_matches_pointwise(self):
        system = build_mna(rc_circuit())
        times = np.array([0.0, 1e-12, 1.0])
        stacked = system.rhs_matrix(times)
        for k, t in enumerate(times):
            assert np.allclose(stacked[k], system.rhs(float(t)))

    def test_row_lookup_errors(self):
        system = build_mna(rc_circuit())
        with pytest.raises(NetlistError, match="unknown node"):
            system.voltage_row("nope")
        with pytest.raises(NetlistError, match="no branch current"):
            system.current_row("r1")
        with pytest.raises(NetlistError, match="ground"):
            system.voltage_row("0")


class TestConservationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=6
        )
    )
    def test_series_resistor_chain_current(self, values):
        """DC current through a resistor chain equals V / sum(R)."""
        ckt = Circuit()
        ckt.add_voltage_source("v1", "n0", "0", 1.0)
        for i, r in enumerate(values):
            ckt.add_resistor(f"r{i}", f"n{i}", f"n{i + 1}", r)
        ckt.add_resistor("rterm", f"n{len(values)}", "0", 1.0)
        system = build_mna(ckt)
        x = np.linalg.solve(system.g, system.rhs(0.0))
        current = -x[system.branch_index["v1"]]  # source convention
        assert current == pytest.approx(1.0 / (sum(values) + 1.0), rel=1e-9)

    def test_floating_node_is_singular(self):
        ckt = Circuit()
        ckt.add_voltage_source("v1", "a", "0", 1.0)
        ckt.add_resistor("r1", "a", "b", 1.0)
        ckt.add_capacitor("c1", "b", "0", 1e-12)
        ckt.add_capacitor("c2", "b", "c", 1e-12)
        ckt.add_capacitor("c3", "c", "0", 1e-12)
        system = build_mna(ckt)
        # Node c touches only capacitors: G row is all zero.
        row = system.node_index["c"]
        assert np.all(system.g[row] == 0.0)
