"""Tests for repro.spice.ladder: lumped approximations of the line."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.spice.ladder import (
    LadderSpec,
    LadderTopology,
    build_ladder_circuit,
    build_ladder_state_space,
)
from repro.spice.netlist import Capacitor, Inductor, Resistor
from repro.spice.statespace import simulate_step
from repro.spice.transient import simulate_transient

KW = dict(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)


class TestSpecValidation:
    def test_requires_positive_driver(self):
        with pytest.raises(ParameterError):
            LadderSpec(rt=1.0, lt=1e-9, ct=1e-12, rtr=0.0)

    def test_requires_integer_segments(self):
        with pytest.raises(ParameterError, match="n_segments"):
            LadderSpec(rt=1.0, lt=1e-9, ct=1e-12, rtr=1.0, n_segments=2.5)  # type: ignore[arg-type]

    def test_topology_coercion(self):
        spec = LadderSpec(rt=1.0, lt=1e-9, ct=1e-12, rtr=1.0, topology="pi".upper())
        assert spec.topology is LadderTopology.PI


class TestChainConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        topology=st.sampled_from(["L", "PI", "T"]),
        cl=st.floats(min_value=0.0, max_value=5e-13),
    )
    def test_totals_preserved(self, n, topology, cl):
        """Lumping conserves total R, L and C.

        One documented exception: an open-ended T ladder (cl == 0) drops
        its dangling final half-branch -- electrically exact (the branch
        carries no current) but the series totals are short by half a
        segment.
        """
        spec = LadderSpec(**{**KW, "cl": cl}, n_segments=n, topology=topology)
        chain = spec._chain()
        expected_rt, expected_lt = spec.rt, spec.lt
        if topology == "T" and cl == 0.0:
            expected_rt -= spec.rt / (2 * n)
            expected_lt -= spec.lt / (2 * n)
        assert np.sum(chain.r) == pytest.approx(expected_rt, rel=1e-12)
        assert np.sum(chain.l) == pytest.approx(expected_lt, rel=1e-12)
        assert np.sum(chain.caps) == pytest.approx(spec.ct + cl, rel=1e-12)

    def test_pi_has_half_end_caps(self):
        spec = LadderSpec(**KW, n_segments=4, topology="PI")
        caps = spec._chain().caps
        assert caps[0] == pytest.approx(spec.ct / 8)
        assert caps[-1] == pytest.approx(spec.ct / 8 + spec.cl)

    def test_l_has_no_input_cap(self):
        spec = LadderSpec(**KW, n_segments=4, topology="L")
        assert spec._chain().caps[0] == 0.0

    def test_t_has_half_end_branches(self):
        spec = LadderSpec(**KW, n_segments=4, topology="T")
        chain = spec._chain()
        assert chain.r[0] == pytest.approx(chain.r[1] / 2)
        assert chain.r[-1] == pytest.approx(chain.r[1] / 2)


class TestCircuitBuilder:
    def test_element_counts_pi(self):
        spec = LadderSpec(**KW, n_segments=8, topology="PI")
        ckt = build_ladder_circuit(spec)
        # rtr + 8 segment resistors; 8 inductors; 9 caps; 1 source.
        assert len(ckt.elements_of_type(Resistor)) == 9
        assert len(ckt.elements_of_type(Inductor)) == 8
        assert len(ckt.elements_of_type(Capacitor)) == 9

    def test_output_node_exists(self):
        spec = LadderSpec(**KW, n_segments=8)
        ckt = build_ladder_circuit(spec)
        assert spec.output_node in ckt.node_names()

    def test_validates(self):
        for topology in ("L", "PI", "T"):
            spec = LadderSpec(**KW, n_segments=3, topology=topology)
            build_ladder_circuit(spec).validate()

    def test_step_amplitude(self):
        spec = LadderSpec(**KW, n_segments=4)
        ckt = build_ladder_circuit(spec, v_step=2.5)
        result = simulate_transient(ckt, 2e-9, 1e-11)
        assert result.voltage("in").values[-1] == pytest.approx(2.5)


class TestStateSpaceBuilder:
    def test_state_count_pi(self):
        spec = LadderSpec(**KW, n_segments=8, topology="PI")
        model = build_ladder_state_space(spec)
        # 8 inductor currents + 9 cap voltages.
        assert model.order == 17

    def test_state_count_l(self):
        spec = LadderSpec(**KW, n_segments=8, topology="L")
        model = build_ladder_state_space(spec)
        # 8 currents + 8 cap voltages (no input cap).
        assert model.order == 16

    def test_dc_gain_unity(self):
        for topology in ("L", "PI", "T"):
            spec = LadderSpec(**KW, n_segments=6, topology=topology)
            model = build_ladder_state_space(spec)
            h0 = model.transfer_at(np.array([1.0 + 0j]))[0, 0, 0]
            assert abs(h0 - 1.0) < 1e-6

    def test_t_topology_open_end(self):
        spec = LadderSpec(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=0.0,
                          n_segments=6, topology="T")
        model = build_ladder_state_space(spec)
        h0 = model.transfer_at(np.array([1.0 + 0j]))[0, 0, 0]
        assert abs(h0 - 1.0) < 1e-6

    def test_matches_circuit_route(self):
        """MNA transient and state-space must agree on the same ladder."""
        spec = LadderSpec(**KW, n_segments=12, topology="PI")
        (w_ss,) = simulate_step(
            build_ladder_state_space(spec), 6e-9, n_samples=1201
        )
        result = simulate_transient(build_ladder_circuit(spec), 6e-9, 1e-12)
        w_mna = result.voltage(spec.output_node).resampled(w_ss.times)
        assert np.max(np.abs(w_ss.values - w_mna.values)) < 5e-3

    @pytest.mark.parametrize("topology", ["L", "PI", "T"])
    def test_delay_converges_to_exact(self, topology):
        """Ladder t50 approaches the exact distributed-line t50 as n grows."""
        from repro.tline.transfer import DriverLineLoadTransfer
        from repro.tline.waveform import Waveform

        times = np.linspace(0.0, 8e-9, 3001)
        exact = DriverLineLoadTransfer(
            rt=KW["rt"], lt=KW["lt"], ct=KW["ct"], rtr=KW["rtr"], cl=KW["cl"]
        ).step_response(times, M=60)
        t50_exact = Waveform(times, exact).delay_50(v_final=1.0)

        def t50(n: int) -> float:
            spec = LadderSpec(**KW, n_segments=n, topology=topology)
            (w,) = simulate_step(build_ladder_state_space(spec), 8e-9,
                                 n_samples=3001)
            return w.delay_50(v_final=1.0)

        coarse = abs(t50(8) - t50_exact)
        fine = abs(t50(64) - t50_exact)
        assert fine < coarse
        assert fine / t50_exact < 0.01
