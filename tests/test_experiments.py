"""Tests for the experiment drivers (small configurations for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import REGISTRY, render_table
from repro.experiments import eq17, eq18, fig2, fig4, length_dependence, scaling, table1
from repro.experiments.common import ExperimentTable, format_cell


class TestCommon:
    def make_table(self) -> ExperimentTable:
        return ExperimentTable(
            experiment_id="EXP-XX",
            title="demo",
            headers=("a", "b"),
            rows=((1, 2.5), (3, 1e-7)),
            notes=("a note",),
        )

    def test_render_contains_all_parts(self):
        text = render_table(self.make_table())
        assert "EXP-XX" in text and "demo" in text
        assert "a note" in text
        assert "2.5" in text

    def test_column_extraction(self):
        table = self.make_table()
        assert table.column("a") == [1, 3]
        with pytest.raises(ValueError):
            table.column("zz")

    def test_format_cell(self):
        assert format_cell(2.5) == "2.5"
        assert format_cell(1e-7) == "1.000e-07"
        assert format_cell("x") == "x"
        assert format_cell(None) == "None"
        assert format_cell(0.0) == "0"


class TestRegistry:
    def test_all_design_doc_experiments_present(self):
        expected = {
            "EXP-T1", "EXP-F2", "EXP-F4", "EXP-E17", "EXP-E18",
            "EXP-X1", "EXP-X2", "EXP-X3", "EXP-X4", "EXP-X5", "EXP-X6",
            "EXP-X7", "EXP-X8", "EXP-X9",
        }
        assert set(REGISTRY) == expected

    def test_every_driver_has_run_and_main(self):
        for module in REGISTRY.values():
            assert callable(module.run)
            assert callable(module.main)


class TestTable1:
    def test_subset_errors_below_claim(self):
        """eq. 9 within ~5% of simulation on a sampled Table 1 corner."""
        table = table1.run(
            n_segments=100,
            rt_values=(0.1, 1.0),
            ct_values=(0.1, 1.0),
            lt_values=(1e-6, 1e-8),
        )
        errors = table.column("err_%")
        assert max(errors) < 6.0
        assert len(table.rows) == 8

    def test_case_builder_uses_caption_parameters(self):
        line = table1.build_case(0.5, 0.5, 1e-7)
        assert line.rt == pytest.approx(1000.0)
        assert line.rtr == pytest.approx(500.0)
        assert line.cl == pytest.approx(5e-13)


class TestFig2:
    def test_band_error_small(self):
        table = fig2.run(
            zeta_values=np.array([0.3, 0.8, 1.5]),
            ratio_pairs=((0.0, 0.0), (1.0, 1.0)),
            n_segments=80,
        )
        # Worst case is the bare-line family near the wavefront-limited
        # zetas (~0.8): eq. 9 sits ~8% high there (visible in the paper's
        # own Fig. 2); loaded families stay within ~5%.
        assert max(table.column("band_err_%")) < 10.0

    def test_collapse_within_families(self):
        """Simulated t'_pd for different (RT, CT) agree at equal zeta."""
        table = fig2.run(
            zeta_values=np.array([0.5, 1.0]),
            ratio_pairs=((0.0, 0.0), (1.0, 1.0)),
            n_segments=80,
        )
        for row in table.rows:
            sim_a, sim_b = row[1], row[2]
            assert abs(sim_a - sim_b) / sim_b < 0.15


class TestFig4:
    def test_monotone_factors(self):
        table = fig4.run(tlr_values=np.array([0.5, 2.0, 5.0]))
        h_num = table.column("h'_num")
        k_num = table.column("k'_num")
        assert h_num[0] > h_num[1] > h_num[2]
        assert k_num[0] > k_num[1] > k_num[2]
        assert all(k <= h for h, k in zip(h_num, k_num))

    def test_fit_columns_match_closed_forms(self):
        from repro.core.repeater import error_factors

        table = fig4.run(tlr_values=np.array([3.0]))
        h_fit, k_fit = error_factors(3.0)
        assert table.rows[0][2] == pytest.approx(h_fit, abs=1e-3)
        assert table.rows[0][4] == pytest.approx(k_fit, abs=1e-3)


class TestEq17:
    def test_closed_form_column_anchors(self):
        table = eq17.run(tlr_values=np.array([3.0, 5.0]), simulate=False)
        closed = table.column("eq17_%")
        assert closed[0] == pytest.approx(10.0, abs=0.5)
        assert closed[1] == pytest.approx(20.0, abs=0.5)

    def test_model_column_nonnegative_and_growing(self):
        table = eq17.run(tlr_values=np.array([1.0, 5.0]), simulate=False)
        model = table.column("model_%")
        assert model[0] >= 0.0
        assert model[1] > model[0]


class TestEq18:
    def test_anchor_rows(self):
        table = eq18.run(tlr_values=np.array([3.0, 5.0]))
        closed = table.column("eq18_area_%")
        assert closed[0] == pytest.approx(154.0, abs=1.0)
        assert closed[1] == pytest.approx(435.0, abs=1.5)

    def test_power_tracks_area_without_wire(self):
        table = eq18.run(tlr_values=np.array([4.0]))
        row = table.rows[0]
        assert row[3] == pytest.approx(row[1], abs=0.2)  # power_rep == area
        assert row[4] < row[1]  # wire dilutes


class TestScalingAndLength:
    def test_scaling_experiment_rows(self):
        table = scaling.run()
        assert len(table.rows) == 6
        tlrs = table.column("T_L/R")
        assert tlrs[1] == pytest.approx(5.5, abs=1.0)  # 250nm anchor

    def test_length_dependence_exponents(self):
        table = length_dependence.run(
            inductance_scales=(1e-6, 10.0),
            lengths=np.geomspace(1e-3, 32e-3, 7),
        )
        rc_row, inductive_row = table.rows
        assert rc_row[1] == pytest.approx(2.0, abs=0.05)   # short exponent
        assert rc_row[2] == pytest.approx(2.0, abs=0.05)   # long exponent
        assert inductive_row[1] == pytest.approx(1.0, abs=0.1)
