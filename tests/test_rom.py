"""Conformance suite for the reduced-order evaluation-model tier.

Pins the ``model="full" | "reduced" | "auto"`` plumbing end to end:

- :func:`repro.rom.model.resolve_model` validation and
  :class:`~repro.rom.model.ModelSelection` evidence/repr,
- reduced-vs-full equivalence for transient, AC and delay queries on
  ladders, coupled buses, H-trees, fanout trees and meshes, across all
  three linear-solver backends,
- the ``"auto"`` decision rules (small-system shortcut, within-bound
  service, per-query and per-point error fallback) with their recorded
  counters,
- projection caching (``rom.projection_builds`` / ``projection_reuse``),
- cross-validation against AWE on the canonical driver--line--load
  circuit, including the documented order crossover (AWE capped near
  q ~ 8, the projection tier comfortable far beyond),
- the sweep runner's ``model=`` option (validation, caching, results).

Tolerances are pinned ~10x above measured errors so they guard real
regressions without flaking on backend noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.bus.builder import build_bus_circuit
from repro.bus.spec import BusSpec
from repro.core.awe import awe_delay_50, awe_reduce
from repro.core.canonical import DriverLineLoad
from repro.core.simulate import simulated_delay_50, simulated_delay_50_batch
from repro.errors import AnalysisError, ParameterError
from repro.rom import (
    DEFAULT_ERROR_BOUND,
    MODELS,
    ROM_SIZE_CUTOFF,
    ModelSelection,
    prima_reduce,
    resolve_model,
)
from repro.spice.ac import ac_sweep, ac_sweep_batch
from repro.spice.ladder import (
    LadderSpec,
    build_ladder_circuit,
    build_ladder_template,
)
from repro.spice.mna import build_mna
from repro.spice.parser import suggest_transient_window
from repro.spice.transient import simulate_transient, simulate_transient_batch
from repro.sweep import Axis, ParameterGrid, Sweep, SweepRunner
from repro.topology import (
    FanoutTreeSpec,
    HTreeSpec,
    MeshSpec,
    build_fanout_circuit,
    build_htree_circuit,
    build_mesh_circuit,
)

ALL_BACKENDS = ("dense", "sparse", "banded")

#: RC-dominated Table 1 corner: smooth response, fast Krylov convergence.
OVERDAMPED = dict(rt=1000.0, lt=1e-8, ct=1e-12, rtr=500.0, cl=5e-13)
#: Strongly inductive corner: oscillatory, the hard case for any ROM.
UNDERDAMPED = dict(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _rom_counters() -> dict:
    """The rom.* counter snapshot as {name: {labels-tuple: value}}."""
    snap = obs.REGISTRY.snapshot()["counters"]
    return {
        name: {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in entries
        }
        for name, entries in snap.items()
        if name.startswith("rom.")
    }


def _ladder(params: dict, n: int):
    spec = LadderSpec(**params, n_segments=n)
    circuit = build_ladder_circuit(spec)
    t_stop, dt = suggest_transient_window(circuit, n_samples=600)
    return spec, circuit, t_stop, dt


# ---------------------------------------------------------------------------
# resolve_model and ModelSelection
# ---------------------------------------------------------------------------


class TestResolveModel:
    def test_valid_names_normalize(self):
        assert MODELS == ("full", "reduced", "auto")
        for name in MODELS:
            assert resolve_model(name) == name
            assert resolve_model(name.upper()) == name

    def test_unknown_model_names_the_tiers(self):
        with pytest.raises(ParameterError, match="unknown evaluation model"):
            resolve_model("fast")
        try:
            resolve_model("fast")
        except ParameterError as exc:
            for name in MODELS:
                assert name in str(exc)

    def test_non_string_rejected(self):
        with pytest.raises(ParameterError, match="model must be"):
            resolve_model(3)

    def test_selection_repr_is_the_evidence(self):
        explicit = ModelSelection(model="reduced", rule="explicit", size=300)
        assert "reduced" in repr(explicit)
        assert "explicitly" in repr(explicit)
        fallback = ModelSelection(
            model="full",
            rule="auto-error-fallback",
            size=300,
            order=8,
            error_estimate=0.25,
            error_bound=5e-3,
        )
        assert "full" in repr(fallback)
        assert "0.005" in repr(fallback) or "5e-03" in repr(fallback)

    def test_small_system_reason_names_the_cutoff(self):
        sel = ModelSelection(model="full", rule="auto-small-system", size=10)
        assert str(ROM_SIZE_CUTOFF) in sel.reason()


class TestPrimaApi:
    def test_projection_shapes_and_checks(self):
        _, circuit, _, _ = _ladder(OVERDAMPED, 40)
        system = build_mna(circuit)
        rom = prima_reduce(system, order=12)
        n = system.g.shape[0]
        assert rom.full_size == n
        assert 0 < rom.order <= n
        assert np.isfinite(rom.moment_error)
        z = np.zeros((5, rom.order))
        assert rom.reconstruct(z).shape == (5, n)
        assert f"q={rom.order}" in repr(rom) or str(rom.order) in repr(rom)

    def test_projected_unit_rhs_matches_test_basis(self):
        _, circuit, _, _ = _ladder(OVERDAMPED, 24)
        system = build_mna(circuit)
        rom = prima_reduce(system, order=10)
        row = 3
        vq = rom.projected_unit_rhs(row)
        assert vq.shape == (rom.order,)
        # W = D V with unit +-1 signs, so |W^T e_row| == |V[row]|.
        assert np.allclose(np.abs(vq), np.abs(rom.basis[row]))


# ---------------------------------------------------------------------------
# Reduced vs full: transient
# ---------------------------------------------------------------------------


class TestReducedTransientEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_ladder_waveform(self, backend):
        spec, circuit, t_stop, dt = _ladder(OVERDAMPED, 60)
        full = simulate_transient(circuit, t_stop, dt, backend=backend)
        red = simulate_transient(
            circuit, t_stop, dt, backend=backend,
            model="reduced", rom_order=24,
        )
        out = spec.output_node
        err = np.abs(
            red.voltage(out).values - full.voltage(out).values
        ).max()
        assert err <= 1e-3  # measured ~6e-5

    def test_htree_waveform(self):
        spec = HTreeSpec(
            levels=2, rt=200.0, lt=2e-8, ct=2e-12, rtr=50.0, cl=2e-13,
            n_segments=6,
        )
        circuit = build_htree_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=600)
        full = simulate_transient(circuit, t_stop, dt)
        red = simulate_transient(
            circuit, t_stop, dt, model="reduced", rom_order=24
        )
        out = spec.output_node
        err = np.abs(
            red.voltage(out).values - full.voltage(out).values
        ).max()
        assert err <= 1e-4  # measured ~4e-7

    def test_fanout_waveform(self):
        spec = FanoutTreeSpec(
            fanout=4, brt=150.0, blt=1.5e-8, bct=1.5e-12, rtr=40.0,
            cl=1e-13, rt=100.0, lt=1e-8, ct=1e-12,
            trunk_segments=5, branch_segments=5,
        )
        circuit = build_fanout_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=600)
        full = simulate_transient(circuit, t_stop, dt)
        red = simulate_transient(
            circuit, t_stop, dt, model="reduced", rom_order=24
        )
        out = spec.output_node
        err = np.abs(
            red.voltage(out).values - full.voltage(out).values
        ).max()
        assert err <= 1e-6  # measured ~1e-10

    def test_mesh_waveform(self):
        spec = MeshSpec(
            rows=4, cols=5, r_edge=20.0, rtr=25.0, l_edge=5e-10,
            c_node=5e-14, cl=2e-13,
        )
        circuit = build_mesh_circuit(spec)
        t_stop, dt = suggest_transient_window(circuit, n_samples=600)
        full = simulate_transient(circuit, t_stop, dt)
        red = simulate_transient(
            circuit, t_stop, dt, model="reduced", rom_order=24
        )
        out = spec.output_node
        err = np.abs(
            red.voltage(out).values - full.voltage(out).values
        ).max()
        assert err <= 5e-3  # measured ~5e-4

    def test_coupled_bus_all_states(self):
        spec = BusSpec(
            n_lines=3, rt=100.0, lt=25e-9, ct=2e-12, cct=1e-12, km=0.5,
            rtr=50.0, cl=5e-14, n_segments=8,
        )
        circuit = build_bus_circuit(spec, "rise")
        t_stop, dt = suggest_transient_window(circuit, n_samples=600)
        full = simulate_transient(circuit, t_stop, dt)
        red = simulate_transient(
            circuit, t_stop, dt, model="reduced", rom_order=48
        )
        # Three independent sources -> block Krylov; q=48 of n=81.
        assert np.abs(red.states - full.states).max() <= 0.02  # ~3e-3

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_batch_matches_full_batch(self, backend):
        template = build_ladder_template(60, "PI", loaded=True)
        points = [
            dict(OVERDAMPED, rt=OVERDAMPED["rt"] * s)
            for s in (0.7, 1.0, 1.4)
        ]
        _, circuit, t_stop, dt = _ladder(OVERDAMPED, 60)
        full = simulate_transient_batch(
            template, points, t_stop, dt, backend=backend
        )
        red = simulate_transient_batch(
            template, points, t_stop, dt, backend=backend,
            model="reduced", rom_order=24,
        )
        # One corner-enriched projection serves the whole value box.
        assert np.abs(red.states - full.states).max() <= 0.05  # ~6e-3


# ---------------------------------------------------------------------------
# Reduced vs full: AC
# ---------------------------------------------------------------------------


class TestReducedAcEquivalence:
    OMEGAS = np.geomspace(1e6, 1e10, 25)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_scalar_sweep(self, backend):
        _, circuit, _, _ = _ladder(OVERDAMPED, 60)
        full = ac_sweep(circuit, self.OMEGAS, backend=backend)
        red = ac_sweep(
            circuit, self.OMEGAS, backend=backend,
            model="reduced", rom_order=24,
        )
        assert np.abs(red.states - full.states).max() <= 1e-8  # ~8e-14

    def test_batch_sweep(self):
        template = build_ladder_template(60, "PI", loaded=True)
        points = [
            dict(OVERDAMPED, rt=OVERDAMPED["rt"] * s)
            for s in (0.7, 1.0, 1.4)
        ]
        full = ac_sweep_batch(template, points, self.OMEGAS)
        red = ac_sweep_batch(
            template, points, self.OMEGAS, model="reduced", rom_order=24
        )
        assert np.abs(red.states - full.states).max() <= 1e-6  # ~1e-9

    def test_auto_small_system_is_bit_exact(self):
        _, circuit, _, _ = _ladder(OVERDAMPED, 20)
        full = ac_sweep(circuit, self.OMEGAS)
        auto = ac_sweep(circuit, self.OMEGAS, model="auto")
        np.testing.assert_array_equal(auto.states, full.states)


# ---------------------------------------------------------------------------
# Reduced vs full: delay entry points
# ---------------------------------------------------------------------------


class TestReducedDelay:
    def test_scalar_delay_overdamped(self):
        line = DriverLineLoad(**OVERDAMPED)
        full = simulated_delay_50(line, route="mna", n_segments=120)
        red = simulated_delay_50(
            line, route="mna", n_segments=120,
            model="reduced", rom_order=24,
        )
        assert abs(red - full) / full <= 1e-4  # measured ~1e-7

    def test_scalar_delay_underdamped(self):
        # The oscillatory corner needs a deeper basis; 1% target at q=40.
        line = DriverLineLoad(**UNDERDAMPED)
        full = simulated_delay_50(line, route="mna", n_segments=120)
        red = simulated_delay_50(
            line, route="mna", n_segments=120,
            model="reduced", rom_order=40,
        )
        assert abs(red - full) / full <= 0.03  # measured ~0.6%

    def test_batch_delay(self):
        lines = [
            DriverLineLoad(**dict(OVERDAMPED, rt=OVERDAMPED["rt"] * s))
            for s in (0.8, 1.0, 1.3)
        ]
        full = simulated_delay_50_batch(lines, route="mna", n_segments=120)
        red = simulated_delay_50_batch(
            lines, route="mna", n_segments=120,
            model="reduced", rom_order=24,
        )
        assert np.abs(red - full).max() / full.min() <= 1e-4  # ~2e-7

    def test_model_validated_before_simulation(self):
        line = DriverLineLoad(**OVERDAMPED)
        with pytest.raises(ParameterError, match="unknown evaluation model"):
            simulated_delay_50(line, route="mna", model="turbo")


# ---------------------------------------------------------------------------
# The "auto" decision rules
# ---------------------------------------------------------------------------


class TestAutoTier:
    def test_small_system_serves_full_exactly(self):
        _, circuit, t_stop, dt = _ladder(OVERDAMPED, 60)
        obs.enable()
        auto = simulate_transient(circuit, t_stop, dt, model="auto")
        full = simulate_transient(circuit, t_stop, dt)
        np.testing.assert_array_equal(auto.states, full.states)
        counters = _rom_counters()["rom.model_selected"]
        key = (("model", "full"), ("rule", "auto-small-system"))
        assert counters[key] >= 1.0

    def test_large_system_served_reduced_within_bound(self):
        # 140 PI segments -> ~282 unknowns, past ROM_SIZE_CUTOFF.
        spec, circuit, t_stop, dt = _ladder(OVERDAMPED, 140)
        assert build_mna(circuit).g.shape[0] > ROM_SIZE_CUTOFF
        obs.enable()
        auto = simulate_transient(circuit, t_stop, dt, model="auto")
        full = simulate_transient(circuit, t_stop, dt)
        out = spec.output_node
        err = np.abs(
            auto.voltage(out).values - full.voltage(out).values
        ).max()
        assert err <= DEFAULT_ERROR_BOUND  # the bound it promised
        counters = _rom_counters()["rom.model_selected"]
        key = (("model", "reduced"), ("rule", "auto-within-bound"))
        assert counters[key] >= 1.0

    def test_error_fallback_is_bit_exact_full(self):
        # A deliberately starved projection (q=4) on the hard corner
        # with a tight bound: auto must detect and serve full MNA.
        _, circuit, t_stop, dt = _ladder(UNDERDAMPED, 140)
        obs.enable()
        auto = simulate_transient(
            circuit, t_stop, dt, model="auto",
            rom_order=4, rom_error_bound=1e-6,
        )
        full = simulate_transient(circuit, t_stop, dt)
        np.testing.assert_array_equal(auto.states, full.states)
        counters = _rom_counters()
        assert counters["rom.fallbacks"][(("rule", "auto-error-fallback"),)] >= 1.0
        key = (("model", "full"), ("rule", "auto-error-fallback"))
        assert counters["rom.model_selected"][key] >= 1.0

    def test_batch_per_point_fallback_merges_full_results(self):
        template = build_ladder_template(140, "PI", loaded=True)
        points = [
            dict(UNDERDAMPED, rt=UNDERDAMPED["rt"] * s)
            for s in (0.8, 1.0, 1.25)
        ]
        _, circuit, t_stop, dt = _ladder(UNDERDAMPED, 140)
        obs.enable()
        full = simulate_transient_batch(template, points, t_stop, dt)
        auto = simulate_transient_batch(
            template, points, t_stop, dt, model="auto",
            rom_order=4, rom_error_bound=1e-8,
        )
        np.testing.assert_array_equal(auto.states, full.states)
        counters = _rom_counters()
        key = (("model", "full"), ("rule", "auto-error-fallback"))
        assert counters["rom.model_selected"][key] == len(points)


# ---------------------------------------------------------------------------
# Projection caching and counters
# ---------------------------------------------------------------------------


class TestProjectionCache:
    def test_second_batch_reuses_the_projection(self):
        template = build_ladder_template(80, "PI", loaded=True)
        points = [
            dict(OVERDAMPED, rt=OVERDAMPED["rt"] * s) for s in (0.9, 1.1)
        ]
        _, circuit, t_stop, dt = _ladder(OVERDAMPED, 80)
        obs.enable()
        first = simulate_transient_batch(
            template, points, t_stop, dt, model="reduced", rom_order=16
        )
        second = simulate_transient_batch(
            template, points, t_stop, dt, model="reduced", rom_order=16
        )
        np.testing.assert_array_equal(first.states, second.states)
        counters = _rom_counters()
        assert counters["rom.projection_builds"][()] == 1.0
        assert counters["rom.projection_reuse"][()] >= 1.0

    def test_selection_recording_is_noop_while_disabled(self):
        _, circuit, t_stop, dt = _ladder(OVERDAMPED, 40)
        simulate_transient(
            circuit, t_stop, dt, model="reduced", rom_order=12
        )
        assert obs.REGISTRY.snapshot()["counters"] == {}


# ---------------------------------------------------------------------------
# Cross-validation against AWE (satellite: two independent ROMs agree)
# ---------------------------------------------------------------------------


class TestAweCrossValidation:
    def test_overdamped_delay_agreement(self):
        # Two independent reductions of the same physics: AWE's moment
        # matching (q=4) and the PRIMA projection (q=24) must agree on
        # the 50% delay to within each other's error budget.
        line = DriverLineLoad(**OVERDAMPED)
        awe = awe_delay_50(line, q=4)
        red = simulated_delay_50(
            line, route="mna", n_segments=120,
            model="reduced", rom_order=24,
        )
        assert abs(awe - red) / red <= 0.01  # measured ~0.15%

    def test_underdamped_delay_agreement(self):
        line = DriverLineLoad(**UNDERDAMPED)
        awe = awe_delay_50(line, q=5)
        red = simulated_delay_50(
            line, route="mna", n_segments=120,
            model="reduced", rom_order=40,
        )
        assert abs(awe - red) / red <= 0.05  # measured ~2%

    def test_order_crossover(self):
        # The documented division of labor: AWE's Hankel conditioning
        # caps it near q ~ 8; the projection tier keeps going.
        line = DriverLineLoad(**OVERDAMPED)
        with pytest.raises(AnalysisError, match="order"):
            awe_reduce(line, q=40)
        red = simulated_delay_50(
            line, route="mna", n_segments=120,
            model="reduced", rom_order=40,
        )
        full = simulated_delay_50(line, route="mna", n_segments=120)
        assert abs(red - full) / full <= 1e-4


# ---------------------------------------------------------------------------
# Sweep runner integration
# ---------------------------------------------------------------------------


class TestSweepIntegration:
    GRID = ParameterGrid(Axis("rt", [800.0, 1000.0, 1200.0]))
    FIXED = {"lt": 1e-8, "ct": 1e-12, "rtr": 500.0, "cl": 5e-13}
    OPTIONS = dict(route="mna", n_segments=40, n_samples=801)

    def _sweep(self, **extra) -> Sweep:
        return Sweep(
            "simulated_delay_50",
            self.GRID,
            fixed=self.FIXED,
            options=dict(self.OPTIONS, **extra),
        )

    def test_bad_model_option_rejected_before_running(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        with pytest.raises(ParameterError, match="unknown evaluation model"):
            runner.run(self._sweep(model="bogus"))

    def test_model_option_is_part_of_the_cache_key(self):
        assert (
            self._sweep(model="auto").cache_key()
            != self._sweep().cache_key()
        )
        assert (
            self._sweep(model="reduced").cache_key()
            != self._sweep(model="auto").cache_key()
        )

    def test_auto_sweep_matches_full_sweep(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        full = runner.run(self._sweep())
        auto = runner.run(self._sweep(model="auto"))
        # Small ladders: the auto rule picks full, bit for bit.
        np.testing.assert_array_equal(auto.output(), full.output())
