"""Tests for repro.core.simulate: the simulator dispatch layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delay import propagation_delay
from repro.core.simulate import (
    SimulatorRoute,
    simulated_delay_50,
    simulated_step_waveform,
)
from repro.errors import ParameterError


class TestRouteAgreement:
    def test_all_routes_agree_underdamped(self, underdamped_line):
        ss = simulated_delay_50(underdamped_line, route="statespace", n_segments=150)
        tl = simulated_delay_50(underdamped_line, route="tline")
        mna = simulated_delay_50(
            underdamped_line, route="mna", n_segments=60, n_samples=2001
        )
        assert ss == pytest.approx(tl, rel=0.01)
        assert mna == pytest.approx(tl, rel=0.02)

    def test_all_routes_agree_overdamped(self, overdamped_line):
        ss = simulated_delay_50(overdamped_line, route="statespace", n_segments=100)
        tl = simulated_delay_50(overdamped_line, route="tline")
        assert ss == pytest.approx(tl, rel=0.005)

    def test_route_enum_and_string(self, critical_line):
        a = simulated_delay_50(critical_line, route=SimulatorRoute.STATESPACE)
        b = simulated_delay_50(critical_line, route="statespace")
        assert a == b

    def test_unknown_route(self, critical_line):
        with pytest.raises(ValueError):
            simulated_delay_50(critical_line, route="spectre")


class TestModelAgreement:
    def test_eq9_close_to_simulation(self, underdamped_line, critical_line):
        for line in (underdamped_line, critical_line):
            sim = simulated_delay_50(line, n_segments=150)
            model = propagation_delay(line)
            assert abs(model - sim) / sim < 0.06  # paper: < 5% vs AS/X


class TestWaveform:
    def test_waveform_starts_at_zero(self, underdamped_line):
        w = simulated_step_waveform(underdamped_line, n_segments=40)
        assert w.values[0] == pytest.approx(0.0, abs=1e-12)

    def test_waveform_settles_to_unity(self, overdamped_line):
        w = simulated_step_waveform(overdamped_line, n_segments=40)
        assert w.values[-1] == pytest.approx(1.0, abs=1e-2)

    def test_underdamped_overshoots(self, underdamped_line):
        w = simulated_step_waveform(underdamped_line, n_segments=80)
        assert w.overshoot(v_final=1.0) > 0.2

    def test_mna_dt_override(self, critical_line):
        w = simulated_step_waveform(
            critical_line, route="mna", n_segments=30, n_samples=501, dt=2e-12
        )
        assert w.times.size > 100
