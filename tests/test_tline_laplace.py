"""Tests for repro.tline.laplace: inversion against analytic pairs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.tline.laplace import (
    InversionMethod,
    dehoog,
    euler,
    invert_laplace,
    step_response,
    talbot,
)

METHODS = [talbot, euler, dehoog]
METHOD_IDS = ["talbot", "euler", "dehoog"]

TIMES = np.array([0.05, 0.3, 1.0, 2.5, 6.0])


def transform_pairs():
    """(F(s), f(t)) analytic pairs used across methods."""
    return [
        (lambda s: 1.0 / (s + 1.0), lambda t: np.exp(-t)),
        (lambda s: 1.0 / s**2, lambda t: t),
        (lambda s: 2.0 / (s + 0.5) ** 2, lambda t: 2.0 * t * np.exp(-0.5 * t)),
        (
            lambda s: 3.0 / ((s + 0.2) ** 2 + 9.0),
            lambda t: np.exp(-0.2 * t) * np.sin(3.0 * t),
        ),
        (
            lambda s: s / (s**2 + 4.0),
            lambda t: np.cos(2.0 * t),
        ),
    ]


class TestAnalyticPairs:
    @pytest.mark.parametrize("method", METHODS, ids=METHOD_IDS)
    @pytest.mark.parametrize("pair_index", range(5))
    def test_pair(self, method, pair_index):
        F, f = transform_pairs()[pair_index]
        # de Hoog shares one Fourier window across all times, so its
        # resolution at t << max(t) is bounded by T/(2M); keep the sweep
        # within ~1.5 decades for the shared-window method.
        times = TIMES[1:] if method is dehoog else TIMES
        got = method(F, times)
        expected = f(times)
        tolerance = 2e-5 if method is dehoog else 1e-6
        assert np.allclose(got, expected, atol=tolerance, rtol=1e-4)

    def test_dehoog_early_time_with_matched_window(self):
        """Early times are accurate when the window matches them."""
        F, f = transform_pairs()[0]
        got = dehoog(F, np.array([0.05, 0.1]), M=40)
        assert np.allclose(got, f(np.array([0.05, 0.1])), atol=1e-6)

    @pytest.mark.parametrize("method", METHODS, ids=METHOD_IDS)
    def test_scalar_time(self, method):
        got = method(lambda s: 1.0 / (s + 1.0), 1.0)
        assert got.shape == (1,)
        assert np.isclose(got[0], np.exp(-1.0), atol=1e-6)


class TestDelayedStep:
    """exp(-s)/s -> u(t - 1): discontinuous, the hard case."""

    def test_dehoog_resolves_discontinuity(self):
        F = lambda s: np.exp(-s) / s
        t = np.array([0.5, 0.8, 1.2, 1.5])
        got = dehoog(F, t, M=60)
        assert abs(got[0]) < 0.02
        assert abs(got[1]) < 0.06
        assert abs(got[2] - 1.0) < 0.06
        assert abs(got[3] - 1.0) < 0.02


class TestValidation:
    def test_rejects_zero_time(self):
        with pytest.raises(ParameterError, match="positive times"):
            talbot(lambda s: 1 / s, [0.0, 1.0])

    def test_rejects_negative_time(self):
        with pytest.raises(ParameterError):
            euler(lambda s: 1 / s, [-1.0])

    def test_rejects_2d_times(self):
        with pytest.raises(ParameterError, match="1-D"):
            dehoog(lambda s: 1 / s, np.ones((2, 2)))

    def test_talbot_rejects_tiny_order(self):
        with pytest.raises(ParameterError, match="M >= 2"):
            talbot(lambda s: 1 / s, [1.0], M=1)

    def test_euler_rejects_large_order(self):
        with pytest.raises(ParameterError, match="1 <= M <= 26"):
            euler(lambda s: 1 / s, [1.0], M=40)

    def test_dehoog_rejects_bad_period(self):
        with pytest.raises(ParameterError, match="period_factor"):
            dehoog(lambda s: 1 / s, [1.0], period_factor=0.9)

    def test_rejects_nonfinite_times(self):
        with pytest.raises(ParameterError):
            talbot(lambda s: 1 / s, [np.nan])


class TestDispatcher:
    def test_by_enum(self):
        got = invert_laplace(lambda s: 1 / (s + 2), [1.0], InversionMethod.EULER)
        assert np.isclose(got[0], np.exp(-2.0), atol=1e-8)

    def test_by_string(self):
        got = invert_laplace(lambda s: 1 / (s + 2), [1.0], "talbot")
        assert np.isclose(got[0], np.exp(-2.0), atol=1e-6)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            invert_laplace(lambda s: 1 / s, [1.0], "simpson")

    def test_kwargs_forwarded(self):
        got = invert_laplace(lambda s: 1 / (s + 1), [1.0], "dehoog", M=25)
        assert np.isclose(got[0], np.exp(-1.0), atol=1e-4)


class TestStepResponse:
    def test_first_order_step(self):
        # H = 1/(1 + s) -> step response 1 - exp(-t)
        t = np.array([0.0, 0.5, 1.0, 3.0])
        got = step_response(lambda s: 1.0 / (1.0 + s), t)
        assert got[0] == 0.0
        assert np.allclose(got[1:], 1.0 - np.exp(-t[1:]), atol=1e-5)

    def test_initial_value_override(self):
        got = step_response(lambda s: 1.0 / (1.0 + s), [0.0], initial_value=0.25)
        assert got[0] == 0.25

    def test_rejects_negative_times(self):
        with pytest.raises(ParameterError, match="non-negative"):
            step_response(lambda s: 1.0 / (1.0 + s), [-0.1, 1.0])


class TestLinearity:
    @settings(max_examples=25, deadline=None)
    @given(
        a=st.floats(min_value=-5, max_value=5),
        b=st.floats(min_value=0.1, max_value=4.0),
        c=st.floats(min_value=-5, max_value=5),
        d=st.floats(min_value=0.1, max_value=4.0),
    )
    def test_euler_linear_combination(self, a, b, c, d):
        """Inversion is linear: invert(a*F1 + c*F2) = a*f1 + c*f2."""
        F = lambda s: a / (s + b) + c / (s + d)
        t = np.array([0.4, 1.3])
        got = euler(F, t)
        expected = a * np.exp(-b * t) + c * np.exp(-d * t)
        assert np.allclose(got, expected, atol=1e-7, rtol=1e-6)
