"""Tests for repro.core.penalty and repro.core.fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fitting import (
    delay_model_form,
    error_factor_form,
    fit_delay_model,
    fit_error_factor,
)
from repro.core.penalty import (
    area_increase_closed_form,
    area_increase_from_designs,
    delay_increase_closed_form,
    delay_increase_numerical,
    power_increase,
)
from repro.core.repeater import Buffer, RepeaterDesign
from repro.errors import ConvergenceError, ParameterError


class TestDelayIncreaseClosedForm:
    def test_paper_anchors(self):
        """~10% at T=3, ~20% at T=5, ~30% (28%) at T=10."""
        assert delay_increase_closed_form(3.0) == pytest.approx(10.0, abs=0.5)
        assert delay_increase_closed_form(5.0) == pytest.approx(20.0, abs=0.5)
        assert delay_increase_closed_form(10.0) == pytest.approx(28.0, abs=1.0)

    def test_zero_at_origin(self):
        assert delay_increase_closed_form(0.0) == 0.0

    def test_saturates_at_30(self):
        assert delay_increase_closed_form(1e6) == pytest.approx(30.0, rel=1e-3)

    def test_monotone(self):
        t = np.linspace(0.0, 20.0, 100)
        values = delay_increase_closed_form(t)
        assert np.all(np.diff(values) > -1e-9)

    def test_vectorized(self):
        out = delay_increase_closed_form(np.array([1.0, 2.0]))
        assert out.shape == (2,)

    def test_validation(self):
        with pytest.raises(ParameterError):
            delay_increase_closed_form(-1.0)


class TestDelayIncreaseNumerical:
    def test_nonnegative_vs_numerical_optimum(self):
        """Against the true model optimum, Bakoglu can only be worse."""
        for t in (1.0, 3.0, 5.0):
            assert delay_increase_numerical(t, use_numerical_optimum=True) >= 0.0

    def test_grows_with_t(self):
        small = delay_increase_numerical(1.0, use_numerical_optimum=True)
        large = delay_increase_numerical(8.0, use_numerical_optimum=True)
        assert large > small

    def test_validation(self):
        with pytest.raises(ParameterError):
            delay_increase_numerical(0.0)


class TestAreaIncrease:
    def test_paper_anchors(self):
        """154% at T=3 and 435% at T=5 (quoted in the paper's text)."""
        assert area_increase_closed_form(3.0) == pytest.approx(154.0, abs=1.0)
        assert area_increase_closed_form(5.0) == pytest.approx(435.0, abs=1.5)

    def test_zero_at_origin(self):
        assert area_increase_closed_form(0.0) == pytest.approx(0.0, abs=1e-9)

    def test_matches_error_factor_product(self):
        """%AI = 100*(1/(h'k') - 1) by construction."""
        from repro.core.repeater import error_factors

        t = 4.2
        h_prime, k_prime = error_factors(t)
        assert area_increase_closed_form(t) == pytest.approx(
            100.0 * (1.0 / (h_prime * k_prime) - 1.0), rel=1e-12
        )

    def test_from_designs(self):
        buffer = Buffer(r0=1.0, c0=1.0)
        rc = RepeaterDesign(h=2.0, k=4.0)
        rlc = RepeaterDesign(h=1.0, k=2.0)
        assert area_increase_from_designs(rc, rlc, buffer) == pytest.approx(300.0)


class TestPowerIncrease:
    def test_repeater_only_equals_area(self):
        """Without wire cap, power penalty == area penalty exactly."""
        for t in (2.0, 5.0):
            assert power_increase(t, include_wire=False) == pytest.approx(
                area_increase_closed_form(t), rel=1e-9
            )

    def test_wire_dilutes(self):
        assert power_increase(5.0, include_wire=True) < power_increase(
            5.0, include_wire=False
        )

    def test_positive(self):
        assert power_increase(3.0) > 0


class TestFitting:
    def test_delay_fit_roundtrip(self):
        """Data generated from known constants is recovered exactly."""
        z = np.linspace(0.1, 3.0, 25)
        data = delay_model_form(z, 2.5, 1.2, 1.6)
        result = fit_delay_model(z, data)
        assert result.parameters == pytest.approx((2.5, 1.2, 1.6), rel=1e-6)
        assert result.max_relative_error < 1e-9

    def test_delay_fit_published_constants_selfconsistent(self):
        z = np.linspace(0.1, 3.0, 30)
        data = delay_model_form(z, 2.9, 1.35, 1.48)
        result = fit_delay_model(z, data)
        assert result.parameters == pytest.approx((2.9, 1.35, 1.48), rel=1e-6)

    def test_error_factor_roundtrip(self):
        t = np.linspace(0.5, 10.0, 15)
        data = error_factor_form(t, 0.16, 0.24)
        result = fit_error_factor(t, data)
        assert result.parameters == pytest.approx((0.16, 0.24), rel=1e-6)

    def test_fit_validation(self):
        with pytest.raises(ParameterError):
            fit_delay_model(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ParameterError):
            fit_error_factor(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0, 0.5]))

    @settings(max_examples=15, deadline=None)
    @given(
        a=st.floats(min_value=1.5, max_value=4.0),
        b=st.floats(min_value=1.0, max_value=1.8),
        c=st.floats(min_value=1.0, max_value=2.0),
    )
    def test_delay_fit_recovers_random_constants(self, a, b, c):
        z = np.linspace(0.1, 3.0, 25)
        result = fit_delay_model(z, delay_model_form(z, a, b, c))
        assert result.parameters == pytest.approx((a, b, c), rel=1e-4)
