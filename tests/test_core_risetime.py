"""Tests for repro.core.risetime: the rise-time extension model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import DriverLineLoad
from repro.core.risetime import (
    RISE_TABLE_VALUES,
    RISE_TABLE_ZETA,
    build_rise_time_table,
    rise_time_10_90,
    scaled_rise_time,
)
from repro.core.simulate import simulated_step_waveform
from repro.errors import ParameterError


class TestScaledRiseTime:
    def test_reproduces_table_nodes(self):
        got = scaled_rise_time(RISE_TABLE_ZETA)
        assert np.allclose(got, RISE_TABLE_VALUES, rtol=1e-12)

    def test_monotone_increasing(self):
        z = np.linspace(0.05, 15.0, 400)
        values = scaled_rise_time(z)
        assert np.all(np.diff(values) > 0)

    def test_scalar_returns_float(self):
        assert isinstance(scaled_rise_time(1.0), float)

    def test_extrapolation_continuity(self):
        lo, hi = RISE_TABLE_ZETA[0], RISE_TABLE_ZETA[-1]
        assert scaled_rise_time(lo * 0.999) == pytest.approx(
            scaled_rise_time(lo * 1.001), rel=2e-2
        )
        assert scaled_rise_time(hi * 0.999) == pytest.approx(
            scaled_rise_time(hi * 1.001), rel=2e-2
        )

    def test_diffusive_tail_slope(self):
        """Far tail grows ~ linearly, like the RC-regime delay."""
        slope = (scaled_rise_time(30.0) - scaled_rise_time(20.0)) / 10.0
        assert slope == pytest.approx(3.9, abs=0.2)

    def test_validation(self):
        with pytest.raises(ParameterError):
            scaled_rise_time(-1.0)


class TestAgainstSimulation:
    @pytest.mark.parametrize("ratio", [0.25, 0.5, 1.0])
    @pytest.mark.parametrize("zeta", [1.0, 2.5])
    def test_family_accuracy_above_knee(self, ratio, zeta):
        """For zeta >= 1 the model holds ~12% across the families."""
        line = DriverLineLoad.for_zeta(zeta, ratio, ratio)
        waveform = simulated_step_waveform(
            line, route="tline", n_samples=4001, window=16
        )
        simulated = waveform.rise_time(v_final=1.0)
        model = rise_time_10_90(line)
        assert abs(model - simulated) / simulated < 0.12

    def test_knee_model_sits_inside_family_band(self):
        """In the underdamped knee the families spread ~2x; the model
        must sit inside that band (it is the band center by build)."""
        simulated = []
        for ratio in (0.25, 0.5, 1.0):
            line = DriverLineLoad.for_zeta(0.4, ratio, ratio)
            waveform = simulated_step_waveform(
                line, route="tline", n_samples=4001, window=16
            )
            simulated.append(
                waveform.rise_time(v_final=1.0) * line.omega_n
            )
        from repro.core.risetime import scaled_rise_time

        model = scaled_rise_time(0.4)
        assert min(simulated) <= model <= max(simulated)
        assert max(simulated) / min(simulated) > 1.5  # the spread is real

    def test_physical_case(self, overdamped_line):
        tr = rise_time_10_90(overdamped_line)
        waveform = simulated_step_waveform(
            overdamped_line, route="tline", n_samples=4001, window=16
        )
        assert tr == pytest.approx(waveform.rise_time(v_final=1.0), rel=0.12)

    def test_table_regeneration(self):
        """build_rise_time_table reproduces the shipped constants."""
        zs = np.array([0.3, 1.0, 3.0])
        _, fresh = build_rise_time_table(zs)
        shipped = scaled_rise_time(zs)
        assert np.allclose(fresh, shipped, rtol=0.02)

    def test_rise_slower_than_delay_in_rc_regime(self, overdamped_line):
        """10-90 rise exceeds the 50% delay for diffusive wires."""
        from repro.core.delay import propagation_delay

        assert rise_time_10_90(overdamped_line) > propagation_delay(overdamped_line)
