"""Tests for the CLI entry point and the remaining experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main
from repro.experiments import crosstalk_study, refit, zeta_collapse


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T1" in out and "EXP-X6" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "EXP-X4"]) == 0
        out = capsys.readouterr().out
        assert "250nm" in out

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "exp-x4"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestZetaCollapseDriver:
    def test_small_run(self):
        table = zeta_collapse.run(
            zeta_values=np.array([0.5, 2.0]), ratio_grid=(0.0, 1.0)
        )
        assert len(table.rows) == 2
        # Spread shrinks deep into the RC regime.
        spreads = table.column("spread_%")
        assert spreads[1] < spreads[0]
        # Simulated band brackets are ordered.
        for row in table.rows:
            assert row[1] <= row[3] <= row[2]  # min <= mean <= max


class TestRefitDriver:
    def test_delay_refit_lands_near_published(self):
        result = refit.refit_delay_model(
            zeta_values=np.linspace(0.3, 2.5, 8), n_segments=80
        )
        a, b, c = result.parameters
        assert a == pytest.approx(2.9, abs=0.5)
        assert b == pytest.approx(1.35, abs=0.25)
        assert c == pytest.approx(1.48, abs=0.08)
        assert result.max_relative_error < 0.08


class TestCrosstalkStudyDriver:
    def test_two_point_sweep(self):
        table = crosstalk_study.run(
            spacings_um=(0.6, 4.0), n_segments=12
        )
        assert len(table.rows) == 2
        close, far = table.rows
        assert close[1] > far[1]  # coupling cap falls with spacing
        assert close[3] > far[3]  # so does the positive glitch
