"""End-to-end verification of the paper's headline claims.

Each test states a sentence from the paper and checks it against the
library: closed forms against simulation, repeater designs against the
simulated optimum, penalties against the quoted anchors.  These are the
reproduction's acceptance tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay, scaled_delay
from repro.core.penalty import area_increase_closed_form, delay_increase_closed_form
from repro.core.repeater import (
    Buffer,
    RepeaterSystem,
    bakoglu_rc_design,
    error_factors,
    inductance_time_ratio,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.core.simulate import simulated_delay_50


class TestClaimDelayModelAccuracy:
    """'...within 5% of dynamic circuit simulations for a wide range of
    RLC loads' (abstract)."""

    @pytest.mark.parametrize(
        "lt", [1e-5, 1e-6, 1e-7, 1e-8],
    )
    def test_across_inductance_decades(self, lt):
        line = DriverLineLoad(rt=1000.0, lt=lt, ct=1e-12, rtr=500.0, cl=5e-13)
        sim = simulated_delay_50(line, n_segments=150)
        model = propagation_delay(line)
        assert abs(model - sim) / sim < 0.055

    def test_covers_overshooting_and_monotone_regimes(self):
        """'...include those cases where the response is underdamped and
        overshoots occur ... and overdamped ... described by one
        continuous equation.'"""
        from repro.core.simulate import simulated_step_waveform

        under = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12, rtr=100.0, cl=1e-13)
        over = DriverLineLoad(rt=1000.0, lt=1e-8, ct=1e-12, rtr=500.0, cl=5e-13)
        assert simulated_step_waveform(under, n_segments=80).overshoot(1.0) > 0.1
        assert simulated_step_waveform(over, n_segments=80).overshoot(1.0) < 0.01
        for line in (under, over):
            sim = simulated_delay_50(line, n_segments=150)
            assert abs(propagation_delay(line) - sim) / sim < 0.055


class TestClaimQuadraticToLinear:
    """'...the traditional quadratic dependence of the propagation delay
    on the length of an RC line approaches a linear dependence as
    inductance effects increase.'"""

    def test_exponent_falls_with_inductance(self):
        from repro.analysis.length_dependence import (
            delay_versus_length,
            fitted_length_exponent,
        )

        r, c = 2000.0, 1.8e-10
        lengths = np.geomspace(5e-3, 5e-2, 8)
        exponents = []
        for l_per_m in (1e-20, 3e-8, 3e-7, 3e-6):
            delays = delay_versus_length(r, l_per_m, c, lengths)
            exponents.append(fitted_length_exponent(lengths, delays))
        assert exponents[0] == pytest.approx(2.0, abs=0.02)
        assert all(b <= a + 1e-9 for a, b in zip(exponents, exponents[1:]))
        assert exponents[-1] < 1.1


class TestClaimRepeaterPenalties:
    """'An RC model ... creates errors of up to 30% in the total
    propagation delay of a repeater system' and the 154%/435% area
    anchors; 'as inductance effects increase, the optimum number of
    repeaters ... decreases.'"""

    def test_delay_anchor_values(self):
        assert delay_increase_closed_form(3.0) == pytest.approx(10.0, abs=0.5)
        assert delay_increase_closed_form(5.0) == pytest.approx(20.0, abs=0.5)
        assert delay_increase_closed_form(10.0) == pytest.approx(28.0, abs=1.5)
        assert float(delay_increase_closed_form(1e9)) == pytest.approx(30.0, rel=1e-6)

    def test_area_anchor_values(self):
        assert area_increase_closed_form(3.0) == pytest.approx(154.0, abs=1.0)
        assert area_increase_closed_form(5.0) == pytest.approx(435.0, abs=1.5)

    def test_kopt_decreases_with_inductance(self):
        """Both the paper's fit and our optimizer agree on the direction."""
        t = np.array([0.5, 2.0, 5.0, 10.0])
        _, k_fit = error_factors(t)
        assert np.all(np.diff(k_fit) < 0)

    def test_rc_design_loses_in_simulation(self, clock_spine, min_buffer):
        """Ground truth at T_{L/R} = 5: RC-sized repeaters are slower AND
        bigger than inductance-aware ones."""
        assert inductance_time_ratio(clock_spine, min_buffer) == pytest.approx(5.0)
        system = RepeaterSystem(clock_spine, min_buffer)
        rc = bakoglu_rc_design(clock_spine, min_buffer)
        ours = numerical_optimal_design(clock_spine, min_buffer)
        paper = optimal_rlc_design(clock_spine, min_buffer)
        t_rc = system.total_delay_simulated(rc, n_segments=50)
        t_ours = system.total_delay_simulated(ours, n_segments=50)
        t_paper = system.total_delay_simulated(paper, n_segments=50)
        assert t_rc > t_ours
        assert t_rc > t_paper
        assert rc.area(min_buffer) > 2.0 * paper.area(min_buffer)

    def test_power_follows_area(self, clock_spine, min_buffer):
        """'The power consumption of the repeater system is also expected
        to be much less in the case of an RLC model...'"""
        system = RepeaterSystem(clock_spine, min_buffer)
        rc = bakoglu_rc_design(clock_spine, min_buffer)
        paper = optimal_rlc_design(clock_spine, min_buffer)
        p_rc = system.dynamic_power(rc, vdd=2.5, frequency=1e9)
        p_paper = system.dynamic_power(paper, vdd=2.5, frequency=1e9)
        assert p_rc > 1.2 * p_paper


class TestClaimScalingTrend:
    """'...the importance of inductance ... will increase as
    technologies scale.'"""

    def test_penalty_grows_as_gate_delay_shrinks(self):
        line = DriverLineLoad(rt=500.0, lt=125e-9, ct=10e-12)
        penalties = []
        for r0c0_scale in (2.0, 1.0, 0.5, 0.25):
            buffer = Buffer(r0=5000.0 * r0c0_scale, c0=1e-14)
            t = inductance_time_ratio(line, buffer)
            penalties.append(float(delay_increase_closed_form(t)))
        assert all(b > a for a, b in zip(penalties, penalties[1:]))


class TestClaimZetaSufficiency:
    """'...the propagation delay is primarily a function of zeta' with
    weak RT/CT dependence in [0, 1]."""

    def test_diagonal_families_collapse(self):
        """The paper's Fig. 2 plots RT = CT families; along that diagonal
        the simulated scaled delay collapses to ~10% at mid-zeta."""
        z = 0.8
        samples = []
        for ratio in (0.0, 0.5, 1.0):
            line = DriverLineLoad.for_zeta(z, ratio, ratio)
            # tline route: exact for the bare-line member, whose crossing
            # rides the wavefront (see core.simulate docs).
            t50 = simulated_delay_50(line, route="tline")
            samples.append(t50 * line.omega_n)
        spread = (max(samples) - min(samples)) / np.mean(samples)
        assert spread < 0.12
        assert scaled_delay(z) == pytest.approx(np.mean(samples), rel=0.08)

    def test_off_diagonal_corners_spread_more(self):
        """Quantified reproduction finding: the corners (RT, CT) =
        (1, 0) / (0, 1) -- which Fig. 2 does not show -- spread by
        ~25% at mid-zeta.  'Primarily a function of zeta' holds on the
        diagonal and for gate-loaded lines, not uniformly."""
        z = 0.8
        samples = []
        for r_ratio, c_ratio in ((0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)):
            line = DriverLineLoad.for_zeta(z, r_ratio, c_ratio)
            t50 = simulated_delay_50(line, route="tline")
            samples.append(t50 * line.omega_n)
        spread = (max(samples) - min(samples)) / np.mean(samples)
        assert 0.15 < spread < 0.40
