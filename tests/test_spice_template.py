"""Equivalence suite for the symbolic/numeric (template) split.

Pins the stamp-once / re-value-many machinery against fresh builds:

- ``Param`` / ``ParamAffine`` algebra and element validation,
- ``build_mna_structure`` revaluation vs ``build_mna`` on a bound
  circuit (exact matrix equality),
- property-style transient/AC/DC equivalence on randomized ladders and
  buses, <= 1e-12 across all three backends,
- pattern factorizers (``refactorize``) and multi-RHS ``solve_many``,
- lockstep batch semantics (step-count mismatch, record subsets,
  per-point spans, duplicated points).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bus.builder import build_bus_circuit, build_bus_template
from repro.bus.spec import BusSpec
from repro.errors import NetlistError, ParameterError, SimulationError
from repro.spice.ac import ac_sweep, ac_sweep_batch
from repro.spice.backend import BACKENDS, CooMatrix
from repro.spice.dc import dc_operating_point
from repro.spice.ladder import LadderSpec, build_ladder_circuit, build_ladder_template
from repro.spice.mna import CircuitTemplate, build_mna, build_mna_structure
from repro.spice.netlist import Circuit, Param, ParamAffine, Step
from repro.spice.transient import simulate_transient, simulate_transient_batch

TOL = 1e-12
ALL_BACKENDS = ("dense", "sparse", "banded")


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _random_ladder_params(rng) -> dict:
    return {
        "rt": float(rng.uniform(100.0, 3000.0)),
        "lt": float(rng.uniform(1e-7, 3e-6)),
        "ct": float(rng.uniform(3e-13, 3e-12)),
        "rtr": float(rng.uniform(10.0, 400.0)),
        "cl": float(rng.uniform(2e-14, 4e-13)),
    }


class TestParamAlgebra:
    def test_scaling_and_division(self):
        p = Param("rt")
        assert (p * 2.0).scale == 2.0
        assert (3.0 * p).scale == 3.0
        assert (p / 4.0).scale == 0.25
        assert (p * 2.0).resolve({"rt": 5.0}) == 10.0

    def test_addition_builds_affine(self):
        total = Param("ct", 0.5) + Param("cl")
        assert isinstance(total, ParamAffine)
        assert total.resolve({"ct": 2.0, "cl": 3.0}) == pytest.approx(4.0)

    def test_duplicate_names_merge(self):
        total = Param("ct", 0.5) + Param("ct", 0.25)
        assert total.terms == (("ct", 0.75),)

    def test_invalid_params_rejected(self):
        with pytest.raises(NetlistError):
            Param("")
        with pytest.raises(NetlistError):
            Param("rt", 0.0)
        with pytest.raises(NetlistError):
            Param("rt", float("nan"))

    def test_missing_value_raises(self):
        with pytest.raises(NetlistError, match="missing value"):
            Param("rt").resolve({})

    def test_element_validation(self):
        ckt = Circuit("params")
        # Params bypass the positivity check (value unknown until bind).
        ckt.add_resistor("r1", "a", "0", Param("rt"))
        ckt.add_capacitor("c1", "a", "0", Param("ct", 0.5) + Param("cl"))
        ckt.add_inductor("l1", "a", "b", Param("lt"))
        assert ckt.parameter_names() == ("cl", "ct", "lt", "rt")
        # Reciprocal/sqrt stamps cannot take sums.
        with pytest.raises(NetlistError):
            ckt.add_resistor("r2", "a", "b", Param("x") + Param("y"))
        with pytest.raises(NetlistError):
            ckt.add_inductor("l2", "a", "b", Param("x") + Param("y"))


class TestStructureRevaluation:
    def _template_circuit(self) -> Circuit:
        ckt = Circuit("template under test")
        ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
        ckt.add_resistor("rdrv", "in", "a", Param("rtr"))
        ckt.add_resistor("r1", "a", "b", Param("rt", 0.5))
        ckt.add_inductor("l1", "b", "c", Param("lt"))
        ckt.add_inductor("l2", "c", "d", Param("lt", 2.0))
        ckt.add_mutual_inductance("k12", "l1", "l2", 0.4)
        ckt.add_capacitor("cmid", "c", "0", Param("ct", 0.5))
        ckt.add_capacitor("cfar", "d", "0", Param("ct", 0.5) + Param("cl"))
        return ckt

    def test_system_matches_bound_build(self):
        params = {"rtr": 80.0, "rt": 900.0, "lt": 1e-6, "ct": 1e-12, "cl": 2e-13}
        template = CircuitTemplate(self._template_circuit())
        revalued = template.system(params)
        fresh = build_mna(template.bind(params))
        # Mutual-inductance stamps round sqrt(s1*s2)*lt vs sqrt(L1*L2)
        # differently by one ulp; everything else is bit-identical.
        np.testing.assert_allclose(revalued.g, fresh.g, rtol=TOL, atol=0.0)
        np.testing.assert_allclose(revalued.c, fresh.c, rtol=TOL, atol=0.0)
        assert revalued.node_index == fresh.node_index
        assert revalued.branch_index == fresh.branch_index

    def test_concrete_structure_matches_build_mna(self):
        spec = LadderSpec(rt=700.0, lt=1e-6, ct=1e-12, rtr=90.0, cl=1e-13, n_segments=7)
        ckt = build_ladder_circuit(spec)
        structure = build_mna_structure(ckt)
        assert structure.param_names == ()
        system = structure.system()
        fresh = build_mna(ckt)
        np.testing.assert_array_equal(system.g, fresh.g)
        np.testing.assert_array_equal(system.c, fresh.c)

    def test_revalue_validates_names(self):
        template = CircuitTemplate(self._template_circuit())
        structure = template.structure
        with pytest.raises(ParameterError, match="missing parameter"):
            structure.revalue({"rt": 1.0})
        with pytest.raises(ParameterError, match="unknown parameter"):
            structure.revalue(
                {"rtr": 1.0, "rt": 1.0, "lt": 1.0, "ct": 1.0, "cl": 0.0, "bogus": 1.0}
            )

    def test_revalue_rejects_nonfinite_stamps(self):
        template = CircuitTemplate(self._template_circuit())
        with pytest.raises(ParameterError, match="non-finite"):
            template.structure.revalue(
                {"rtr": 0.0, "rt": 1.0, "lt": 1.0, "ct": 1.0, "cl": 0.0}
            )

    def test_revalue_many_matches_scalar(self):
        template = CircuitTemplate(self._template_circuit())
        structure = template.structure
        rng = _rng(3)
        columns = {
            "rtr": rng.uniform(10, 100, 5),
            "rt": rng.uniform(100, 1000, 5),
            "lt": rng.uniform(1e-7, 1e-6, 5),
            "ct": rng.uniform(1e-13, 1e-12, 5),
            "cl": rng.uniform(0.0, 1e-13, 5),
        }
        g_many, c_many = structure.revalue_many(columns)
        for j in range(5):
            g, c = structure.revalue({k: v[j] for k, v in columns.items()})
            np.testing.assert_array_equal(g_many[j], g)
            np.testing.assert_array_equal(c_many[j], c)

    def test_build_mna_rejects_unbound_params(self):
        with pytest.raises(NetlistError, match="unbound parameters"):
            build_mna(self._template_circuit())

    def test_controlled_source_gains_stay_concrete(self):
        ckt = Circuit("bad gain")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r1", "in", "out", 10.0)
        ckt.add_vccs("g1", "out", "0", "in", "0", 0.1)
        object.__setattr__(ckt.elements[-1], "transconductance", Param("gm"))
        with pytest.raises(NetlistError, match="cannot be a parameter"):
            build_mna_structure(ckt)

    def test_template_defaults_overlay(self):
        template = CircuitTemplate(
            self._template_circuit(),
            defaults={"rtr": 50.0, "rt": 500.0, "lt": 1e-6, "ct": 1e-12, "cl": 0.0},
        )
        merged = template.resolve_params({"rt": 900.0})
        assert merged["rt"] == 900.0 and merged["rtr"] == 50.0
        with pytest.raises(ParameterError, match="unknown parameter"):
            template.resolve_params({"bogus": 1.0})
        with pytest.raises(ParameterError, match="default for unknown"):
            CircuitTemplate(self._template_circuit(), defaults={"bogus": 1.0})

    def test_bind_drops_zero_capacitors(self):
        template = CircuitTemplate(self._template_circuit())
        bound = template.bind(
            {"rtr": 50.0, "rt": 500.0, "lt": 1e-6, "ct": 1e-12, "cl": 0.0}
        )
        # cfar keeps its ct share; a pure-cl capacitor would vanish.
        names = {e.name for e in bound.elements}
        assert "cfar" in names
        spec_names = {e.name for e in template.circuit.elements}
        assert names == spec_names


class TestLadderEquivalence:
    """template.bind results == fresh builds, all analyses, all backends."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("topology", ["L", "PI", "T"])
    def test_random_ladder_transient_matches(self, seed, topology):
        rng = _rng(10 * seed + hash(topology) % 7)
        params = _random_ladder_params(rng)
        n = int(rng.integers(3, 16))
        spec = LadderSpec(**params, n_segments=n, topology=topology)
        circuit = build_ladder_circuit(spec)
        template = build_ladder_template(n, topology, loaded=True)
        t_stop, dt = 2e-9, 2e-11
        batch = simulate_transient_batch(
            template, [params], t_stop=t_stop, dt=dt, backend="dense"
        )
        for backend in ALL_BACKENDS:
            ref = simulate_transient(circuit, t_stop=t_stop, dt=dt, backend=backend)
            b = simulate_transient_batch(
                template, [params], t_stop=t_stop, dt=dt, backend=backend
            )
            assert np.max(np.abs(b.states[0] - ref.states)) <= TOL
        assert np.max(np.abs(batch.states[0])) > 0.0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_ladder_ac_matches(self, backend):
        rng = _rng(42)
        params = _random_ladder_params(rng)
        spec = LadderSpec(**params, n_segments=9)
        omegas = np.geomspace(1e7, 3e10, 12)
        template = build_ladder_template(9, "PI", loaded=True)
        batch = ac_sweep_batch(template, [params], omegas, backend=backend)
        ref = ac_sweep(build_ladder_circuit(spec), omegas, backend=backend)
        assert np.max(np.abs(batch.states[0] - ref.states)) <= TOL

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_ladder_dc_matches(self, backend):
        rng = _rng(7)
        params = _random_ladder_params(rng)
        spec = LadderSpec(**params, n_segments=6)
        template = build_ladder_template(6, "PI", loaded=True)
        bound = template.bind(params)
        fresh = dc_operating_point(build_ladder_circuit(spec), backend=backend)
        via_bind = dc_operating_point(bound, backend=backend)
        assert abs(via_bind.voltage(spec.output_node) - fresh.voltage(spec.output_node)) <= TOL

    def test_heterogeneous_batch_matches_scalar_loop(self):
        rng = _rng(11)
        points = [_random_ladder_params(rng) for _ in range(6)]
        points[3] = dict(points[0])  # exercise the shared-factorization path
        template = build_ladder_template(8, "PI", loaded=True)
        batch = simulate_transient_batch(
            template, points, t_stop=2e-9, dt=2e-11, backend="banded"
        )
        for j, params in enumerate(points):
            spec = LadderSpec(**params, n_segments=8)
            ref = simulate_transient(
                build_ladder_circuit(spec), t_stop=2e-9, dt=2e-11, backend="banded"
            )
            assert np.max(np.abs(batch.states[j] - ref.states)) <= TOL
        np.testing.assert_array_equal(batch.states[3], batch.states[0])


class TestBusEquivalence:
    def _spec(self, rng, n_lines=3, shields=()) -> BusSpec:
        return BusSpec(
            n_lines=n_lines,
            rt=float(rng.uniform(100.0, 1500.0)),
            lt=float(rng.uniform(1e-7, 2e-6)),
            ct=float(rng.uniform(3e-13, 2e-12)),
            cct=float(rng.uniform(0.0, 8e-13)),
            km=float(rng.uniform(0.0, 0.7)),
            rtr=float(rng.uniform(20.0, 200.0)),
            cl=float(rng.uniform(0.0, 2e-13)),
            n_segments=int(rng.integers(2, 7)),
            shields=shields,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_template_bind_matches_concrete_builder(self, seed):
        rng = _rng(100 + seed)
        shields = (1,) if seed % 2 else ()
        spec = self._spec(rng, n_lines=2 + seed % 2, shields=shields)
        pattern = ["rise", "fall", "quiet"][: spec.n_lines]
        concrete = build_bus_circuit(spec, pattern)
        bound = build_bus_template(spec, tuple(pattern)).bind()
        assert [e.name for e in bound.elements] == [
            e.name for e in concrete.elements
        ]
        sys_bound = build_mna(bound)
        sys_fresh = build_mna(concrete)
        scale_g = max(1.0, np.max(np.abs(sys_fresh.g)))
        scale_c = np.max(np.abs(sys_fresh.c))
        assert np.max(np.abs(sys_bound.g - sys_fresh.g)) <= TOL * scale_g
        assert np.max(np.abs(sys_bound.c - sys_fresh.c)) <= TOL * scale_c

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bus_batch_transient_matches_fresh_builds(self, backend):
        rng = _rng(55)
        spec = self._spec(rng, n_lines=3, shields=(2,))
        template = build_bus_template(spec, "rise")
        sweeps = [
            {"rt": spec.rt[0] * f, "cct": spec.cct * (2.0 - f)}
            for f in (0.75, 1.0, 1.25)
        ]
        batch = simulate_transient_batch(
            template, sweeps, t_stop=2e-9, dt=4e-11, backend=backend
        )
        from dataclasses import replace

        for j, point in enumerate(sweeps):
            concrete_spec = replace(spec, rt=point["rt"], cct=point["cct"])
            ref = simulate_transient(
                build_bus_circuit(concrete_spec, "rise"),
                t_stop=2e-9,
                dt=4e-11,
                backend=backend,
            )
            out = concrete_spec.output_node(0)
            assert (
                np.max(np.abs(batch.voltage(out)[j] - ref.voltage(out).values))
                <= TOL
            )

    def test_nonuniform_spec_rejected(self):
        spec = BusSpec(
            n_lines=2, rt=(100.0, 200.0), lt=1e-7, ct=1e-12, cct=1e-13,
            km=0.3, rtr=50.0, n_segments=3,
        )
        with pytest.raises(ParameterError, match="uniform"):
            build_bus_template(spec)
        # The concrete builder still serves per-line values.
        assert build_bus_circuit(spec).validate() is None


class TestBatchSemantics:
    def _template(self):
        return build_ladder_template(6, "PI", loaded=True)

    def _params(self, k=3):
        rng = _rng(5)
        return [_random_ladder_params(rng) for _ in range(k)]

    def test_mismatched_step_counts_rejected(self):
        with pytest.raises(ParameterError, match="lockstep"):
            simulate_transient_batch(
                self._template(),
                self._params(2),
                t_stop=np.array([1e-9, 2e-9]),
                dt=1e-11,
            )

    def test_inconsistent_point_dicts_rejected(self):
        params = self._params(2)
        del params[0]["cl"]  # point 0 misses a name point 1 provides
        with pytest.raises(ParameterError, match="same parameter names"):
            simulate_transient_batch(
                self._template(), params, t_stop=1e-9, dt=1e-11
            )

    def test_record_subset_matches_full(self):
        params = self._params(2)
        full = simulate_transient_batch(
            self._template(), params, t_stop=1e-9, dt=1e-11
        )
        sub = simulate_transient_batch(
            self._template(), params, t_stop=1e-9, dt=1e-11, record=["n6"]
        )
        np.testing.assert_array_equal(sub.voltage("n6"), full.voltage("n6"))
        with pytest.raises(ParameterError, match="not recorded"):
            sub.voltage("n1")

    def test_initial_zero_and_matrix(self):
        params = self._params(2)
        template = self._template()
        z = simulate_transient_batch(
            template, params, t_stop=1e-9, dt=1e-11, initial="zero"
        )
        assert np.max(np.abs(z.states[:, 0, :])) == 0.0
        size = template.structure.size
        x0 = np.zeros((2, size))
        m = simulate_transient_batch(
            template, params, t_stop=1e-9, dt=1e-11, initial=x0
        )
        np.testing.assert_array_equal(m.states, z.states)
        with pytest.raises(ParameterError, match="initial state"):
            simulate_transient_batch(
                template, params, t_stop=1e-9, dt=1e-11, initial=np.zeros(3)
            )

    def test_column_params_broadcast(self):
        template = self._template()
        batch = simulate_transient_batch(
            template,
            {
                "rt": np.array([500.0, 1000.0]),
                "lt": 1e-6,
                "ct": 1e-12,
                "rtr": 100.0,
                "cl": 1e-13,
            },
            t_stop=1e-9,
            dt=1e-11,
            record=["n6"],
        )
        assert batch.n_points == 2
        assert not np.allclose(batch.voltage("n6")[0], batch.voltage("n6")[1])


class TestFactorizersAndSolveMany:
    def _random_system(self, rng, n=12, complex_data=False):
        density = rng.uniform(0.2, 0.5)
        mask = rng.random((n, n)) < density
        np.fill_diagonal(mask, True)
        rows, cols = np.nonzero(mask)
        data = rng.normal(size=rows.size)
        if complex_data:
            data = data + 1j * rng.normal(size=rows.size)
        data = data + 0.0  # ensure float/complex dtype
        # Make it diagonally dominant so every backend factors it.
        coo = CooMatrix(rows, cols, data, (n, n))
        dense = coo.to_dense()
        dense += np.diag(np.sum(np.abs(dense), axis=1) + 1.0)
        rows2, cols2 = np.nonzero(np.ones((n, n)))
        return CooMatrix(rows2, cols2, dense.ravel(), (n, n)), dense

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    @pytest.mark.parametrize("complex_data", [False, True])
    def test_refactorize_matches_fresh_factorize(self, name, complex_data):
        rng = _rng(17)
        backend = BACKENDS[name]()
        matrix, dense = self._random_system(rng, complex_data=complex_data)
        factorizer = backend.factorizer(matrix)
        rhs = rng.normal(size=matrix.shape[0])
        for scale in (1.0, 2.5, 0.3):
            data = matrix.data * scale
            x = factorizer.refactorize(data).solve(rhs.astype(data.dtype))
            expected = np.linalg.solve(dense * scale, rhs)
            assert np.max(np.abs(x - expected)) <= 1e-9

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_solve_many_matches_column_loop(self, name):
        rng = _rng(23)
        backend = BACKENDS[name]()
        matrix, _ = self._random_system(rng)
        fact = backend.factorize(matrix)
        block = rng.normal(size=(matrix.shape[0], 5))
        together = fact.solve_many(block)
        assert together.shape == block.shape
        for k in range(5):
            np.testing.assert_allclose(
                together[:, k], fact.solve(block[:, k]), rtol=0.0, atol=1e-13
            )

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_refactorize_singular_raises(self, name):
        backend = BACKENDS[name]()
        n = 4
        rows, cols = np.nonzero(np.ones((n, n)))
        matrix = CooMatrix(rows, cols, np.ones(rows.size), (n, n))
        factorizer = backend.factorizer(matrix)
        with pytest.raises(SimulationError):
            factorizer.refactorize(np.zeros(rows.size))
