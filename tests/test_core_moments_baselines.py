"""Tests for repro.core.moments and repro.core.baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.baselines import (
    distributed_rc_delay_50,
    lc_bound_delay,
    rc_dominated,
    sakurai_rc_delay_50,
)
from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.core.moments import (
    elmore_delay,
    elmore_delay_50,
    two_pole_coefficients,
    two_pole_delay_50,
    two_pole_step_response,
)
from repro.errors import ParameterError


class TestElmore:
    def test_formula(self, underdamped_line):
        line = underdamped_line
        expected = (
            line.rtr * line.cl
            + 0.5 * line.rt * line.ct
            + line.rt * line.cl
            + line.rtr * line.ct
        )
        assert elmore_delay(line) == pytest.approx(expected)

    def test_matches_transfer_series(self, critical_line):
        from repro.tline.transfer import denominator_coefficients

        a = denominator_coefficients(
            critical_line.rt,
            critical_line.lt,
            critical_line.ct,
            critical_line.rtr,
            critical_line.cl,
        )
        assert elmore_delay(critical_line) == pytest.approx(a[1], rel=1e-12)

    def test_ln2_scaling(self, critical_line):
        assert elmore_delay_50(critical_line) == pytest.approx(
            math.log(2.0) * elmore_delay(critical_line)
        )

    def test_independent_of_inductance(self, underdamped_line):
        from dataclasses import replace

        more_l = replace(underdamped_line, lt=10 * underdamped_line.lt)
        assert elmore_delay(more_l) == elmore_delay(underdamped_line)


class TestTwoPole:
    def test_coefficients_include_inductance(self, underdamped_line):
        a1, a2 = two_pole_coefficients(underdamped_line)
        assert a1 > 0 and a2 > 0
        # a2 must carry the Lt*(Ct/2 + CL) term.
        from dataclasses import replace

        _, a2_less = two_pole_coefficients(
            replace(underdamped_line, lt=underdamped_line.lt / 2)
        )
        assert a2 > a2_less

    def test_overdamped_response_monotone(self, overdamped_line):
        t = np.linspace(0.0, 2e-8, 500)
        v = two_pole_step_response(overdamped_line, t)
        assert np.all(np.diff(v) > -1e-12)
        assert v[-1] == pytest.approx(1.0, abs=1e-3)

    def test_underdamped_response_overshoots(self, underdamped_line):
        t = np.linspace(0.0, 2e-8, 2000)
        v = two_pole_step_response(underdamped_line, t)
        assert np.max(v) > 1.05

    def test_delay_50_brackets(self, overdamped_line, underdamped_line):
        for line in (overdamped_line, underdamped_line):
            t50 = two_pole_delay_50(line)
            v = two_pole_step_response(line, np.array([t50]))
            assert v[0] == pytest.approx(0.5, abs=1e-9)

    def test_two_pole_beats_elmore_when_underdamped(self, underdamped_line):
        """On inductive lines the two-pole estimate is closer to eq. 9."""
        reference = propagation_delay(underdamped_line)
        err_elmore = abs(elmore_delay_50(underdamped_line) - reference)
        err_two_pole = abs(two_pole_delay_50(underdamped_line) - reference)
        assert err_two_pole < err_elmore


class TestBaselines:
    def test_sakurai_bare_line(self):
        line = DriverLineLoad(rt=2000.0, lt=1e-12, ct=3e-12)
        assert sakurai_rc_delay_50(line) == pytest.approx(0.377 * 2000.0 * 3e-12)

    def test_sakurai_close_to_eq9_in_rc_regime(self, overdamped_line):
        """Both RC formulas should agree within ~15% deep in RC-land."""
        got = sakurai_rc_delay_50(overdamped_line)
        reference = propagation_delay(overdamped_line)
        assert abs(got - reference) / reference < 0.15

    def test_distributed_rc(self):
        assert distributed_rc_delay_50(1000.0, 1e-12) == pytest.approx(3.77e-10)
        with pytest.raises(ParameterError):
            distributed_rc_delay_50(-1.0, 1e-12)

    def test_lc_bound_below_actual(self, underdamped_line, overdamped_line):
        for line in (underdamped_line, overdamped_line):
            assert lc_bound_delay(line) <= propagation_delay(line)

    def test_rc_dominated_classification(self, underdamped_line, overdamped_line):
        assert rc_dominated(overdamped_line)
        assert not rc_dominated(underdamped_line)
        with pytest.raises(ParameterError):
            rc_dominated(overdamped_line, threshold=0.0)
