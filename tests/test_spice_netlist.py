"""Tests for repro.spice.netlist: circuit description and waveforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError, ParameterError
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    Dc,
    Inductor,
    PiecewiseLinear,
    Pulse,
    Resistor,
    Sine,
    Step,
    VoltageSource,
    canonical_node,
)


class TestCanonicalNode:
    def test_ground_aliases(self):
        for alias in ("0", "gnd", "GND", "ground", 0):
            assert canonical_node(alias) == "0"

    def test_regular_node(self):
        assert canonical_node("out") == "out"

    def test_integer_node(self):
        assert canonical_node(3) == "3"

    def test_empty_rejected(self):
        with pytest.raises(NetlistError):
            canonical_node("")


class TestWaveforms:
    def test_dc(self):
        w = Dc(2.5)
        assert np.allclose(w(np.array([0.0, 1.0, 5.0])), 2.5)

    def test_ideal_step_strict_at_delay(self):
        """Value at exactly t_delay is still v0 (step at t_delay+)."""
        w = Step(0.0, 1.0, t_delay=1e-9)
        assert w.value_at(1e-9) == 0.0
        assert w.value_at(1e-9 + 1e-15) == 1.0

    def test_ideal_step_at_origin(self):
        w = Step(0.0, 1.0)
        assert w.value_at(0.0) == 0.0
        assert w.value_at(1e-15) == 1.0

    def test_ramped_step(self):
        w = Step(0.0, 2.0, t_delay=1.0, t_rise=2.0)
        assert w.value_at(1.0) == 0.0
        assert w.value_at(2.0) == pytest.approx(1.0)
        assert w.value_at(3.0) == pytest.approx(2.0)
        assert w.value_at(10.0) == pytest.approx(2.0)

    def test_step_validation(self):
        with pytest.raises(ParameterError):
            Step(0.0, 1.0, t_delay=-1.0)

    def test_pulse_shape(self):
        w = Pulse(v0=0.0, v1=1.0, t_rise=0.1, t_fall=0.1, width=0.3, period=1.0)
        assert w.value_at(0.05) == pytest.approx(0.5)
        assert w.value_at(0.2) == pytest.approx(1.0)
        assert w.value_at(0.45) == pytest.approx(0.5)
        assert w.value_at(0.9) == pytest.approx(0.0)

    def test_pulse_periodicity(self):
        w = Pulse(v0=0.0, v1=1.0, width=0.3, period=1.0)
        assert w.value_at(0.2) == w.value_at(1.2) == w.value_at(7.2)

    def test_pulse_before_delay(self):
        w = Pulse(v0=0.25, v1=1.0, t_delay=5.0, width=0.3, period=1.0)
        assert w.value_at(4.9) == 0.25

    def test_pulse_validation(self):
        with pytest.raises(NetlistError, match="fit in the period"):
            Pulse(v0=0.0, v1=1.0, t_rise=0.5, width=0.6, period=1.0)

    def test_sine(self):
        w = Sine(offset=1.0, amplitude=0.5, frequency=1.0)
        assert w.value_at(0.0) == pytest.approx(1.0)
        assert w.value_at(0.25) == pytest.approx(1.5)

    def test_sine_holds_before_delay(self):
        w = Sine(offset=1.0, amplitude=0.5, frequency=1.0, t_delay=2.0)
        assert w.value_at(1.0) == 1.0

    def test_pwl(self):
        w = PiecewiseLinear(((0.0, 0.0), (1.0, 1.0), (3.0, 0.0)))
        assert w.value_at(0.5) == pytest.approx(0.5)
        assert w.value_at(2.0) == pytest.approx(0.5)
        assert w.value_at(10.0) == pytest.approx(0.0)  # holds last value

    def test_pwl_validation(self):
        with pytest.raises(NetlistError, match="strictly increasing"):
            PiecewiseLinear(((0.0, 0.0), (0.0, 1.0)))
        with pytest.raises(NetlistError, match="two points"):
            PiecewiseLinear(((0.0, 0.0),))

    @settings(max_examples=20, deadline=None)
    @given(
        v0=st.floats(-5, 5),
        v1=st.floats(-5, 5),
        delay=st.floats(0, 2),
    )
    def test_step_range_property(self, v0, v1, delay):
        w = Step(v0, v1, t_delay=delay)
        t = np.linspace(0.0, 4.0, 41)
        values = w(t)
        lo, hi = min(v0, v1), max(v0, v1)
        assert np.all(values >= lo) and np.all(values <= hi)


class TestElements:
    def test_resistor_positive(self):
        with pytest.raises(ParameterError):
            Resistor("r1", "a", "b", 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(NetlistError, match="itself"):
            Resistor("r1", "a", "a", 10.0)

    def test_branch_current_flags(self):
        assert Inductor("l1", "a", "0", 1e-9).needs_branch_current
        assert VoltageSource("v1", "a", "0").needs_branch_current
        assert not Resistor("r1", "a", "0", 1.0).needs_branch_current
        assert not Capacitor("c1", "a", "0", 1e-12).needs_branch_current


class TestCircuit:
    def make_divider(self) -> Circuit:
        ckt = Circuit("divider")
        ckt.add_voltage_source("vin", "in", "0", 1.0)
        ckt.add_resistor("r1", "in", "out", 1000.0)
        ckt.add_resistor("r2", "out", "0", 1000.0)
        return ckt

    def test_node_names_in_order(self):
        assert self.make_divider().node_names() == ["in", "out"]

    def test_duplicate_name_rejected(self):
        ckt = self.make_divider()
        with pytest.raises(NetlistError, match="duplicate"):
            ckt.add_resistor("r1", "x", "0", 1.0)

    def test_numeric_source_becomes_dc(self):
        ckt = self.make_divider()
        source = ckt.elements_of_type(VoltageSource)[0]
        assert isinstance(source.waveform, Dc)

    def test_validate_ok(self):
        self.make_divider().validate()

    def test_validate_empty(self):
        with pytest.raises(NetlistError, match="no elements"):
            Circuit().validate()

    def test_validate_no_ground(self):
        ckt = Circuit()
        ckt.add_resistor("r1", "a", "b", 1.0)
        with pytest.raises(NetlistError, match="ground"):
            ckt.validate()

    def test_validate_disconnected_island(self):
        ckt = self.make_divider()
        ckt.add_resistor("r3", "island1", "island2", 1.0)
        with pytest.raises(NetlistError, match="not connected"):
            ckt.validate()

    def test_len(self):
        assert len(self.make_divider()) == 3

    def test_elements_of_type(self):
        ckt = self.make_divider()
        assert len(ckt.elements_of_type(Resistor)) == 2
