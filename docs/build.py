#!/usr/bin/env python
"""Build the repro documentation site (pure stdlib, no pip deps).

The container this repository grows in bakes in numpy/scipy but no
documentation toolchain (no Sphinx, no MkDocs), and installing
packages is off the table -- so the site generator lives here, in
~400 lines of standard library:

- the hand-written pages under ``docs/*.md`` (index, architecture,
  paper-equation cross-index) are converted with a minimal Markdown
  subset (headings, fenced code, tables, lists, links, inline code,
  bold);
- an **API reference** page per module is generated from the package's
  docstrings via ``inspect`` (module docstring, then every ``__all__``
  entry with its signature, anchored by name);
- every internal link is checked against the generated file/anchor set,
  every public callable must carry a docstring, and the equation
  cross-index must link every public callable of ``repro.core`` -- all
  three are *warnings*, and ``--strict`` turns warnings into a nonzero
  exit (the CI docs job and ``tests/test_docs.py`` build with
  ``--strict``).

Usage::

    python docs/build.py                     # build into docs/_site
    python docs/build.py --strict            # warnings fail the build
    python docs/build.py --out /tmp/site
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import pathlib
import pkgutil
import re
import sys

DOCS_DIR = pathlib.Path(__file__).parent
REPO_ROOT = DOCS_DIR.parent

#: Hand-written source pages, in navigation order.
PAGES = (
    "index.md",
    "architecture.md",
    "equations.md",
    "instrumentation.md",
    "static-analysis.md",
    "netlist.md",
    "rom.md",
)

STYLE = """
body { font-family: Georgia, serif; max-width: 56rem; margin: 2rem auto;
       padding: 0 1rem; line-height: 1.55; color: #1a1a1a; }
nav { border-bottom: 1px solid #ccc; padding-bottom: .5rem;
      margin-bottom: 1.5rem; font-family: Helvetica, Arial, sans-serif; }
nav a { margin-right: 1.25rem; text-decoration: none; color: #205080; }
h1, h2, h3, h4 { font-family: Helvetica, Arial, sans-serif; }
code, pre { font-family: "SF Mono", Menlo, Consolas, monospace;
            font-size: .92em; background: #f5f5f2; }
pre { padding: .75rem; overflow-x: auto; border-left: 3px solid #d0d0c8; }
pre.docstring { background: #fbfbf8; white-space: pre-wrap; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }
th { background: #f0f0ea; font-family: Helvetica, Arial, sans-serif; }
.sig { background: #eef2f6; padding: .4rem .6rem; border-left: 3px solid
       #205080; margin-top: 1.5rem; }
.module-doc { margin-bottom: 1.5rem; }
"""


class Builder:
    """Accumulates pages and warnings, then writes and link-checks."""

    def __init__(self) -> None:
        #: site-relative path -> (title, html body, set of anchor ids)
        self.pages: dict[str, tuple[str, str, set[str]]] = {}
        self.warnings: list[str] = []

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def add_page(self, path: str, title: str, body: str) -> None:
        anchors = set(re.findall(r'id="([^"]+)"', body))
        self.pages[path] = (title, body, anchors)

    # -- rendering -----------------------------------------------------------

    def render(self, path: str) -> str:
        title, body, _ = self.pages[path]
        root = "../" if "/" in path else ""
        nav = " ".join(
            f'<a href="{root}{target}">{label}</a>'
            for label, target in (
                ("repro", "index.html"),
                ("architecture", "architecture.html"),
                ("paper equations", "equations.html"),
                ("instrumentation", "instrumentation.html"),
                ("static analysis", "static-analysis.html"),
                ("netlists", "netlist.html"),
                ("reduced order", "rom.html"),
                ("API reference", "api/index.html"),
            )
        )
        return (
            "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{STYLE}</style></head>\n"
            f"<body><nav>{nav}</nav>\n{body}\n</body></html>\n"
        )

    def write(self, out_dir: pathlib.Path) -> None:
        for path in self.pages:
            target = out_dir / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(self.render(path))

    # -- link checking -------------------------------------------------------

    def check_links(self) -> None:
        """Every internal href must resolve to a page (and anchor)."""
        for path, (_, body, _) in self.pages.items():
            base = pathlib.PurePosixPath(path).parent
            for href in re.findall(r'href="([^"]+)"', body):
                if href.startswith(("http://", "https://", "mailto:")):
                    continue
                target, _, fragment = href.partition("#")
                if target:
                    resolved = _normalize(base / target)
                    if resolved not in self.pages:
                        self.warn(f"{path}: broken link to {href!r}")
                        continue
                else:
                    resolved = path
                if fragment and fragment not in self.pages[resolved][2]:
                    self.warn(
                        f"{path}: link {href!r} targets a missing "
                        f"anchor #{fragment}"
                    )


def _normalize(path: pathlib.PurePosixPath) -> str:
    parts: list[str] = []
    for part in path.parts:
        if part == "..":
            if parts:
                parts.pop()
        elif part != ".":
            parts.append(part)
    return "/".join(parts)


# ---------------------------------------------------------------------------
# Minimal Markdown conversion
# ---------------------------------------------------------------------------


def _inline(text: str) -> str:
    """Inline markup: code spans, links, bold (applied in that order)."""
    out: list[str] = []
    # Split on code spans first so their contents stay verbatim.
    for i, chunk in enumerate(re.split(r"`([^`]+)`", text)):
        if i % 2:
            out.append(f"<code>{html.escape(chunk)}</code>")
        else:
            chunk = html.escape(chunk)
            chunk = re.sub(
                r"\[([^\]]+)\]\(([^)\s]+)\)", r'<a href="\2">\1</a>', chunk
            )
            chunk = re.sub(r"\*\*([^*]+)\*\*", r"<b>\1</b>", chunk)
            out.append(chunk)
    return "".join(out)


def markdown_to_html(text: str) -> str:
    """Convert the documentation Markdown subset to HTML."""
    lines = text.splitlines()
    out: list[str] = []
    paragraph: list[str] = []
    i = 0

    def flush() -> None:
        if paragraph:
            out.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    while i < len(lines):
        line = lines[i]
        if line.startswith("```"):
            flush()
            block: list[str] = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                block.append(lines[i])
                i += 1
            out.append(f"<pre>{html.escape(chr(10).join(block))}</pre>")
            i += 1
            continue
        heading = re.match(r"(#{1,4})\s+(.*)", line)
        if heading:
            flush()
            level = len(heading.group(1))
            title = heading.group(2).strip()
            anchor = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
            out.append(
                f'<h{level} id="{anchor}">{_inline(title)}</h{level}>'
            )
            i += 1
            continue
        if line.startswith("|"):
            flush()
            rows: list[list[str]] = []
            while i < len(lines) and lines[i].startswith("|"):
                cells = [c.strip() for c in lines[i].strip("|").split("|")]
                if not all(re.fullmatch(r":?-+:?", c) for c in cells):
                    rows.append(cells)
                i += 1
            table = ["<table>"]
            for r, cells in enumerate(rows):
                tag = "th" if r == 0 else "td"
                inner = "".join(
                    f"<{tag}>{_inline(c)}</{tag}>" for c in cells
                )
                table.append(f"<tr>{inner}</tr>")
            table.append("</table>")
            out.append("".join(table))
            continue
        if line.startswith("- "):
            flush()
            items: list[str] = []
            while i < len(lines) and lines[i].startswith("- "):
                item = [lines[i][2:]]
                i += 1
                while i < len(lines) and lines[i].startswith("  ") and lines[i].strip():
                    item.append(lines[i].strip())
                    i += 1
                items.append(f"<li>{_inline(' '.join(item))}</li>")
            out.append("<ul>" + "".join(items) + "</ul>")
            continue
        if not line.strip():
            flush()
            i += 1
            continue
        paragraph.append(line.strip())
        i += 1
    flush()
    return "\n".join(out)


# ---------------------------------------------------------------------------
# API reference generation
# ---------------------------------------------------------------------------


def iter_module_names() -> list[str]:
    """All public ``repro`` modules, root first, in name order."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        short = info.name.rsplit(".", 1)[-1]
        if short.startswith("_"):
            continue
        names.append(info.name)
    return sorted(set(names))


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def build_api_page(builder: Builder, module_name: str) -> None:
    module = importlib.import_module(module_name)
    parts: list[str] = [f"<h1>{html.escape(module_name)}</h1>"]
    moddoc = inspect.getdoc(module)
    if not moddoc:
        builder.warn(f"module {module_name} has no docstring")
        moddoc = ""
    parts.append(
        f'<pre class="docstring module-doc">{html.escape(moddoc)}</pre>'
    )
    public = list(getattr(module, "__all__", []))
    for name in public:
        obj = getattr(module, name, None)
        if obj is None:
            builder.warn(f"{module_name}.__all__ names missing object {name!r}")
            continue
        if inspect.ismodule(obj):
            continue
        parts.append(f'<h3 id="{html.escape(name)}">{html.escape(name)}</h3>')
        # typing aliases (Union[...], Callable[...]) report callable()
        # True but are constants for documentation purposes.
        is_type_alias = getattr(type(obj), "__module__", "") == "typing"
        if not is_type_alias and (inspect.isclass(obj) or callable(obj)):
            kind = "class" if inspect.isclass(obj) else "function"
            signature = html.escape(f"{name}{_signature(obj)}")
            parts.append(f'<div class="sig"><code>{kind} {signature}</code></div>')
            doc = inspect.getdoc(obj)
            if not doc:
                builder.warn(f"{module_name}.{name} has no docstring")
                doc = ""
            parts.append(f'<pre class="docstring">{html.escape(doc)}</pre>')
            if inspect.isclass(obj):
                methods = [
                    (mname, m)
                    for mname, m in vars(obj).items()
                    if not mname.startswith("_")
                    and (callable(m) or isinstance(m, property))
                ]
                for mname, method in methods:
                    target = method.fget if isinstance(method, property) else method
                    mdoc = inspect.getdoc(target) or ""
                    label = "property" if isinstance(method, property) else "method"
                    sig = "" if isinstance(method, property) else html.escape(
                        _signature(target)
                    )
                    parts.append(
                        f'<div class="sig"><code>{label} '
                        f"{html.escape(name)}.{html.escape(mname)}{sig}"
                        "</code></div>"
                    )
                    parts.append(
                        f'<pre class="docstring">{html.escape(mdoc)}</pre>'
                    )
        else:
            value = html.escape(repr(obj))
            if len(value) > 120:
                value = value[:117] + "..."
            parts.append(f'<div class="sig"><code>constant {html.escape(name)} = {value}</code></div>')
            # Constants carry their documentation in the module source
            # (``#:`` comments) and the module docstring; no warning.
    builder.add_page(
        f"api/{module_name}.html", module_name, "\n".join(parts)
    )


def build_api_index(builder: Builder, module_names: list[str]) -> None:
    rows = ["<h1>API reference</h1>", "<ul>"]
    for name in module_names:
        module = importlib.import_module(name)
        doc = inspect.getdoc(module) or ""
        summary = html.escape(doc.splitlines()[0] if doc else "")
        rows.append(
            f'<li><a href="{name}.html"><code>{name}</code></a> '
            f"&mdash; {summary}</li>"
        )
    rows.append("</ul>")
    builder.add_page("api/index.html", "API reference", "\n".join(rows))


# ---------------------------------------------------------------------------
# Equation cross-index coverage
# ---------------------------------------------------------------------------


def core_public_callables() -> dict[str, list[str]]:
    """``repro.core`` submodule -> its public callables (and classes)."""
    import repro.core

    result: dict[str, list[str]] = {}
    for info in pkgutil.iter_modules(repro.core.__path__):
        if info.name.startswith("_"):
            continue
        module = importlib.import_module(f"repro.core.{info.name}")
        names = [
            name
            for name in getattr(module, "__all__", [])
            if callable(getattr(module, name, None))
        ]
        if names:
            result[f"repro.core.{info.name}"] = names
    return result


def check_equation_coverage(builder: Builder, equations_source: str) -> None:
    """The cross-index must link every public ``repro.core`` callable.

    Coverage is judged on links into the generated API reference
    (``api/<module>.html#<name>``), so a covered entry is also a
    *checked* link -- it cannot silently rot.
    """
    for module_name, names in core_public_callables().items():
        for name in names:
            needle = f"api/{module_name}.html#{name}"
            if needle not in equations_source:
                builder.warn(
                    f"equations.md does not cover {module_name}.{name} "
                    f"(expected a link to {needle})"
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build(out_dir: pathlib.Path) -> Builder:
    """Generate the full site into ``out_dir``; returns the builder."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    builder = Builder()

    for page in PAGES:
        source = (DOCS_DIR / page).read_text()
        title_match = re.search(r"^#\s+(.+)$", source, re.MULTILINE)
        title = title_match.group(1) if title_match else page
        builder.add_page(
            page.replace(".md", ".html"), title, markdown_to_html(source)
        )
        if page == "equations.md":
            check_equation_coverage(builder, source)

    module_names = iter_module_names()
    for name in module_names:
        build_api_page(builder, name)
    build_api_index(builder, module_names)

    builder.check_links()
    builder.write(out_dir)
    return builder


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(DOCS_DIR / "_site"),
        help="output directory (default: docs/_site)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (broken links, missing docstrings, "
        "cross-index gaps) as errors",
    )
    args = parser.parse_args(argv)
    builder = build(pathlib.Path(args.out))
    for warning in builder.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    print(
        f"built {len(builder.pages)} pages into {args.out} "
        f"({len(builder.warnings)} warnings)"
    )
    if args.strict and builder.warnings:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
