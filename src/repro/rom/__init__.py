"""Reduced-order evaluation-model tier (``repro.rom``).

The pluggable fast path behind ``model="reduced"`` / ``model="auto"``
across the simulation stack: :mod:`repro.rom.model` resolves and
records which tier serves each query (mirroring
:func:`repro.spice.backend.resolve_backend`), and
:mod:`repro.rom.prima` builds PRIMA-style block-Arnoldi projections of
the MNA system -- once per structure -- that answer transient, AC and
delay queries from dense ``q x q`` models with pinned a-posteriori
error checks.  See ``docs/rom.md`` for the projection math and the
``"auto"`` decision rules.
"""

from repro.rom.model import (
    DEFAULT_ERROR_BOUND,
    MODELS,
    ROM_SIZE_CUTOFF,
    ModelSelection,
    record_model_selection,
    resolve_model,
)
from repro.rom.prima import (
    DEFAULT_ORDER,
    ReducedSystem,
    ReducedTemplate,
    cached_reduced_template,
    corner_samples,
    prima_reduce,
    reduced_transient_batch,
)

__all__ = [
    "MODELS",
    "DEFAULT_ERROR_BOUND",
    "DEFAULT_ORDER",
    "ROM_SIZE_CUTOFF",
    "ModelSelection",
    "ReducedSystem",
    "ReducedTemplate",
    "cached_reduced_template",
    "corner_samples",
    "prima_reduce",
    "record_model_selection",
    "reduced_transient_batch",
    "resolve_model",
]
