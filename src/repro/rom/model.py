"""Evaluation-model tier selection: full MNA vs reduced-order.

Mirrors the ``backend=`` plumbing of :mod:`repro.spice.backend`: every
simulation entry point takes a ``model="full" | "reduced" | "auto"``
request, validates it through :func:`resolve_model`, and records the
tier that actually served the query as a :class:`ModelSelection` --
the evidence object counterpart of
:class:`~repro.spice.backend.BackendSelection`.  While instrumentation
is enabled, each decision also lands in the metrics registry as the
labeled counter ``rom.model_selected{model=,rule=}``, so ``--trace`` /
``--metrics-out`` show exactly which tier answered each query and why.

The three tiers:

``full``
    The existing trapezoidal / phasor MNA paths, untouched.  The
    default everywhere, so all pre-existing numerics (and sweep cache
    keys) are bit-for-bit unchanged.

``reduced``
    A PRIMA-style projection (:mod:`repro.rom.prima`) of order
    ``q << n`` answers the query from a dense ``q x q`` model.  No
    fallback: a failed projection raises.

``auto``
    Picks the cheapest adequate tier: full for small systems (at or
    below :data:`ROM_SIZE_CUTOFF` unknowns the full solve is already
    cheap), reduced otherwise -- *unless* the pinned a-posteriori
    error checks (build-time moment matching, per-query residual /
    order-convergence estimates) exceed
    :data:`DEFAULT_ERROR_BOUND` (or the caller's
    ``rom_error_bound``), in which case the query falls back to full
    MNA and the fallback is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ParameterError

__all__ = [
    "MODELS",
    "DEFAULT_ERROR_BOUND",
    "ROM_SIZE_CUTOFF",
    "ModelSelection",
    "resolve_model",
    "record_model_selection",
]

#: The selectable evaluation-model tiers.
MODELS = ("full", "reduced", "auto")

#: Relative error bound that ``model="auto"`` holds reduced answers to
#: before falling back to full MNA.  The bound is compared against the
#: *largest* of the pinned a-posteriori estimates (build-time moment
#: mismatch, frequency-domain relative residual, order-convergence
#: defect); 5e-3 keeps 50% delay errors comfortably under the 1%
#: acceptance target.
DEFAULT_ERROR_BOUND = 5e-3

#: Systems at or below this many MNA unknowns stay on the full tier
#: under ``model="auto"``: the full factorization is already cheap and
#: a projection would only add build cost.
ROM_SIZE_CUTOFF = 256


@dataclass(frozen=True)
class ModelSelection:
    """Which evaluation tier served a query, and the evidence why.

    The :class:`~repro.spice.backend.BackendSelection` counterpart for
    model tiers: attached to reduced systems
    (:attr:`repro.rom.prima.ReducedSystem.selection`), surfaced in
    their ``repr``, and recorded as the
    ``rom.model_selected{model=,rule=}`` counter while instrumentation
    is enabled.

    Attributes
    ----------
    model:
        The tier that actually answered: ``"full"`` or ``"reduced"``.
    rule:
        Which decision rule fired: ``"explicit"`` (the caller named the
        tier), ``"auto-small-system"`` (full; system at or below the
        size cutoff), ``"auto-within-bound"`` (reduced; every error
        estimate under the bound), ``"auto-error-fallback"`` (full; an
        estimate exceeded the bound) or ``"auto-build-fallback"``
        (full; the projection itself failed, e.g. a singular DC
        matrix).
    size:
        Full MNA unknown count of the deciding system.
    order:
        Reduced order ``q`` that was used or evaluated; ``None`` when
        no projection was attempted.
    error_estimate, error_bound:
        The worst a-posteriori error estimate and the bound it was
        compared against; ``None`` when the rule decided without one.
    """

    model: str
    rule: str
    size: int
    order: int | None = None
    error_estimate: float | None = None
    error_bound: float | None = None

    def reason(self) -> str:
        """One-line human-readable justification of the choice."""
        if self.rule == "explicit":
            return f"model={self.model!r} requested explicitly"
        if self.rule == "auto-small-system":
            return f"n={self.size} <= reduced-order cutoff {ROM_SIZE_CUTOFF}"
        if self.rule == "auto-build-fallback":
            return f"n={self.size}, projection build failed -> full MNA"
        comparison = "<=" if self.rule == "auto-within-bound" else ">"
        return (
            f"n={self.size}, order {self.order}, error estimate "
            f"{self.error_estimate:.2e} {comparison} bound {self.error_bound:g}"
        )

    def __repr__(self) -> str:
        return f"ModelSelection({self.reason()} -> {self.model})"


def resolve_model(model: str) -> str:
    """Validate and normalize an evaluation-model request.

    Accepts ``"full"``, ``"reduced"`` or ``"auto"`` (case-insensitive)
    and returns the lowercase name; anything else raises
    :class:`~repro.errors.ParameterError` naming the known tiers.  The
    shared entry-point resolver: :func:`~repro.spice.transient.simulate_transient`
    / ``_batch``, :func:`~repro.spice.ac.ac_sweep` / ``_batch``,
    :func:`~repro.core.simulate.simulated_delay_50` / ``_batch``, the
    sweep runner's option validation and both CLIs all route through
    this one function.
    """
    if not isinstance(model, str):
        raise ParameterError(
            f"model must be one of {', '.join(MODELS)}, got {model!r}"
        )
    name = model.lower()
    if name not in MODELS:
        known = ", ".join(MODELS)
        raise ParameterError(
            f"unknown evaluation model {model!r}; known: {known}"
        )
    return name


def record_model_selection(selection: ModelSelection, n: int = 1) -> ModelSelection:
    """Record a tier decision in the metrics registry; returns it.

    Increments ``rom.model_selected{model=,rule=}`` by ``n`` (one per
    query -- batch entry points count every point they served) and, for
    fallbacks, ``rom.fallbacks{rule=}``.  A no-op while instrumentation
    is disabled.
    """
    obs.inc(
        "rom.model_selected", n, model=selection.model, rule=selection.rule
    )
    if selection.rule in ("auto-error-fallback", "auto-build-fallback"):
        obs.inc("rom.fallbacks", n, rule=selection.rule)
    return selection
