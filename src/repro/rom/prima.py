"""PRIMA-style block-Arnoldi model-order reduction of MNA systems.

Projects the full MNA description ``G x + C dx/dt = B w(t)`` onto an
orthonormal basis ``V`` of the block Krylov space

    span{ G^-1 B, (G^-1 C) G^-1 B, (G^-1 C)^2 G^-1 B, ... }

truncated at order ``q << n`` (PRIMA: passive reduced-order interconnect
macromodeling, Odabasioglu/Celik/Pileggi).  The congruence-projected
system

    Gq z + Cq dz/dt = Bq w(t),    Gq = V^T G V,  Cq = V^T C V,  Bq = V^T B

matches the first ``floor(q / m)`` block moments of the original
transfer function (``m`` input columns) and answers transient, AC and
delay queries from dense ``q x q`` solves; full-space waveforms are
recovered as ``x ~= V z``.

Two usage shapes:

- :func:`prima_reduce` projects one concrete :class:`~repro.spice.mna.MnaSystem`
  into a :class:`ReducedSystem` (scalar transient / AC queries).
- :class:`ReducedTemplate` composes with the stamp-once / re-value-many
  split of :class:`~repro.spice.mna.CircuitTemplate`: the basis is built
  once at a nominal parameter point and each COO revaluation *group* is
  pre-projected to a ``q x q`` matrix, so a value-only batch point costs
  ``O(groups * q^2)`` -- no O(nnz) work per point -- and the batched
  reduced recurrence (:func:`reduced_transient_batch`) integrates every
  point with stacked ``q x q`` operations.

Every reduced answer carries pinned a-posteriori error evidence: the
build-time moment-matching defect (:attr:`ReducedSystem.moment_error`),
the exact frequency-domain residual ``||(G + jwC) V z - b|| / ||b||``
(:meth:`ReducedSystem.residual_error`), and the nested-suborder
convergence defect used by the transient paths (basis prefixes stay
orthonormal, so re-running the recurrence with the weakest trailing
direction dropped and comparing outputs costs only ``O(q^2)`` per
point).  ``model="auto"`` callers fall back to full MNA whenever these
estimates exceed the requested bound.
"""

from __future__ import annotations

import itertools
import warnings
import weakref
from typing import Mapping

import numpy as np
import scipy.linalg

from repro import obs
from repro.errors import ParameterError, SimulationError
from repro.spice.backend import SimulationBackend, resolve_backend
from repro.spice.mna import (
    CircuitTemplate,
    MnaStructure,
    MnaSystem,
    _key_value,
    _MatrixPlan,
)

__all__ = [
    "DEFAULT_ORDER",
    "ReducedSystem",
    "ReducedTemplate",
    "corner_samples",
    "prima_reduce",
    "cached_reduced_template",
    "reduced_transient_batch",
]

#: Default reduced order ``q``.  With ``m`` input columns this matches
#: ``floor(q / m)`` block moments; 48 holds the paper's bus workloads
#: (8 coupled drivers) to well under the auto-tier error bound.
DEFAULT_ORDER = 48

#: A candidate basis vector whose norm collapses below this fraction of
#: its pre-orthogonalization norm is linearly dependent on the span
#: already collected and is deflated (dropped).
_DEFLATION_TOL = 1e-10

#: Block-moment orders compared in the build-time matching check.
_MOMENT_CHECK_MAX = 5

#: Probe frequencies used by :meth:`ReducedSystem.residual_error` when
#: the caller does not supply any.
_RESIDUAL_PROBES = 4

#: Retained entries in the cross-call projection cache.
_CACHE_LIMIT = 4

#: Relative singular-value cutoff when merging per-sample Arnoldi bases
#: into one orthonormal union.  Directions below the cutoff are noise
#: from near-parallel sample bases; keeping them destabilizes the
#: projected recurrence (observed blow-up with a plain QR union), while
#: cutting too aggressively (1e-4..1e-6) leaves visible waveform error.
_UNION_TOL = 1e-8

#: Looser cutoff used when trajectory snapshots are in the union: the
#: snapshot Gram spectrum decays smoothly and the directions below
#: 1e-6 of the leading one carry no signal, only round-off that makes
#: the projected DC matrix needlessly ill-conditioned.
_SNAPSHOT_TOL = 1e-6

#: Krylov depth of the Arnoldi block mixed into a snapshot basis.  Zero:
#: under a fixed order cap every unit-norm Krylov column admitted by the
#: energy cut displaces a snapshot direction, and the snapshots already
#: contain the DC operating points (the trajectories start there) --
#: measured on the bus acceptance workload, mixing 16 Krylov columns in
#: nearly triples the worst-case 50% delay error at the same q (1.21%
#: vs 0.46% at q = 96).  The pure-Krylov path (no snapshots) is
#: unaffected.
_SNAPSHOT_ARNOLDI_ORDER = 0

#: Default cap on the achieved order of a snapshot-enriched basis.
#: Batched per-point integration work grows as ``q^2``..``q^3``; on the
#: bus acceptance workload the measured trade-off runs ~0.95% worst-case
#: 50% delay error at q = 88, ~0.61% at q = 92, ~0.46% at q = 96, with
#: each step of 4 costing ~5% more batch time -- q = 92 keeps the
#: reduced tier >20x faster than the full chunked batch path with a
#: comfortable margin inside the 1% delay budget.
_SNAPSHOT_ORDER_CAP = 92

#: Corner-sample budget for parameter boxes: with ``k`` varying
#: parameters a box has ``2^k`` corners, so full enumeration is capped
#: and wide boxes degrade to the all-min / all-max diagonal corners.
_CORNER_LIMIT = 4


def _row_signs(branch_index: Mapping[str, int], n: int) -> np.ndarray:
    """Row-sign vector ``d`` restoring definiteness of the MNA stamps.

    This repo's MNA assembly stamps inductor branch rows as
    ``v_a - v_b - L dI/dt = 0``, which puts ``-L`` on the diagonal of
    ``C`` -- so neither ``C`` nor ``G + G^T`` is positive semidefinite
    and a plain congruence projection carries *no* stability guarantee
    (observed: reduced bus models with perfect moment matching whose
    transients overflow).  Negating the branch rows recovers the
    classic passive form (``C' = diag(C_nodes, L)`` PSD,
    ``G' + G'^T`` PSD), and then a congruence projection with any
    full-column-rank basis yields a stable reduced pencil.  The Krylov
    space is untouched: ``(DG)^{-1}(DC) = G^{-1}C``.
    """
    d = np.ones(n)
    for row in branch_index.values():
        d[row] = -1.0
    return d


def _block_arnoldi(g_fact, c_csr, b_dense: np.ndarray, q_max: int) -> np.ndarray:
    """Orthonormal block-Krylov basis ``V`` of ``span{(G^-1 C)^k G^-1 B}``.

    ``g_fact`` is a :class:`~repro.spice.backend.LinearFactorization` of
    ``G``; each block is orthogonalized against the accumulated basis
    with two modified-Gram-Schmidt passes and deflated per column.
    Returns ``V`` with at most ``q_max`` columns (fewer if the Krylov
    space is exhausted first).
    """
    n = b_dense.shape[0]
    v = np.empty((n, q_max))
    k = 0
    block = np.atleast_2d(np.asarray(g_fact.solve_many(b_dense), dtype=float))
    if block.shape[0] != n:
        block = block.T
    while k < q_max and block.shape[1]:
        kept: list[int] = []
        for i in range(block.shape[1]):
            cand = block[:, i].copy()
            norm0 = float(np.linalg.norm(cand))
            if norm0 == 0.0 or not np.isfinite(norm0):
                continue
            for _ in range(2):
                if k:
                    cand -= v[:, :k] @ (v[:, :k].T @ cand)
            norm = float(np.linalg.norm(cand))
            if norm <= _DEFLATION_TOL * norm0:
                continue
            v[:, k] = cand / norm
            kept.append(k)
            k += 1
            if k == q_max:
                break
        if not kept or k == q_max:
            break
        block = np.asarray(g_fact.solve_many(c_csr @ v[:, kept]), dtype=float)
        if block.ndim == 1:
            block = block[:, None]
    return v[:, :k].copy()


def _union_basis(parts: list[np.ndarray], tol: float = _UNION_TOL) -> np.ndarray:
    """Orthonormal union of several bases, rank-revealed via the Gram matrix.

    Columns come back ordered by decreasing singular value of the
    stacked input, so truncating trailing columns drops the directions
    the sample bases agree least about -- the ordering the nested
    suborder check relies on for enriched bases.  The rank revelation
    runs on the small ``k x k`` Gram matrix rather than a full ``n x k``
    SVD: for the n ~ 5000 snapshot unions of the batch path that is the
    difference between a few tens of milliseconds and several hundred,
    and the kept directions sit at least ``tol`` above the noise floor
    so the squared conditioning of the Gram route stays harmless.
    """
    stacked = np.hstack([p for p in parts if p.shape[1]])
    gram = stacked.T @ stacked
    eigvals, eigvecs = np.linalg.eigh(gram)
    eigvals = eigvals[::-1]
    eigvecs = eigvecs[:, ::-1]
    keep = eigvals > (tol * tol) * eigvals[0]
    return stacked @ (eigvecs[:, keep] / np.sqrt(eigvals[keep]))


def _moment_defect(g_fact, c_csr, b_dense, basis, gq_lu, cq, bq, n_orders) -> float:
    """Worst relative mismatch of the first ``n_orders`` block moments.

    Runs the full recurrence ``N_{i+1} = G^-1 C N_i`` (from
    ``N_0 = G^-1 B``) and the reduced counterpart with *shared* per-order
    Frobenius normalization, so high orders never underflow; each order
    contributes ``||N_i - V n_i||_F`` with ``||N_i||_F = 1``.  Near
    machine epsilon for a well-conditioned build; growth signals
    ill-conditioning in the projection.
    """
    full = np.asarray(g_fact.solve_many(b_dense), dtype=float)
    if full.ndim == 1:
        full = full[:, None]
    red = scipy.linalg.lu_solve(gq_lu, bq, check_finite=False)
    worst = 0.0
    for i in range(n_orders):
        scale = float(np.linalg.norm(full))
        if scale == 0.0 or not np.isfinite(scale):
            break
        full = full / scale
        red = red / scale
        worst = max(worst, float(np.linalg.norm(full - basis @ red)))
        if i + 1 < n_orders:
            full = np.asarray(g_fact.solve_many(c_csr @ full), dtype=float)
            if full.ndim == 1:
                full = full[:, None]
            red = scipy.linalg.lu_solve(gq_lu, cq @ red, check_finite=False)
    return worst


class ReducedSystem:
    """A PRIMA projection of one MNA system, ready for q-space queries.

    Produced by :func:`prima_reduce`.  Holds the orthonormal basis
    ``V`` (``n x q``), the projected matrices ``Gq``/``Cq``/``Bq``, the
    index maps of the source system, and the build-time error evidence;
    :meth:`transient` and :meth:`ac` integrate / solve entirely in the
    ``q``-dimensional space, and :meth:`reconstruct` lifts reduced
    states back to MNA rows.
    """

    #: The :class:`~repro.rom.model.ModelSelection` that routed a query
    #: to this projection, or ``None`` for directly built instances.
    selection = None

    def __init__(
        self,
        *,
        basis: np.ndarray,
        gq: np.ndarray,
        cq: np.ndarray,
        bq: np.ndarray,
        signs: np.ndarray,
        node_index: dict[str, int],
        branch_index: dict[str, int],
        source_rows,
        moment_error: float,
        requested_order: int,
        g_csr,
        c_csr,
        b_dense: np.ndarray,
        snapshot_enriched: bool = False,
    ) -> None:
        self._basis = basis
        self._gq = gq
        self._cq = cq
        self._bq = bq
        self._signs = signs
        self._node_index = node_index
        self._branch_index = branch_index
        self._source_rows = tuple(source_rows)
        self._moment_error = float(moment_error)
        self._requested_order = int(requested_order)
        self._g_csr = g_csr
        self._c_csr = c_csr
        self._b_dense = b_dense
        self._snapshot_enriched = bool(snapshot_enriched)

    @property
    def snapshot_enriched(self) -> bool:
        """Whether trajectory snapshots contributed basis columns.

        Snapshot (POD) bases do not aim at exact moment matching, so
        their :attr:`moment_error` is descriptive build evidence rather
        than a fidelity bound -- a-posteriori checks on such systems
        should lean on the nested suborder convergence defect instead.
        """
        return self._snapshot_enriched

    @property
    def basis(self) -> np.ndarray:
        """The orthonormal projection basis ``V``, shape ``(n, q)``."""
        return self._basis

    @property
    def gq(self) -> np.ndarray:
        """Projected conductance matrix ``V^T G V``, shape ``(q, q)``."""
        return self._gq

    @property
    def cq(self) -> np.ndarray:
        """Projected dynamic matrix ``V^T C V``, shape ``(q, q)``."""
        return self._cq

    @property
    def bq(self) -> np.ndarray:
        """Projected input map ``V^T B``, shape ``(q, m)``."""
        return self._bq

    @property
    def order(self) -> int:
        """Achieved reduced order ``q`` (deflation may trim the request)."""
        return self._basis.shape[1]

    @property
    def full_size(self) -> int:
        """Unknown count ``n`` of the source MNA system."""
        return self._basis.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of independent-source input columns ``m``."""
        return self._bq.shape[1]

    @property
    def source_rows(self):
        """The source system's ``(row, sign, waveform)`` triples."""
        return self._source_rows

    @property
    def moment_error(self) -> float:
        """Build-time block-moment matching defect (a-posteriori check)."""
        return self._moment_error

    def voltage_row(self, node) -> int:
        """Row index of a node voltage in the *full* MNA ordering."""
        from repro.spice.mna import _voltage_row

        return _voltage_row(self._node_index, node)

    def current_row(self, element_name: str) -> int:
        """Row index of a branch current in the *full* MNA ordering."""
        from repro.spice.mna import _current_row

        return _current_row(self._branch_index, element_name)

    def suborder(self) -> int:
        """Nested comparison order ``q2 = q - 1`` for convergence checks.

        Basis prefixes stay orthonormal, so the leading ``q2 x q2``
        principal blocks of ``Gq``/``Cq`` are themselves a valid
        Galerkin projection; re-answering a query with the weakest
        trailing direction removed (the last Arnoldi vector, or the
        smallest-singular-value union direction for sample-enriched
        bases) and comparing outputs estimates convergence in the basis
        with no full-space work.  Dropping exactly one direction keeps
        the estimate sharp -- deeper truncations of an enriched basis
        can go unstable and read as huge defects on projections whose
        true error is tiny.  A heuristic, not a bound: an unconverged
        answer can in principle move little under the drop, which is
        why ``model="auto"`` folds it with the build-time moment defect
        rather than trusting it alone.
        """
        q = self.order
        if q <= 1:
            return q
        return q - 1

    def _source_matrix(self, times: np.ndarray) -> np.ndarray:
        """Waveform samples ``w(t)``, shape ``times.shape + (m,)``."""
        times = np.asarray(times, dtype=float)
        w = np.empty(times.shape + (len(self._source_rows),))
        for s, (_row, _sign, waveform) in enumerate(self._source_rows):
            w[..., s] = np.asarray(waveform(times), dtype=float)
        return w

    def reduced_rhs(self, times: np.ndarray) -> np.ndarray:
        """Projected source term ``V^T b(t)``, shape ``times.shape + (q,)``.

        Source signs are folded into ``Bq``, so this is just the
        waveform samples pushed through the projected input map.
        """
        return self._source_matrix(times) @ self._bq.T

    def transient(
        self,
        t_stop: float,
        dt: float,
        method="trapezoidal",
        initial="dc",
        t_start: float = 0.0,
        order: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate the reduced system on the standard transient grid.

        Mirrors :func:`~repro.spice.transient.simulate_transient` --
        same :func:`~repro.spice.transient._time_grid`, same
        backward-Euler / trapezoidal companion updates -- but every step
        is one dense ``q x q`` triangular solve.  ``initial`` accepts
        ``"dc"`` (reduced operating point), ``"zero"``, or a full
        ``(n,)`` state vector (projected as ``V^T x0``).  ``order``
        restricts the solve to a basis prefix (for nested convergence
        checks).  Returns ``(times, z)`` with ``z`` of shape
        ``(n_steps + 1, q_used)``.
        """
        from repro.spice.transient import IntegrationMethod, _time_grid

        method = IntegrationMethod(method)
        if dt <= 0 or not np.isfinite(dt):
            raise ParameterError(f"dt must be positive and finite, got {dt}")
        if t_stop <= t_start:
            raise ParameterError("t_stop must exceed t_start")
        q = self.order if order is None else int(order)
        if not 1 <= q <= self.order:
            raise ParameterError(
                f"order must be in [1, {self.order}], got {order!r}"
            )
        gq = self._gq[:q, :q]
        cq = self._cq[:q, :q]

        times = _time_grid(t_start, t_stop, dt)
        n_steps = times.size - 1
        dt_eff = (t_stop - t_start) / n_steps
        wq = self.reduced_rhs(times)[:, :q]

        trapezoidal = method is IntegrationMethod.TRAPEZOIDAL
        weight = (2.0 if trapezoidal else 1.0) / dt_eff
        lhs = gq + weight * cq
        hist = weight * cq - (gq if trapezoidal else 0.0)

        z = np.empty((n_steps + 1, q))
        z[0] = self._initial_state(initial, wq[0], gq, q)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
                lu = scipy.linalg.lu_factor(lhs, check_finite=False)
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SimulationError(
                "singular reduced transient system matrix"
            ) from exc
        for k in range(n_steps):
            rhs = hist @ z[k]
            rhs += wq[k + 1] + wq[k] if trapezoidal else wq[k + 1]
            z[k + 1] = scipy.linalg.lu_solve(lu, rhs, check_finite=False)
        if not np.all(np.isfinite(z)):
            raise SimulationError(
                "reduced transient solution diverged (non-finite values); "
                "reduce dt or fall back to model='full'"
            )
        return times, z

    def _initial_state(self, initial, wq0, gq, q) -> np.ndarray:
        if isinstance(initial, np.ndarray):
            if initial.shape != (self.full_size,):
                raise ParameterError(
                    f"initial state must have shape ({self.full_size},), "
                    f"got {initial.shape}"
                )
            return self._basis[:, :q].T @ initial.astype(float)
        if initial == "zero":
            return np.zeros(q)
        if initial == "dc":
            # Least-squares, not a direct solve: a snapshot-enriched
            # basis can leave the projected DC matrix numerically
            # rank-deficient even though the DC *solution* in its span
            # is fine, and the minimum-residual state is exactly the
            # right operating point there.
            try:
                z0 = np.linalg.lstsq(gq, wq0, rcond=1e-10)[0]
            except np.linalg.LinAlgError as exc:
                raise SimulationError(
                    "singular reduced DC system while computing the initial "
                    "operating point; pass initial='zero' or an explicit state"
                ) from exc
            if not np.all(np.isfinite(z0)):
                raise SimulationError(
                    "singular reduced DC system while computing the initial "
                    "operating point; pass initial='zero' or an explicit state"
                )
            return z0
        raise ParameterError(
            f"initial must be 'zero', 'dc' or a vector, got {initial!r}"
        )

    def projected_unit_rhs(self, input_row: int) -> np.ndarray:
        """Projection ``W^T e_row`` of a unit stimulus at one MNA row.

        With the sign-corrected test basis ``W = D V`` (see
        :func:`_row_signs`), the projection of a unit right-hand side at
        ``input_row`` is exactly ``signs[row] * V[row]`` -- no matvec
        needed.  Shape ``(q,)``; slice to a prefix for suborder solves.
        """
        return self._signs[input_row] * self._basis[input_row]

    def ac(
        self, input_row: int, omegas: np.ndarray, order: int | None = None
    ) -> np.ndarray:
        """Reduced phasor solves ``(Gq + jw Cq) z = V^T e_input``.

        ``input_row`` is the full-MNA row carrying the unit AC stimulus
        (the input source's branch row, as in
        :func:`~repro.spice.ac.ac_sweep`); that row's sign-corrected
        basis slice is the exact projection of the unit right-hand
        side.  Returns the complex reduced states, shape
        ``(len(omegas), q_used)``.
        """
        omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
        q = self.order if order is None else int(order)
        gq = self._gq[:q, :q].astype(complex)
        cq = self._cq[:q, :q]
        rhs = np.broadcast_to(
            self.projected_unit_rhs(input_row)[:q].astype(complex),
            (omegas.size, q),
        )
        lhs = gq[None, :, :] + 1j * omegas[:, None, None] * cq[None, :, :]
        try:
            # Trailing singleton keeps the gufunc from reading the
            # stacked (F, q) right-hand sides as one q-column matrix.
            return np.linalg.solve(lhs, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                "singular reduced AC system at a swept frequency"
            ) from exc

    def reconstruct(self, z: np.ndarray, rows=None) -> np.ndarray:
        """Lift reduced states back to MNA rows: ``x = V[:, :q_used] z``.

        ``z`` has shape ``(..., q_used)`` (``q_used`` inferred from the
        last axis, so suborder states lift correctly); ``rows`` selects
        full-space rows (``None`` reconstructs all of them).
        """
        z = np.asarray(z)
        basis = self._basis if rows is None else self._basis[np.asarray(rows)]
        return z @ basis[:, : z.shape[-1]].T

    def ac_residuals(
        self, input_row: int, omegas, z: np.ndarray
    ) -> np.ndarray:
        """Exact per-frequency relative residuals of reduced AC states.

        ``z`` holds :meth:`ac` solutions (``(F, q_used)``) for a unit
        stimulus at ``input_row``; each lifted phasor solution is
        checked against the *full* system:
        ``||(G + jw C) V z_k - e_input|| / ||e_input||`` with
        ``||e_input|| = 1``.  Only sparse matvecs -- no full solve --
        so ``model="auto"`` can pin its fallback decision on an exact
        a-posteriori quantity at the swept frequencies themselves.
        """
        omegas = np.atleast_1d(np.asarray(omegas, dtype=float))
        x = self.reconstruct(z).T  # (n, F), complex
        resid = (self._g_csr @ x) + 1j * omegas[None, :] * (self._c_csr @ x)
        resid[input_row, :] -= 1.0
        return np.linalg.norm(resid, axis=0)

    def residual_error(self, omegas=None) -> float:
        """Exact frequency-domain relative residual of the projection.

        Computes ``max_s ||(G + jw C) V z_s - b_s|| / ||b_s||`` over the
        input columns ``s`` and probe frequencies -- the caller's
        ``omegas`` (e.g. a subsample of an AC sweep) or, by default,
        :data:`_RESIDUAL_PROBES` frequencies spanning the magnitude
        range of the reduced system's own pole estimates.  This is an
        *exact* a-posteriori bound ingredient: no reference full solve
        is needed, only sparse matvecs.
        """
        if omegas is None:
            probes = self._probe_frequencies()
        else:
            probes = np.atleast_1d(np.asarray(omegas, dtype=float))
        gq = self._gq.astype(complex)
        norms = np.linalg.norm(self._b_dense, axis=0)
        norms = np.where(norms > 0.0, norms, 1.0)
        worst = 0.0
        for w in probes:
            try:
                zq = np.linalg.solve(gq + 1j * w * self._cq, self._bq)
            except np.linalg.LinAlgError:
                return np.inf
            x = self._basis @ zq
            resid = self._g_csr @ x + 1j * w * (self._c_csr @ x) - self._b_dense
            worst = max(worst, float(np.max(np.linalg.norm(resid, axis=0) / norms)))
        return worst

    def _probe_frequencies(self) -> np.ndarray:
        """Probe ``omega`` values spanning the reduced pole magnitudes."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                lam = scipy.linalg.eigvals(self._gq, self._cq)
            except (ValueError, np.linalg.LinAlgError):
                lam = np.empty(0, dtype=complex)
        mags = np.abs(lam[np.isfinite(lam)])
        mags = mags[mags > 0.0]
        if mags.size == 0:
            norm_c = float(np.linalg.norm(self._cq))
            scale = float(np.linalg.norm(self._gq)) / norm_c if norm_c else 1.0
            return np.asarray([scale])
        lo, hi = float(mags.min()), float(mags.max())
        if lo == hi:
            return np.asarray([lo])
        return np.geomspace(lo, hi, _RESIDUAL_PROBES)

    def __repr__(self) -> str:
        head = (
            f"ReducedSystem(order={self.order}, n={self.full_size}, "
            f"inputs={self.n_inputs}, moment_error={self._moment_error:.2e}"
        )
        if self.selection is not None:
            return f"{head}, {self.selection!r})"
        return head + ")"


def prima_reduce(
    system: MnaSystem,
    order: int | None = None,
    backend: SimulationBackend | str = "auto",
    samples: tuple = (),
    snapshots: np.ndarray | None = None,
) -> ReducedSystem:
    """Project one MNA system to a :class:`ReducedSystem` of order ``q``.

    Factors ``G`` once through the resolved backend, grows the block
    Krylov basis from the independent-source columns, forms the
    sign-corrected congruence projections (see :func:`_row_signs` --
    this is what makes the reduced pencil provably stable), and runs
    the build-time moment-matching check.  Raises
    :class:`~repro.errors.SimulationError` when the projection cannot
    be built (no sources, singular ``G``, or a non-finite basis) --
    ``model="auto"`` callers treat that as an automatic fallback to
    full MNA.

    ``samples`` is an optional tuple of structure-identical
    :class:`~repro.spice.mna.MnaSystem` instances at *other* parameter
    points (typically box corners of a value sweep): each contributes
    its own order-``q`` Krylov basis, and the union is merged by
    :func:`_union_basis` so the one projection stays accurate across
    the whole sampled box -- a single-point basis loses roughly a
    percent of 50% delay per 50% parameter excursion, which is exactly
    what value sweeps cannot afford.  The achieved order then exceeds
    ``q`` (up to ``q * (1 + len(samples))``).

    ``snapshots`` is an optional ``(n, k)`` matrix of full-space state
    snapshots (e.g. transient trajectories at a few sample points, as
    collected by the batch dispatch).  Its normalized columns join the
    union, POD-style; the moment-anchoring Arnoldi block then shrinks
    to :data:`_SNAPSHOT_ARNOLDI_ORDER` and the merged basis is capped
    at ``order`` columns (default :data:`_SNAPSHOT_ORDER_CAP`), kept in
    decreasing singular-value order.  Snapshot bases track the actual
    waveforms far more efficiently per column than corner Krylov
    unions on strongly coupled structures.
    """
    with obs.span("rom.build") as sp:
        n = system.size
        m = len(system.source_rows)
        if m == 0:
            raise SimulationError(
                "reduced-order projection needs at least one independent "
                "source (the Krylov space starts from the source columns)"
            )
        if order is None:
            q_req = DEFAULT_ORDER if snapshots is None else _SNAPSHOT_ORDER_CAP
        else:
            q_req = int(order)
        if q_req < 1:
            raise ParameterError(f"rom order must be >= 1, got {order!r}")
        backend = resolve_backend(backend, system.g_coo)
        try:
            g_fact = backend.factorize(system.g_coo)
        except SimulationError as exc:
            raise SimulationError(
                "singular DC (G) matrix; cannot build a reduced-order basis "
                f"(backend={backend.name})"
            ) from exc
        c_csr = system.c_coo.to_csr()
        b_dense = np.zeros((n, m))
        for s, (row, sign, _waveform) in enumerate(system.source_rows):
            b_dense[row, s] = sign

        arnoldi_q = min(q_req, n)
        if snapshots is not None:
            arnoldi_q = min(arnoldi_q, _SNAPSHOT_ARNOLDI_ORDER)
        basis = _block_arnoldi(g_fact, c_csr, b_dense, arnoldi_q)
        moment_depth = basis.shape[1]
        if samples:
            parts = [basis]
            for sample in samples:
                try:
                    sample_fact = backend.factorize(sample.g_coo)
                except SimulationError as exc:
                    raise SimulationError(
                        "singular DC (G) matrix at a sample point; cannot "
                        f"enrich the reduced basis (backend={backend.name})"
                    ) from exc
                parts.append(
                    _block_arnoldi(
                        sample_fact,
                        sample.c_coo.to_csr(),
                        b_dense,
                        arnoldi_q,
                    )
                )
            basis = _union_basis(parts)
            moment_depth = basis.shape[1]
        if snapshots is not None:
            snap = np.asarray(snapshots, dtype=float)
            if snap.ndim != 2 or snap.shape[0] != n:
                raise ParameterError(
                    f"snapshots must have shape ({n}, k), got {snap.shape}"
                )
            norms = np.linalg.norm(snap, axis=0)
            live = norms > 0.0
            if np.any(live):
                # POD cut over the *whole* union, Krylov core included:
                # pure energy ordering spends the order cap noticeably
                # better than reserving exact slots for the core
                # (measured ~2x lower worst-case delay error on the bus
                # workload at the same q).  Moment matching becomes
                # approximate -- the build-time defect reports exactly
                # how approximate, which is what the auto tier folds
                # into its estimates.
                basis = _union_basis(
                    [basis, snap[:, live] / norms[live]], _SNAPSHOT_TOL
                )[:, :q_req]
        if basis.shape[1] == 0 or not np.all(np.isfinite(basis)):
            raise SimulationError(
                "block-Arnoldi basis construction failed (empty or "
                "non-finite basis)"
            )
        g_csr = system.g_coo.to_csr()
        signs = _row_signs(system.branch_index, n)
        gq = basis.T @ (signs[:, None] * (g_csr @ basis))
        cq = basis.T @ (signs[:, None] * (c_csr @ basis))
        bq = basis.T @ (signs[:, None] * b_dense)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", scipy.linalg.LinAlgWarning)
            gq_lu = scipy.linalg.lu_factor(gq, check_finite=False)
        n_orders = max(1, min(moment_depth // m, _MOMENT_CHECK_MAX))
        moment_error = _moment_defect(
            g_fact, c_csr, b_dense, basis, gq_lu, cq, bq, n_orders
        )
        if not np.isfinite(moment_error):
            raise SimulationError(
                "reduced-order moment check produced non-finite values "
                "(singular projected Gq?)"
            )
        obs.inc("rom.projection_builds")
        obs.observe("rom.order", basis.shape[1], buckets=obs.COUNT_BUCKETS)
        sp.set(
            n=n,
            order=basis.shape[1],
            inputs=m,
            backend=backend.name,
            samples=len(samples),
            snapshots=0 if snapshots is None else int(snapshots.shape[1]),
        )
        return ReducedSystem(
            basis=basis,
            gq=gq,
            cq=cq,
            bq=bq,
            signs=signs,
            node_index=system.node_index,
            branch_index=system.branch_index,
            source_rows=system.source_rows,
            moment_error=moment_error,
            requested_order=q_req,
            g_csr=g_csr,
            c_csr=c_csr,
            b_dense=b_dense,
            snapshot_enriched=snapshots is not None,
        )


def _project_plan(
    plan: _MatrixPlan, basis: np.ndarray, signs: np.ndarray
) -> tuple[np.ndarray, tuple[tuple[tuple, np.ndarray], ...]]:
    """Pre-project one revaluation plan onto the sign-corrected basis.

    A revalued matrix is ``A(p) = scatter(const) + sum_g expr_g(p) *
    scatter(coeffs_g)``, so its congruence projection splits the same
    way: ``V^T D A(p) V = Mconst + sum_g expr_g(p) * M_g`` with each
    ``M_g = V^T D scatter(coeffs_g) V`` a fixed ``q x q`` matrix
    (``D = diag(signs)`` as in :func:`_row_signs`).  This is the key to
    O(groups * q^2) per-point revaluation in reduced space: the O(nnz)
    projection work happens exactly once here.
    """
    q = basis.shape[1]
    if plan.nnz == 0:
        return np.zeros((q, q)), tuple()
    vr = signs[plan.rows, None] * basis[plan.rows]
    vc = basis[plan.cols]
    const = vr.T @ (plan.const[:, None] * vc)
    groups = tuple(
        (key, vr[idx].T @ (coeffs[:, None] * vc[idx]))
        for key, idx, coeffs in plan.groups
    )
    return const, groups


class ReducedTemplate:
    """A PRIMA projection composed with the stamp-once/revalue-many split.

    Builds the basis once from the template's structure at a *nominal*
    parameter point (:func:`prima_reduce`), then pre-projects the
    ``G``/``C`` revaluation plans so any other value point's projected
    matrices come from :meth:`reduce` / :meth:`reduce_many` in
    ``O(groups * q^2)`` -- the reduced-tier analogue of
    :meth:`~repro.spice.mna.MnaStructure.revalue`.  The basis is exact
    at the nominal point and approximate elsewhere, so value sweeps
    should pass ``sample_params`` -- extra parameter points (typically
    the box corners the batch dispatch derives via
    :func:`corner_samples`) whose Krylov bases are merged in, keeping
    one shared basis accurate across the whole box; the per-point
    nested-suborder convergence check in the batch paths is what keeps
    ``model="auto"`` honest for points the samples did not bracket.
    """

    def __init__(
        self,
        template: CircuitTemplate | MnaStructure,
        order: int | None = None,
        params: Mapping[str, float] | None = None,
        backend: SimulationBackend | str = "auto",
        sample_params: tuple = (),
        snapshots: np.ndarray | None = None,
    ) -> None:
        if isinstance(template, CircuitTemplate):
            structure = template.structure
            nominal = template.resolve_params(params)
        elif isinstance(template, MnaStructure):
            structure = template
            nominal = dict(params or {})
        else:
            raise ParameterError(
                f"expected a CircuitTemplate or MnaStructure, got {template!r}"
            )
        self._structure = structure
        self._nominal = nominal
        self._rom = prima_reduce(
            structure.system(nominal),
            order=order,
            backend=backend,
            samples=tuple(
                structure.system({**nominal, **dict(point)})
                for point in sample_params
            ),
            snapshots=snapshots,
        )
        basis = self._rom.basis
        signs = self._rom._signs
        self._g_const, self._g_groups = _project_plan(
            structure.g_plan, basis, signs
        )
        self._c_const, self._c_groups = _project_plan(
            structure.c_plan, basis, signs
        )

    @property
    def rom(self) -> ReducedSystem:
        """The nominal-point :class:`ReducedSystem` (basis owner)."""
        return self._rom

    @property
    def structure(self) -> MnaStructure:
        """The shared :class:`~repro.spice.mna.MnaStructure`."""
        return self._structure

    @property
    def nominal(self) -> dict[str, float]:
        """Copy of the nominal parameter point the basis was built at."""
        return dict(self._nominal)

    @property
    def order(self) -> int:
        """Achieved reduced order ``q``."""
        return self._rom.order

    def reduce(self, params: Mapping[str, float] | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Projected ``(Gq, Cq)`` at one parameter point (``q x q`` each)."""
        params = self._structure._check_params(params)

        def get(name: str) -> np.float64:
            return np.float64(params[name])

        with np.errstate(divide="ignore", invalid="ignore"):
            gq = self._g_const.copy()
            for key, mat in self._g_groups:
                gq += float(_key_value(key, get)) * mat
            cq = self._c_const.copy()
            for key, mat in self._c_groups:
                cq += float(_key_value(key, get)) * mat
        if not (np.isfinite(gq).all() and np.isfinite(cq).all()):
            raise ParameterError(
                f"parameter values {params!r} produce non-finite projected "
                "matrices (zero resistance or non-finite value?)"
            )
        return gq, cq

    def _batch_columns(self, columns: Mapping[str, np.ndarray]):
        """Validated, broadcast parameter columns: ``(n_points, get)``."""
        cols = {
            name: np.asarray(value, dtype=float).ravel()
            for name, value in dict(columns or {}).items()
        }
        self._structure._check_params({name: 0.0 for name in cols})
        sizes = {c.size for c in cols.values() if c.size != 1}
        if len(sizes) > 1:
            raise ParameterError(
                f"parameter columns have mismatched lengths {sorted(sizes)}"
            )
        n_points = sizes.pop() if sizes else 1
        full = {
            name: np.broadcast_to(c, (n_points,)) for name, c in cols.items()
        }

        def get(name: str) -> np.ndarray:
            return full[name]

        return n_points, get

    def batch_dc_states(
        self, columns: Mapping[str, np.ndarray], wq0: np.ndarray
    ) -> np.ndarray:
        """Reduced DC operating points ``(B, q)`` for a value batch.

        ``Gq`` only varies through the conductance value groups, and
        grid-style value sweeps revisit each distinct conductance
        combination many times (a 16 x 16 grid over one G parameter and
        one C parameter has 16 unique DC systems, not 256), so the
        factorizations run once per unique value row and scatter back
        to all points sharing it.
        """
        n_points, get = self._batch_columns(columns)
        q = self.order
        k = len(self._g_groups)
        vals = np.empty((n_points, k))
        with np.errstate(divide="ignore", invalid="ignore"):
            for i, (key, _mat) in enumerate(self._g_groups):
                vals[:, i] = np.broadcast_to(
                    np.asarray(_key_value(key, get), dtype=float), (n_points,)
                )
        if not np.isfinite(vals).all():
            raise ParameterError(
                "some parameter points produce non-finite projected matrices "
                "(zero resistance or non-finite value?)"
            )
        uniq, inverse = np.unique(vals, axis=0, return_inverse=True)
        gq = np.broadcast_to(
            self._g_const, (uniq.shape[0], q, q)
        ).copy()
        for i, (_key, mat) in enumerate(self._g_groups):
            gq += uniq[:, i, None, None] * mat
        z0 = _batch_dc_solve(gq, np.broadcast_to(wq0, (uniq.shape[0], q)))
        return z0[inverse]

    def reduce_many(
        self, columns: Mapping[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`reduce`: stacked ``(B, q, q)`` projections.

        ``columns`` maps every structure parameter to a length-``B``
        array (scalars broadcast), exactly like
        :meth:`~repro.spice.mna.MnaStructure.revalue_many` -- but the
        per-point cost is ``O(groups * q^2)`` instead of ``O(nnz)``.
        """
        n_points, get = self._batch_columns(columns)
        q = self.order

        def assemble(const: np.ndarray, groups) -> np.ndarray:
            # One (B, k+1) @ (k+1, q*q) product instead of k broadcasted
            # (B, q, q) multiply-adds: the latter moves ~k * B * q^2
            # doubles through memory twice per matrix and dominates the
            # warm batch cost for q ~ 100.  The constant part rides
            # along as an all-ones column so no separate add pass runs.
            if not groups:
                return np.broadcast_to(const, (n_points, q, q)).copy()
            vals = np.empty((n_points, len(groups) + 1))
            vals[:, 0] = 1.0
            for i, (key, _mat) in enumerate(groups):
                vals[:, i + 1] = np.broadcast_to(
                    np.asarray(_key_value(key, get), dtype=float),
                    (n_points,),
                )
            mats = np.empty((len(groups) + 1, q * q))
            mats[0] = const.ravel()
            for i, (_key, mat) in enumerate(groups):
                mats[i + 1] = mat.ravel()
            return (vals @ mats).reshape(n_points, q, q)

        with np.errstate(divide="ignore", invalid="ignore"):
            gq = assemble(self._g_const, self._g_groups)
            cq = assemble(self._c_const, self._c_groups)
        if not (np.isfinite(gq).all() and np.isfinite(cq).all()):
            raise ParameterError(
                "some parameter points produce non-finite projected matrices "
                "(zero resistance or non-finite value?)"
            )
        return gq, cq

    def __repr__(self) -> str:
        return (
            f"ReducedTemplate(order={self.order}, "
            f"n={self._rom.full_size}, "
            f"groups={len(self._g_groups) + len(self._c_groups)})"
        )


def corner_samples(
    columns: Mapping[str, np.ndarray],
) -> tuple[dict[str, float], tuple[tuple[tuple[str, float], ...], ...]]:
    """Nominal point and box samples bracketing a parameter batch.

    The nominal is the box midpoint (first value for parameters that do
    not vary); the samples are the box corners over the varying
    parameters, returned as hashable sorted item tuples so they can key
    the projection cache.  Corners-plus-center is deliberately the
    whole budget: at a fixed order cap, richer sample clouds (e.g.
    per-axis edge midpoints) spread the POD energy thinner and
    measurably *raise* the worst-case interior error.  Full ``2^k``
    corner enumeration is capped at :data:`_CORNER_LIMIT`; wider boxes
    fall back to the all-min / all-max diagonal corners, leaving the
    a-posteriori checks to catch the unbracketed mixed corners.
    """
    cols = {
        name: np.asarray(value, dtype=float).ravel()
        for name, value in dict(columns).items()
    }
    nominal: dict[str, float] = {}
    varying: list[tuple[str, float, float]] = []
    for name, col in cols.items():
        lo, hi = float(np.min(col)), float(np.max(col))
        if hi > lo:
            varying.append((name, lo, hi))
            nominal[name] = 0.5 * (lo + hi)
        else:
            nominal[name] = float(col[0])
    if not varying:
        return nominal, ()
    if 2 ** len(varying) <= _CORNER_LIMIT:
        corners = itertools.product(
            *([(name, lo), (name, hi)] for name, lo, hi in varying)
        )
        points = [dict(corner) for corner in corners]
    else:
        points = [
            {name: lo for name, lo, _hi in varying},
            {name: hi for name, _lo, hi in varying},
        ]
    seen: set = set()
    samples = []
    for point in points:
        item = tuple(sorted({**nominal, **point}.items()))
        if item not in seen:
            seen.add(item)
            samples.append(item)
    return nominal, tuple(samples)


#: Cross-call projection cache: a chunked sweep re-enters the batch
#: entry point once per chunk, and rebuilding the basis per chunk would
#: eat most of the reduced tier's speedup.  Keyed by structure identity
#: (with a weakref guard against id reuse), requested order, backend,
#: the nominal point and the enrichment samples; bounded FIFO.
_TEMPLATE_CACHE: dict[tuple, tuple[weakref.ref, ReducedTemplate]] = {}


def cached_reduced_template(
    structure: MnaStructure,
    order: int | None,
    nominal: Mapping[str, float],
    backend: SimulationBackend | str = "auto",
    sample_params: tuple = (),
    snapshot_key: tuple | None = None,
    snapshot_builder=None,
) -> ReducedTemplate:
    """Memoized :class:`ReducedTemplate` lookup for one structure.

    Returns a cached projection when the same structure instance was
    already projected with the same order, backend, nominal point and
    enrichment inputs (counting a ``rom.projection_reuse`` hit); builds
    and caches a new one otherwise.  ``snapshot_builder`` is a
    zero-argument callable returning an ``(n, k)`` snapshot matrix for
    POD enrichment; it is invoked *only on a cache miss* (snapshot
    collection runs full transients, so a hit must skip it), with
    ``snapshot_key`` standing in for the matrix identity -- callers
    pass everything the trajectories depend on (sample points, time
    grid, method, initial state).  The cache holds strong references to
    at most :data:`_CACHE_LIMIT` projections and drops entries whose
    structure has been garbage collected.
    """
    q_req = DEFAULT_ORDER if order is None else int(order)
    backend_name = backend if isinstance(backend, str) else backend.name
    sample_key = tuple(
        tuple(sorted((k, float(v)) for k, v in dict(point).items()))
        for point in sample_params
    )
    key = (
        id(structure),
        q_req,
        backend_name,
        tuple(sorted((k, float(v)) for k, v in dict(nominal).items())),
        sample_key,
        snapshot_key,
    )
    entry = _TEMPLATE_CACHE.get(key)
    if entry is not None and entry[0]() is structure:
        obs.inc("rom.projection_reuse")
        return entry[1]
    template = ReducedTemplate(
        structure,
        order=order,
        params=nominal,
        backend=backend,
        sample_params=sample_key,
        snapshots=None if snapshot_builder is None else snapshot_builder(),
    )
    dead = [k for k, (ref, _t) in _TEMPLATE_CACHE.items() if ref() is None]
    for k in dead:
        del _TEMPLATE_CACHE[k]
    while len(_TEMPLATE_CACHE) >= _CACHE_LIMIT:
        del _TEMPLATE_CACHE[next(iter(_TEMPLATE_CACHE))]
    _TEMPLATE_CACHE[key] = (weakref.ref(structure), template)
    return template


def _batch_recurrence(
    gq: np.ndarray,
    cq: np.ndarray,
    wq: np.ndarray,
    dt_eff: np.ndarray,
    trapezoidal: bool,
    initial,
    basis: np.ndarray,
    rec_basis: np.ndarray,
    source: tuple[np.ndarray, np.ndarray] | None = None,
    z0: np.ndarray | None = None,
    overwrite_cq: bool = False,
) -> np.ndarray:
    """Stacked reduced companion-model integration over a batch.

    ``gq``/``cq`` are ``(B, q, q)``; ``wq`` is the projected source term
    (``(K+1, q)`` for a shared grid or ``(B, K+1, q)`` per point);
    ``rec_basis`` is ``V[recorded_rows, :q]``.  Every step is one
    batched ``q x q`` mat-vec plus two cheap vector updates.  Returns
    the recorded outputs, shape ``(B, K+1, R)``.  ``overwrite_cq``
    lets the lhs assembly reuse ``cq``'s buffer (pass ``True`` only
    when the caller is done with it).
    """
    n_points, q = gq.shape[0], gq.shape[1]
    shared_grid = wq.ndim == 2
    n_steps = (wq.shape[0] if shared_grid else wq.shape[1]) - 1

    # The companion update is z' = lhs^-1 (hist z + b) with
    # lhs = G + w C and hist = w C - G (trapezoidal) or w C (backward
    # Euler), i.e. hist = lhs - fac G with fac = 2 or 1.  Substituting
    # gives z' = z - fac (lhs^-1 G) z + lhs^-1 b: one batched LU then
    # serves S = lhs^-1 [G | B-columns] in a single stacked solve --
    # G rides along verbatim as right-hand side (no history matrix is
    # ever formed), and the per-step source terms live in the
    # m-dimensional span of Bq, so when m < K the solve carries only
    # the m input columns and the per-step terms come from a cheap
    # (B, q, m) @ (m, K) recombination afterwards.
    fac = 2.0 if trapezoidal else 1.0
    via_inputs = source is not None and source[1].shape[1] < n_steps
    m_cols = source[1].shape[1] if via_inputs else n_steps
    weight = fac / dt_eff
    rhs = np.empty((n_points, q, q + m_cols))
    rhs[:, :, :q] = gq
    if overwrite_cq:
        lhs = cq
        np.multiply(cq, weight[:, None, None], out=lhs)
        lhs += gq
    else:
        lhs = weight[:, None, None] * cq
        lhs += gq
    if via_inputs:
        w_samples, bq = source
        rhs[:, :, q:] = bq
    elif shared_grid:
        terms = wq[1:] + wq[:-1] if trapezoidal else wq[1:]
        rhs[:, :, q:] = terms.T
    else:
        terms = wq[:, 1:] + wq[:, :-1] if trapezoidal else wq[:, 1:]
        rhs[:, :, q:] = terms.transpose(0, 2, 1)
    try:
        solved = np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError as exc:
        raise SimulationError(
            "singular reduced transient system matrix in batch"
        ) from exc
    step_g = solved[:, :, :q]
    if via_inputs:
        # terms^T = Bq w^T, so lhs^-1 terms^T = (lhs^-1 Bq) w^T.
        if shared_grid:
            w_terms = w_samples[1:] + w_samples[:-1] if trapezoidal else w_samples[1:]
            step_in = np.matmul(solved[:, :, q:], w_terms.T)
        else:
            w_terms = (
                w_samples[:, 1:] + w_samples[:, :-1]
                if trapezoidal
                else w_samples[:, 1:]
            )
            step_in = np.matmul(solved[:, :, q:], w_terms.transpose(0, 2, 1))
    else:
        step_in = solved[:, :, q:]

    if z0 is not None:
        z = z0
    else:
        wq0 = wq[0] if shared_grid else wq[:, 0]
        z = _batch_initial_reduced(gq, wq0, initial, basis, n_points, q)
    out = np.empty((n_points, n_steps + 1, rec_basis.shape[0]))
    out[:, 0] = z @ rec_basis.T
    for k in range(n_steps):
        z = z - fac * np.matmul(step_g, z[:, :, None])[:, :, 0] + step_in[:, :, k]
        out[:, k + 1] = z @ rec_basis.T
    return out


def _batch_initial_reduced(
    gq: np.ndarray,
    wq0: np.ndarray,
    initial,
    basis: np.ndarray,
    n_points: int,
    q: int,
) -> np.ndarray:
    """Per-point reduced start states ``(B, q)`` (mirrors the full path)."""
    n = basis.shape[0]
    if isinstance(initial, np.ndarray):
        if initial.shape == (n,):
            z0 = basis[:, :q].T @ initial.astype(float)
            return np.broadcast_to(z0, (n_points, q)).copy()
        if initial.shape == (n_points, n):
            return initial.astype(float) @ basis[:, :q]
        raise ParameterError(
            f"initial state must have shape ({n},) or ({n_points}, {n}), "
            f"got {initial.shape}"
        )
    if initial == "zero":
        return np.zeros((n_points, q))
    if initial != "dc":
        raise ParameterError(
            f"initial must be 'zero', 'dc' or a vector, got {initial!r}"
        )
    return _batch_dc_solve(gq, np.broadcast_to(wq0, (n_points, q)))


def _batch_dc_solve(gq: np.ndarray, wq0: np.ndarray) -> np.ndarray:
    """Stacked reduced DC solve ``(B, q)`` with per-point lstsq rescue."""
    n_points, q = gq.shape[0], gq.shape[1]
    # Trailing singleton keeps the stacked solve unambiguous: (B, q, q)
    # against (B, q, 1) vectors, not one (B, q) matrix.
    try:
        z0 = np.linalg.solve(gq, wq0[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        z0 = np.full((n_points, q), np.nan)
    bad = ~np.all(np.isfinite(z0), axis=1)
    # Points whose projected DC matrix is numerically rank-deficient
    # (possible with snapshot-enriched bases) get the minimum-residual
    # operating point instead -- same answer where solve works, finite
    # where it does not.
    for j in np.flatnonzero(bad):
        try:
            z0[j] = np.linalg.lstsq(gq[j], wq0[j], rcond=1e-10)[0]
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                "singular reduced DC system while computing batch initial "
                "operating points; pass initial='zero' or explicit states"
            ) from exc
    if not np.all(np.isfinite(z0)):
        raise SimulationError(
            "singular reduced DC system while computing batch initial "
            "operating points; pass initial='zero' or explicit states"
        )
    return z0


def reduced_transient_batch(
    template: ReducedTemplate,
    columns: Mapping[str, np.ndarray],
    times: np.ndarray,
    dt_eff: np.ndarray,
    method,
    initial,
    rec_rows: np.ndarray,
    estimates: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Reduced-tier lockstep transient over one parameter batch.

    The q-space counterpart of the full batch integrator: projected
    matrices per point via :meth:`ReducedTemplate.reduce_many`, one
    stacked recurrence at full order ``q`` and -- when ``estimates`` is
    requested -- one at the nested suborder ``q2``, yielding a
    per-point convergence defect ``max_t |y_q - y_q2| / max_t |y_q|``
    folded with the build-time moment error.  ``times`` is the
    already-validated grid from the caller (``(K+1,)`` shared or
    ``(B, K+1)``); ``rec_rows`` the recorded MNA rows.  Returns
    ``(states, estimates)`` with ``states`` of shape
    ``(B, K+1, len(rec_rows))`` and ``estimates`` of shape ``(B,)`` --
    non-finite outputs yield infinite estimates rather than raising, so
    ``model="auto"`` can fall back per point.  ``estimates=False``
    (the ``model="reduced"`` fast path, which never falls back) skips
    the suborder pass and returns ``None`` estimates, halving the
    per-point integration work.
    """
    from repro.spice.transient import IntegrationMethod

    rom = template.rom
    trapezoidal = IntegrationMethod(method) is IntegrationMethod.TRAPEZOIDAL
    gq, cq = template.reduce_many(columns)
    w_samples = rom._source_matrix(times)
    bq = rom._bq
    wq = w_samples @ bq.T
    basis = rom.basis
    rec_basis = basis[np.asarray(rec_rows, dtype=np.intp)]

    # On a shared grid the DC start states dedup across points that
    # share a conductance-value row (grid sweeps revisit few unique DC
    # systems), which is much cheaper than a second (B, q, q) stacked
    # factorization next to the stepping solve.
    z0 = None
    if isinstance(initial, str) and initial == "dc" and wq.ndim == 2:
        z0 = template.batch_dc_states(columns, wq[0])

    states = _batch_recurrence(
        gq,
        cq,
        wq,
        dt_eff,
        trapezoidal,
        initial,
        basis,
        rec_basis,
        source=(w_samples, bq),
        z0=z0,
        overwrite_cq=not estimates,
    )
    if not estimates:
        return states, None
    # A moment-matched Krylov basis carries its build-time defect into
    # every query; a snapshot (POD) basis does not target moments at
    # all, so there the per-point suborder convergence defect is the
    # whole a-posteriori story.
    base_error = 0.0 if rom.snapshot_enriched else rom.moment_error
    estimates = np.full(states.shape[0], base_error)
    q2 = rom.suborder()
    if q2 < rom.order:
        wq2 = wq[..., :q2]
        states2 = _batch_recurrence(
            gq[:, :q2, :q2],
            cq[:, :q2, :q2],
            wq2,
            dt_eff,
            trapezoidal,
            initial,
            basis,
            rec_basis[:, :q2],
            source=(w_samples, bq[:q2]),
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            denom = np.max(np.abs(states), axis=(1, 2))
            denom = np.where(denom > 0.0, denom, 1.0)
            defect = np.max(np.abs(states - states2), axis=(1, 2)) / denom
        estimates = np.maximum(estimates, defect)
    finite = np.all(np.isfinite(states), axis=(1, 2))
    estimates = np.where(finite, estimates, np.inf)
    return states, estimates
