"""Bus specifications: N coupled lines, switching patterns, shields.

A :class:`BusSpec` describes ``n_lines`` *signal* lines plus optional
grounded *shield* lines, all running in parallel over the same length.
Lines occupy consecutive physical **slots** ``0 .. n_physical - 1``;
shields are named by slot, and the signal lines fill the remaining
slots in order (signal line ``i`` is the ``i``-th non-shield slot).
Coupling is a function of slot separation, so an inserted shield pushes
its neighbors one slot apart *and* sits between them as a grounded
return path -- both effects emerge from the MNA solution with no
special-casing.

Electrical model per slot: the PI ladder of :mod:`repro.spice.ladder`
(``n_segments`` segments, half ground-caps at both ends).  Between two
slots separated by ``s <= coupling_range`` slots:

- a coupling capacitance ``cct * cct_decay**(s - 1)`` distributed with
  the same PI weights as the ground capacitance, and
- segmentwise mutual inductances with coefficient
  ``km * km_decay**(s - 1)``.

The defaults (``coupling_range=1``) recover the classic
nearest-neighbor model; capacitive coupling decays fast with separation
(it is mostly sidewall), while on-chip inductive coupling decays slowly
(current return loops are wide), hence the separate decay knobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ParameterError, require_nonnegative, require_positive

__all__ = [
    "LineSwitch",
    "BusSpec",
    "even_pattern",
    "odd_pattern",
    "quiet_victim_pattern",
    "solo_pattern",
]


class LineSwitch(str, enum.Enum):
    """What one signal line's driver does during the event.

    ``QUIET``/``HIGH`` hold the line at 0 / ``v_step`` through its
    driver; ``RISE``/``FALL`` fire an ideal step at ``t = 0`` (the
    paper's "fast rising signal ... approximated by a step signal").
    """

    RISE = "rise"
    FALL = "fall"
    QUIET = "quiet"
    HIGH = "high"


def _normalize_pattern(pattern, n_lines: int) -> tuple[LineSwitch, ...]:
    """Coerce a per-line pattern to ``n_lines`` :class:`LineSwitch`es."""
    if isinstance(pattern, (str, LineSwitch)):
        pattern = (pattern,) * n_lines
    try:
        switches = tuple(LineSwitch(p) for p in pattern)
    except ValueError as exc:
        known = ", ".join(s.value for s in LineSwitch)
        raise ParameterError(
            f"bad switching pattern entry ({exc}); known: {known}"
        ) from None
    if len(switches) != n_lines:
        raise ParameterError(
            f"pattern has {len(switches)} entries for {n_lines} lines"
        )
    return switches


def even_pattern(n_lines: int) -> tuple[LineSwitch, ...]:
    """All lines rise together (even mode -- loop inductance adds)."""
    return (LineSwitch.RISE,) * n_lines


def odd_pattern(n_lines: int, victim: int) -> tuple[LineSwitch, ...]:
    """The victim rises while every other line falls (odd mode).

    Worst case for Miller-doubled coupling capacitance on RC-dominated
    wires; *fastest* flight on inductance-dominated ones.
    """
    pattern = [LineSwitch.FALL] * n_lines
    pattern[_check_line(victim, n_lines)] = LineSwitch.RISE
    return tuple(pattern)


def quiet_victim_pattern(
    n_lines: int, victim: int, aggressor: LineSwitch | str = LineSwitch.RISE
) -> tuple[LineSwitch, ...]:
    """The victim holds low while every other line switches.

    The functional-noise pattern: the quiet victim's far-end excursion
    measures the coupled glitch (positive = capacitive signature,
    negative = inductive).
    """
    pattern = [LineSwitch(aggressor)] * n_lines
    pattern[_check_line(victim, n_lines)] = LineSwitch.QUIET
    return tuple(pattern)


def solo_pattern(n_lines: int, victim: int) -> tuple[LineSwitch, ...]:
    """Only the victim switches; all neighbors are quiet (the baseline)."""
    pattern = [LineSwitch.QUIET] * n_lines
    pattern[_check_line(victim, n_lines)] = LineSwitch.RISE
    return tuple(pattern)


def _check_line(index: int, n_lines: int) -> int:
    if not isinstance(index, int) or not 0 <= index < n_lines:
        raise ParameterError(
            f"line index must be an integer in [0, {n_lines}), got {index!r}"
        )
    return index


def _per_line(name: str, value, n_lines: int, *, positive: bool) -> tuple[float, ...]:
    """Broadcast a scalar (or validate a length-``n_lines`` sequence)."""
    check = require_positive if positive else require_nonnegative
    if isinstance(value, (int, float)):
        return (check(name, value),) * n_lines
    values = tuple(value)
    if len(values) != n_lines:
        raise ParameterError(
            f"{name} must be a scalar or length-{n_lines} sequence, "
            f"got {len(values)} values"
        )
    return tuple(check(f"{name}[{i}]", v) for i, v in enumerate(values))


@dataclass(frozen=True)
class BusSpec:
    """An N-line coupled bus plus optional grounded shields.

    Attributes
    ----------
    n_lines:
        Number of *signal* lines (>= 1).
    rt, lt, ct:
        Per-line totals (ohm, H, F) -- self parasitics, as in
        :class:`~repro.spice.ladder.LadderSpec`.  Scalars broadcast to
        every signal line; sequences give per-line values.
    cct:
        Total line-to-line coupling capacitance (F) between *adjacent
        slots*; farther pairs decay by ``cct_decay`` per extra slot.
    km:
        Inductive coupling coefficient between adjacent slots
        (``0 <= km < 1``; on-chip neighbors run ~0.4-0.7); farther
        pairs decay by ``km_decay`` per extra slot.
    rtr:
        Driver resistance per signal line (ohm; scalar or sequence).
    cl:
        Load capacitance at each signal line's far end (F).
    n_segments:
        Lumped PI segments per line.
    coupling_range:
        Maximum slot separation that still couples (>= 1).  1 is the
        classic nearest-neighbor model.
    cct_decay, km_decay:
        Per-extra-slot geometric decay of the capacitive / inductive
        coupling (``0 <= decay <= 1``).  Only used when
        ``coupling_range > 1``.
    shields:
        Physical slot indices occupied by grounded shield lines.  The
        total track count is ``n_lines + len(shields)``; signal lines
        fill the non-shield slots in order.
    rtr_shield:
        Resistance tying each shield's near end to ground (ohm).
    shield_grounded_far:
        Also tie the shield's far end to ground through ``rtr_shield``
        (the usual both-ends-grounded shield); ``False`` leaves the far
        end floating on the shield's own capacitance.
    shield_rlc:
        Optional ``(rt, lt, ct)`` totals for the shield lines; defaults
        to the mean of the signal lines' values (same metal layer).
    """

    n_lines: int
    rt: float | Sequence[float]
    lt: float | Sequence[float]
    ct: float | Sequence[float]
    cct: float
    km: float
    rtr: float | Sequence[float]
    cl: float | Sequence[float] = 0.0
    n_segments: int = 32
    coupling_range: int = 1
    cct_decay: float = 0.3
    km_decay: float = 0.7
    shields: tuple[int, ...] = ()
    rtr_shield: float = 1.0
    shield_grounded_far: bool = True
    shield_rlc: tuple[float, float, float] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.n_lines, int) or self.n_lines < 1:
            raise ParameterError(
                f"n_lines must be a positive integer, got {self.n_lines!r}"
            )
        if not isinstance(self.n_segments, int) or self.n_segments < 1:
            raise ParameterError(
                f"n_segments must be a positive integer, got {self.n_segments!r}"
            )
        n = self.n_lines
        object.__setattr__(self, "rt", _per_line("rt", self.rt, n, positive=False))
        object.__setattr__(self, "lt", _per_line("lt", self.lt, n, positive=True))
        object.__setattr__(self, "ct", _per_line("ct", self.ct, n, positive=True))
        object.__setattr__(self, "rtr", _per_line("rtr", self.rtr, n, positive=True))
        object.__setattr__(self, "cl", _per_line("cl", self.cl, n, positive=False))
        require_nonnegative("cct", self.cct)
        require_nonnegative("km", self.km)
        if self.km >= 1.0:
            raise ParameterError(f"km must be < 1, got {self.km}")
        if not isinstance(self.coupling_range, int) or self.coupling_range < 1:
            raise ParameterError(
                f"coupling_range must be a positive integer, "
                f"got {self.coupling_range!r}"
            )
        for name in ("cct_decay", "km_decay"):
            value = getattr(self, name)
            require_nonnegative(name, value)
            if value > 1.0:
                raise ParameterError(f"{name} must be <= 1, got {value}")
        require_positive("rtr_shield", self.rtr_shield)
        shields = tuple(self.shields)
        if len(set(shields)) != len(shields):
            raise ParameterError(f"duplicate shield slots: {shields}")
        n_physical = self.n_lines + len(shields)
        for slot in shields:
            if not isinstance(slot, int) or not 0 <= slot < n_physical:
                raise ParameterError(
                    f"shield slot must be an integer in [0, {n_physical}), "
                    f"got {slot!r}"
                )
        object.__setattr__(self, "shields", tuple(sorted(shields)))
        if self.shield_rlc is not None:
            rt_s, lt_s, ct_s = self.shield_rlc
            require_nonnegative("shield_rlc[rt]", rt_s)
            require_positive("shield_rlc[lt]", lt_s)
            require_positive("shield_rlc[ct]", ct_s)
            object.__setattr__(
                self, "shield_rlc", (float(rt_s), float(lt_s), float(ct_s))
            )

    # -- geometry ------------------------------------------------------------

    @property
    def n_physical(self) -> int:
        """Total parallel tracks: signal lines plus shields."""
        return self.n_lines + len(self.shields)

    @property
    def signal_slots(self) -> tuple[int, ...]:
        """Physical slot of each signal line, in line order."""
        shield_set = set(self.shields)
        return tuple(
            slot for slot in range(self.n_physical) if slot not in shield_set
        )

    def slot_of_line(self, line: int) -> int:
        """Physical slot occupied by signal line ``line``."""
        return self.signal_slots[_check_line(line, self.n_lines)]

    def is_shield_slot(self, slot: int) -> bool:
        """True when physical slot ``slot`` carries a grounded shield."""
        return slot in set(self.shields)

    def with_shields(self, shields: Sequence[int]) -> "BusSpec":
        """The same bus with a different set of shield slots."""
        from dataclasses import replace

        return replace(self, shields=tuple(shields))

    # -- per-slot electricals ------------------------------------------------

    def slot_rlc(self, slot: int) -> tuple[float, float, float]:
        """``(rt, lt, ct)`` totals of the line in physical slot ``slot``."""
        if self.is_shield_slot(slot):
            if self.shield_rlc is not None:
                return self.shield_rlc
            n = self.n_lines
            return (
                sum(self.rt) / n,
                sum(self.lt) / n,
                sum(self.ct) / n,
            )
        line = self.signal_slots.index(slot)
        return (self.rt[line], self.lt[line], self.ct[line])

    def coupled_pairs(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(slot_p, slot_q, separation)`` for every in-range pair.

        Pairs are ordered ``slot_p < slot_q`` with separation up to
        :attr:`coupling_range`; strengths are *not* filtered here (use
        :meth:`coupling_terms` for that).
        """
        for p in range(self.n_physical):
            for s in range(1, self.coupling_range + 1):
                q = p + s
                if q >= self.n_physical:
                    break
                yield (p, q, s)

    def cct_decay_factor(self, separation: int) -> float:
        """Geometric decay multiplier of the coupling capacitance.

        1 for adjacent slots, ``cct_decay ** (separation - 1)`` beyond.
        """
        return self.cct_decay ** (separation - 1) if separation > 1 else 1.0

    def km_at(self, separation: int) -> float:
        """Inductive coupling coefficient at a given slot separation."""
        return self.km * (
            self.km_decay ** (separation - 1) if separation > 1 else 1.0
        )

    def coupling_terms(self) -> Iterator[tuple[int, int, float, float]]:
        """Yield ``(slot_p, slot_q, cct_pq, km_pq)`` for coupled pairs.

        Pairs are ordered ``slot_p < slot_q`` with separation up to
        :attr:`coupling_range`; zero-strength terms are skipped.
        """
        for p, q, s in self.coupled_pairs():
            cct_pq = self.cct * self.cct_decay_factor(s)
            km_pq = self.km_at(s)
            if cct_pq > 0.0 or km_pq > 0.0:
                yield (p, q, cct_pq, km_pq)

    # -- node naming ---------------------------------------------------------

    def slot_prefix(self, slot: int) -> str:
        """Canonical node-name prefix for physical slot ``slot``."""
        return f"b{slot}_"

    def input_node(self, line: int) -> str:
        """Near-end (driver-side) node name of signal line ``line``."""
        return f"{self.slot_prefix(self.slot_of_line(line))}0"

    def output_node(self, line: int) -> str:
        """Far-end node name of signal line ``line``."""
        return f"{self.slot_prefix(self.slot_of_line(line))}{self.n_segments}"

    def normalized_pattern(self, pattern) -> tuple[LineSwitch, ...]:
        """Validate/broadcast a switching pattern for this bus."""
        return _normalize_pattern(pattern, self.n_lines)
