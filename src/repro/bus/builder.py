"""Materialize a :class:`~repro.bus.spec.BusSpec` as a netlist.

The generated circuit is ``n_physical`` parallel PI ladders (one per
track, shields included) with distributed coupling capacitances and
segmentwise mutual inductances between every coupled slot pair, all
expressed with the primitive elements of :mod:`repro.spice.netlist` --
so MNA assembly stays on the backend-neutral COO-triplet path and every
:class:`~repro.spice.backend.SimulationBackend` (dense / sparse /
banded) can serve the resulting system.

One materializer emits both flavors of the bus:

- :func:`build_bus_circuit` -- the concrete netlist for one parameter
  point (unchanged public behavior), and
- :func:`build_bus_template` -- a
  :class:`~repro.spice.mna.CircuitTemplate` whose electrical values
  (``rt``/``lt``/``ct``/``cct``/``rtr``/``cl``) are
  :class:`~repro.spice.netlist.Param` slots, for the stamp-once /
  re-value-many batch analyses.  Both paths walk the same element loop,
  so they cannot drift structurally; the equivalence suite additionally
  pins ``template.bind(values)`` against the concrete builder.

Node naming (prefix ``P`` is :meth:`BusSpec.slot_prefix`, default
``b{slot}_``): driver source node ``inP``, ladder nodes ``P0 .. Pn``,
internal R-L split nodes ``xP1 .. xPn``.  The two-line wrapper in
:mod:`repro.spice.coupled` overrides the prefixes to the legacy
``a`` / ``v`` names.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.bus.spec import BusSpec, LineSwitch
from repro.errors import ParameterError
from repro.spice.mna import CircuitTemplate
from repro.spice.netlist import Circuit, Param, Step

__all__ = ["build_bus_circuit", "build_bus_template", "switch_waveform"]


def switch_waveform(switch: LineSwitch | str, v_step: float = 1.0) -> Step:
    """Driver waveform for one line's switching behaviour.

    ``rise``/``fall`` are ideal steps at ``t = 0`` between 0 and
    ``v_step``; ``quiet``/``high`` hold 0 / ``v_step`` throughout.
    """
    switch = LineSwitch(switch)
    if switch is LineSwitch.RISE:
        return Step(0.0, v_step)
    if switch is LineSwitch.FALL:
        return Step(v_step, 0.0)
    if switch is LineSwitch.QUIET:
        return Step(0.0, 0.0)
    return Step(v_step, v_step)


def _pi_weights(n: int) -> list[float]:
    """Per-node PI capacitance weights: half segments at both ends."""
    weights = [1.0] * (n + 1)
    weights[0] = 0.5
    weights[n] = 0.5
    return weights


def _checked_prefixes(spec: BusSpec, prefixes) -> list[str]:
    """Default or validate the per-slot node-name prefixes."""
    n_physical = spec.n_physical
    if prefixes is None:
        return [spec.slot_prefix(slot) for slot in range(n_physical)]
    prefixes = list(prefixes)
    if len(prefixes) != n_physical or len(set(prefixes)) != n_physical:
        raise ParameterError(
            f"prefixes must be {n_physical} distinct strings, "
            f"got {prefixes!r}"
        )
    return prefixes


def _is_nonzero(value) -> bool:
    """True for a Param (always a live slot) or a nonzero number."""
    return isinstance(value, Param) or value > 0.0


def _materialize_bus(
    spec: BusSpec,
    switches: tuple[LineSwitch, ...],
    v_step: float,
    prefixes,
    title: str | None,
    parametric: bool,
) -> Circuit:
    """Shared element loop behind the concrete and template builders.

    In ``parametric`` mode the uniform electrical values are emitted as
    :class:`~repro.spice.netlist.Param` slots (shield tracks follow the
    line parameters unless an explicit ``shield_rlc`` pins them); in
    concrete mode the element values come straight from the spec, and
    zero-valued shunts/couplings are skipped as always.
    """
    n = spec.n_segments
    n_physical = spec.n_physical
    prefixes = _checked_prefixes(spec, prefixes)
    if title is None:
        kind = "bus template" if parametric else "bus"
        title = (
            f"{kind} n_lines={spec.n_lines} shields={len(spec.shields)} "
            f"n={n} (Cc={spec.cct:g}, km={spec.km:g}, "
            f"pattern={'/'.join(s.value for s in switches)})"
        )

    if parametric:
        def line_rtr(line: int):
            return Param("rtr")

        def line_cl(line: int):
            return Param("cl")

        def slot_rlc(slot: int):
            if spec.is_shield_slot(slot) and spec.shield_rlc is not None:
                return spec.shield_rlc
            return (Param("rt"), Param("lt"), Param("ct"))

        def pair_cct(separation: int):
            decay = spec.cct_decay_factor(separation)
            return Param("cct", decay) if decay > 0.0 else 0.0
    else:
        def line_rtr(line: int):
            return spec.rtr[line]

        def line_cl(line: int):
            return spec.cl[line]

        def slot_rlc(slot: int):
            return spec.slot_rlc(slot)

        def pair_cct(separation: int):
            return spec.cct * spec.cct_decay_factor(separation)

    ckt = Circuit(title)
    weights = _pi_weights(n)
    shield_set = set(spec.shields)

    # Drivers first (legacy element order: sources, then ladders).
    for line, slot in enumerate(spec.signal_slots):
        p = prefixes[slot]
        ckt.add_voltage_source(
            f"vin{p}", f"in{p}", "0", switch_waveform(switches[line], v_step)
        )
        ckt.add_resistor(f"rtr{p}", f"in{p}", f"{p}0", line_rtr(line))
    for slot in sorted(shield_set):
        p = prefixes[slot]
        ckt.add_resistor(f"rsh{p}", f"{p}0", "0", spec.rtr_shield)

    # Per-track PI ladders: series R-L branches, then shunt caps.
    for slot in range(n_physical):
        p = prefixes[slot]
        rt, lt, _ = slot_rlc(slot)
        r_seg = rt / n
        l_seg = lt / n
        for i in range(n):
            ckt.add_resistor(f"r{p}{i + 1}", f"{p}{i}", f"x{p}{i + 1}", r_seg)
            ckt.add_inductor(f"l{p}{i + 1}", f"x{p}{i + 1}", f"{p}{i + 1}", l_seg)
    for i, w in enumerate(weights):
        for slot in range(n_physical):
            p = prefixes[slot]
            c_seg = slot_rlc(slot)[2] / n
            ckt.add_capacitor(f"cg{p}{i}", f"{p}{i}", "0", w * c_seg)

    # Coupling: distributed caps with PI weights, segmentwise mutuals.
    for slot_p, slot_q, s in spec.coupled_pairs():
        cct_pq = pair_cct(s)
        km_pq = spec.km_at(s)
        p, q = prefixes[slot_p], prefixes[slot_q]
        if _is_nonzero(cct_pq):
            cc_seg = cct_pq / n
            for i, w in enumerate(weights):
                ckt.add_capacitor(
                    f"cc{p}{q}{i}", f"{p}{i}", f"{q}{i}", w * cc_seg
                )
        if km_pq > 0.0:
            for i in range(1, n + 1):
                ckt.add_mutual_inductance(
                    f"k{p}{q}{i}", f"l{p}{i}", f"l{q}{i}", km_pq
                )

    # Loads and shield far-end ties.
    for line, slot in enumerate(spec.signal_slots):
        cl = line_cl(line)
        if _is_nonzero(cl):
            p = prefixes[slot]
            ckt.add_capacitor(f"cl{p}", f"{p}{n}", "0", cl)
    if spec.shield_grounded_far:
        for slot in sorted(shield_set):
            p = prefixes[slot]
            ckt.add_resistor(f"rshf{p}", f"{p}{n}", "0", spec.rtr_shield)
    return ckt


def build_bus_circuit(
    spec: BusSpec,
    pattern=LineSwitch.RISE,
    v_step: float = 1.0,
    prefixes: Sequence[str] | None = None,
    title: str | None = None,
) -> Circuit:
    """Build the coupled-bus netlist for one switching pattern.

    Parameters
    ----------
    spec:
        The bus instance (lines, coupling, shields).
    pattern:
        Per-signal-line switching behaviour: a sequence of
        :class:`~repro.bus.spec.LineSwitch` (or their string values),
        or a single switch broadcast to every line.  Defaults to the
        even mode (all lines rise).
    v_step:
        Driver swing (V).
    prefixes:
        Optional per-physical-slot node-name prefixes (length
        ``spec.n_physical``); defaults to ``b{slot}_``.  Used by the
        legacy two-line wrapper to keep its historical ``a``/``v``
        names.
    title:
        Circuit title override.
    """
    switches = spec.normalized_pattern(pattern)
    return _materialize_bus(
        spec, switches, v_step, prefixes, title, parametric=False
    )


def _require_uniform(spec: BusSpec) -> None:
    nonuniform = [
        name
        for name in ("rt", "lt", "ct", "rtr", "cl")
        if len(set(getattr(spec, name))) != 1
    ]
    if nonuniform:
        raise ParameterError(
            f"bus templates need uniform per-line values; {nonuniform} "
            "vary across lines -- use build_bus_circuit for that spec"
        )


@lru_cache(maxsize=16)
def _cached_bus_template(
    spec: BusSpec,
    switches: tuple[LineSwitch, ...],
    v_step: float,
    prefixes: tuple[str, ...] | None,
) -> CircuitTemplate:
    circuit = _materialize_bus(
        spec, switches, v_step, prefixes, None, parametric=True
    )
    defaults = {
        "rt": spec.rt[0],
        "lt": spec.lt[0],
        "ct": spec.ct[0],
        "cct": spec.cct,
        "rtr": spec.rtr[0],
        "cl": spec.cl[0],
    }
    # A degenerate layout can drop slots entirely (e.g. a single track
    # has no coupling pairs, hence no "cct" Param); keep only defaults
    # whose slot actually exists in the materialized circuit.
    present = set(circuit.parameter_names())
    return CircuitTemplate(
        circuit,
        defaults={k: v for k, v in defaults.items() if k in present},
    )


def build_bus_template(
    spec: BusSpec,
    pattern=LineSwitch.RISE,
    v_step: float = 1.0,
    prefixes: Sequence[str] | None = None,
) -> CircuitTemplate:
    """Parameterized bus: structure fixed, electrical values as Params.

    The stamp-once / re-value-many view of :func:`build_bus_circuit`
    for *uniform* buses (every signal line sharing one ``rt``, ``lt``,
    ``ct``, ``rtr`` and ``cl``).  Parameter slots are ``rt``, ``lt``,
    ``ct``, ``cct``, ``rtr`` and ``cl``, with the spec's own values as
    defaults, so ``build_bus_template(spec).bind()`` reproduces
    ``build_bus_circuit(spec)`` element for element.  Shield tracks
    follow the line parameters (same metal layer) unless the spec pins
    an explicit ``shield_rlc``; the switching pattern, shield layout,
    coupling range/decay and ``km`` stay structural.

    Non-uniform specs raise :class:`~repro.errors.ParameterError` --
    per-line variation is a structural difference, use the concrete
    builder for those.

    Templates are memoized per ``(spec, pattern, v_step, prefixes)``,
    so repeated calls (one per sweep chunk, say) share one cached MNA
    structure.
    """
    switches = spec.normalized_pattern(pattern)
    _require_uniform(spec)
    prefixes = tuple(prefixes) if prefixes is not None else None
    return _cached_bus_template(spec, switches, float(v_step), prefixes)
