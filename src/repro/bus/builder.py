"""Materialize a :class:`~repro.bus.spec.BusSpec` as a netlist.

The generated circuit is ``n_physical`` parallel PI ladders (one per
track, shields included) with distributed coupling capacitances and
segmentwise mutual inductances between every coupled slot pair, all
expressed with the primitive elements of :mod:`repro.spice.netlist` --
so MNA assembly stays on the backend-neutral COO-triplet path and every
:class:`~repro.spice.backend.SimulationBackend` (dense / sparse /
banded) can serve the resulting system.

Node naming (prefix ``P`` is :meth:`BusSpec.slot_prefix`, default
``b{slot}_``): driver source node ``inP``, ladder nodes ``P0 .. Pn``,
internal R-L split nodes ``xP1 .. xPn``.  The two-line wrapper in
:mod:`repro.spice.coupled` overrides the prefixes to the legacy
``a`` / ``v`` names.
"""

from __future__ import annotations

from typing import Sequence

from repro.bus.spec import BusSpec, LineSwitch
from repro.errors import ParameterError
from repro.spice.netlist import Circuit, Step

__all__ = ["build_bus_circuit", "switch_waveform"]


def switch_waveform(switch: LineSwitch | str, v_step: float = 1.0) -> Step:
    """Driver waveform for one line's switching behaviour.

    ``rise``/``fall`` are ideal steps at ``t = 0`` between 0 and
    ``v_step``; ``quiet``/``high`` hold 0 / ``v_step`` throughout.
    """
    switch = LineSwitch(switch)
    if switch is LineSwitch.RISE:
        return Step(0.0, v_step)
    if switch is LineSwitch.FALL:
        return Step(v_step, 0.0)
    if switch is LineSwitch.QUIET:
        return Step(0.0, 0.0)
    return Step(v_step, v_step)


def _pi_weights(n: int) -> list[float]:
    """Per-node PI capacitance weights: half segments at both ends."""
    weights = [1.0] * (n + 1)
    weights[0] = 0.5
    weights[n] = 0.5
    return weights


def build_bus_circuit(
    spec: BusSpec,
    pattern=LineSwitch.RISE,
    v_step: float = 1.0,
    prefixes: Sequence[str] | None = None,
    title: str | None = None,
) -> Circuit:
    """Build the coupled-bus netlist for one switching pattern.

    Parameters
    ----------
    spec:
        The bus instance (lines, coupling, shields).
    pattern:
        Per-signal-line switching behaviour: a sequence of
        :class:`~repro.bus.spec.LineSwitch` (or their string values),
        or a single switch broadcast to every line.  Defaults to the
        even mode (all lines rise).
    v_step:
        Driver swing (V).
    prefixes:
        Optional per-physical-slot node-name prefixes (length
        ``spec.n_physical``); defaults to ``b{slot}_``.  Used by the
        legacy two-line wrapper to keep its historical ``a``/``v``
        names.
    title:
        Circuit title override.
    """
    switches = spec.normalized_pattern(pattern)
    n = spec.n_segments
    n_physical = spec.n_physical
    if prefixes is None:
        prefixes = [spec.slot_prefix(slot) for slot in range(n_physical)]
    else:
        prefixes = list(prefixes)
        if len(prefixes) != n_physical or len(set(prefixes)) != n_physical:
            raise ParameterError(
                f"prefixes must be {n_physical} distinct strings, "
                f"got {prefixes!r}"
            )
    if title is None:
        title = (
            f"bus n_lines={spec.n_lines} shields={len(spec.shields)} "
            f"n={n} (Cc={spec.cct:g}, km={spec.km:g}, "
            f"pattern={'/'.join(s.value for s in switches)})"
        )
    ckt = Circuit(title)
    weights = _pi_weights(n)
    shield_set = set(spec.shields)

    # Drivers first (legacy element order: sources, then ladders).
    for line, slot in enumerate(spec.signal_slots):
        p = prefixes[slot]
        ckt.add_voltage_source(
            f"vin{p}", f"in{p}", "0", switch_waveform(switches[line], v_step)
        )
        ckt.add_resistor(f"rtr{p}", f"in{p}", f"{p}0", spec.rtr[line])
    for slot in sorted(shield_set):
        p = prefixes[slot]
        ckt.add_resistor(f"rsh{p}", f"{p}0", "0", spec.rtr_shield)

    # Per-track PI ladders: series R-L branches, then shunt caps.
    for slot in range(n_physical):
        p = prefixes[slot]
        rt, lt, _ = spec.slot_rlc(slot)
        r_seg = rt / n
        l_seg = lt / n
        for i in range(n):
            ckt.add_resistor(f"r{p}{i + 1}", f"{p}{i}", f"x{p}{i + 1}", r_seg)
            ckt.add_inductor(f"l{p}{i + 1}", f"x{p}{i + 1}", f"{p}{i + 1}", l_seg)
    for i, w in enumerate(weights):
        for slot in range(n_physical):
            p = prefixes[slot]
            c_seg = spec.slot_rlc(slot)[2] / n
            ckt.add_capacitor(f"cg{p}{i}", f"{p}{i}", "0", w * c_seg)

    # Coupling: distributed caps with PI weights, segmentwise mutuals.
    for slot_p, slot_q, cct_pq, km_pq in spec.coupling_terms():
        p, q = prefixes[slot_p], prefixes[slot_q]
        if cct_pq > 0.0:
            cc_seg = cct_pq / n
            for i, w in enumerate(weights):
                ckt.add_capacitor(
                    f"cc{p}{q}{i}", f"{p}{i}", f"{q}{i}", w * cc_seg
                )
        if km_pq > 0.0:
            for i in range(1, n + 1):
                ckt.add_mutual_inductance(
                    f"k{p}{q}{i}", f"l{p}{i}", f"l{q}{i}", km_pq
                )

    # Loads and shield far-end ties.
    for line, slot in enumerate(spec.signal_slots):
        if spec.cl[line] > 0:
            p = prefixes[slot]
            ckt.add_capacitor(f"cl{p}", f"{p}{n}", "0", spec.cl[line])
    if spec.shield_grounded_far:
        for slot in sorted(shield_set):
            p = prefixes[slot]
            ckt.add_resistor(f"rshf{p}", f"{p}{n}", "0", spec.rtr_shield)
    return ckt
