"""repro.bus -- N-line coupled bus structures with shield insertion.

The paper's wide upper-metal wires never run alone: a realistic workload
is a multi-bit *bus* whose lines couple capacitively (sidewall ``Cc``)
and magnetically (mutual inductance ``km``) to their neighbors.  This
subpackage generalizes the two-conductor ladder of
:mod:`repro.spice.coupled` into an arbitrary N-line bus:

- :mod:`repro.bus.spec` -- :class:`BusSpec`: per-line RLC totals,
  nearest-neighbor and configurable-range coupling with separation
  decay, per-line drivers/loads, per-line switching patterns
  (:class:`LineSwitch`: rise / fall / quiet / high) and grounded
  **shield** lines insertable at arbitrary physical positions -- the
  classic countermeasure studied by Mishra et al. for inductively
  coupled interconnect;
- :mod:`repro.bus.builder` -- :func:`build_bus_circuit`: materializes a
  spec + pattern as a :class:`~repro.spice.netlist.Circuit`, assembled
  through the backend-neutral COO MNA path so all three
  :class:`~repro.spice.backend.SimulationBackend` implementations
  (dense / sparse / banded) serve bus transients; and
  :func:`build_bus_template`: the same netlist with its electrical
  values (``rt``/``lt``/``ct``/``cct``/``rtr``/``cl``) as
  :class:`~repro.spice.netlist.Param` slots, feeding the batched
  stamp-once / re-value-many analyses
  (:func:`~repro.spice.transient.simulate_transient_batch`,
  :func:`~repro.spice.ac.ac_sweep_batch`).

Higher-level bus *metrics* (victim noise, worst-pattern delay push-out,
settling, shield-count trade-offs) live in :mod:`repro.analysis.bus`;
the crosstalk-aware repeater stage is in :mod:`repro.core.repeater`.

Quickstart
----------
>>> from repro.bus import BusSpec, build_bus_circuit, odd_pattern
>>> spec = BusSpec(n_lines=4, rt=100.0, lt=2e-8, ct=1e-12, cct=4e-13,
...                km=0.4, rtr=50.0, n_segments=8, shields=(2,))
>>> ckt = build_bus_circuit(spec, odd_pattern(4, victim=1))
>>> len(ckt) > 0
True
"""

from repro.bus.spec import (
    BusSpec,
    LineSwitch,
    even_pattern,
    odd_pattern,
    quiet_victim_pattern,
    solo_pattern,
)
from repro.bus.builder import build_bus_circuit, build_bus_template

__all__ = [
    "BusSpec",
    "LineSwitch",
    "build_bus_circuit",
    "build_bus_template",
    "even_pattern",
    "odd_pattern",
    "quiet_victim_pattern",
    "solo_pattern",
]
