"""Bus-level crosstalk metrics: noise, delay push-out, shield trade-offs.

Generalizes :mod:`repro.analysis.crosstalk` from the aggressor/victim
pair to an N-line bus (:mod:`repro.bus`).  One transient simulation of
the full bus yields *every* line's far-end waveform at once; the
metrics here operate on that ``(n_times, n_lines)`` matrix with
vectorized NumPy reductions (no per-line Python loops):

- **victim noise**: the quiet victim's far-end excursion while every
  neighbor switches -- positive peaks are the capacitive signature,
  negative dips the inductive one;
- **worst-pattern delay push-out**: the victim's 50% delay under the
  solo / even / odd switching patterns; on RC-dominated buses odd
  switching Miller-doubles the coupling capacitance (slowest), on
  inductance-dominated buses the loop inductance ``L*(1 - km)`` makes
  odd *fastest* -- the same regime flip the two-line study shows;
- **eye/settling metrics**: overshoot and 5% settling time of the
  victim under its worst pattern;
- **shield trade-off curves**: the same metrics as grounded shields are
  inserted (:func:`shield_tradeoff`), trading wiring tracks for noise.

All voltages are normalized to the driver swing ``v_step``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bus.builder import build_bus_circuit
from repro.bus.spec import (
    BusSpec,
    LineSwitch,
    even_pattern,
    odd_pattern,
    quiet_victim_pattern,
    solo_pattern,
)
from repro.errors import AnalysisError, ParameterError
from repro.spice.transient import simulate_transient
from repro.tline.waveform import Waveform, settling_time

__all__ = [
    "BusWaveforms",
    "BusReport",
    "simulate_bus",
    "analyze_bus",
    "batch_delay_50",
    "evenly_spread_shields",
    "shield_tradeoff",
]


def batch_delay_50(
    times: np.ndarray,
    voltages: np.ndarray,
    v_step: float = 1.0,
    rising=True,
) -> np.ndarray:
    """Vectorized 50% crossing times of many waveforms at once.

    Parameters
    ----------
    times:
        Shared time grid, shape ``(n_times,)``.
    voltages:
        One column per waveform, shape ``(n_times, n_columns)``.
    v_step:
        Full swing; the threshold is ``v_step / 2``.
    rising:
        Scalar or per-column booleans: detect upward (True) or downward
        crossings.  Columns that never cross get ``nan`` (quiet lines).

    Matches :func:`repro.tline.waveform.first_crossing` semantics: a
    crossing requires an actual transition through the level, linearly
    interpolated between the bracketing samples.
    """
    times = np.asarray(times, dtype=float)
    voltages = np.asarray(voltages, dtype=float)
    if voltages.ndim != 2 or voltages.shape[0] != times.size:
        raise ParameterError(
            f"voltages must be (n_times, n_columns) with n_times = "
            f"{times.size}, got {voltages.shape}"
        )
    n_cols = voltages.shape[1]
    rising = np.broadcast_to(np.asarray(rising, dtype=bool), (n_cols,))
    level = 0.5 * v_step
    satisfied = np.where(rising, voltages >= level, voltages <= level)
    transitions = satisfied[1:] & ~satisfied[:-1]
    has_crossing = transitions.any(axis=0)
    first = transitions.argmax(axis=0)
    cols = np.arange(n_cols)
    v0 = voltages[first, cols]
    v1 = voltages[first + 1, cols]
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = (level - v0) / (v1 - v0)
    t_cross = times[first] + frac * (times[first + 1] - times[first])
    return np.where(has_crossing, t_cross, math.nan)


@dataclass(frozen=True)
class BusWaveforms:
    """Far-end waveforms of every signal line from one bus transient.

    Attributes
    ----------
    spec, pattern:
        The simulated bus and per-line switching pattern.
    times:
        Simulation grid, shape ``(n_times,)``.
    voltages:
        Far-end node voltages, shape ``(n_times, n_lines)`` -- one
        column per *signal* line (shields are simulated but not
        reported; they are grounded).
    v_step:
        Driver swing used for the simulation.
    """

    spec: BusSpec
    pattern: tuple[LineSwitch, ...]
    times: np.ndarray
    voltages: np.ndarray
    v_step: float

    def waveform(self, line: int) -> Waveform:
        """Far-end :class:`~repro.tline.waveform.Waveform` of one line."""
        return Waveform(self.times, self.voltages[:, line].copy())

    def delays_50(self) -> np.ndarray:
        """Vectorized per-line 50% delays (``nan`` for quiet lines).

        Rising lines are measured on the upward crossing of
        ``v_step/2``, falling lines on the downward one.
        """
        rising = np.array(
            [switch is LineSwitch.RISE for switch in self.pattern]
        )
        switching = np.array(
            [
                switch in (LineSwitch.RISE, LineSwitch.FALL)
                for switch in self.pattern
            ]
        )
        delays = batch_delay_50(
            self.times, self.voltages, v_step=self.v_step, rising=rising
        )
        return np.where(switching, delays, math.nan)


def _default_window(spec: BusSpec) -> float:
    """Simulated span: 12x the slowest RC / flight scale over the lines.

    Mirrors :func:`repro.analysis.crosstalk.analyze_crosstalk`; the
    coupling capacitance (up to two switching neighbors) is charged
    through the same driver, so it joins the RC scale.
    """
    scales = []
    for line in range(spec.n_lines):
        c_total = spec.ct[line] + 2.0 * spec.cct + spec.cl[line]
        rc_scale = (spec.rtr[line] + spec.rt[line]) * c_total
        flight = math.sqrt(spec.lt[line] * (spec.ct[line] + 2.0 * spec.cct))
        scales.append(max(rc_scale, flight))
    return 12.0 * max(scales)


def simulate_bus(
    spec: BusSpec,
    pattern=LineSwitch.RISE,
    window: float | None = None,
    dt: float | None = None,
    backend: str = "auto",
    v_step: float = 1.0,
) -> BusWaveforms:
    """Transient-simulate the bus and collect all far-end waveforms.

    Parameters
    ----------
    spec:
        The bus instance.
    pattern:
        Per-line switching pattern (see
        :func:`~repro.bus.builder.build_bus_circuit`).
    window:
        Simulated span (defaults to 12x the slowest per-line RC/flight
        time scale).
    dt:
        Time step (defaults to ``window / 6000``).
    backend:
        MNA linear-solver backend; large buses resolve to the sparse
        or RCM-banded path under ``"auto"``.
    v_step:
        Driver swing (V).
    """
    switches = spec.normalized_pattern(pattern)
    if window is None:
        window = _default_window(spec)
    if dt is None:
        dt = window / 6000.0
    if window <= 0 or dt <= 0:
        raise ParameterError("window and dt must be positive")
    circuit = build_bus_circuit(spec, switches, v_step=v_step)
    result = simulate_transient(circuit, t_stop=window, dt=dt, backend=backend)
    rows = [
        result.system.voltage_row(spec.output_node(line))
        for line in range(spec.n_lines)
    ]
    voltages = result.states[:, rows]
    return BusWaveforms(
        spec=spec,
        pattern=switches,
        times=result.times,
        voltages=voltages,
        v_step=v_step,
    )


@dataclass(frozen=True)
class BusReport:
    """Simulation-measured coupling metrics for one bus victim.

    All voltages are normalized to the driver swing.

    Attributes
    ----------
    victim:
        The measured signal line.
    n_shields:
        Shield count of the simulated spec (the trade-off axis).
    victim_peak_noise, victim_min_noise:
        Largest positive / most negative quiet-victim far-end
        excursion while every neighbor rises (capacitive / inductive
        signatures).
    delay_solo, delay_even, delay_odd:
        Victim 50% delay switching alone, with all lines (even), and
        against all lines (odd).
    settling_time_worst:
        5% settling time of the victim under its worst pattern
        (``nan`` when the window ends before settling).
    overshoot_worst:
        Fractional victim overshoot under the worst pattern.
    """

    victim: int
    n_shields: int
    victim_peak_noise: float
    victim_min_noise: float
    delay_solo: float
    delay_even: float
    delay_odd: float
    settling_time_worst: float
    overshoot_worst: float

    @property
    def worst_pattern(self) -> str:
        """Which switching pattern maximizes the victim delay."""
        return "odd" if self.delay_odd >= self.delay_even else "even"

    @property
    def worst_delay(self) -> float:
        """Victim 50% delay under the worst switching pattern."""
        return max(self.delay_even, self.delay_odd)

    @property
    def delay_push_out(self) -> float:
        """Worst-pattern delay increase over solo switching, fractional."""
        return (self.worst_delay - self.delay_solo) / self.delay_solo

    @property
    def delay_spread(self) -> float:
        """Odd-to-even switching window as a fraction of the solo delay."""
        return (self.delay_odd - self.delay_even) / self.delay_solo

    @property
    def worst_noise_magnitude(self) -> float:
        """Larger of the positive / negative victim excursions."""
        return max(self.victim_peak_noise, abs(self.victim_min_noise))


def analyze_bus(
    spec: BusSpec,
    victim: int | None = None,
    window: float | None = None,
    dt: float | None = None,
    backend: str = "auto",
) -> BusReport:
    """Measure noise and switching-delay metrics for one bus victim.

    Runs four transients (quiet-victim noise, solo, even, odd) and
    reduces each waveform matrix with the vectorized metrics above.

    Parameters
    ----------
    spec:
        The bus instance (shields included, if any).
    victim:
        Measured line; defaults to the middle line (worst coupled).
    window, dt, backend:
        Forwarded to :func:`simulate_bus`.

    >>> spec = BusSpec(n_lines=3, rt=100.0, lt=25e-9, ct=2e-12,
    ...     cct=1e-12, km=0.5, rtr=50.0, cl=5e-14, n_segments=8)
    >>> report = analyze_bus(spec)
    >>> report.worst_noise_magnitude > 0.05
    True
    """
    if victim is None:
        victim = spec.n_lines // 2
    else:
        if not isinstance(victim, int) or not 0 <= victim < spec.n_lines:
            raise ParameterError(
                f"victim must be a line index in [0, {spec.n_lines}), "
                f"got {victim!r}"
            )
    if window is None:
        window = _default_window(spec)

    def run(pattern) -> BusWaveforms:
        return simulate_bus(
            spec, pattern, window=window, dt=dt, backend=backend
        )

    n = spec.n_lines
    noise = run(quiet_victim_pattern(n, victim))
    solo = run(solo_pattern(n, victim))
    even = run(even_pattern(n))
    odd = run(odd_pattern(n, victim))

    delay_solo = float(solo.delays_50()[victim])
    delay_even = float(even.delays_50()[victim])
    delay_odd = float(odd.delays_50()[victim])
    worst = odd if delay_odd >= delay_even else even
    victim_wave = worst.voltages[:, victim]
    try:
        settle = settling_time(worst.times, victim_wave, v_final=1.0)
    except AnalysisError:
        settle = math.nan
    return BusReport(
        victim=victim,
        n_shields=len(spec.shields),
        victim_peak_noise=float(np.max(noise.voltages[:, victim])),
        victim_min_noise=float(np.min(noise.voltages[:, victim])),
        delay_solo=delay_solo,
        delay_even=delay_even,
        delay_odd=delay_odd,
        settling_time_worst=settle,
        overshoot_worst=max(0.0, float(np.max(victim_wave)) - 1.0),
    )


def evenly_spread_shields(n_lines: int, n_shields: int) -> tuple[int, ...]:
    """Physical slots that spread ``n_shields`` evenly through the bus.

    The signal lines are split into ``n_shields + 1`` contiguous groups
    whose sizes differ by at most one, and one shield slot sits between
    consecutive groups -- the standard layout of the shield-insertion
    literature (one shield every ``n/(s+1)`` signals).

    >>> evenly_spread_shields(8, 1)
    (4,)
    >>> evenly_spread_shields(8, 3)
    (2, 5, 8)
    """
    if not isinstance(n_lines, int) or n_lines < 1:
        raise ParameterError(f"n_lines must be a positive integer, got {n_lines!r}")
    if not isinstance(n_shields, int) or n_shields < 0:
        raise ParameterError(
            f"n_shields must be a non-negative integer, got {n_shields!r}"
        )
    if n_shields == 0:
        return ()
    if n_shields > n_lines - 1:
        raise ParameterError(
            f"cannot place {n_shields} shields between {n_lines} lines"
        )
    base, extra = divmod(n_lines, n_shields + 1)
    sizes = [base + (1 if g < extra else 0) for g in range(n_shields + 1)]
    slots = []
    position = 0
    for size in sizes[:-1]:
        position += size
        slots.append(position)
        position += 1  # the shield occupies this physical slot
    return tuple(slots)


def shield_tradeoff(
    spec: BusSpec,
    shield_counts=(0, 1, 2),
    victim: int | None = None,
    window: float | None = None,
    dt: float | None = None,
    backend: str = "auto",
) -> list[tuple[BusSpec, BusReport]]:
    """Noise/delay metrics as shields are inserted into the same bus.

    For each count in ``shield_counts`` the shields are spread evenly
    (:func:`evenly_spread_shields`), the bus re-analyzed, and the
    ``(shielded_spec, report)`` pair collected -- the raw material of a
    shield-count trade-off curve (tracks spent vs noise suppressed).
    Any shields already on ``spec`` are replaced.
    """
    results: list[tuple[BusSpec, BusReport]] = []
    for count in shield_counts:
        shielded = spec.with_shields(evenly_spread_shields(spec.n_lines, count))
        report = analyze_bus(
            shielded, victim=victim, window=window, dt=dt, backend=backend
        )
        results.append((shielded, report))
    return results
