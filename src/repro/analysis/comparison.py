"""RC-vs-RLC repeater design comparison engine.

Given one interconnect and one buffer family, build every design of
interest -- Bakoglu's RC optimum, the paper's closed-form RLC optimum,
our eq. 9-based numerical optimum, and (optionally) a simulation-swept
optimum -- and score them all on the same axes: model delay, simulated
delay, repeater area, and switched capacitance.

This is the engine behind the repeater experiments and the
``bus_repeaters`` example; it is also where the reproduction's one
documented deviation is visible (see EXPERIMENTS.md): the paper's
eqs. 14/15 and our independent optimization of the paper's stated
objective disagree on the exact (h, k), while both beat the RC design
and sit within a few percent of the simulated optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.repeater import (
    Buffer,
    RepeaterDesign,
    RepeaterSystem,
    bakoglu_rc_design,
    inductance_time_ratio,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.errors import ParameterError

__all__ = ["DesignComparison", "compare_designs", "simulation_swept_design"]


@dataclass(frozen=True)
class DesignComparison:
    """One design's scorecard.

    ``simulated_delay`` uses integer sections (quantized ``k``); the
    model delay keeps ``k`` continuous, as in the paper's development.
    """

    label: str
    design: RepeaterDesign
    model_delay: float
    simulated_delay: float | None
    area: float
    switched_capacitance: float

    def delay_vs(self, other: "DesignComparison") -> float:
        """Percent simulated-delay increase of *self* over *other*."""
        if self.simulated_delay is None or other.simulated_delay is None:
            raise ParameterError("both comparisons need simulated delays")
        return 100.0 * (self.simulated_delay - other.simulated_delay) / other.simulated_delay

    def area_vs(self, other: "DesignComparison") -> float:
        """Percent area increase of *self* over *other*."""
        return 100.0 * (self.area - other.area) / other.area


def simulation_swept_design(
    line: DriverLineLoad,
    buffer: Buffer,
    k_range: range | None = None,
    h_points: int = 15,
    n_segments: int = 60,
) -> RepeaterDesign:
    """Brute-force simulated optimum over integer ``k`` and an ``h`` grid.

    Centered on the span between the paper's design and Bakoglu's; this
    is the expensive, assumption-free arbiter.
    """
    system = RepeaterSystem(line, buffer)
    rc = bakoglu_rc_design(line, buffer)
    paper = optimal_rlc_design(line, buffer)
    if k_range is None:
        k_lo = max(1, int(0.5 * paper.k))
        k_hi = max(k_lo + 1, int(np.ceil(1.3 * rc.k)))
        k_range = range(k_lo, k_hi + 1)
    h_grid = np.linspace(0.3 * paper.h, 1.3 * rc.h, h_points)
    best: tuple[float, RepeaterDesign] | None = None
    for k in k_range:
        for h in h_grid:
            design = RepeaterDesign(h=float(h), k=float(k))
            t = system.total_delay_simulated(design, n_segments=n_segments)
            if best is None or t < best[0]:
                best = (t, design)
    assert best is not None
    return best[1]


def compare_designs(
    line: DriverLineLoad,
    buffer: Buffer,
    simulate: bool = True,
    include_swept: bool = False,
    n_segments: int = 60,
) -> list[DesignComparison]:
    """Score the standard designs for one line/buffer pair.

    Returns comparisons labeled ``rc-bakoglu``, ``rlc-paper``,
    ``rlc-numerical`` and optionally ``simulation-swept``.
    """
    system = RepeaterSystem(line, buffer)
    designs = [
        ("rc-bakoglu", bakoglu_rc_design(line, buffer)),
        ("rlc-paper", optimal_rlc_design(line, buffer)),
        ("rlc-numerical", numerical_optimal_design(line, buffer)),
    ]
    if include_swept:
        designs.append(
            ("simulation-swept", simulation_swept_design(
                line, buffer, n_segments=n_segments))
        )
    results = []
    for label, design in designs:
        simulated = (
            system.total_delay_simulated(design, n_segments=n_segments)
            if simulate
            else None
        )
        results.append(
            DesignComparison(
                label=label,
                design=design,
                model_delay=system.total_delay(design),
                simulated_delay=simulated,
                area=system.total_area(design),
                switched_capacitance=system.switched_capacitance(design),
            )
        )
    return results
