"""Delay sensitivity to each of the five impedances.

Elasticities ``(param / t_pd) * d(t_pd)/d(param)`` quantify which knob
moves the delay: in the RC regime the delay is degree-2 homogeneous in
``(R, C)`` and insensitive to ``L``; in the LC regime it is degree-1/2 in
``L`` and ``C`` and insensitive to ``R``.  The elasticities therefore
sum to ~2 in the RC limit and ~1 in the LC limit -- a compact signature
of the quadratic-to-linear transition that the test suite asserts.

For the default (closed-form) delay the full central-difference stencil
-- base point plus two perturbations per nonzero impedance -- is
evaluated as one :func:`repro.sweep.kernels.batch_propagation_delay`
call rather than up to eleven scalar evaluations.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.errors import ParameterError

__all__ = ["delay_elasticities"]

_FIELDS = ("rt", "lt", "ct", "rtr", "cl")


def delay_elasticities(
    line: DriverLineLoad,
    relative_step: float = 1e-4,
    delay_function=propagation_delay,
) -> dict[str, float]:
    """Central-difference elasticity of the delay w.r.t. each impedance.

    Parameters with value zero are skipped (elasticity 0 by convention).

    >>> line = DriverLineLoad(rt=1000.0, lt=1e-9, ct=1e-12)
    >>> e = delay_elasticities(line)
    >>> abs(e['rt'] - 1.0) < 0.05 and abs(e['ct'] - 1.0) < 0.05
    True
    """
    if not 0 < relative_step < 0.1:
        raise ParameterError(f"relative_step must be in (0, 0.1), got {relative_step}")
    if delay_function is propagation_delay:
        return _batched_elasticities(line, relative_step)
    base = delay_function(line)
    if base <= 0:
        raise ParameterError("baseline delay must be positive")
    out: dict[str, float] = {}
    for name in _FIELDS:
        value = getattr(line, name)
        if value == 0:
            out[name] = 0.0
            continue
        up = delay_function(replace(line, **{name: value * (1 + relative_step)}))
        down = delay_function(replace(line, **{name: value * (1 - relative_step)}))
        out[name] = (up - down) / (2.0 * relative_step * base)
    return out


def _batched_elasticities(
    line: DriverLineLoad, relative_step: float
) -> dict[str, float]:
    """The whole finite-difference stencil in one batch kernel call."""
    from repro.sweep.kernels import batch_propagation_delay

    active = [name for name in _FIELDS if getattr(line, name) != 0]
    stencil = [{name: getattr(line, name) for name in _FIELDS}]
    for name in active:
        for sign in (1.0, -1.0):
            point = dict(stencil[0])
            point[name] = point[name] * (1 + sign * relative_step)
            stencil.append(point)
    columns = {
        name: np.array([point[name] for point in stencil]) for name in _FIELDS
    }
    delays = batch_propagation_delay(
        columns["rt"], columns["lt"], columns["ct"], columns["rtr"], columns["cl"]
    )
    base = delays[0]
    if base <= 0:
        raise ParameterError("baseline delay must be positive")
    out = {name: 0.0 for name in _FIELDS}
    for i, name in enumerate(active):
        up, down = delays[1 + 2 * i], delays[2 + 2 * i]
        out[name] = float((up - down) / (2.0 * relative_step * base))
    return out
