"""Delay versus wire length: the quadratic-to-linear transition.

Section II's headline observation: an RC line's 50% delay grows as
``0.37*R*C*l**2`` while an LC line's grows as ``sqrt(L*C)*l``; a real RLC
wire moves from the quadratic to the linear regime as inductance effects
strengthen (longer wavefront flight, lower loss).  These helpers sweep
length, fit the local power-law exponent, and locate the crossover.

The default (closed-form) sweep runs through the :mod:`repro.sweep`
engine as a single zipped-axis batch -- ``Rt``, ``Lt`` and ``Ct`` all
scale with the same length column -- so repeated sweeps hit the shared
result cache instead of re-evaluating.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.errors import ParameterError, require_positive
from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.runner import SweepRunner

__all__ = [
    "delay_versus_length",
    "fitted_length_exponent",
    "rc_lc_crossover_length",
]

#: Shared in-memory cache for the closed-form length sweeps; drivers may
#: pass their own runner (e.g. disk-backed) instead.
_DEFAULT_RUNNER = SweepRunner()


def delay_versus_length(
    r: float,
    l: float,
    c: float,
    lengths,
    rtr: float = 0.0,
    cl: float = 0.0,
    delay_function=propagation_delay,
    runner: SweepRunner | None = None,
) -> np.ndarray:
    """Delay at each wire length (per-unit-length parasitics fixed).

    ``delay_function`` maps a :class:`DriverLineLoad` to seconds; pass
    :func:`repro.core.simulate.simulated_delay_50` (or a lambda) to sweep
    with a simulator instead of the closed form.  The default closed
    form is evaluated as one vectorized batch via ``runner`` (a shared
    module-level :class:`~repro.sweep.runner.SweepRunner` when omitted).
    """
    lengths = np.asarray(lengths, dtype=float)
    if np.any(lengths <= 0):
        raise ParameterError("lengths must be positive")
    if delay_function is propagation_delay:
        grid = ParameterGrid(
            (
                Axis("rt", r * lengths),
                Axis("lt", l * lengths),
                Axis("ct", c * lengths),
            )
        )
        sweep = Sweep(
            "propagation_delay",
            grid,
            fixed={"rtr": float(rtr), "cl": float(cl)},
        )
        result = (runner or _DEFAULT_RUNNER).run(sweep)
        return result.output().copy()
    out = np.empty_like(lengths)
    for i, length in enumerate(lengths):
        line = DriverLineLoad.from_per_unit_length(r, l, c, length, rtr=rtr, cl=cl)
        out[i] = delay_function(line)
    return out


def fitted_length_exponent(lengths, delays) -> float:
    """Least-squares slope of ``log(delay)`` vs ``log(length)``.

    2.0 for a pure RC wire, 1.0 for a pure LC wire; a value between
    quantifies how far into the inductive regime the sweep sits.
    """
    lengths = np.asarray(lengths, dtype=float)
    delays = np.asarray(delays, dtype=float)
    if lengths.shape != delays.shape or lengths.size < 2:
        raise ParameterError("need matching arrays of at least 2 points")
    if np.any(lengths <= 0) or np.any(delays <= 0):
        raise ParameterError("lengths and delays must be positive")
    slope, _ = np.polyfit(np.log(lengths), np.log(delays), 1)
    return float(slope)


def rc_lc_crossover_length(r: float, l: float, c: float) -> float:
    """Length where the RC diffusion delay equals the LC time of flight.

    Solves ``0.37*r*c*l**2 = sqrt(l_ind*c)*l``:
    ``l* = sqrt(l_ind/c) / (0.37*r)``.  Below ``l*`` the bare wire is
    flight-limited (linear regime); far above it, diffusion-limited
    (quadratic regime).
    """
    require_positive("r", r)
    require_positive("l", l)
    require_positive("c", c)
    return math.sqrt(l / c) / (0.37 * r)
