"""Technology scaling and the growing cost of ignoring inductance.

The paper's closing argument: ``T_{L/R} = (Lt/Rt)/(R0*C0)`` rises as the
gate time constant ``R0*C0`` shrinks, so every penalty in Section III
worsens with each technology generation.  This study walks the synthetic
node table and evaluates ``T_{L/R}`` and the closed-form delay/area
penalties on a fixed global-wire geometry.

Both penalty columns are evaluated for the whole node table at once via
the :mod:`repro.sweep.kernels` batch kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sweep.kernels import (
    batch_area_increase_percent,
    batch_delay_increase_percent,
)
from repro.technology.nodes import PREDEFINED_NODES, TechnologyNode

__all__ = ["ScalingRow", "scaling_table"]


@dataclass(frozen=True)
class ScalingRow:
    """Penalties for one technology node."""

    node: str
    feature_size: float
    intrinsic_delay: float
    tlr: float
    delay_increase_percent: float
    area_increase_percent: float


def scaling_table(
    nodes: Sequence[TechnologyNode] = PREDEFINED_NODES,
    layer: str = "global",
) -> list[ScalingRow]:
    """Evaluate the scaling trend across the node table.

    >>> rows = scaling_table()
    >>> all(b.tlr >= a.tlr for a, b in zip(rows[1:], rows[2:]))  # Cu nodes
    True
    """
    tlrs = np.array([node.tlr(layer=layer) for node in nodes])
    delay_pcts = batch_delay_increase_percent(tlrs)
    area_pcts = batch_area_increase_percent(tlrs)
    return [
        ScalingRow(
            node=node.name,
            feature_size=node.feature_size,
            intrinsic_delay=node.intrinsic_delay,
            tlr=float(tlr),
            delay_increase_percent=float(delay_pct),
            area_increase_percent=float(area_pct),
        )
        for node, tlr, delay_pct, area_pct in zip(
            nodes, tlrs, delay_pcts, area_pcts
        )
    ]
