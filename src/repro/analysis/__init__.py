"""Higher-level analyses built on the core model and the simulators.

- :mod:`repro.analysis.length_dependence` -- the quadratic-to-linear
  transition of delay vs wire length as inductance grows (Section II),
- :mod:`repro.analysis.zeta_collapse`     -- how completely ``zeta``
  captures the five impedances (Fig. 2's "weak RT/CT dependence"),
- :mod:`repro.analysis.merit`             -- when inductance matters: the
  length window criterion of the companion paper [8],
- :mod:`repro.analysis.bus`               -- N-line bus crosstalk metrics
  (victim noise, worst-pattern delay push-out, settling, shield-count
  trade-off curves) over :mod:`repro.bus` structures,
- :mod:`repro.analysis.comparison`        -- RC-vs-RLC repeater design
  comparison engine (model, simulation, area, power),
- :mod:`repro.analysis.scaling_study`     -- penalties across technology
  nodes (the paper's closing scaling argument),
- :mod:`repro.analysis.sensitivity`       -- delay elasticities w.r.t.
  each of the five impedances.
"""

from repro.analysis.bus import (
    BusReport,
    BusWaveforms,
    analyze_bus,
    batch_delay_50,
    evenly_spread_shields,
    shield_tradeoff,
    simulate_bus,
)
from repro.analysis.length_dependence import (
    delay_versus_length,
    fitted_length_exponent,
    rc_lc_crossover_length,
)
from repro.analysis.zeta_collapse import collapse_spread
from repro.analysis.merit import inductance_length_window, inductance_matters
from repro.analysis.comparison import DesignComparison, compare_designs
from repro.analysis.scaling_study import scaling_table
from repro.analysis.sensitivity import delay_elasticities

__all__ = [
    "BusReport",
    "BusWaveforms",
    "analyze_bus",
    "batch_delay_50",
    "evenly_spread_shields",
    "shield_tradeoff",
    "simulate_bus",
    "delay_versus_length",
    "fitted_length_exponent",
    "rc_lc_crossover_length",
    "collapse_spread",
    "inductance_length_window",
    "inductance_matters",
    "DesignComparison",
    "compare_designs",
    "scaling_table",
    "delay_elasticities",
]
