"""Crosstalk noise and switching-dependent delay on coupled lines.

Two classic phenomena on neighboring inductive wires:

- **functional noise**: an aggressor transition couples a glitch onto a
  quiet victim.  Capacitive coupling injects a *positive* far-end
  glitch; mutual inductance drives the far end *negative* (the returned
  current opposes the aggressor), so the glitch shape flags which
  mechanism dominates;
- **delay push-out / pull-in**: when both lines switch, the coupling
  reshapes the timing window -- and the *direction* flags the regime.
  On RC-dominated wires the coupling capacitance Miller-doubles in the
  odd mode (slower) and vanishes in the even mode (faster).  On
  inductance-dominated wires the loop inductance takes over:
  ``L*(1 - km)`` in the odd mode (faster flight) vs ``L*(1 + km)`` in
  the even mode (slower) -- the opposite ordering, and one more way RC
  intuition fails exactly where this paper says it does.

Everything is measured by full MNA transient simulation of the coupled
PI ladder of :mod:`repro.spice.coupled` -- a workload that exercises
every substrate element (mutual inductance included) end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.spice.coupled import (
    CoupledLadderSpec,
    VictimMode,
    build_coupled_ladder_circuit,
)
from repro.spice.transient import simulate_transient
from repro.tline.waveform import Waveform

__all__ = ["CrosstalkReport", "analyze_crosstalk"]


@dataclass(frozen=True)
class CrosstalkReport:
    """Simulation-measured coupling metrics for one coupled pair.

    All voltages are normalized to the aggressor swing.

    Attributes
    ----------
    victim_peak_noise:
        Largest positive victim far-end excursion (capacitive signature).
    victim_min_noise:
        Most negative victim far-end excursion (inductive signature).
    aggressor_delay_quiet, aggressor_delay_even, aggressor_delay_odd:
        Aggressor far-end 50% delay under the three victim behaviours.
    """

    victim_peak_noise: float
    victim_min_noise: float
    aggressor_delay_quiet: float
    aggressor_delay_even: float
    aggressor_delay_odd: float

    @property
    def delay_spread(self) -> float:
        """Odd-to-even switching window as a fraction of the quiet delay."""
        return (
            self.aggressor_delay_odd - self.aggressor_delay_even
        ) / self.aggressor_delay_quiet

    @property
    def worst_noise_magnitude(self) -> float:
        """Larger of the positive / negative victim excursions."""
        return max(self.victim_peak_noise, abs(self.victim_min_noise))


def _simulate(
    spec: CoupledLadderSpec,
    mode: VictimMode,
    window: float,
    dt: float,
    backend: str = "auto",
):
    circuit = build_coupled_ladder_circuit(spec, mode=mode)
    result = simulate_transient(circuit, t_stop=window, dt=dt, backend=backend)
    return (
        result.voltage(spec.aggressor_output),
        result.voltage(spec.victim_output),
    )


def analyze_crosstalk(
    spec: CoupledLadderSpec,
    window: float | None = None,
    dt: float | None = None,
    backend: str = "auto",
) -> CrosstalkReport:
    """Measure noise and switching-delay metrics for a coupled pair.

    Parameters
    ----------
    spec:
        The coupled-line instance.
    window:
        Simulated span (defaults to 12x the slower of the RC and flight
        time scales of one line).
    dt:
        Time step (defaults to window / 6000).
    backend:
        MNA linear-solver backend (see
        :mod:`repro.spice.backend`); long coupled ladders benefit from
        the sparse path.

    >>> spec = CoupledLadderSpec(rt=100.0, lt=25e-9, ct=2e-12, cct=1e-12,
    ...     km=0.5, rtr_aggressor=50.0, rtr_victim=50.0, cl=5e-14,
    ...     n_segments=16)
    >>> report = analyze_crosstalk(spec)
    >>> report.worst_noise_magnitude > 0.05
    True
    """
    if window is None:
        rc_scale = (spec.rtr_aggressor + spec.rt) * (spec.ct + spec.cct + spec.cl)
        flight = math.sqrt(spec.lt * (spec.ct + spec.cct))
        window = 12.0 * max(rc_scale, flight)
    if dt is None:
        dt = window / 6000.0
    if window <= 0 or dt <= 0:
        raise ParameterError("window and dt must be positive")

    agg_quiet, victim_quiet = _simulate(spec, VictimMode.QUIET, window, dt, backend)
    agg_even, _ = _simulate(spec, VictimMode.EVEN, window, dt, backend)
    agg_odd, _ = _simulate(spec, VictimMode.ODD, window, dt, backend)

    return CrosstalkReport(
        victim_peak_noise=float(np.max(victim_quiet.values)),
        victim_min_noise=float(np.min(victim_quiet.values)),
        aggressor_delay_quiet=_delay(agg_quiet),
        aggressor_delay_even=_delay(agg_even),
        aggressor_delay_odd=_delay(agg_odd),
    )


def _delay(waveform: Waveform) -> float:
    return waveform.delay_50(v_final=1.0)
