"""How completely ``zeta`` captures the five impedances (Fig. 2).

The paper argues the scaled delay ``t'_pd`` is "primarily a function of
zeta", with only weak residual dependence on RT and CT -- especially for
``RT, CT in [0, 1]``, the range of global interconnect.  This module
quantifies that collapse: at fixed ``zeta`` it sweeps an (RT, CT) grid,
measures the *simulated* scaled delay for each combination, and reports
the spread.

The (zeta, RT, CT) cross product is expressed as a
:class:`~repro.sweep.grid.Sweep` of the ``simulated_delay_50`` quantity,
so the expensive simulator calls fan out over the runner's worker pool
and repeat runs hit its result cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.delay import scaled_delay
from repro.core.simulate import SimulatorRoute
from repro.errors import ParameterError
from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.kernels import batch_omega_n
from repro.sweep.runner import SweepRunner

__all__ = ["CollapsePoint", "collapse_spread"]

#: Shared cache for repeat collapse studies (the simulator-backed sweep
#: is the expensive one); callers may substitute a disk-backed runner.
_DEFAULT_RUNNER = SweepRunner()


@dataclass(frozen=True)
class CollapsePoint:
    """Spread of scaled delay at one ``zeta``.

    Attributes
    ----------
    zeta:
        The damping factor held fixed.
    minimum, maximum, mean:
        Statistics of the simulated ``t'_pd`` across the (RT, CT) grid.
    model:
        The eq. 9 prediction at this ``zeta``.
    """

    zeta: float
    minimum: float
    maximum: float
    mean: float
    model: float

    @property
    def spread_percent(self) -> float:
        """``100 * (max - min) / mean`` -- the residual RT/CT dependence."""
        return 100.0 * (self.maximum - self.minimum) / self.mean

    @property
    def max_model_error_percent(self) -> float:
        """Worst-case eq. 9 error across the grid at this ``zeta``."""
        worst = max(
            abs(self.model - self.minimum), abs(self.model - self.maximum)
        )
        return 100.0 * worst / self.mean


def collapse_spread(
    zeta_values,
    ratio_grid=(0.0, 0.25, 0.5, 1.0),
    route: str = "tline",
    n_segments: int = 80,
    runner: SweepRunner | None = None,
    max_workers: int | None = None,
) -> list[CollapsePoint]:
    """Measure the ``t'_pd`` spread over (RT, CT) at each ``zeta``.

    Parameters
    ----------
    zeta_values:
        Damping factors to probe.
    ratio_grid:
        Values used for both RT and CT (full cross product).
    route, n_segments:
        Simulator settings (see :mod:`repro.core.simulate`).
    runner:
        A configured :class:`~repro.sweep.runner.SweepRunner` (e.g. with
        a disk cache); a shared module-level runner is used when
        omitted, so repeated studies hit its in-memory cache.
    max_workers:
        Worker-pool size for the simulator fan-out; giving one creates
        a dedicated runner (ignored when ``runner`` is given).
    """
    zeta_values = np.atleast_1d(np.asarray(zeta_values, dtype=float))
    if np.any(zeta_values <= 0):
        raise ParameterError("zeta values must be positive")
    ratios = [float(value) for value in ratio_grid]
    grid = ParameterGrid(
        Axis("zeta", zeta_values),
        Axis("r_ratio", ratios),
        Axis("c_ratio", ratios),
    )
    sweep = Sweep(
        "simulated_delay_50",
        grid,
        options={"route": SimulatorRoute(route).value, "n_segments": n_segments},
    )
    if runner is None:
        runner = (
            _DEFAULT_RUNNER
            if max_workers is None
            else SweepRunner(max_workers=max_workers)
        )
    result = runner.run(sweep)
    omega = batch_omega_n(
        result.columns["lt"], result.columns["ct"], result.columns["cl"]
    )
    # C point order: zeta varies slowest, so each row of the reshape is
    # one zeta's full (RT, CT) grid.
    scaled = (result.output() * omega).reshape(zeta_values.size, -1)
    return [
        CollapsePoint(
            zeta=float(z),
            minimum=float(samples.min()),
            maximum=float(samples.max()),
            mean=float(samples.mean()),
            model=float(scaled_delay(z)),
        )
        for z, samples in zip(zeta_values, scaled)
    ]
