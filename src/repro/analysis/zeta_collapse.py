"""How completely ``zeta`` captures the five impedances (Fig. 2).

The paper argues the scaled delay ``t'_pd`` is "primarily a function of
zeta", with only weak residual dependence on RT and CT -- especially for
``RT, CT in [0, 1]``, the range of global interconnect.  This module
quantifies that collapse: at fixed ``zeta`` it sweeps an (RT, CT) grid,
measures the *simulated* scaled delay for each combination, and reports
the spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import scaled_delay
from repro.core.simulate import simulated_delay_50
from repro.errors import ParameterError

__all__ = ["CollapsePoint", "collapse_spread"]


@dataclass(frozen=True)
class CollapsePoint:
    """Spread of scaled delay at one ``zeta``.

    Attributes
    ----------
    zeta:
        The damping factor held fixed.
    minimum, maximum, mean:
        Statistics of the simulated ``t'_pd`` across the (RT, CT) grid.
    model:
        The eq. 9 prediction at this ``zeta``.
    """

    zeta: float
    minimum: float
    maximum: float
    mean: float
    model: float

    @property
    def spread_percent(self) -> float:
        """``100 * (max - min) / mean`` -- the residual RT/CT dependence."""
        return 100.0 * (self.maximum - self.minimum) / self.mean

    @property
    def max_model_error_percent(self) -> float:
        """Worst-case eq. 9 error across the grid at this ``zeta``."""
        worst = max(
            abs(self.model - self.minimum), abs(self.model - self.maximum)
        )
        return 100.0 * worst / self.mean


def collapse_spread(
    zeta_values,
    ratio_grid=(0.0, 0.25, 0.5, 1.0),
    route: str = "tline",
    n_segments: int = 80,
) -> list[CollapsePoint]:
    """Measure the ``t'_pd`` spread over (RT, CT) at each ``zeta``.

    Parameters
    ----------
    zeta_values:
        Damping factors to probe.
    ratio_grid:
        Values used for both RT and CT (full cross product).
    route, n_segments:
        Simulator settings (see :mod:`repro.core.simulate`).
    """
    zeta_values = np.atleast_1d(np.asarray(zeta_values, dtype=float))
    if np.any(zeta_values <= 0):
        raise ParameterError("zeta values must be positive")
    points = []
    for z in zeta_values:
        samples = []
        for r_ratio in ratio_grid:
            for c_ratio in ratio_grid:
                line = DriverLineLoad.for_zeta(
                    z, r_ratio=r_ratio, c_ratio=c_ratio
                )
                t50 = simulated_delay_50(
                    line, route=route, n_segments=n_segments
                )
                samples.append(t50 * line.omega_n)
        arr = np.array(samples)
        points.append(
            CollapsePoint(
                zeta=float(z),
                minimum=float(arr.min()),
                maximum=float(arr.max()),
                mean=float(arr.mean()),
                model=float(scaled_delay(z)),
            )
        )
    return points
