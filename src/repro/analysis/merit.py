"""When does on-chip inductance matter?  (Companion paper [8] criterion.)

Ismail, Friedman & Neves (DAC 1998) give a length window outside which an
RC model suffices: transmission-line behaviour requires the wire to be

- *long enough* that the signal rise time fits inside the round trip:
  ``l > tr / (2 * sqrt(L*C))``, and
- *short enough* that resistive attenuation has not killed the wave:
  ``l < (2 / R) * sqrt(L / C)``.

The window closes entirely (no length exhibits inductive behaviour) when
``tr > 4 * L / R`` -- slow drivers never see the inductance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import require_positive

__all__ = ["InductanceWindow", "inductance_length_window", "inductance_matters"]


@dataclass(frozen=True)
class InductanceWindow:
    """The [8] length window for one wire geometry and rise time.

    ``lower``/``upper`` in meters; the window is empty when
    ``lower >= upper``.
    """

    lower: float
    upper: float

    @property
    def exists(self) -> bool:
        """True when some length exhibits significant inductance."""
        return self.lower < self.upper

    def contains(self, length: float) -> bool:
        """Is this wire length inside the inductive window?"""
        return self.exists and self.lower < length < self.upper


def inductance_length_window(
    r: float, l: float, c: float, rise_time: float
) -> InductanceWindow:
    """Length window where inductance must be modeled (per [8]).

    Parameters are per-unit-length ``r`` (ohm/m), ``l`` (H/m), ``c``
    (F/m) and the driver ``rise_time`` (s).
    """
    require_positive("r", r)
    require_positive("l", l)
    require_positive("c", c)
    require_positive("rise_time", rise_time)
    lower = rise_time / (2.0 * math.sqrt(l * c))
    upper = (2.0 / r) * math.sqrt(l / c)
    return InductanceWindow(lower=lower, upper=upper)


def inductance_matters(
    r: float, l: float, c: float, length: float, rise_time: float
) -> bool:
    """Should this net be modeled as RLC rather than RC?

    >>> inductance_matters(r=2000.0, l=3e-7, c=1.8e-10,
    ...                    length=0.01, rise_time=5e-11)
    True
    """
    require_positive("length", length)
    return inductance_length_window(r, l, c, rise_time).contains(length)
