"""repro -- reproduction of Ismail & Friedman, DAC 1999.

*Effects of Inductance on the Propagation Delay and Repeater Insertion
in VLSI Circuits.*

The package provides, from scratch:

- the paper's closed-form RLC delay model and repeater-insertion theory
  (:mod:`repro.core`),
- three independent circuit-simulation substrates standing in for the
  AS/X dynamic simulator used in the paper (:mod:`repro.tline`,
  :mod:`repro.spice`),
- a technology layer replacing the proprietary 0.25 um process data
  (:mod:`repro.technology`),
- analyses and experiment drivers regenerating every table and figure
  (:mod:`repro.analysis`, :mod:`repro.experiments`),
- a vectorized batch-evaluation engine for design-space sweeps
  (:mod:`repro.sweep`): cartesian/zipped/log-spaced parameter grids,
  NumPy batch kernels that are the single implementation behind the
  scalar closed forms, and a :class:`~repro.sweep.SweepRunner` with
  in-memory + on-disk result caching and a worker pool for
  simulator-backed sweeps (``python -m repro sweep``).

Quickstart
----------
>>> from repro import DriverLineLoad, propagation_delay
>>> line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12,
...                       rtr=100.0, cl=1e-13)
>>> round(propagation_delay(line) * 1e12)   # ps; paper Table 1: 1062
1061

Batch evaluation of a whole grid (see :mod:`repro.sweep` for more):

>>> from repro import Axis, ParameterGrid, Sweep, SweepRunner
>>> grid = ParameterGrid(Axis.log("rt", 100.0, 10000.0, 5),
...                      Axis("lt", [1e-9, 1e-6]))
>>> result = SweepRunner().run(
...     Sweep("propagation_delay", grid, fixed={"ct": 1e-12}))
>>> result.output().shape
(10,)
"""

from repro.core.canonical import DriverLineLoad, omega_n, zeta
from repro.core.delay import (
    lc_limit_delay,
    propagation_delay,
    rc_limit_delay,
    scaled_delay,
    time_of_flight,
)
from repro.core.baselines import sakurai_rc_delay_50
from repro.core.moments import elmore_delay, elmore_delay_50, two_pole_delay_50
from repro.core.penalty import (
    area_increase_closed_form,
    delay_increase_closed_form,
    delay_increase_numerical,
    power_increase,
)
from repro.core.awe import awe_delay_50, awe_reduce
from repro.bus import BusSpec, LineSwitch, build_bus_circuit
from repro.core.repeater import (
    Buffer,
    CoupledRepeaterSystem,
    RepeaterDesign,
    RepeaterSystem,
    bakoglu_rc_design,
    coupled_line,
    crosstalk_aware_design,
    error_factors,
    inductance_time_ratio,
    miller_switch_factor,
    numerical_optimal_design,
    optimal_rlc_design,
    practical_design,
)
from repro.core.risetime import rise_time_10_90, scaled_rise_time
from repro.core.simulate import SimulatorRoute, simulated_delay_50, simulated_step_waveform
from repro.errors import (
    AnalysisError,
    ConvergenceError,
    NetlistError,
    ParameterError,
    ReproError,
    SimulationError,
)
from repro.sweep import Axis, ParameterGrid, Sweep, SweepResult, SweepRunner

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # circuit + canonical variables
    "DriverLineLoad",
    "omega_n",
    "zeta",
    # delay models
    "scaled_delay",
    "propagation_delay",
    "rc_limit_delay",
    "lc_limit_delay",
    "time_of_flight",
    "sakurai_rc_delay_50",
    "elmore_delay",
    "elmore_delay_50",
    "two_pole_delay_50",
    # repeater insertion
    "Buffer",
    "RepeaterDesign",
    "RepeaterSystem",
    "CoupledRepeaterSystem",
    "bakoglu_rc_design",
    "optimal_rlc_design",
    "numerical_optimal_design",
    "practical_design",
    "crosstalk_aware_design",
    "coupled_line",
    "miller_switch_factor",
    "error_factors",
    "inductance_time_ratio",
    # coupled buses
    "BusSpec",
    "LineSwitch",
    "build_bus_circuit",
    "awe_reduce",
    "awe_delay_50",
    "rise_time_10_90",
    "scaled_rise_time",
    # penalties
    "delay_increase_closed_form",
    "delay_increase_numerical",
    "area_increase_closed_form",
    "power_increase",
    # simulation
    "SimulatorRoute",
    "simulated_delay_50",
    "simulated_step_waveform",
    # sweep engine
    "Axis",
    "ParameterGrid",
    "Sweep",
    "SweepResult",
    "SweepRunner",
    # errors
    "ReproError",
    "ParameterError",
    "ConvergenceError",
    "SimulationError",
    "NetlistError",
    "AnalysisError",
]
