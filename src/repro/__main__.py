"""Command-line entry point: regenerate artifacts and run sweeps.

Usage::

    python -m repro list                # show the experiment registry
    python -m repro run EXP-E18         # regenerate one table/figure
    python -m repro run all             # regenerate everything (slow)
    python -m repro sweep --list        # show the batch quantities
    python -m repro sweep propagation_delay --axis rt=log:100:5000:7 \\
        --fixed lt=1e-8 --fixed ct=1e-12
    python -m repro lint                # static analysis of src/repro
    python -m repro lint --fix-baseline # refresh manifest + baseline
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments import REGISTRY, render_table
from repro.experiments.common import metrics_footer
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.sweep.cli import add_sweep_arguments, run_sweep


def _cmd_list() -> int:
    width = max(len(k) for k in REGISTRY)
    for exp_id, module in REGISTRY.items():
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{exp_id:<{width}}  {summary}")
    return 0


def _cmd_run(exp_id: str, metrics: bool = False) -> int:
    if metrics:
        obs.enable()
    if exp_id == "all":
        for key in REGISTRY:
            print(render_table(REGISTRY[key].run()))
            print()
    else:
        module = REGISTRY.get(exp_id.upper())
        if module is None:
            known = ", ".join(REGISTRY)
            print(
                f"unknown experiment {exp_id!r}; known: {known}",
                file=sys.stderr,
            )
            return 2
        print(render_table(module.run()))
    if metrics:
        print()
        print(metrics_footer())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of Ismail & Friedman (DAC 1999): "
        "regenerate the paper's tables and figures, or sweep the models "
        "over parameter grids.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the experiment registry")
    run_parser = sub.add_parser("run", help="regenerate one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. EXP-T1")
    run_parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable instrumentation and print a telemetry footer",
    )
    sweep_parser = sub.add_parser(
        "sweep",
        help="batch-evaluate a quantity over a parameter grid",
        description="Vectorized batch evaluation over cartesian/zipped "
        "parameter grids with result caching (see repro.sweep).",
    )
    add_sweep_arguments(sweep_parser)
    lint_parser = sub.add_parser(
        "lint",
        help="run the repository's static-analysis rules",
        description="AST-based invariant checks: numerics fingerprint "
        "guard, SI-unit hygiene, observability hygiene, API-surface "
        "drift (see repro.lint and docs/static-analysis.md).",
    )
    add_lint_arguments(lint_parser)
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "sweep":
        return run_sweep(args)
    if args.command == "lint":
        return run_lint_command(args)
    return _cmd_run(args.experiment, metrics=args.metrics)


if __name__ == "__main__":
    raise SystemExit(main())
