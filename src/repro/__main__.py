"""Command-line entry point: regenerate artifacts and run sweeps.

Usage::

    python -m repro list                # show the experiment registry
    python -m repro run EXP-E18         # regenerate one table/figure
    python -m repro run all             # regenerate everything (slow)
    python -m repro run --netlist f.cir # parse + simulate a netlist file
    python -m repro sweep --list        # show the batch quantities
    python -m repro sweep propagation_delay --axis rt=log:100:5000:7 \\
        --fixed lt=1e-8 --fixed ct=1e-12
    python -m repro sweep --netlist f.cir --axis rt=log:10:1000:7
    python -m repro lint                # static analysis of src/repro
    python -m repro lint --fix-baseline # refresh manifest + baseline
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.errors import ReproError
from repro.experiments import REGISTRY, render_table
from repro.experiments.common import metrics_footer
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.sweep.cli import add_sweep_arguments, run_sweep


def _cmd_list() -> int:
    width = max(len(k) for k in REGISTRY)
    for exp_id, module in REGISTRY.items():
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{exp_id:<{width}}  {summary}")
    return 0


def _parse_param_override(text: str) -> tuple[str, float]:
    name, sep, value = text.partition("=")
    if not sep or not name or not value:
        raise ReproError(f"bad --param {text!r}; expected NAME=VALUE")
    try:
        return name, float(value)
    except ValueError as exc:
        raise ReproError(f"bad --param {text!r}: {exc}") from exc


def _cmd_run_netlist(args: argparse.Namespace) -> int:
    """Parse a netlist file, simulate it, report per-node metrics."""
    from repro.spice.parser import parse_netlist_file, suggest_transient_window
    from repro.spice.transient import simulate_transient
    from repro.units import format_si

    if args.metrics:
        obs.enable()
    try:
        parsed = parse_netlist_file(args.netlist)
        overrides = dict(
            _parse_param_override(text) for text in args.param
        )
        circuit = parsed.bind(overrides or None)
        nodes = circuit.node_names()
        node = args.node or nodes[-1]
        if node not in nodes:
            raise ReproError(
                f"node {node!r} not in netlist; nodes: {', '.join(nodes)}"
            )
        t_stop, dt = suggest_transient_window(circuit)
        if args.t_stop is not None:
            t_stop = args.t_stop
        if args.dt is not None:
            dt = args.dt
        result = simulate_transient(
            circuit, t_stop, dt, backend=args.backend or "auto",
            model=args.model or "full", rom_order=args.rom_order,
            rom_error_bound=args.rom_error_bound,
        )
        wave = result.voltage(node)
    except ReproError as exc:
        print(f"netlist run failed: {exc}", file=sys.stderr)
        return 2
    print(f"netlist: {args.netlist} (title: {circuit.title})")
    bound = (
        ", ".join(f"{k}={v:g}" for k, v in sorted(overrides.items()))
        if overrides
        else "defaults"
    )
    print(
        f"elements: {len(circuit)}, nodes: {len(nodes)}, "
        f"params: {bound}"
    )
    print(
        f"window: t_stop={format_si(t_stop, 's')}, "
        f"dt={format_si(dt, 's')}"
    )
    try:
        delay = format_si(wave.delay_50(), "s")
    except ReproError:
        delay = "n/a (no 50% crossing)"
    print(
        f"v({node}): final={wave.final_value:.6g} V, delay_50={delay}"
    )
    if args.metrics:
        print()
        print(metrics_footer())
    return 0


def _cmd_run(exp_id: str, metrics: bool = False) -> int:
    if metrics:
        obs.enable()
    if exp_id == "all":
        for key in REGISTRY:
            print(render_table(REGISTRY[key].run()))
            print()
    else:
        module = REGISTRY.get(exp_id.upper())
        if module is None:
            known = ", ".join(REGISTRY)
            print(
                f"unknown experiment {exp_id!r}; known: {known}",
                file=sys.stderr,
            )
            return 2
        print(render_table(module.run()))
    if metrics:
        print()
        print(metrics_footer())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of Ismail & Friedman (DAC 1999): "
        "regenerate the paper's tables and figures, or sweep the models "
        "over parameter grids.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the experiment registry")
    run_parser = sub.add_parser(
        "run",
        help="regenerate one experiment (or 'all'), or simulate a netlist",
    )
    run_parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id, e.g. EXP-T1 (omit with --netlist)",
    )
    run_parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable instrumentation and print a telemetry footer",
    )
    run_parser.add_argument(
        "--netlist",
        metavar="FILE",
        help="parse and simulate a SPICE-like netlist file instead of "
        "a registry experiment",
    )
    run_parser.add_argument(
        "--node",
        help="node to report (default: last node in the netlist)",
    )
    run_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a netlist {...} parameter (repeatable)",
    )
    run_parser.add_argument(
        "--t-stop",
        type=float,
        help="transient end time in seconds (default: auto from RC/LC)",
    )
    run_parser.add_argument(
        "--dt",
        type=float,
        help="transient time step in seconds (default: t_stop/2000)",
    )
    run_parser.add_argument(
        "--backend",
        help="MNA linear-solver backend (auto | dense | sparse | banded)",
    )
    run_parser.add_argument(
        "--model",
        help="evaluation-model tier (full | reduced | auto)",
    )
    run_parser.add_argument(
        "--rom-order",
        type=int,
        help="reduced order q for --model reduced/auto",
    )
    run_parser.add_argument(
        "--rom-error-bound",
        type=float,
        help="error bound gating reduced answers under --model auto",
    )
    sweep_parser = sub.add_parser(
        "sweep",
        help="batch-evaluate a quantity over a parameter grid",
        description="Vectorized batch evaluation over cartesian/zipped "
        "parameter grids with result caching (see repro.sweep).",
    )
    add_sweep_arguments(sweep_parser)
    lint_parser = sub.add_parser(
        "lint",
        help="run the repository's static-analysis rules",
        description="AST-based invariant checks: numerics fingerprint "
        "guard, SI-unit hygiene, observability hygiene, API-surface "
        "drift (see repro.lint and docs/static-analysis.md).",
    )
    add_lint_arguments(lint_parser)
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "sweep":
        return run_sweep(args)
    if args.command == "lint":
        return run_lint_command(args)
    if args.netlist:
        if args.experiment:
            print(
                "give an experiment id or --netlist, not both",
                file=sys.stderr,
            )
            return 2
        return _cmd_run_netlist(args)
    if not args.experiment:
        print(
            "an experiment id (or --netlist FILE) is required",
            file=sys.stderr,
        )
        return 2
    return _cmd_run(args.experiment, metrics=args.metrics)


if __name__ == "__main__":
    raise SystemExit(main())
