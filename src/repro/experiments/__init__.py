"""Experiment drivers: one module per reproduced table/figure.

Each module exposes ``run(...) -> ExperimentTable`` and a ``main()``
that prints the rendered rows; run any of them directly::

    python -m repro.experiments.table1

The registry below maps DESIGN.md experiment ids to their drivers.
"""

from repro.experiments import (
    ablation,
    bus_repeater_study,
    crosstalk_study,
    eq17,
    eq18,
    fig2,
    fig4,
    htree_study,
    length_dependence,
    refit,
    scaling,
    shield_study,
    table1,
    zeta_collapse,
)
from repro.experiments.common import ExperimentTable, render_table

#: DESIGN.md experiment id -> driver module (each has run()/main()).
REGISTRY = {
    "EXP-T1": table1,
    "EXP-F2": fig2,
    "EXP-F4": fig4,
    "EXP-E17": eq17,
    "EXP-E18": eq18,
    "EXP-X1": length_dependence,
    "EXP-X2": zeta_collapse,
    "EXP-X3": ablation,
    "EXP-X4": scaling,
    "EXP-X5": refit,
    "EXP-X6": crosstalk_study,
    "EXP-X7": shield_study,
    "EXP-X8": bus_repeater_study,
    "EXP-X9": htree_study,
}

__all__ = ["REGISTRY", "ExperimentTable", "render_table"]
