"""EXP-E17: the delay cost of RC-based repeatering (eqs. 16/17).

The paper's anchors: treating an RLC line as RC when sizing repeaters
costs ~10% extra total delay at ``T_{L/R} = 3``, ~20% at 5, ~30% at 10,
with the closed form eq. 17 capturing the whole curve.

Three evaluations are reported per ``T``:

- ``eq17``: the published closed form;
- ``model``: eq. 16 evaluated with our delay model -- RC design (eq. 11)
  vs our numerically optimized design (guaranteed non-negative);
- ``simulated``: the assumption-free arbiter -- both designs' total
  delays measured by ladder simulation (continuous ``k``).
"""

from __future__ import annotations

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.penalty import delay_increase_closed_form, delay_increase_numerical
from repro.core.repeater import (
    bakoglu_rc_design,
    normalized_system,
    numerical_optimal_design,
)
from repro.core.simulate import simulated_delay_50
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main", "simulated_delay_increase"]


def simulated_delay_increase(
    tlr: float, n_segments: int = 80, n_samples: int = 3001
) -> float:
    """Percent simulated-delay increase of the RC design over the
    eq. 9-optimal design at a given ``T_{L/R}`` (continuous ``k``)."""
    line, buffer = normalized_system(tlr)
    rc = bakoglu_rc_design(line, buffer)
    rlc = numerical_optimal_design(line, buffer)

    def total(design) -> float:
        section = DriverLineLoad(
            rt=line.rt / design.k,
            lt=line.lt / design.k,
            ct=line.ct / design.k,
            rtr=buffer.r0 / design.h,
            cl=buffer.c0 * design.h,
        )
        return design.k * simulated_delay_50(
            section, n_segments=n_segments, n_samples=n_samples
        )

    t_rc, t_rlc = total(rc), total(rlc)
    return 100.0 * (t_rc - t_rlc) / t_rlc


def run(tlr_values=None, simulate: bool = True) -> ExperimentTable:
    """Regenerate the eq. 17 penalty curve with all three evaluations."""
    if tlr_values is None:
        tlr_values = np.array([0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0])
    tlr_values = np.asarray(tlr_values, dtype=float)

    rows = []
    for t in tlr_values:
        closed = float(delay_increase_closed_form(float(t)))
        model = delay_increase_numerical(float(t), use_numerical_optimum=True)
        simulated = simulated_delay_increase(float(t)) if simulate else float("nan")
        rows.append(
            (
                round(float(t), 2),
                round(closed, 2),
                round(model, 2),
                round(simulated, 2),
            )
        )
    notes = (
        "paper anchors: ~10% @ T=3, ~20% @ T=5, ~30% @ T=10 (eq. 17)",
        "model column: RC (eq. 11) vs our eq. 9-numerical optimum; "
        "simulated column: same designs, ladder-simulated sections",
        "all three curves rise monotonically from 0 and saturate -- the "
        "paper's qualitative claim; magnitudes differ (EXPERIMENTS.md)",
    )
    return ExperimentTable(
        experiment_id="EXP-E17",
        title="eq. 17 -- % delay increase from RC-based repeater insertion",
        headers=("T_L/R", "eq17_%", "model_%", "simulated_%"),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-E17 delay-penalty table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
