"""EXP-E18: repeater area (and power) cost of ignoring inductance.

Paper anchors for eq. 18: the RC-based design uses 154% more repeater
area at ``T_{L/R} = 3`` and 435% more at ``T = 5`` than the RLC-aware
design; the paper adds that power follows area.  We tabulate eq. 18, the
area ratio implied by our numerical optimum, and the switched-capacitance
(power) penalty with the wire capacitance included.
"""

from __future__ import annotations

import numpy as np

from repro.core.penalty import (
    area_increase_closed_form,
    area_increase_from_designs,
    power_increase,
)
from repro.core.repeater import (
    bakoglu_rc_design,
    normalized_system,
    numerical_optimal_design,
)
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main"]


def run(tlr_values=None) -> ExperimentTable:
    """Regenerate the eq. 18 area-penalty curve plus power columns."""
    if tlr_values is None:
        tlr_values = np.array([0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0])
    tlr_values = np.asarray(tlr_values, dtype=float)

    rows = []
    for t in tlr_values:
        closed = float(area_increase_closed_form(float(t)))
        line, buffer = normalized_system(float(t))
        rc = bakoglu_rc_design(line, buffer)
        num = numerical_optimal_design(line, buffer)
        area_num = area_increase_from_designs(rc, num, buffer)
        power_overhead = power_increase(float(t), include_wire=False)
        power_total = power_increase(float(t), include_wire=True)
        rows.append(
            (
                round(float(t), 2),
                round(closed, 1),
                round(area_num, 1),
                round(power_overhead, 1),
                round(power_total, 1),
            )
        )
    notes = (
        "paper anchors (eq. 18): 154% @ T=3, 435% @ T=5",
        "area_num: RC vs our numerical optimum of the stated objective",
        "power columns use eqs. 14/15 designs; repeater-only power "
        "tracks area exactly, wire-inclusive power dilutes it",
    )
    return ExperimentTable(
        experiment_id="EXP-E18",
        title="eq. 18 -- % area and power increase from RC-based insertion",
        headers=("T_L/R", "eq18_area_%", "num_area_%", "power_rep_%", "power_tot_%"),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-E18 area-penalty table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
