"""EXP-X3: accuracy ablation -- Elmore vs two-pole vs eq. 9.

The implicit baseline of the paper: existing delay metrics (Elmore's
single-moment estimate, and the two-pole moment-matching model) degrade
on inductive lines; eq. 9 holds a few-percent error across regimes.  We
sweep the Table 1 grid and report each model's error against simulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.awe import awe_delay_50
from repro.core.baselines import sakurai_rc_delay_50
from repro.core.delay import propagation_delay
from repro.core.moments import elmore_delay_50, two_pole_delay_50
from repro.core.simulate import simulated_delay_50
from repro.errors import AnalysisError
from repro.experiments import table1
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main"]


def _awe3(line):
    return awe_delay_50(line, q=3)


_MODELS = (
    ("eq9", propagation_delay),
    ("elmore", elmore_delay_50),
    ("two-pole", two_pole_delay_50),
    ("awe-3", _awe3),
    ("sakurai-rc", sakurai_rc_delay_50),
)


def run(
    route: str = "statespace",
    n_segments: int = 120,
    lt_values=(1e-5, 1e-6, 1e-7, 1e-8),
    backend: str = "auto",
    model: str = "full",
) -> ExperimentTable:
    """Error statistics of each delay model over the Table 1 sweep.

    The full four-decade inductance sweep is included: the strongly
    underdamped ``Lt = 1e-5`` corner is precisely where the RC-era
    metrics collapse (errors near 100%) while eq. 9 stays in budget.
    ``model`` selects the simulation reference's evaluation tier
    (``"full"`` | ``"reduced"`` | ``"auto"``, MNA route only).
    """
    errors: dict[str, list[float]] = {name: [] for name, _ in _MODELS}
    failures: dict[str, int] = {name: 0 for name, _ in _MODELS}
    for r_ratio in table1.RT_VALUES:
        for lt in lt_values:
            for c_ratio in table1.CT_VALUES:
                line = table1.build_case(r_ratio, c_ratio, lt)
                sim = simulated_delay_50(
                    line, route=route, n_segments=n_segments,
                    backend=backend, model=model,
                )
                for name, model_fn in _MODELS:
                    try:
                        err = 100.0 * abs(model_fn(line) - sim) / sim
                    except AnalysisError:
                        # AWE's documented instability: count, don't hide.
                        failures[name] += 1
                        continue
                    errors[name].append(err)

    rows = tuple(
        (
            name,
            round(float(np.mean(errs)), 2),
            round(float(np.median(errs)), 2),
            round(float(np.max(errs)), 2),
            failures[name],
        )
        for name, errs in errors.items()
    )
    notes = (
        "errors vs ladder simulation over the Table 1 grid "
        f"(Lt in {list(lt_values)})",
        "eq. 9 stays in the few-percent band across regimes; the RC-era "
        "metrics blow up as the response becomes underdamped",
        "'failed' counts AWE reductions rejected for instability "
        "(right-half-plane poles), AWE's classic failure mode",
    )
    return ExperimentTable(
        experiment_id="EXP-X3",
        title="delay-model ablation -- error vs simulation",
        headers=("model", "mean_err_%", "median_err_%", "max_err_%", "failed"),
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X3 model-term ablation table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
