"""EXP-X2: quantify the zeta collapse (Fig. 2 discussion).

The paper: "the propagation delay is primarily a function of zeta.  The
dependence on RT and CT is fairly weak ... particularly weak in the
range where RT and CT are between zero and one."  We measure the spread
of the simulated scaled delay over an (RT, CT) grid at fixed zeta.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.zeta_collapse import collapse_spread
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main"]


def run(
    zeta_values=None,
    ratio_grid=(0.0, 0.5, 1.0),
    n_segments: int = 80,
    max_workers: int | None = None,
) -> ExperimentTable:
    """Tabulate simulated ``t'_pd`` spread across (RT, CT) at each zeta.

    The underlying (zeta, RT, CT) grid runs through the
    :mod:`repro.sweep` engine; ``max_workers`` sizes its simulator
    worker pool (default: CPU count).
    """
    if zeta_values is None:
        zeta_values = np.array([0.25, 0.5, 1.0, 1.5, 2.0])
    points = collapse_spread(
        zeta_values,
        ratio_grid=ratio_grid,
        n_segments=n_segments,
        max_workers=max_workers,
    )
    rows = tuple(
        (
            round(p.zeta, 3),
            round(p.minimum, 4),
            round(p.maximum, 4),
            round(p.mean, 4),
            round(p.spread_percent, 2),
            round(p.model, 4),
            round(p.max_model_error_percent, 2),
        )
        for p in points
    )
    worst_spread = max(p.spread_percent for p in points)
    notes = (
        f"worst (RT, CT)-induced spread for ratios <= 1: "
        f"{worst_spread:.1f}% -- the 'fairly weak' residual dependence",
        "model column is eq. 9; its worst error stays within the spread",
    )
    return ExperimentTable(
        experiment_id="EXP-X2",
        title="zeta collapse -- t'_pd spread over (RT, CT) at fixed zeta",
        headers=("zeta", "min", "max", "mean", "spread_%", "eq9", "eq9_err_%"),
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X2 zeta-collapse table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
