"""Shared experiment plumbing: result tables and text rendering.

Every experiment driver returns an :class:`ExperimentTable`; benchmarks
and ``python -m repro.experiments.<name>`` render it with
:func:`render_table` so the reproduced rows appear exactly once in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ExperimentTable", "render_table", "format_cell", "metrics_footer"]


def format_cell(value) -> str:
    """Human-friendly cell formatting (floats to 4 significant digits)."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e6:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


@dataclass(frozen=True)
class ExperimentTable:
    """A reproduced table or figure, as printable rows.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md identifier (e.g. ``"EXP-T1"``).
    title:
        One-line description referencing the paper artifact.
    headers:
        Column names.
    rows:
        Sequence of row tuples (any scalar types).
    notes:
        Free-form remarks (assertion outcomes, deviations, etc.).
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def metrics_footer() -> str:
    """Telemetry footer for experiment output (opt-in, ``--metrics``).

    Renders the span tree followed by the metric series recorded since
    the last ``obs.reset()``.  Returns ``""`` while the observability
    layer is disabled, so drivers can append it unconditionally.
    """
    from repro import obs

    if not obs.enabled():
        return ""
    return (
        "-- telemetry "
        + "-" * 47
        + "\n"
        + obs.render_trace()
        + "\n\n"
        + obs.render_metrics()
    )


def render_table(table: ExperimentTable) -> str:
    """Render an :class:`ExperimentTable` as aligned monospace text."""
    cells = [tuple(format_cell(v) for v in row) for row in table.rows]
    widths = [len(h) for h in table.headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(items: Sequence[str]) -> str:
        return "  ".join(item.rjust(widths[i]) for i, item in enumerate(items))

    lines = [
        f"== {table.experiment_id}: {table.title}",
        fmt_row(table.headers),
        fmt_row(tuple("-" * w for w in widths)),
    ]
    lines.extend(fmt_row(row) for row in cells)
    for note in table.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)
