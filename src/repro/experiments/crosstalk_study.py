"""EXP-X6: coupled-line crosstalk on inductive global wiring (extension).

Not a paper artifact -- the natural next experiment after it.  The same
wide upper-metal wires whose self-inductance invalidates RC delay models
(Sections II-III) also couple to neighbors; Deutsch [7], the paper's
impedance source, studied exactly such coupled bus structures.  This
study sweeps line-to-line spacing on the 250 nm global layer and
simulates noise and switching-window metrics with the full MNA engine
(mutual inductances included).
"""

from __future__ import annotations

from repro.analysis.crosstalk import analyze_crosstalk
from repro.experiments.common import ExperimentTable, render_table
from repro.spice.coupled import CoupledLadderSpec
from repro.technology.nodes import node_by_name
from repro.technology.parasitics import coupling_capacitance_per_length

__all__ = ["run", "main"]


def run(
    node_name: str = "250nm",
    length: float = 10e-3,
    spacings_um=(0.6, 1.0, 2.0, 4.0),
    driver_size: float = 150.0,
    n_segments: int = 20,
) -> ExperimentTable:
    """Sweep spacing; report victim noise and even/odd delay spread."""
    node = node_by_name(node_name)
    r, l, c = node.wire_rlc("global")
    geometry = node.global_wire
    driver = node.r0 / driver_size

    rows = []
    for spacing_um in spacings_um:
        spacing = spacing_um * 1e-6
        cct = coupling_capacitance_per_length(
            geometry.thickness, spacing, geometry.eps_r
        ) * length
        pitch = spacing + geometry.width
        km = 0.6 / (1.0 + pitch / (4.0 * geometry.width))
        spec = CoupledLadderSpec(
            rt=r * length,
            lt=l * length,
            ct=c * length,
            cct=cct,
            km=km,
            rtr_aggressor=driver,
            rtr_victim=driver,
            cl=node.c0 * driver_size,
            n_segments=n_segments,
        )
        report = analyze_crosstalk(spec)
        rows.append(
            (
                spacing_um,
                round(cct * 1e15, 1),
                round(km, 2),
                round(100 * report.victim_peak_noise, 1),
                round(100 * report.victim_min_noise, 1),
                round(report.aggressor_delay_quiet * 1e12, 1),
                round(report.aggressor_delay_even * 1e12, 1),
                round(report.aggressor_delay_odd * 1e12, 1),
            )
        )
    notes = (
        f"{length * 1e3:.0f} mm pair on the {node_name} global layer, "
        f"h={driver_size:.0f} drivers",
        "positive victim glitches are the capacitive signature, negative "
        "far-end dips the inductive one",
        "odd/even delay ordering flips with spacing: Miller capacitance "
        "dominates at minimum pitch, loop inductance (L*(1-km)) beyond it",
    )
    return ExperimentTable(
        experiment_id="EXP-X6",
        title="coupled-line crosstalk vs spacing (extension study)",
        headers=(
            "spacing_um",
            "Cc_fF",
            "km",
            "noise+_%",
            "noise-_%",
            "t50_quiet_ps",
            "t50_even_ps",
            "t50_odd_ps",
        ),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X6 coupled-pair crosstalk table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
