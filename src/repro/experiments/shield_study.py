"""EXP-X7: shield insertion on an inductively coupled bus (extension).

Not a paper artifact -- the countermeasure study the paper's wires call
for.  Mishra et al. ("Effect of Distributed Shield Insertion on
Crosstalk in Inductively Coupled VLSI Interconnects") showed that
grounded shields inserted into a switching bus both intercept the
capacitive coupling and provide a close return path for the magnetic
coupling.  This experiment inserts 0, 1 and 2 evenly spread shields
into the same N-line bus on the 250 nm global layer and measures, by
full MNA transient simulation of the whole structure
(:mod:`repro.analysis.bus`):

- the quiet middle victim's coupled noise (positive = capacitive
  signature, negative = inductive),
- the victim's 50% delay switching alone / with / against its
  neighbors, and the resulting worst-pattern push-out,

trading wiring tracks (the cost column) against noise and timing.
"""

from __future__ import annotations

from repro.analysis.bus import shield_tradeoff
from repro.bus.spec import BusSpec
from repro.experiments.common import ExperimentTable, render_table
from repro.technology.nodes import node_by_name
from repro.technology.parasitics import coupling_capacitance_per_length

__all__ = ["make_bus_spec", "run", "main"]


def make_bus_spec(
    node_name: str = "250nm",
    length: float = 8e-3,
    n_lines: int = 6,
    spacing_um: float = 0.8,
    driver_size: float = 150.0,
    n_segments: int = 16,
) -> BusSpec:
    """A minimum-pitch bus on the chosen node's global layer.

    Coupling follows the same geometry model as EXP-X6: sidewall
    capacitance from the parallel-plate estimate at ``spacing_um`` and
    an inductive coefficient decaying with pitch, anchored at
    ``km ~ 0.6`` for minimum spacing.
    """
    node = node_by_name(node_name)
    r, l, c = node.wire_rlc("global")
    geometry = node.global_wire
    spacing = spacing_um * 1e-6
    cct = coupling_capacitance_per_length(
        geometry.thickness, spacing, geometry.eps_r
    ) * length
    pitch = spacing + geometry.width
    km = 0.6 / (1.0 + pitch / (4.0 * geometry.width))
    return BusSpec(
        n_lines=n_lines,
        rt=r * length,
        lt=l * length,
        ct=c * length,
        cct=cct,
        km=km,
        rtr=node.r0 / driver_size,
        cl=node.c0 * driver_size,
        n_segments=n_segments,
    )


def run(
    node_name: str = "250nm",
    length: float = 8e-3,
    n_lines: int = 6,
    shield_counts=(0, 1, 2),
    driver_size: float = 150.0,
    n_segments: int = 16,
    backend: str = "auto",
) -> ExperimentTable:
    """Sweep the shield count; report noise and switching-window metrics."""
    spec = make_bus_spec(
        node_name=node_name,
        length=length,
        n_lines=n_lines,
        driver_size=driver_size,
        n_segments=n_segments,
    )
    rows = []
    for shielded, report in shield_tradeoff(
        spec, shield_counts=shield_counts, backend=backend
    ):
        rows.append(
            (
                report.n_shields,
                shielded.n_physical,
                round(100 * report.victim_peak_noise, 1),
                round(100 * report.victim_min_noise, 1),
                round(report.delay_solo * 1e12, 1),
                round(report.delay_even * 1e12, 1),
                round(report.delay_odd * 1e12, 1),
                round(100 * report.delay_push_out, 1),
            )
        )
    notes = (
        f"{n_lines}-bit bus, {length * 1e3:.0f} mm on the {node_name} "
        f"global layer, h={driver_size:.0f} drivers, victim = middle bit",
        "shields are grounded tracks spread evenly through the bus; the "
        "tracks column is the wiring cost",
        "noise columns: quiet victim, all neighbors rising (positive = "
        "capacitive signature, negative = inductive)",
        "pushout: worst switching-pattern delay over the solo delay",
    )
    return ExperimentTable(
        experiment_id="EXP-X7",
        title="shield insertion vs bus crosstalk (extension study)",
        headers=(
            "shields",
            "tracks",
            "noise+_%",
            "noise-_%",
            "t50_solo_ps",
            "t50_even_ps",
            "t50_odd_ps",
            "pushout_%",
        ),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X7 shield-insertion table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
