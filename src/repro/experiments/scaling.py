"""EXP-X4: penalties grow as technology scales.

The paper's closing claim: "the error between the RC and RLC models
increases as the gate parasitic impedances decrease, which is consistent
with technology scaling trends."  We walk the synthetic node table:
``R0*C0`` shrinks each generation, ``T_{L/R}`` of a fixed thick global
wire rises, and with it the closed-form delay and area penalties (both
penalty columns evaluated in one :mod:`repro.sweep.kernels` batch).
"""

from __future__ import annotations

from repro.analysis.scaling_study import scaling_table
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main"]


def run(layer: str = "global") -> ExperimentTable:
    """Tabulate T_{L/R} and penalties per technology node."""
    rows = tuple(
        (
            row.node,
            round(row.intrinsic_delay * 1e12, 2),
            round(row.tlr, 2),
            round(row.delay_increase_percent, 1),
            round(row.area_increase_percent, 1),
        )
        for row in scaling_table(layer=layer)
    )
    notes = (
        "paper anchor: T_{L/R} ~= 5 'common for a current 0.25 um "
        "technology' -- our synthetic 250nm node lands there by design",
        "penalties are the closed forms (eqs. 17/18) at each node's T",
    )
    return ExperimentTable(
        experiment_id="EXP-X4",
        title="technology scaling -- T_{L/R} and penalties per node",
        headers=("node", "R0C0_ps", "T_L/R", "delay_incr_%", "area_incr_%"),
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X4 technology-scaling table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
