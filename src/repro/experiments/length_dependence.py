"""EXP-X1: quadratic-to-linear delay growth with wire length.

Section II (text): "the traditional quadratic dependence of the
propagation delay on the length of an RC line approaches a linear
dependence as inductance effects increase."  We sweep length on a
realistic global wire at three inductance levels (none, nominal, high)
and report the fitted log-log exponent in short/long-length windows.

Each length sweep is a zipped-axis batch through the
:mod:`repro.sweep` engine (see
:func:`repro.analysis.length_dependence.delay_versus_length`).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.length_dependence import (
    delay_versus_length,
    fitted_length_exponent,
    rc_lc_crossover_length,
)
from repro.experiments.common import ExperimentTable, render_table
from repro.technology.nodes import node_by_name

__all__ = ["run", "main"]


def run(
    node_name: str = "250nm",
    inductance_scales=(1e-6, 1.0, 10.0),
    lengths=None,
) -> ExperimentTable:
    """Regenerate the length-dependence study.

    ``inductance_scales`` multiply the extracted per-unit-length L; the
    near-zero entry emulates the RC modeling convention.
    """
    node = node_by_name(node_name)
    r, l, c = node.wire_rlc("global")
    if lengths is None:
        lengths = np.geomspace(1e-3, 64e-3, 13)  # 1 mm .. 64 mm
    lengths = np.asarray(lengths, dtype=float)
    half = lengths.size // 2

    rows = []
    for scale in inductance_scales:
        # Bare line (no gate impedances): the paper's statement is about
        # the wire's own scaling -- 0.37*R*C*l**2 vs sqrt(L*C)*l.
        delays = delay_versus_length(r, scale * l, c, lengths)
        short_exp = fitted_length_exponent(lengths[:half], delays[:half])
        long_exp = fitted_length_exponent(lengths[half:], delays[half:])
        crossover = rc_lc_crossover_length(r, scale * l, c)
        rows.append(
            (
                f"{scale:g}x L",
                round(short_exp, 3),
                round(long_exp, 3),
                round(crossover * 1e3, 2),
                round(float(delays[0] * 1e12), 1),
                round(float(delays[-1] * 1e12), 1),
            )
        )
    notes = (
        "exponent ~2 = RC diffusion; ~1 = LC flight; higher inductance "
        "pushes the linear regime to longer wires",
        f"wire: {node_name} global layer, bare line (no gate impedances)",
    )
    return ExperimentTable(
        experiment_id="EXP-X1",
        title="delay vs length -- quadratic-to-linear transition",
        headers=(
            "L scale",
            "exp(short)",
            "exp(long)",
            "crossover_mm",
            "t(1mm)_ps",
            "t(64mm)_ps",
        ),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X1 delay-vs-length table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
