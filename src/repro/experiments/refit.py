"""EXP-X5: re-run the paper's curve fits on our own data.

The paper's constants were fitted to AS/X simulations (eq. 9) and to
numerical optimizations (eqs. 14/15).  Re-running the same fits against
*our* simulators closes the methodological loop:

- the eq. 9 template refitted to our simulated scaled delays should land
  near (2.9, 1.35, 1.48) -- it does, because our simulators agree with
  AS/X's physics;
- the eqs. 14/15 template refitted to our numerical error factors lands
  at *different* constants -- consistent with EXP-F4's documented
  deviation, while preserving the functional form.
"""

from __future__ import annotations

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import (
    FIT_EXPONENT_COEFFICIENT,
    FIT_EXPONENT_POWER,
    FIT_LINEAR_COEFFICIENT,
)
from repro.core.fitting import fit_delay_model, fit_error_factor
from repro.core.repeater import numerical_error_factors
from repro.core.simulate import simulated_delay_50
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main", "refit_delay_model", "refit_error_factors"]


def refit_delay_model(
    zeta_values=None,
    ratio: float = 0.5,
    n_segments: int = 120,
):
    """Fit the eq. 9 template to simulated scaled delays.

    Sweeps ``zeta`` at ``RT = CT = ratio`` (mid-band of the paper's
    optimization range).
    """
    if zeta_values is None:
        zeta_values = np.linspace(0.15, 2.5, 24)
    zeta_values = np.asarray(zeta_values, dtype=float)
    scaled = []
    for z in zeta_values:
        line = DriverLineLoad.for_zeta(z, r_ratio=ratio, c_ratio=ratio)
        t50 = simulated_delay_50(line, n_segments=n_segments)
        scaled.append(t50 * line.omega_n)
    return fit_delay_model(zeta_values, np.array(scaled))


def refit_error_factors(tlr_values=None):
    """Fit the eqs. 14/15 template to our numerical error factors."""
    if tlr_values is None:
        tlr_values = np.array([0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0])
    tlr_values = np.asarray(tlr_values, dtype=float)
    h_vals, k_vals = [], []
    for t in tlr_values:
        h_prime, k_prime = numerical_error_factors(float(t))
        h_vals.append(h_prime)
        k_vals.append(k_prime)
    fit_h = fit_error_factor(tlr_values, np.array(h_vals))
    fit_k = fit_error_factor(tlr_values, np.array(k_vals))
    return fit_h, fit_k


def run() -> ExperimentTable:
    """Regenerate all three fits and compare to the published constants."""
    delay_fit = refit_delay_model()
    fit_h, fit_k = refit_error_factors()

    a, b, c = delay_fit.parameters
    rows = (
        (
            "eq9: exp coeff",
            FIT_EXPONENT_COEFFICIENT,
            round(a, 3),
            round(delay_fit.max_relative_error * 100, 2),
        ),
        (
            "eq9: exp power",
            FIT_EXPONENT_POWER,
            round(b, 3),
            round(delay_fit.max_relative_error * 100, 2),
        ),
        (
            "eq9: linear coeff",
            FIT_LINEAR_COEFFICIENT,
            round(c, 3),
            round(delay_fit.max_relative_error * 100, 2),
        ),
        (
            "h': alpha",
            0.16,
            round(fit_h.parameters[0], 3),
            round(fit_h.max_relative_error * 100, 2),
        ),
        (
            "h': beta",
            0.24,
            round(fit_h.parameters[1], 3),
            round(fit_h.max_relative_error * 100, 2),
        ),
        (
            "k': alpha",
            0.18,
            round(fit_k.parameters[0], 3),
            round(fit_k.max_relative_error * 100, 2),
        ),
        (
            "k': beta",
            0.30,
            round(fit_k.parameters[1], 3),
            round(fit_k.max_relative_error * 100, 2),
        ),
    )
    notes = (
        "eq. 9 constants refit on our simulators land near the published "
        "values (same physics); the h'/k' constants land lower, matching "
        "EXP-F4's documented deviation while preserving the 1/(1+aT^3)^b "
        "functional form",
    )
    return ExperimentTable(
        experiment_id="EXP-X5",
        title="curve-fit reproduction -- published vs refit constants",
        headers=("constant", "published", "refit", "fit_max_err_%"),
        rows=rows,
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X5 refit table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
