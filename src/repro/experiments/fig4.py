"""EXP-F4: reproduce Fig. 4 -- repeater error factors h'(T), k'(T).

The paper numerically minimizes the total repeater-system delay and
plots the resulting derating factors ``h' = h_opt/h_rc`` and
``k' = k_opt/k_rc`` against ``T_{L/R}``, with the closed-form fits of
eqs. 14/15 overlaid.

We regenerate both: the published closed forms, and our own numerical
minimization of the paper's stated objective (eq. 19 with eq. 9 section
delays).  The two agree in every qualitative respect (monotone decay
from 1, ``k'`` below ``h'``, both driven by ``T**3``), but the numerical
derating we obtain is shallower than the published fits -- the one
documented deviation of this reproduction; simulation-based arbitration
(EXP-E17 / EXPERIMENTS.md) shows both designs land within a few percent
of the simulated optimum, far ahead of the RC design.
"""

from __future__ import annotations

import numpy as np

from repro.core.repeater import error_factors, numerical_error_factors
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["run", "main"]


def run(tlr_values=None) -> ExperimentTable:
    """Regenerate the Fig. 4 curves (both panels)."""
    if tlr_values is None:
        tlr_values = np.concatenate(([0.25, 0.5], np.arange(1.0, 10.5, 1.0)))
    tlr_values = np.asarray(tlr_values, dtype=float)

    rows = []
    for t in tlr_values:
        h_fit, k_fit = error_factors(float(t))
        h_num, k_num = numerical_error_factors(float(t))
        rows.append(
            (
                round(float(t), 3),
                round(h_num, 4),
                round(h_fit, 4),
                round(k_num, 4),
                round(k_fit, 4),
            )
        )
    notes = (
        "h'_num/k'_num: minimization of eq. 19 with eq. 9 section delays "
        "(this work); h'_eq14/k'_eq15: the paper's published fits",
        "both decay monotonically from 1 with k' < h'; the published fits "
        "derate more aggressively than our optimization of the stated "
        "objective -- see EXPERIMENTS.md for the simulation arbitration",
    )
    return ExperimentTable(
        experiment_id="EXP-F4",
        title="Fig. 4 -- repeater error factors vs T_{L/R}",
        headers=("T_L/R", "h'_num", "h'_eq14", "k'_num", "k'_eq15"),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-F4 error-factor table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
