"""EXP-F2: reproduce Fig. 2 -- scaled delay collapses onto zeta.

The paper plots the simulated scaled delay ``t'_pd`` against ``zeta``
for ``(RT, CT) = (0, 0), (1, 1), (5, 5)``, overlaying eq. 9: the three
families nearly coincide (weak RT/CT dependence) and the fit tracks them
closely in the design-relevant band.

We sweep ``zeta in [0.1, 2]`` (the figure's axis range), synthesizing
for each point a circuit with exactly that ``zeta`` via
:meth:`DriverLineLoad.for_zeta`, and measure the simulated 50% delay.
"""

from __future__ import annotations

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import scaled_delay
from repro.core.simulate import simulated_delay_50
from repro.experiments.common import ExperimentTable, render_table

__all__ = ["RATIO_PAIRS", "run", "main"]

#: The (RT, CT) families of Fig. 2.
RATIO_PAIRS = ((0.0, 0.0), (1.0, 1.0), (5.0, 5.0))


def run(
    zeta_values=None,
    ratio_pairs=RATIO_PAIRS,
    route: str = "tline",
    n_segments: int = 120,
    backend: str = "auto",
    model: str = "full",
) -> ExperimentTable:
    """Regenerate the Fig. 2 series.

    Rows: one per ``zeta`` with the simulated ``t'_pd`` of each (RT, CT)
    family plus the eq. 9 curve and the worst fit error in the
    ``RT, CT in [0, 1]`` band the paper optimized for.  ``model``
    selects the simulation's evaluation tier (``"full"`` |
    ``"reduced"`` | ``"auto"``, MNA route only).
    """
    if zeta_values is None:
        zeta_values = np.linspace(0.1, 2.0, 20)
    zeta_values = np.asarray(zeta_values, dtype=float)

    rows = []
    worst_band_error = 0.0
    worst_loaded_error = 0.0
    for z in zeta_values:
        simulated = []
        for r_ratio, c_ratio in ratio_pairs:
            line = DriverLineLoad.for_zeta(z, r_ratio=r_ratio, c_ratio=c_ratio)
            t50 = simulated_delay_50(
                line, route=route, n_segments=n_segments,
                backend=backend, model=model,
            )
            simulated.append(t50 * line.omega_n)
        eq9 = float(scaled_delay(z))
        band = [
            s
            for s, (r_ratio, c_ratio) in zip(simulated, ratio_pairs)
            if r_ratio <= 1.0 and c_ratio <= 1.0
        ]
        loaded = [
            s
            for s, (r_ratio, c_ratio) in zip(simulated, ratio_pairs)
            if 0.0 < r_ratio <= 1.0 and 0.0 < c_ratio <= 1.0
        ]
        band_error = max(abs(eq9 - s) / s for s in band) * 100.0
        loaded_error = (
            max(abs(eq9 - s) / s for s in loaded) * 100.0 if loaded else 0.0
        )
        worst_band_error = max(worst_band_error, band_error)
        worst_loaded_error = max(worst_loaded_error, loaded_error)
        rows.append(
            (
                round(float(z), 3),
                *(round(s, 4) for s in simulated),
                round(eq9, 4),
                round(band_error, 2),
                round(loaded_error, 2),
            )
        )
    headers = (
        "zeta",
        *(f"sim RT=CT={r:g}" for r, _ in ratio_pairs),
        "eq9",
        "band_err_%",
        "loaded_err_%",
    )
    notes = (
        f"max eq9 error for RT,CT <= 1 families: {worst_band_error:.2f}% "
        "(worst at the bare line's wavefront-limited knee, zeta ~ 0.7)",
        f"max eq9 error for gate-loaded families (0 < RT,CT <= 1): "
        f"{worst_loaded_error:.2f}%",
        "the RT=CT=5 family sits outside the fit's optimized band, as in "
        "the paper's figure",
    )
    return ExperimentTable(
        experiment_id="EXP-F2",
        title="Fig. 2 -- t'_pd vs zeta for three (RT, CT) families",
        headers=headers,
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-F2 scaled-delay-vs-zeta table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
