"""EXP-X8: crosstalk-aware vs single-line repeater insertion (extension).

Not a paper artifact -- the repeater question a bus raises on top of
the paper's single-line answer.  The paper's optimum (eqs. 14, 15)
sizes repeaters for a line's *self* capacitance; on a bus the coupling
capacitance ``Cc`` to each neighbor counts with the Miller factor of
the neighbors' switching pattern (0 even / 1 quiet / 2 odd).  Hybrid
schemes in the literature (e.g. Liu et al., "RIP: An Efficient Hybrid
Repeater Insertion Scheme for Low Power") exploit exactly this
pattern dependence.

This study compares, per switching pattern, the paper's single-line
``(h, k)`` against the crosstalk-aware re-optimization of
:func:`repro.core.repeater.crosstalk_aware_design`, evaluating both
with the eq. 19 delay model on the pattern's effective capacitance and
cross-checking the closed form against the numerical optimum (the same
validation the paper runs in Fig. 4).
"""

from __future__ import annotations

from repro.core.repeater import (
    CoupledRepeaterSystem,
    miller_switch_factor,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.experiments.common import ExperimentTable, render_table
from repro.technology.nodes import node_by_name
from repro.technology.parasitics import coupling_capacitance_per_length

__all__ = ["run", "main"]


def run(
    node_name: str = "250nm",
    length: float = 30e-3,
    spacing_um: float = 0.8,
    patterns=("even", "quiet", "odd"),
    validate_numerically: bool = True,
) -> ExperimentTable:
    """Compare repeater designs per pattern on one bus bit.

    Parameters
    ----------
    node_name, length, spacing_um:
        The bus bit: a ``length`` wire on the node's global layer with
        neighbors at ``spacing_um`` on both sides.
    patterns:
        Neighbor switching patterns to evaluate (``even`` / ``quiet`` /
        ``odd``, or numeric Miller factors).
    validate_numerically:
        Also run the Nelder-Mead optimum on each pattern's effective
        line and report its delay gap to the closed form.
    """
    node = node_by_name(node_name)
    buffer = node.min_buffer()
    line = node.line(length)
    geometry = node.global_wire
    cct = coupling_capacitance_per_length(
        geometry.thickness, spacing_um * 1e-6, geometry.eps_r
    ) * length
    bus_bit = CoupledRepeaterSystem(line, buffer, cct=cct)
    single = optimal_rlc_design(line, buffer)

    rows = []
    for pattern in patterns:
        factor = miller_switch_factor(pattern)
        aware = bus_bit.design(switch_factor=factor)
        t_single = bus_bit.total_delay(single, switch_factor=factor)
        t_aware = bus_bit.total_delay(aware, switch_factor=factor)
        penalty = 100.0 * (t_single - t_aware) / t_aware
        area_ratio = aware.area(buffer) / single.area(buffer)
        if validate_numerically:
            numerical = numerical_optimal_design(
                bus_bit.effective_line(factor), buffer
            )
            t_numerical = bus_bit.total_delay(numerical, switch_factor=factor)
            gap = 100.0 * (t_aware - t_numerical) / t_numerical
        else:
            gap = float("nan")
        rows.append(
            (
                str(getattr(pattern, "value", pattern)),
                round(factor, 2),
                round(aware.h, 1),
                round(aware.k, 2),
                round(t_single * 1e12, 1),
                round(t_aware * 1e12, 1),
                round(penalty, 1),
                round(area_ratio, 2),
                round(gap, 2),
            )
        )
    tlr = (line.lt / line.rt) / buffer.intrinsic_delay
    notes = (
        f"{length * 1e3:.0f} mm bus bit on the {node_name} global layer, "
        f"Cc = {cct * 1e12:.2f} pF/side at {spacing_um:g} um spacing, "
        f"T_L/R = {tlr:.1f}",
        f"single-line optimum (eqs. 14/15, coupling ignored): "
        f"h = {single.h:.1f}, k = {single.k:.2f}",
        "penalty_%: extra delay of the single-line (h, k) under the "
        "pattern's effective capacitance",
        "fit_gap_%: closed-form delay over the numerical optimum of the "
        "effective line (Fig. 4-style validation); identical across "
        "patterns because the gap depends only on T_L/R (paper appendix, "
        "eq. 28), which the coupling capacitance does not enter",
    )
    return ExperimentTable(
        experiment_id="EXP-X8",
        title="bus repeater insertion vs the single-line optimum "
        "(extension study)",
        headers=(
            "pattern",
            "miller",
            "h_aware",
            "k_aware",
            "t_single_ps",
            "t_aware_ps",
            "penalty_%",
            "area_x",
            "fit_gap_%",
        ),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X8 bus repeater comparison table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
