"""EXP-X9: H-tree sink skew vs repeater insertion (extension).

Not a paper artifact -- the clock-distribution scenario the new
:mod:`repro.topology` generators unlock.  A symmetric H-tree delivers
the clock to every sink with (ideally) zero skew; in practice one sink
is often heavier than the rest (a hungry local clock gater, a bigger
latch bank), and the shared upstream wire lets that one load slow
*every* sink while still skewing its own branch the most.  The classic
fix is repeater insertion at the branch points: each repeater isolates
its subtree, so upstream delay is shared exactly and the load
imbalance is confined to the heavy sink's own (short) branch wire.

Four scenarios on the chosen technology node's global layer, all
simulated by full MNA transients of the generated topologies:

- ``flat``            -- one driver, passive tree, symmetric loads;
- ``flat+heavy``      -- same tree, one sink ``heavy_weight`` x larger;
- ``repeatered``      -- repeaters at the level-1 branch points; each
  stage simulated separately and path delays added per sink (the
  standard stage-decoupling approximation);
- ``repeatered+heavy``-- repeatered tree with the same heavy sink.

Reported per scenario: min/max sink delay and the skew (max - min).
The headline comparison is ``flat+heavy`` vs ``repeatered+heavy``:
repeaters cut the load-imbalance skew by confining it to the last
stage.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.experiments.common import ExperimentTable, render_table
from repro.spice.netlist import Circuit, Step
from repro.spice.parser import suggest_transient_window
from repro.spice.transient import simulate_transient
from repro.technology.nodes import node_by_name
from repro.topology import HTreeSpec, add_rlc_line, build_htree_circuit

__all__ = ["make_tree_spec", "run", "main"]


def make_tree_spec(
    node_name: str = "250nm",
    span: float = 4e-3,
    levels: int = 2,
    driver_size: float = 120.0,
    sink_size: float = 30.0,
    n_segments: int = 4,
    sink_cl_weights: tuple[float, ...] | None = None,
) -> HTreeSpec:
    """An H-tree on the node's global layer spanning ``span`` meters.

    The trunk is half the span; each level halves the wire length
    (``length_ratio = 0.5``), so the driver-to-sink wire totals
    ``span/2 + span/4 + ...`` approach ``span``.  Driver and sink
    loads come from the node's buffer parameters (``r0 / driver_size``
    and ``c0 * sink_size``), keeping every physical value derived from
    the technology description.
    """
    node = node_by_name(node_name)
    r, l, c = node.wire_rlc("global")
    trunk = span / 2.0
    return HTreeSpec(
        levels=levels,
        rt=r * trunk,
        lt=l * trunk,
        ct=c * trunk,
        rtr=node.r0 / driver_size,
        cl=node.c0 * sink_size,
        n_segments=n_segments,
        sink_cl_weights=sink_cl_weights,
    )


def _sink_delays(
    circuit: Circuit, sinks, backend: str = "auto"
) -> dict[str, float]:
    """Per-sink 50% delays of one transient run over ``circuit``."""
    t_stop, dt = suggest_transient_window(circuit)
    result = simulate_transient(circuit, t_stop, dt, backend=backend)
    return {s: result.voltage(s).delay_50() for s in sinks}


def _repeater_stage2(
    spec: HTreeSpec,
    repeater_size: float,
    node_name: str,
    weights: tuple[float, float],
    backend: str,
) -> dict[str, float]:
    """Delays of one repeater's 2-sink subtree (built incrementally).

    The subtree branches immediately at the repeater output (no trunk),
    so it is stamped directly with :func:`~repro.topology.add_rlc_line`
    -- the per-branch wires are the tree's level-``levels`` wires.
    """
    node = node_by_name(node_name)
    scale = spec.length_ratio**spec.levels
    ckt = Circuit("repeater stage-2 subtree")
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, 1.0))
    ckt.add_resistor("rdrv", "in", "hub", node.r0 / repeater_size)
    for j, weight in enumerate(weights):
        add_rlc_line(
            ckt,
            f"b{j}",
            "hub",
            f"s{j}",
            spec.rt * scale,
            spec.lt * scale,
            spec.ct * scale,
            spec.n_segments,
        )
        ckt.add_capacitor(f"cl{j}", f"s{j}", "0", spec.cl * weight)
    return _sink_delays(ckt, [f"s{j}" for j in range(len(weights))], backend)


def _repeatered_delays(
    spec: HTreeSpec,
    repeater_size: float,
    node_name: str,
    backend: str,
) -> dict[str, float]:
    """Per-sink path delays with repeaters at the level-1 branch points.

    Stage 1 is the trunk + level-1 wires loaded by the repeater input
    capacitances (an ``levels=1`` H-tree); stage 2 is each repeater
    driving its own 2-sink subtree.  Path delay = stage-1 delay at the
    repeater's branch point + stage-2 delay at the sink, the standard
    decoupled-stage approximation for repeatered nets.
    """
    if spec.levels != 2:
        raise ParameterError(
            f"repeater insertion is modeled at the level-1 branch points "
            f"of a levels=2 tree, got levels={spec.levels}"
        )
    node = node_by_name(node_name)
    stage1 = HTreeSpec(
        levels=1,
        rt=spec.rt,
        lt=spec.lt,
        ct=spec.ct,
        rtr=spec.rtr,
        cl=node.c0 * repeater_size,
        n_segments=spec.n_segments,
        length_ratio=spec.length_ratio,
    )
    stage1_delays = _sink_delays(
        build_htree_circuit(stage1), stage1.sink_nodes, backend
    )
    weights = spec.sink_cl_weights or (1.0,) * 4
    delays = {}
    for branch, (w_even, w_odd) in zip(
        ("b0", "b1"), (weights[0:2], weights[2:4])
    ):
        stage2 = _repeater_stage2(
            spec, repeater_size, node_name, (w_even, w_odd), backend
        )
        for j, sub_sink in enumerate(("s0", "s1")):
            sink = branch + str(j)
            delays[sink] = stage1_delays[branch] + stage2[sub_sink]
    return delays


def run(
    node_name: str = "250nm",
    span: float = 4e-3,
    driver_size: float = 120.0,
    sink_size: float = 30.0,
    repeater_sizes=(60.0, 120.0, 240.0),
    heavy_weight: float = 3.0,
    n_segments: int = 4,
    backend: str = "auto",
) -> ExperimentTable:
    """Flat vs repeatered H-tree under a heavy sink, vs repeater size.

    The flat rows set the baseline (balanced tree: zero skew; heavy
    sink: the skew to beat).  The repeatered rows re-run the heavy
    scenario with branch-point repeaters of increasing strength: weak
    repeaters *add* skew (their own resistance multiplies the load
    imbalance), strong ones isolate the subtrees and push the skew well
    below the flat tree -- at the price of total path delay.  The table
    exposes that tradeoff directly.
    """
    heavy = (heavy_weight,) + (1.0,) * 3
    scenarios = []

    def add_row(label, repeater, delays) -> None:
        values = list(delays.values())
        t_min, t_max = min(values), max(values)
        scenarios.append(
            (
                label,
                repeater,
                round(t_min * 1e12, 1),
                round(t_max * 1e12, 1),
                round((t_max - t_min) * 1e12, 2),
            )
        )

    for label, weights in (("flat", None), ("flat+heavy", heavy)):
        spec = make_tree_spec(
            node_name=node_name,
            span=span,
            levels=2,
            driver_size=driver_size,
            sink_size=sink_size,
            n_segments=n_segments,
            sink_cl_weights=weights,
        )
        add_row(
            label,
            "-",
            _sink_delays(build_htree_circuit(spec), spec.sink_nodes, backend),
        )
    heavy_spec = make_tree_spec(
        node_name=node_name,
        span=span,
        levels=2,
        driver_size=driver_size,
        sink_size=sink_size,
        n_segments=n_segments,
        sink_cl_weights=heavy,
    )
    for size in repeater_sizes:
        add_row(
            "repeatered+heavy",
            f"h={size:g}",
            _repeatered_delays(heavy_spec, float(size), node_name, backend),
        )
    notes = (
        f"levels=2 H-tree (4 sinks) spanning {span * 1e3:.0f} mm on the "
        f"{node_name} global layer; h={driver_size:.0f} driver, "
        f"h={sink_size:.0f} sinks",
        f"heavy rows load sink b00 with {heavy_weight:g}x the nominal "
        "capacitance",
        "repeatered rows insert repeaters at the level-1 branch points; "
        "path delay = sum of decoupled stage delays",
        "skew = max - min sink delay; strong repeaters isolate the "
        "heavy subtree (skew below the flat tree), weak ones amplify "
        "the imbalance through their own resistance",
    )
    return ExperimentTable(
        experiment_id="EXP-X9",
        title="H-tree sink skew vs repeater insertion (extension study)",
        headers=(
            "scenario",
            "repeater",
            "t50_min_ps",
            "t50_max_ps",
            "skew_ps",
        ),
        rows=tuple(scenarios),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-X9 H-tree skew table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
