"""EXP-T1: reproduce Table 1 -- eq. 9 vs dynamic circuit simulation.

The paper sweeps ``RT in {0.1, 0.5, 1.0}`` (rows), ``CT in {0.1, 0.5,
1.0}`` (columns) and ``Lt in {1e-5 .. 1e-8} H`` with ``Ct = 1 pF`` and
``Rtr = 500 ohm``, comparing the eq. 9 delay against AS/X simulations;
every error is below 5%.  We regenerate the same 36-cell sweep with our
simulator standing in for AS/X.

Provenance note: the printed first row group of the paper's table is
internally consistent only with ``Rt = 1000 ohm`` (i.e. ``Rtr = 100``)
rather than the caption's ``Rtr/RT = 5000``; we sweep the caption's
stated parameters and verify the *claim* (model within ~5% of
simulation) rather than the anomalous printed cells.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.core.simulate import simulated_delay_50
from repro.experiments.common import ExperimentTable, render_table
from repro.units import PS

__all__ = [
    "RT_VALUES",
    "CT_VALUES",
    "LT_VALUES",
    "CT_TOTAL",
    "RTR",
    "build_case",
    "run",
    "main",
]

RT_VALUES = (0.1, 0.5, 1.0)
CT_VALUES = (0.1, 0.5, 1.0)
LT_VALUES = (1e-5, 1e-6, 1e-7, 1e-8)
CT_TOTAL = 1e-12  # paper: Ct = 1 pF
RTR = 500.0  # paper: Rtr = 500 ohm


def build_case(r_ratio: float, c_ratio: float, lt: float) -> DriverLineLoad:
    """One Table 1 cell as a circuit (``Rt = Rtr / RT``)."""
    rt = RTR / r_ratio
    return DriverLineLoad(
        rt=rt, lt=lt, ct=CT_TOTAL, rtr=RTR, cl=c_ratio * CT_TOTAL
    )


def run(
    route: str = "statespace",
    n_segments: int = 150,
    rt_values=RT_VALUES,
    ct_values=CT_VALUES,
    lt_values=LT_VALUES,
    backend: str = "auto",
    model: str = "full",
) -> ExperimentTable:
    """Regenerate Table 1; returns model/simulated delay and error rows.

    ``model`` selects the evaluation tier of the simulation reference
    (``"full"`` | ``"reduced"`` | ``"auto"``, MNA route only) -- see
    :mod:`repro.rom`.
    """
    rows = []
    worst = 0.0
    for r_ratio in rt_values:
        for lt in lt_values:
            for c_ratio in ct_values:
                line = build_case(r_ratio, c_ratio, lt)
                eq9 = propagation_delay(line)
                sim = simulated_delay_50(
                    line, route=route, n_segments=n_segments,
                    backend=backend, model=model,
                )
                error = 100.0 * abs(eq9 - sim) / sim
                worst = max(worst, error)
                rows.append(
                    (
                        r_ratio,
                        c_ratio,
                        lt,
                        round(line.zeta, 4),
                        round(eq9 / PS, 1),
                        round(sim / PS, 1),
                        round(error, 2),
                    )
                )
    notes = (
        f"max |eq9 - simulation| error: {worst:.2f}% "
        f"(paper claims < 5% vs AS/X)",
        f"simulator route: {route}, {n_segments} PI segments",
    )
    return ExperimentTable(
        experiment_id="EXP-T1",
        title="Table 1 -- eq. 9 vs dynamic simulation (Ct=1pF, Rtr=500)",
        headers=("RT", "CT", "Lt_H", "zeta", "eq9_ps", "sim_ps", "err_%"),
        rows=tuple(rows),
        notes=notes,
    )


def main() -> None:
    """Render the EXP-T1 delay-comparison table."""
    print(render_table(run()))


if __name__ == "__main__":
    main()
