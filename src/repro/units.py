"""SI unit constants and formatting helpers.

Everything inside the library is strict SI: ohms, henries, farads, seconds,
meters, watts.  These constants exist so that call sites can write
``500 * OHM`` or ``1 * PF`` instead of bare magic numbers, and so that
values can be pretty-printed back in engineering notation.

Example
-------
>>> from repro.units import PF, OHM, format_si
>>> ct = 1 * PF
>>> format_si(ct, "F")
'1 pF'
>>> format_si(500 * OHM, "Ohm")
'500 Ohm'
"""

from __future__ import annotations

import math

__all__ = [
    # base multipliers
    "ATTO", "FEMTO", "PICO", "NANO", "MICRO", "MILLI", "UNIT",
    "KILO", "MEGA", "GIGA", "TERA",
    # resistance
    "OHM", "MILLIOHM", "KILOOHM", "MEGAOHM",
    # capacitance
    "FARAD", "AF", "FF", "PF", "NF", "UF",
    # inductance
    "HENRY", "FH", "PH", "NH", "UH",
    # time
    "SECOND", "FS", "PS", "NS", "US", "MS",
    # length
    "METER", "NM", "UM", "MM", "CM",
    # frequency
    "HZ", "KHZ", "MHZ", "GHZ",
    # voltage / power
    "VOLT", "MV", "WATT", "MW", "UW",
    # helpers
    "si_scale", "format_si", "format_percent",
]

# --- base multipliers --------------------------------------------------------

ATTO = 1e-18
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
UNIT = 1.0
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

# --- resistance --------------------------------------------------------------

OHM = UNIT
MILLIOHM = MILLI
KILOOHM = KILO
MEGAOHM = MEGA

# --- capacitance -------------------------------------------------------------

FARAD = UNIT
AF = ATTO
FF = FEMTO
PF = PICO
NF = NANO
UF = MICRO

# --- inductance --------------------------------------------------------------

HENRY = UNIT
FH = FEMTO
PH = PICO
NH = NANO
UH = MICRO

# --- time --------------------------------------------------------------------

SECOND = UNIT
FS = FEMTO
PS = PICO
NS = NANO
US = MICRO
MS = MILLI

# --- length ------------------------------------------------------------------

METER = UNIT
NM = NANO
UM = MICRO
MM = MILLI
CM = 1e-2

# --- frequency ---------------------------------------------------------------

HZ = UNIT
KHZ = KILO
MHZ = MEGA
GHZ = GIGA

# --- voltage / power ---------------------------------------------------------

VOLT = UNIT
MV = MILLI
WATT = UNIT
MW = MILLI
UW = MICRO

_SI_PREFIXES = (
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
)


def si_scale(value: float) -> tuple[float, str]:
    """Return ``(scaled, prefix)`` so that ``scaled`` lies in [1, 1000).

    Zero, NaN and infinities are returned unscaled with an empty prefix.

    >>> si_scale(2.2e-12)
    (2.2, 'p')
    """
    if value == 0 or not math.isfinite(value):
        return value, ""
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            return value / scale, prefix
    # Smaller than every listed prefix: report in atto.
    return value / 1e-18, "a"


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    ``digits`` controls the number of significant digits.

    >>> format_si(1.48e-9, 's')
    '1.48 ns'
    """
    scaled, prefix = si_scale(value)
    text = f"{scaled:.{digits}g}"
    suffix = f" {prefix}{unit}".rstrip()
    return f"{text}{suffix}" if suffix else text


def format_percent(fraction: float, digits: int = 3) -> str:
    """Format a fraction (0.05) as a percentage string ('5%').

    >>> format_percent(0.0534)
    '5.34%'
    """
    return f"{100.0 * fraction:.{digits}g}%"
