"""Asymptotic Waveform Evaluation: arbitrary-order moment matching.

The strongest pre-existing alternative to the paper's closed form:
AWE (Pillage & Rohrer, 1990) matches the first ``2q`` Maclaurin moments
of the transfer function with a ``q``-pole reduced-order model

    H(s) ~= sum_j  r_j / (s - p_j),

then reads timing off the analytic step response.  It is exact for
lumped RC trees at modest order but famously fragile as ``q`` grows
(the Hankel systems are ill-conditioned and can deliver unstable,
right-half-plane poles).  Here it runs on the *exact* moments of the
distributed driver/line/load system (paper eq. 7 series), providing the
ablation ladder Elmore (q=1-ish) -> two-pole -> AWE-q -> eq. 9 used by
experiment EXP-X3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.errors import AnalysisError, ParameterError
from repro.tline.transfer import transfer_moments

__all__ = ["ReducedOrderModel", "awe_reduce", "awe_delay_50"]

#: Condition-number ceiling for the moment Hankel solve.  At or beyond
#: ``1/eps`` a double-precision solve has no correct digits, so the
#: build refuses with a clear :class:`~repro.errors.AnalysisError`
#: instead of delivering NaN or spurious poles; in practice this caps
#: usable AWE orders at roughly ``q <= 8`` for Table 1-like lines.
_HANKEL_COND_LIMIT = 1.0 / np.finfo(float).eps


@dataclass(frozen=True)
class ReducedOrderModel:
    """A pole/residue model matched to transfer-function moments.

    ``poles`` and ``residues`` are complex arrays of equal length ``q``
    (complex poles appear in conjugate pairs); the model's unit-step
    response is ``1 + sum_j (r_j / p_j) * exp(p_j * t)``.
    """

    poles: np.ndarray
    residues: np.ndarray

    @property
    def order(self) -> int:
        """Number of poles ``q``."""
        return self.poles.size

    @property
    def is_stable(self) -> bool:
        """True when every pole lies strictly in the left half plane."""
        return bool(np.all(self.poles.real < 0))

    def step_response(self, times) -> np.ndarray:
        """Analytic unit-step response at the requested times."""
        t = np.asarray(times, dtype=float)
        coeffs = self.residues / self.poles
        # exp over the outer product (len(t) x q); result is real for
        # conjugate-symmetric pole sets (imaginary residue is ~1e-16).
        waves = np.exp(np.outer(t, self.poles))
        return 1.0 + np.real(waves @ coeffs)

    def transfer_at(self, s) -> np.ndarray:
        """Evaluate the reduced model ``sum r_j/(s - p_j)``."""
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        return (self.residues[None, :] / (s[:, None] - self.poles[None, :])).sum(
            axis=1
        )


def awe_reduce(line: DriverLineLoad, q: int = 3) -> ReducedOrderModel:
    """Build a ``q``-pole AWE model of the Fig. 1 circuit.

    Parameters
    ----------
    line:
        The driver/line/load instance.
    q:
        Model order (number of poles).  2-4 is the practical range and
        roughly 1-8 the valid one: the moment Hankel matrix's condition
        number grows geometrically with ``q`` (moments span many
        decades), so double precision runs out near order 8 and the
        guards below reject the solve rather than return NaN poles.
        Projection-based reduction (:mod:`repro.rom`) is the right tool
        for higher orders -- its Krylov bases never form moment
        products, which is exactly why PRIMA superseded raw AWE.

    Raises
    ------
    AnalysisError
        If the Hankel system is singular or numerically unusable
        (condition beyond double precision, non-finite solve output) or
        the matched model is unstable (right-half-plane poles) -- AWE's
        classic failure modes, surfaced as clear errors rather than
        silently returned garbage.
    """
    if not isinstance(q, int) or q < 1:
        raise ParameterError(f"q must be a positive integer, got {q!r}")
    # Moments m_0 .. m_{2q-1} of H(s) (m_0 = 1).
    m = transfer_moments(line.rt, line.lt, line.ct, line.rtr, line.cl,
                         order=2 * q - 1)
    if not np.all(np.isfinite(m)):
        raise AnalysisError(
            f"AWE order {q}: non-finite transfer moments (the eq. 7 series "
            "overflows at this order); reduce the order"
        )

    # Equilibrate before judging conditioning: moment k scales like
    # (circuit time constant)^k, so the raw Hankel mixes ~q decades of
    # magnitude and its condition number reads as astronomic even at
    # orders where the solve is numerically fine.  Working in the
    # scaled frequency sigma = s * theta (theta ~ |m_1|, the dominant
    # time constant) makes the scaled moments O(1) and the remaining
    # condition growth is the *intrinsic* Hankel ill-conditioning --
    # the thing that genuinely caps AWE.
    theta = float(abs(m[1])) if q > 1 and m[1] != 0.0 else 1.0
    # theta^k itself can overflow at extreme orders; the isfinite check
    # below turns the resulting inf/nan into the clear error.
    with np.errstate(over="ignore", invalid="ignore"):
        ms = m / theta ** np.arange(2 * q, dtype=float)
    if not np.all(np.isfinite(ms)):
        raise AnalysisError(
            f"AWE order {q}: transfer moments span too many decades to "
            "scale in double precision; reduce the order"
        )

    # Denominator: sum_{i=1..q} b_i m_{k-i} = -m_k for k = q .. 2q-1,
    # solved in scaled moments (beta_i = b_i / theta^i).
    hankel = np.empty((q, q))
    rhs = np.empty(q)
    for row, k in enumerate(range(q, 2 * q)):
        hankel[row] = [ms[k - i] for i in range(1, q + 1)]
        rhs[row] = -ms[k]
    # np.linalg.solve only raises on *exact* singularity; an
    # ill-conditioned Hankel solve "succeeds" with garbage digits and
    # surfaces later as spurious poles.  Reject it up front -- with
    # cond >= 1/eps there are no correct digits left in the result.
    cond = np.linalg.cond(hankel)
    if not np.isfinite(cond) or cond >= _HANKEL_COND_LIMIT:
        raise AnalysisError(
            f"AWE order {q}: moment matrix condition {cond:.3g} exceeds "
            f"double precision (limit {_HANKEL_COND_LIMIT:.3g}); the Hankel "
            "ill-conditioning that caps AWE at roughly order 8 -- reduce "
            "the order (or use the repro.rom projection tier)"
        )
    try:
        beta = np.linalg.solve(hankel, rhs)
    except np.linalg.LinAlgError as exc:
        raise AnalysisError(
            f"AWE order {q}: singular moment matrix (try a lower order)"
        ) from exc
    if not np.all(np.isfinite(beta)):
        raise AnalysisError(
            f"AWE order {q}: denominator solve produced non-finite "
            "coefficients; reduce the order"
        )

    # Poles: roots of 1 + beta_1 sigma + ... + beta_q sigma^q in the
    # scaled frequency, mapped back by sigma = s * theta.
    poly = np.concatenate(([1.0], beta))  # ascending
    poles = np.roots(poly[::-1]) / theta
    if not np.all(np.isfinite(poles)):
        raise AnalysisError(
            f"AWE order {q}: non-finite poles from the characteristic "
            "polynomial; reduce the order"
        )
    if np.any(poles.real >= 0):
        raise AnalysisError(
            f"AWE order {q} produced unstable poles "
            f"(max Re = {poles.real.max():.3g}); the classic AWE failure -- "
            "reduce the order"
        )

    # Residues from the first q moments: m_k = -sum_j r_j / p_j^(k+1).
    vander = np.empty((q, q), dtype=complex)
    for k in range(q):
        vander[k] = -(poles ** -(k + 1.0))
    try:
        residues = np.linalg.solve(vander, m[:q].astype(complex))
    except np.linalg.LinAlgError as exc:
        raise AnalysisError(f"AWE order {q}: residue solve failed") from exc
    if not np.all(np.isfinite(residues)):
        raise AnalysisError(
            f"AWE order {q}: residue solve produced non-finite values; "
            "reduce the order"
        )
    return ReducedOrderModel(poles=poles, residues=residues)


def awe_delay_50(line: DriverLineLoad, q: int = 3) -> float:
    """50% delay of the order-``q`` AWE model (seconds).

    The analytic step response is scanned for its first upward 0.5
    crossing and refined by bisection.
    """
    model = awe_reduce(line, q)
    # Time scale: slowest pole sets the tail; fastest sets the rise.
    slowest = 1.0 / np.min(np.abs(model.poles.real))
    grid = np.linspace(0.0, 40.0 * slowest, 8192)
    values = model.step_response(grid)
    above = values >= 0.5
    hits = np.nonzero(above[1:] & ~above[:-1])[0]
    if hits.size == 0 and not above[0]:
        raise AnalysisError(
            f"AWE order {q} response never reaches 50% in the scan window"
        )
    i = int(hits[0]) if hits.size else 0
    lo, hi = grid[i], grid[i + 1]
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if float(model.step_response(np.array([mid]))[0]) >= 0.5:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)
