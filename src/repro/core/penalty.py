"""The cost of designing repeaters with an RC model on an RLC line.

Section III of the paper quantifies what happens when inductance is
ignored: Bakoglu's RC solution inserts *too many, too large* repeaters.
Relative to the RLC-aware optimum this costs delay (eq. 16/17), area
(eq. 18) and power.  All three penalties are functions of the single
parameter ``T_{L/R}`` (eq. 13).

Headline anchors reproduced by experiments EXP-E17 / EXP-E18:

====  ============  ===========
T      delay incr.   area incr.
====  ============  ===========
3      ~10%          154%
5      ~20%          435%
10     ~30% (sat.)   --
====  ============  ===========
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.repeater import (
    Buffer,
    RepeaterDesign,
    RepeaterSystem,
    bakoglu_rc_design,
    normalized_system,
    numerical_optimal_design,
    optimal_rlc_design,
)
from repro.errors import ParameterError

__all__ = [
    "delay_increase_closed_form",
    "delay_increase_numerical",
    "area_increase_closed_form",
    "area_increase_from_designs",
    "power_increase",
]


def delay_increase_closed_form(tlr):
    """Percent total-delay increase from RC-based insertion (eq. 17).

    ``%increase = 30*T / (0.5 + T + 23*exp(-0.48*T) + 10*exp(-4*T))``
    with ``T`` the dimensionless ``T_{L/R}`` of eq. 13 (>= 0); the
    result is a percentage.  Zero at ``T = 0``, saturating at 30% for
    large ``T``; ~10/20/28% at ``T = 3/5/10`` (the paper rounds the
    last to 30%).  The fit tracks the eq. 16 evaluation over the
    Fig. 5 range (``T`` up to ~10).  Accepts arrays; the computation
    is :func:`repro.sweep.kernels.batch_delay_increase_percent`.
    """
    from repro.sweep.kernels import batch_delay_increase_percent

    result = batch_delay_increase_percent(tlr)
    return float(result) if np.ndim(tlr) == 0 else result


def delay_increase_numerical(tlr: float, use_numerical_optimum: bool = False) -> float:
    """Percent delay increase evaluated from the delay model (eq. 16).

    Builds the normalized system for ``T_{L/R} = tlr``, evaluates the
    total delay with Bakoglu's RC ``(h, k)`` and with the RLC-aware
    ``(h, k)``, and returns ``100 * (t_RC - t_RLC) / t_RLC``.

    Parameters
    ----------
    tlr:
        The inductance time ratio.
    use_numerical_optimum:
        If True, the RLC design is the true numerical optimum rather
        than the closed-form fit of eqs. 14/15 (slower, marginally
        smaller denominator).
    """
    if tlr <= 0 or not math.isfinite(tlr):
        raise ParameterError(f"tlr must be positive and finite, got {tlr!r}")
    line, buffer = normalized_system(tlr)
    system = RepeaterSystem(line, buffer)
    rc_design = bakoglu_rc_design(line, buffer)
    if use_numerical_optimum:
        rlc_design = numerical_optimal_design(line, buffer)
    else:
        rlc_design = optimal_rlc_design(line, buffer)
    t_rc = system.total_delay(rc_design)
    t_rlc = system.total_delay(rlc_design)
    return 100.0 * (t_rc - t_rlc) / t_rlc


def area_increase_closed_form(tlr):
    """Percent repeater-area increase from RC-based insertion (eq. 18).

    ``%AI = 100 * ((1 + 0.18*T**3)**0.3 * (1 + 0.16*T**3)**0.24 - 1)``
    with ``T`` the dimensionless ``T_{L/R}`` of eq. 13 (>= 0); the
    result is a percentage.  The exact consequence of eqs. 14/15,
    since ``A_RC / A_RLC = 1 / (h' * k')``; valid wherever those fits
    are (``T`` up to ~7, Fig. 4).  154% at ``T = 3``, 435% at
    ``T = 5``.  Accepts arrays; the computation is
    :func:`repro.sweep.kernels.batch_area_increase_percent`.
    """
    from repro.sweep.kernels import batch_area_increase_percent

    result = batch_area_increase_percent(tlr)
    return float(result) if np.ndim(tlr) == 0 else result


def area_increase_from_designs(
    rc_design: RepeaterDesign, rlc_design: RepeaterDesign, buffer: Buffer
) -> float:
    """Percent area increase ``100 * (A_RC - A_RLC) / A_RLC``."""
    a_rc = rc_design.area(buffer)
    a_rlc = rlc_design.area(buffer)
    if a_rlc <= 0:
        raise ParameterError("RLC design area must be positive")
    return 100.0 * (a_rc - a_rlc) / a_rlc


def power_increase(
    tlr: float,
    line=None,
    buffer: Buffer | None = None,
    include_wire: bool = True,
) -> float:
    """Percent dynamic-power increase of RC-based over RLC-based insertion.

    The paper argues qualitatively that the RC design "is expected to
    consume much more power" because of its extra repeater area; this
    quantifies it.  Power follows switched capacitance; with the
    (design-independent) wire capacitance included the percentage is
    diluted relative to the area penalty, with ``include_wire=False`` it
    equals the area penalty exactly (buffer caps scale with ``h*k``).

    A concrete ``(line, buffer)`` may be supplied; otherwise the
    normalized system for ``tlr`` is used.
    """
    if line is None or buffer is None:
        line, buffer = normalized_system(tlr)
    system = RepeaterSystem(line, buffer)
    rc = bakoglu_rc_design(line, buffer)
    rlc = optimal_rlc_design(line, buffer)
    c_rc = system.switched_capacitance(rc, include_wire=include_wire)
    c_rlc = system.switched_capacitance(rlc, include_wire=include_wire)
    return 100.0 * (c_rc - c_rlc) / c_rlc
