"""Moment-matching baselines: Elmore delay and the two-pole model.

Standard EDA practice before (and mostly after) this paper estimated
interconnect delay from the low-order moments of the transfer function:

- the **Elmore delay** [13] is the first moment ``a1`` of the denominator
  series (equivalently minus the first moment of ``H``), with the classic
  50% estimate ``t50 ~= ln(2) * a1``;
- the **two-pole model** keeps ``a1`` and ``a2`` and solves the resulting
  second-order step response for its 50% crossing, capturing some
  inductive (complex-pole) behaviour.

Both are implemented on the *exact* series coefficients of the
distributed line (paper eq. 7, computed in
:func:`repro.tline.transfer.denominator_coefficients`), so the comparison
with eq. 9 and with full simulation (experiment EXP-X3) isolates modeling
error rather than moment-computation error.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from repro.core.canonical import DriverLineLoad
from repro.errors import AnalysisError
from repro.tline.transfer import denominator_coefficients

__all__ = [
    "LN2",
    "elmore_delay",
    "elmore_delay_50",
    "two_pole_coefficients",
    "two_pole_step_response",
    "two_pole_delay_50",
]

LN2 = math.log(2.0)


def elmore_delay(line: DriverLineLoad) -> float:
    """First moment of the driver/line/load response (seconds).

    ``a1 = Rtr*CL + Rt*Ct/2 + Rt*CL + Rtr*Ct`` -- the sum of every
    resistance times all downstream capacitance, with the distributed
    line contributing ``Rt*Ct/2``.
    """
    return (
        line.rtr * line.cl
        + 0.5 * line.rt * line.ct
        + line.rt * line.cl
        + line.rtr * line.ct
    )


def elmore_delay_50(line: DriverLineLoad) -> float:
    """Classic 50% estimate ``ln(2) * a1`` (single-pole approximation).

    Ignores inductance entirely -- the RC baseline the paper argues
    against for inductive lines.
    """
    return LN2 * elmore_delay(line)


def two_pole_coefficients(line: DriverLineLoad) -> tuple[float, float]:
    """Exact ``(a1, a2)`` of the denominator series ``1 + a1 s + a2 s^2``.

    Unlike the Elmore term, ``a2`` carries the inductance (``Lt``
    appears in the ``s**2`` coefficient of the line's ``theta**2``).
    """
    coeffs = denominator_coefficients(
        line.rt, line.lt, line.ct, line.rtr, line.cl, order=2
    )
    return float(coeffs[1]), float(coeffs[2])


def two_pole_step_response(line: DriverLineLoad, times) -> np.ndarray:
    """Unit-step response of the truncated model ``1/(1 + a1 s + a2 s^2)``.

    Evaluated in closed form from the pole pair (real or complex).
    """
    a1, a2 = two_pole_coefficients(line)
    t = np.asarray(times, dtype=float)
    if a2 <= 0:
        # Degenerate single-pole case (no inductance and tiny line).
        if a1 <= 0:
            raise AnalysisError("two-pole model degenerate: a1, a2 <= 0")
        return 1.0 - np.exp(-t / a1)
    disc = a1 * a1 - 4.0 * a2
    if disc >= 0:
        # Overdamped: two real poles p1, p2 < 0.
        sq = math.sqrt(disc)
        p1 = (-a1 + sq) / (2.0 * a2)
        p2 = (-a1 - sq) / (2.0 * a2)
        if p1 == p2:
            return 1.0 - np.exp(p1 * t) * (1.0 - p1 * t)
        return 1.0 - (p2 * np.exp(p1 * t) - p1 * np.exp(p2 * t)) / (p2 - p1)
    # Underdamped: sigma +- j*omega_d.
    sigma = a1 / (2.0 * a2)
    omega_d = math.sqrt(-disc) / (2.0 * a2)
    return 1.0 - np.exp(-sigma * t) * (
        np.cos(omega_d * t) + (sigma / omega_d) * np.sin(omega_d * t)
    )


def two_pole_delay_50(line: DriverLineLoad) -> float:
    """50% delay of the two-pole model (seconds), solved by bracketing.

    The response is searched on ``[0, 40 * a1]``; two-pole responses
    always reach 0.5 well inside that window.
    """
    a1, _ = two_pole_coefficients(line)
    if a1 <= 0:
        raise AnalysisError("two-pole model needs a1 > 0")

    def crossing(t: float) -> float:
        return float(two_pole_step_response(line, np.array([t]))[0]) - 0.5

    hi = 40.0 * a1
    # The underdamped response oscillates; find the first bracketing
    # interval by scanning, then refine with brentq.
    samples = np.linspace(0.0, hi, 4096)
    values = two_pole_step_response(line, samples) - 0.5
    sign_change = np.nonzero((values[:-1] < 0) & (values[1:] >= 0))[0]
    if sign_change.size == 0:
        raise AnalysisError("two-pole response never reaches 50% in window")
    i = int(sign_change[0])
    return float(brentq(crossing, samples[i], samples[i + 1], xtol=a1 * 1e-12))
