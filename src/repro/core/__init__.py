"""The paper's contribution: RLC delay model and repeater insertion.

- :mod:`repro.core.canonical`  -- the Fig. 1 circuit object and the
  canonical variables ``RT``, ``CT``, ``omega_n``, ``zeta`` (eqs. 3, 5, 6),
- :mod:`repro.core.delay`      -- the closed-form 50% delay (eq. 9) with
  its RC/LC limits,
- :mod:`repro.core.moments`    -- Elmore and two-pole moment-matching
  baselines computed from the exact transfer-function series (eq. 7),
- :mod:`repro.core.baselines`  -- Sakurai's RC formula, time of flight,
- :mod:`repro.core.repeater`   -- repeater systems (Fig. 3), section math
  (eqs. 19-22), Bakoglu RC optimum (eq. 11), the RLC closed forms
  (eqs. 13-15) and the numerical optimum (eq. 10 / Fig. 4),
- :mod:`repro.core.penalty`    -- the cost of ignoring inductance
  (eqs. 16-18): delay, area and power penalties,
- :mod:`repro.core.fitting`    -- the curve-fitting methodology used to
  produce eqs. 9, 14, 15 and 17, reproducible on our own simulators.
"""

from repro.core.canonical import DriverLineLoad, omega_n, zeta
from repro.core.delay import (
    propagation_delay,
    rc_limit_delay,
    scaled_delay,
    time_of_flight,
)
from repro.core.repeater import (
    Buffer,
    CoupledRepeaterSystem,
    RepeaterDesign,
    RepeaterSystem,
    bakoglu_rc_design,
    coupled_line,
    crosstalk_aware_design,
    error_factors,
    inductance_time_ratio,
    miller_switch_factor,
    optimal_rlc_design,
    numerical_optimal_design,
)
from repro.core.penalty import (
    area_increase_closed_form,
    delay_increase_closed_form,
    delay_increase_numerical,
)

__all__ = [
    "DriverLineLoad",
    "omega_n",
    "zeta",
    "scaled_delay",
    "propagation_delay",
    "rc_limit_delay",
    "time_of_flight",
    "Buffer",
    "RepeaterDesign",
    "RepeaterSystem",
    "CoupledRepeaterSystem",
    "bakoglu_rc_design",
    "optimal_rlc_design",
    "numerical_optimal_design",
    "crosstalk_aware_design",
    "coupled_line",
    "miller_switch_factor",
    "error_factors",
    "inductance_time_ratio",
    "delay_increase_closed_form",
    "delay_increase_numerical",
    "area_increase_closed_form",
]
