"""Measure delays by simulation -- the library's "AS/X" entry point.

Every experiment that the paper validated against dynamic circuit
simulation goes through :func:`simulated_delay_50`, which dispatches to
one of the three independent substrate routes:

``statespace`` (default)
    PI-ladder state-space model integrated exactly via the matrix
    exponential.  Fast, no time-discretization error, converges in the
    segment count only.

``tline``
    Exact distributed transfer function inverted with de Hoog's method.
    No lumping at all; the reference for convergence tests.

``mna``
    PI-ladder netlist integrated with trapezoidal MNA.  The
    "conventional SPICE" route; slowest, used for cross-validation.

All routes return the 50% crossing of the far-end voltage for a unit
step applied at ``t = 0``.

Route guidance: for *bare* (or nearly bare) underdamped lines whose 50%
crossing lands on the arriving wavefront -- ``RT = CT ~ 0`` with
``2*exp(-2*zeta)`` near 0.5 -- the lumped routes ring at the front and
can report a spuriously early first crossing; use ``route="tline"``
there (the exact line has a clean jump).  For gate-loaded lines (every
Table 1 case) all three routes agree to well under 1%.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay
from repro.errors import AnalysisError, ParameterError
from repro.tline.waveform import Waveform

__all__ = [
    "SIMULATOR_VERSION",
    "SimulatorRoute",
    "simulated_delay_50",
    "simulated_delay_50_batch",
    "simulated_step_waveform",
]

#: Bumped whenever any simulation route's numerics change (integration
#: scheme, windowing, de Hoog order policy, ...).  Part of every sweep
#: cache key (:meth:`repro.sweep.grid.Sweep.cache_key`), so on-disk
#: simulated results from older numerics are never replayed.
#: Version 2: the MNA transient grid now ends exactly at ``t_stop``
#: (previously it could overshoot by up to one ``dt``).
SIMULATOR_VERSION = 2


class SimulatorRoute(str, enum.Enum):
    """Independent simulation back ends."""

    STATESPACE = "statespace"
    TLINE = "tline"
    MNA = "mna"


def _time_window(line: DriverLineLoad, window: float) -> float:
    """A simulation span sure to contain the 50% crossing.

    Uses the larger of the model delay (eq. 9) and the natural period,
    scaled by ``window``.  The closed-form delay is accurate to a few
    percent, so any ``window >= 3`` is already safe; the default of 12
    also captures the settling tail for rise-time measurements.
    """
    t_model = propagation_delay(line)
    return window * max(t_model, 1.0 / line.omega_n)


def simulated_step_waveform(
    line: DriverLineLoad,
    route: SimulatorRoute | str = SimulatorRoute.STATESPACE,
    n_segments: int = 100,
    n_samples: int = 4001,
    window: float = 12.0,
    dt: float | None = None,
    backend: str = "auto",
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> Waveform:
    """Unit-step far-end waveform of the Fig. 1 circuit.

    Parameters
    ----------
    line:
        The driver/line/load instance.
    route:
        Which substrate to use (see module docstring).
    n_segments:
        Ladder segments for the lumped routes.
    n_samples:
        Output samples across the window.
    window:
        Simulated span in units of ``max(t_pd, 1/omega_n)``.
    dt:
        Time step for the MNA route (defaults to ``span / n_samples``).
    backend:
        Linear-solver backend for the MNA route (``"auto"`` |
        ``"dense"`` | ``"sparse"`` | ``"banded"`` or a
        :class:`~repro.spice.backend.SimulationBackend` instance);
        ignored by the other routes.
    model, rom_order, rom_error_bound:
        Evaluation-model tier for the MNA route, as in
        :func:`~repro.spice.transient.simulate_transient` (``"full"``,
        ``"reduced"`` or ``"auto"``); ignored by the other routes,
        which have no MNA system to project.  The tier changes which
        linear algebra serves the query, not the numerics contract, so
        :data:`SIMULATOR_VERSION` is unaffected -- ``"full"`` results
        are bit-identical, and ``"auto"`` guards reduced answers with
        a-posteriori error checks.
    """
    route = SimulatorRoute(route)
    span = _time_window(line, window)

    if route is SimulatorRoute.TLINE:
        times = np.linspace(0.0, span, n_samples)
        # The de Hoog order bounds the resolvable detail at ~T/(2M); scale
        # it with the window so early-time features (the 50% crossing sits
        # in the first ~1/window of the span) stay sharp.
        order = max(60, int(8 * window))
        values = line.transfer().step_response(times, method="dehoog", M=order)
        return Waveform(times, values)

    spec = line.ladder(n_segments=n_segments)
    if route is SimulatorRoute.STATESPACE:
        from repro.spice.ladder import build_ladder_state_space
        from repro.spice.statespace import simulate_step

        model = build_ladder_state_space(spec)
        return simulate_step(model, span, n_samples=n_samples)[0]

    from repro.spice.ladder import build_ladder_circuit
    from repro.spice.transient import simulate_transient

    if dt is None:
        dt = span / (n_samples - 1)
    result = simulate_transient(
        build_ladder_circuit(spec), span, dt=dt, backend=backend,
        model=model, rom_order=rom_order, rom_error_bound=rom_error_bound,
    )
    return result.voltage(spec.output_node)


def simulated_delay_50(
    line: DriverLineLoad,
    route: SimulatorRoute | str = SimulatorRoute.STATESPACE,
    n_segments: int = 100,
    n_samples: int = 4001,
    window: float = 12.0,
    dt: float | None = None,
    backend: str = "auto",
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> float:
    """Simulated 50% propagation delay (seconds) of the Fig. 1 circuit.

    >>> line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12,
    ...                       rtr=100.0, cl=1e-13)
    >>> t50 = simulated_delay_50(line)
    >>> 1.0e-9 < t50 < 1.1e-9    # paper Table 1: ~1.06 ns
    True
    """
    waveform = simulated_step_waveform(
        line, route=route, n_segments=n_segments, n_samples=n_samples,
        window=window, dt=dt, backend=backend,
        model=model, rom_order=rom_order, rom_error_bound=rom_error_bound,
    )
    try:
        return waveform.delay_50(v_final=1.0)
    except AnalysisError as exc:
        raise AnalysisError(
            f"no 50% crossing within window={window} "
            f"(zeta={line.zeta:.3g}); increase the window"
        ) from exc


def simulated_delay_50_batch(
    lines,
    route: SimulatorRoute | str = SimulatorRoute.STATESPACE,
    n_segments: int = 100,
    n_samples: int = 4001,
    window: float = 12.0,
    dt: float | None = None,
    backend: str = "auto",
    model: str = "full",
    rom_order: int | None = None,
    rom_error_bound: float | None = None,
) -> np.ndarray:
    """Simulated 50% delays for a whole batch of Fig. 1 circuits.

    Point-for-point equivalent to calling :func:`simulated_delay_50` on
    each line, but the ``"mna"`` route runs on the stamp-once /
    re-value-many path: the batch is partitioned into
    *structure-equivalence classes* -- lines sharing the ladder
    structure (``cl = 0`` vs ``cl > 0`` is structural) and the lockstep
    step count -- and each class revalues one cached
    :func:`~repro.spice.ladder.build_ladder_template` and steps every
    member together through
    :func:`~repro.spice.transient.simulate_transient_batch`.  The
    ``"statespace"`` and ``"tline"`` routes have no shared linear
    system to revalue and simply loop.

    Parameters are as in :func:`simulated_delay_50`; ``lines`` is a
    sequence of :class:`~repro.core.canonical.DriverLineLoad`.  Returns
    the delays (seconds) in input order.  The ``model`` tier rides the
    MNA route's batch path, so a ``"reduced"``/``"auto"`` batch pays
    one cached projection per structure class and answers every member
    from the ``q``-space recurrence.
    """
    lines = list(lines)
    route = SimulatorRoute(route)
    if route is not SimulatorRoute.MNA or len(lines) <= 1:
        return np.asarray(
            [
                simulated_delay_50(
                    line, route=route, n_segments=n_segments,
                    n_samples=n_samples, window=window, dt=dt, backend=backend,
                    model=model, rom_order=rom_order,
                    rom_error_bound=rom_error_bound,
                )
                for line in lines
            ],
            dtype=float,
        )

    from repro.spice.ladder import build_ladder_template
    from repro.spice.transient import simulate_transient_batch

    specs = [line.ladder(n_segments=n_segments) for line in lines]
    spans = np.asarray([_time_window(line, window) for line in lines])
    dts = spans / (n_samples - 1) if dt is None else np.full(len(lines), dt)
    # Same snap rule as the transient grid, so class members share the
    # exact lockstep step count the scalar path would use.
    steps = np.maximum(1, np.ceil((spans / dts) * (1.0 - 1e-12)).astype(int))

    delays = np.empty(len(lines))
    classes: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        classes.setdefault((spec.cl > 0, int(steps[i])), []).append(i)

    for (loaded, _), members in classes.items():
        template = build_ladder_template(
            n_segments, specs[members[0]].topology, loaded=loaded
        )
        params = [
            {
                "rt": specs[i].rt,
                "lt": specs[i].lt,
                "ct": specs[i].ct,
                "rtr": specs[i].rtr,
                **({"cl": specs[i].cl} if loaded else {}),
            }
            for i in members
        ]
        output_node = specs[members[0]].output_node
        result = simulate_transient_batch(
            template,
            params,
            t_stop=spans[members],
            dt=dts[members],
            backend=backend,
            record=[output_node],
            model=model,
            rom_order=rom_order,
            rom_error_bound=rom_error_bound,
        )
        voltages = result.voltage(output_node)
        for k, i in enumerate(members):
            waveform = Waveform(result.times_of(k), voltages[k])
            try:
                delays[i] = waveform.delay_50(v_final=1.0)
            except AnalysisError as exc:
                raise AnalysisError(
                    f"no 50% crossing within window={window} "
                    f"(zeta={lines[i].zeta:.3g}); increase the window"
                ) from exc
    return delays
