"""The paper's curve-fitting methodology, reproducible end to end.

Eq. 9 was produced by fitting ``t' = exp(-a*zeta**b) + c*zeta`` to AS/X
simulations of the scaled delay; eqs. 14/15 by fitting
``1/(1 + alpha*T**3)**beta`` to the numerically optimized repeater error
factors; eq. 17 by fitting a saturating rational-exponential form to the
numerically evaluated delay penalty.

This module re-runs each of those fits against *our* simulators and
optimizers (experiment EXP-X5), closing the methodological loop: if our
substrate is faithful, the re-fitted constants should land near the
published (2.9, 1.35, 1.48), (0.16, 0.24) and (0.18, 0.30).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core import delay as delay_mod
from repro.errors import ConvergenceError, ParameterError

__all__ = [
    "FitResult",
    "delay_model_form",
    "fit_delay_model",
    "error_factor_form",
    "fit_error_factor",
]


@dataclass(frozen=True)
class FitResult:
    """Fitted parameters plus goodness-of-fit diagnostics.

    Attributes
    ----------
    parameters:
        The fitted coefficients, in the order of the model function.
    max_relative_error:
        Largest ``|model - data| / data`` over the fit points.
    rms_relative_error:
        Root-mean-square relative error over the fit points.
    """

    parameters: tuple[float, ...]
    max_relative_error: float
    rms_relative_error: float


def _diagnostics(model_values: np.ndarray, data: np.ndarray) -> tuple[float, float]:
    rel = np.abs(model_values - data) / np.abs(data)
    return float(np.max(rel)), float(np.sqrt(np.mean(rel**2)))


def delay_model_form(zeta_values, a: float, b: float, c: float):
    """The eq. 9 template ``exp(-a * zeta**b) + c * zeta``."""
    z = np.asarray(zeta_values, dtype=float)
    return np.exp(-a * z**b) + c * z


def fit_delay_model(
    zeta_values,
    scaled_delays,
    initial_guess: tuple[float, float, float] = (
        delay_mod.FIT_EXPONENT_COEFFICIENT,
        delay_mod.FIT_EXPONENT_POWER,
        delay_mod.FIT_LINEAR_COEFFICIENT,
    ),
) -> FitResult:
    """Fit the eq. 9 coefficients to (zeta, scaled-delay) data.

    ``scaled_delays`` are dimensionless ``t_50 * omega_n`` values from
    any simulator route.  Raises :class:`ConvergenceError` on failure.
    """
    z = np.asarray(zeta_values, dtype=float)
    d = np.asarray(scaled_delays, dtype=float)
    if z.shape != d.shape or z.ndim != 1:
        raise ParameterError("zeta_values and scaled_delays must be equal 1-D arrays")
    if z.size < 4:
        raise ParameterError("need at least 4 fit points")
    try:
        params, _ = optimize.curve_fit(
            delay_model_form, z, d, p0=initial_guess, maxfev=20000
        )
    except RuntimeError as exc:
        raise ConvergenceError(f"delay-model fit failed: {exc}") from exc
    max_err, rms_err = _diagnostics(delay_model_form(z, *params), d)
    return FitResult(tuple(float(p) for p in params), max_err, rms_err)


def error_factor_form(tlr_values, alpha: float, beta: float):
    """The eqs. 14/15 template ``1 / (1 + alpha * T**3)**beta``."""
    t = np.asarray(tlr_values, dtype=float)
    return (1.0 + alpha * t**3) ** (-beta)


def fit_error_factor(
    tlr_values,
    factors,
    initial_guess: tuple[float, float] = (0.17, 0.27),
) -> FitResult:
    """Fit an eqs. 14/15-style derating curve to (T, factor) data.

    ``factors`` are the numerically optimized ``h'`` or ``k'`` values
    from :func:`repro.core.repeater.numerical_error_factors`.
    """
    t = np.asarray(tlr_values, dtype=float)
    f = np.asarray(factors, dtype=float)
    if t.shape != f.shape or t.ndim != 1:
        raise ParameterError("tlr_values and factors must be equal 1-D arrays")
    if t.size < 3:
        raise ParameterError("need at least 3 fit points")
    if np.any(f <= 0) or np.any(f > 1.0 + 1e-9):
        raise ParameterError("error factors must lie in (0, 1]")
    try:
        params, _ = optimize.curve_fit(
            error_factor_form, t, f, p0=initial_guess, maxfev=20000
        )
    except RuntimeError as exc:
        raise ConvergenceError(f"error-factor fit failed: {exc}") from exc
    max_err, rms_err = _diagnostics(error_factor_form(t, *params), f)
    return FitResult(tuple(float(p) for p in params), max_err, rms_err)
