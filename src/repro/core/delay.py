"""Closed-form propagation delay of a gate driving an RLC line (eq. 9).

The paper's central result: after time scaling by ``omega_n`` the 50%
delay of the Fig. 1 circuit is, to within a few percent, a function of
the damping factor ``zeta`` alone, fitted as

    t'_pd = exp(-2.9 * zeta**1.35) + 1.48 * zeta                     (eq. 9)
    t_pd  = t'_pd / omega_n

One continuous expression covers both the underdamped regime (``zeta``
small: overshoot, delay ~ time of flight) and the overdamped regime
(``zeta`` large: RC-like diffusion).  Exact limits:

- ``L -> 0`` (``zeta -> inf``): ``t_pd -> 0.74 * Rt * Ct *
  (RT + CT + RT*CT + 0.5)``, which for a bare line (``RT = CT = 0``)
  is Sakurai's ``0.37 * R * C * l**2`` -- quadratic in length;
- ``R -> 0`` (``zeta -> 0``): ``t_pd -> sqrt(Lt * (Ct + CL))``, for a
  bare line the time of flight ``l * sqrt(L*C)`` -- *linear* in length.

The quadratic-to-linear transition as inductance grows is the paper's
headline physical claim and is reproduced as experiment EXP-X1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.canonical import DriverLineLoad
from repro.errors import ParameterError, require_nonnegative

__all__ = [
    "FIT_EXPONENT_COEFFICIENT",
    "FIT_EXPONENT_POWER",
    "FIT_LINEAR_COEFFICIENT",
    "scaled_delay",
    "propagation_delay",
    "rc_limit_delay",
    "lc_limit_delay",
    "time_of_flight",
    "delay_error_vs_reference",
]

# The fitted constants of eq. 9.  (Re-derivable on our own simulator data
# via repro.core.fitting -- experiment EXP-X5.)
FIT_EXPONENT_COEFFICIENT = 2.9
FIT_EXPONENT_POWER = 1.35
FIT_LINEAR_COEFFICIENT = 1.48


def scaled_delay(zeta_value):
    """Dimensionless 50% delay ``t'_pd(zeta)`` (eq. 9).

    Accepts a scalar or array of non-negative damping factors; the
    result is in units of ``1/omega_n`` (eq. 3) -- multiply by
    ``1/omega_n`` seconds for an absolute delay.  The computation lives
    in :func:`repro.sweep.kernels.batch_scaled_delay` so the scalar
    path and the batch sweep path share one implementation.

    Validity: the paper fitted eq. 9 over ``RT, CT`` in ``[0, 1]``; it
    is accurate to ~5% across all damping regimes there (``zeta`` from
    ~0.2 underdamped through >> 1 overdamped, where it approaches the
    ``1.48 * zeta`` RC asymptote).

    >>> round(float(scaled_delay(0.0)), 3)   # pure LC: time of flight
    1.0
    """
    from repro.sweep.kernels import batch_scaled_delay

    result = batch_scaled_delay(zeta_value)
    if np.isscalar(zeta_value) or np.ndim(zeta_value) == 0:
        return float(result)
    return result


def propagation_delay(line: DriverLineLoad) -> float:
    """50% propagation delay of the Fig. 1 circuit (eq. 9), seconds.

    ``scaled_delay(zeta) / omega_n`` with ``zeta`` from eq. 6 and
    ``omega_n`` from eq. 3; all inputs SI (ohm, H, F).  Accurate to a
    few percent for ``RT, CT`` in ``[0, 1]`` (the fit range) in every
    damping regime -- the Table 1 comparison (EXP-T1) measures it
    against simulation case by case.

    >>> line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12,
    ...                       rtr=100.0, cl=1e-13)
    >>> round(propagation_delay(line) * 1e12)   # paper Table 1: 1062 ps
    1061
    """
    from repro.sweep.kernels import batch_propagation_delay

    return float(
        batch_propagation_delay(line.rt, line.lt, line.ct, line.rtr, line.cl)
    )


def rc_limit_delay(line: DriverLineLoad) -> float:
    """The ``Lt -> 0`` limit of eq. 9 (pure distributed-RC delay).

    ``0.74 * Rt * Ct * (RT + CT + RT*CT + 0.5)``; for ``RT = CT = 0``
    this is the classic ``0.37 * Rt * Ct`` distributed-RC delay of
    Sakurai [3] and Bakoglu [11].
    """
    from repro.sweep.kernels import batch_rc_limit_delay

    if math.isinf(line.r_ratio):
        raise ParameterError("rc_limit_delay requires rt > 0")
    return float(batch_rc_limit_delay(line.rt, line.ct, line.rtr, line.cl))


def lc_limit_delay(line: DriverLineLoad) -> float:
    """The ``Rt, Rtr -> 0`` limit of eq. 9: ``sqrt(Lt * (Ct + CL))``.

    For a bare line this is the time of flight ``l * sqrt(L*C)`` --
    linear, not quadratic, in wire length.
    """
    from repro.sweep.kernels import batch_lc_limit_delay

    return float(batch_lc_limit_delay(line.lt, line.ct, line.cl))


def time_of_flight(lt: float, ct: float) -> float:
    """Wavefront arrival time ``sqrt(Lt * Ct)`` of a lossless line."""
    from repro.sweep.kernels import batch_time_of_flight

    require_nonnegative("lt", lt)
    require_nonnegative("ct", ct)
    return float(batch_time_of_flight(lt, ct))


def delay_error_vs_reference(model_delay: float, reference_delay: float) -> float:
    """Relative error ``|model - reference| / reference`` (paper's metric).

    The paper's Table 1 reports ``100 * |eq9 - AS/X| / AS/X``; use this
    with any of our simulator routes standing in for AS/X.
    """
    if reference_delay <= 0 or not math.isfinite(reference_delay):
        raise ParameterError(
            f"reference delay must be positive and finite, got {reference_delay!r}"
        )
    return abs(model_delay - reference_delay) / reference_delay
