"""Repeater insertion in RLC interconnect (paper Section III + appendix).

A long line is split into ``k`` equal sections, each driven by a buffer
``h`` times minimum size (Fig. 3).  A minimum-size buffer has output
resistance ``R0`` and input capacitance ``C0``; a size-``h`` repeater has
``Rtr = R0/h`` and input capacitance ``CL = h*C0``.  Every section is
therefore the Fig. 1 circuit with impedances

    Rt/k, Lt/k, Ct/k,  Rtr = R0/h,  CL = h*C0                (eqs. 19-20)

and the total delay is ``k`` times the eq. 9 section delay.  Minimizing
over ``(h, k)``:

- RC limit (Bakoglu [11], eq. 11):
  ``h = sqrt(R0*Ct / (Rt*C0))``, ``k = sqrt(Rt*Ct / (2*R0*C0))``;
- general RLC (the paper's contribution, eqs. 13-15): the RC optimum is
  *derated* by error factors depending only on

      T_{L/R} = (Lt / Rt) / (R0 * C0)                            (eq. 13)

  namely ``h' = 1/(1 + 0.16*T**3)**0.24`` and
  ``k' = 1/(1 + 0.18*T**3)**0.3``.

As inductance grows the optimal number of repeaters *drops*: the delay
of an LC-dominated line is linear in length, so splitting it buys nothing
and the repeaters' own delay only hurts.  This module provides the closed
forms, the numerical optimization they were fitted to (Fig. 4), and both
model-based and simulation-based evaluation of any candidate design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np
from scipy import optimize

from repro.core.canonical import DriverLineLoad
from repro.core.delay import propagation_delay, scaled_delay
from repro.errors import (
    ConvergenceError,
    ParameterError,
    require_nonnegative,
    require_positive,
)

__all__ = [
    "H_FACTOR_SCALE",
    "H_FACTOR_POWER",
    "K_FACTOR_SCALE",
    "K_FACTOR_POWER",
    "Buffer",
    "RepeaterDesign",
    "RepeaterSystem",
    "CoupledRepeaterSystem",
    "inductance_time_ratio",
    "bakoglu_rc_design",
    "error_factors",
    "optimal_rlc_design",
    "numerical_optimal_design",
    "numerical_error_factors",
    "practical_design",
    "normalized_system",
    "MILLER_SWITCH_FACTORS",
    "miller_switch_factor",
    "coupled_line",
    "crosstalk_aware_design",
]

# Fitted constants of eqs. 14 and 15.
H_FACTOR_SCALE = 0.16
H_FACTOR_POWER = 0.24
K_FACTOR_SCALE = 0.18
K_FACTOR_POWER = 0.30


@dataclass(frozen=True)
class Buffer:
    """A CMOS repeater family, characterized at minimum size.

    Attributes
    ----------
    r0:
        Output resistance of the minimum-size buffer (ohm).
    c0:
        Input capacitance of the minimum-size buffer (F).
    area_min:
        Area of the minimum-size buffer (arbitrary units; 1 by default).
        A size-``h`` repeater occupies ``h * area_min``.
    c_out_ratio:
        Optional ratio of buffer *output* (drain) capacitance to input
        capacitance; used only by the power model extension, not by the
        paper's delay equations (which neglect it).
    """

    r0: float
    c0: float
    area_min: float = 1.0
    c_out_ratio: float = 0.0

    def __post_init__(self) -> None:
        require_positive("r0", self.r0)
        require_positive("c0", self.c0)
        require_positive("area_min", self.area_min)
        require_nonnegative("c_out_ratio", self.c_out_ratio)

    @property
    def intrinsic_delay(self) -> float:
        """``R0 * C0`` -- the size-independent gate time constant."""
        return self.r0 * self.c0

    def output_resistance(self, h: float) -> float:
        """``R0 / h`` for a size-``h`` repeater."""
        require_positive("h", h)
        return self.r0 / h

    def input_capacitance(self, h: float) -> float:
        """``h * C0`` for a size-``h`` repeater."""
        require_positive("h", h)
        return self.c0 * h


@dataclass(frozen=True)
class RepeaterDesign:
    """A repeater-insertion choice: size ``h`` and section count ``k``.

    ``k`` is kept continuous for the analytic development (the paper's
    optimization is over real ``h, k``); round with
    :meth:`quantized` for implementable designs.
    """

    h: float
    k: float

    def __post_init__(self) -> None:
        require_positive("h", self.h)
        require_positive("k", self.k)

    def area(self, buffer: Buffer) -> float:
        """Total repeater area ``h * k * area_min`` (paper Section III)."""
        return self.h * self.k * buffer.area_min

    def buffer_capacitance(self, buffer: Buffer) -> float:
        """Total switched repeater input capacitance ``h * k * C0``."""
        return self.h * self.k * buffer.c0

    def quantized(self) -> "RepeaterDesign":
        """Round ``k`` to the nearest positive integer (``h`` unchanged)."""
        return RepeaterDesign(h=self.h, k=float(max(1, round(self.k))))


def inductance_time_ratio(line: DriverLineLoad, buffer: Buffer) -> float:
    """``T_{L/R} = (Lt/Rt) / (R0*C0)`` (eq. 13).

    The ratio of the line's L/R time constant to the gate's intrinsic
    delay: the single parameter controlling how far the RLC repeater
    optimum deviates from Bakoglu's RC solution.  Grows as technology
    scales (``R0*C0`` shrinks) -- the paper's closing argument.
    """
    if line.rt <= 0:
        raise ParameterError("inductance_time_ratio requires rt > 0")
    return (line.lt / line.rt) / buffer.intrinsic_delay


def bakoglu_rc_design(line: DriverLineLoad, buffer: Buffer) -> RepeaterDesign:
    """Bakoglu's RC-optimal repeater insertion (eq. 11)."""
    if line.rt <= 0:
        raise ParameterError("bakoglu_rc_design requires rt > 0")
    h = math.sqrt((buffer.r0 * line.ct) / (line.rt * buffer.c0))
    k = math.sqrt((line.rt * line.ct) / (2.0 * buffer.r0 * buffer.c0))
    return RepeaterDesign(h=h, k=k)


def error_factors(tlr) -> tuple:
    """``(h', k')`` -- the inductance derating factors (eqs. 14, 15).

    ``tlr`` is the dimensionless ``T_{L/R}`` of eq. 13 (>= 0); both
    factors are dimensionless multipliers on Bakoglu's eq. 11 optimum.
    They approach 1 as ``T_{L/R} -> 0`` (RC limit) and decay towards 0
    as inductance dominates; the paper's Fig. 4 vets the fits over
    ``T_{L/R}`` in ``[0, ~7]`` to within a few percent in ``h``/``k``
    (EXP-F4 reproduces the comparison).  Accepts scalars or arrays;
    the computation is
    :func:`repro.sweep.kernels.batch_error_factors`.
    """
    from repro.sweep.kernels import batch_error_factors

    h_prime, k_prime = batch_error_factors(tlr)
    if np.ndim(tlr) == 0:
        return float(h_prime), float(k_prime)
    return h_prime, k_prime


def optimal_rlc_design(line: DriverLineLoad, buffer: Buffer) -> RepeaterDesign:
    """The paper's closed-form RLC repeater optimum (eqs. 14, 15)."""
    rc = bakoglu_rc_design(line, buffer)
    h_prime, k_prime = error_factors(inductance_time_ratio(line, buffer))
    return RepeaterDesign(h=rc.h * h_prime, k=rc.k * k_prime)


@dataclass(frozen=True)
class RepeaterSystem:
    """A line driven through ``k`` repeaters of size ``h`` (Fig. 3).

    The ``line`` argument carries only the interconnect totals; its own
    ``rtr``/``cl`` (if any) are ignored -- in a repeated line every
    section is driven and loaded by repeaters.

    Examples
    --------
    >>> line = DriverLineLoad(rt=100.0, lt=1e-8, ct=2e-12)
    >>> buffer = Buffer(r0=1000.0, c0=1e-14)
    >>> system = RepeaterSystem(line, buffer)
    >>> design = optimal_rlc_design(line, buffer)
    >>> 0 < system.total_delay(design) < 1e-6
    True
    """

    line: DriverLineLoad
    buffer: Buffer

    def __post_init__(self) -> None:
        if self.line.rt <= 0:
            raise ParameterError("RepeaterSystem requires a resistive line (rt > 0)")

    def section_line(self, design: RepeaterDesign) -> DriverLineLoad:
        """The Fig. 1 circuit of one section (eqs. 19-20); ``k`` may be
        fractional during continuous optimization."""
        k, h = design.k, design.h
        return DriverLineLoad(
            rt=self.line.rt / k,
            lt=self.line.lt / k,
            ct=self.line.ct / k,
            rtr=self.buffer.output_resistance(h),
            cl=self.buffer.input_capacitance(h),
        )

    def section_delay(self, design: RepeaterDesign) -> float:
        """Eq. 9 delay of a single section."""
        return propagation_delay(self.section_line(design))

    def total_delay(self, design: RepeaterDesign) -> float:
        """Model-based total delay ``k * t_pd,section`` (eq. 19)."""
        return design.k * self.section_delay(design)

    def total_delay_simulated(
        self,
        design: RepeaterDesign,
        n_segments: int = 64,
        n_samples: int = 3001,
        window: float = 12.0,
    ) -> float:
        """Simulation-based total delay (state-space ladder per section).

        Each repeater regenerates the signal, so the chain delay is the
        sum of identical per-section delays; the section itself is
        simulated (not modeled) with an ``n_segments`` PI ladder.  ``k``
        is rounded to an integer as only whole sections are realizable.
        ``window`` sets the simulated span in units of the section's
        Elmore-like time scale.
        """
        from repro.spice.ladder import build_ladder_state_space
        from repro.spice.statespace import simulate_step

        design = design.quantized()
        section = self.section_line(design)
        spec = section.ladder(n_segments=n_segments)
        model = build_ladder_state_space(spec)
        scale = max(
            scaled_delay(section.zeta) / section.omega_n,
            1.0 / section.omega_n,
        )
        waveform = simulate_step(model, window * scale, n_samples=n_samples)[0]
        return design.k * waveform.delay_50(v_final=1.0)

    def total_area(self, design: RepeaterDesign) -> float:
        """Total repeater area for the design."""
        return design.area(self.buffer)

    def switched_capacitance(self, design: RepeaterDesign, include_wire: bool = True) -> float:
        """Capacitance switched per transition (power model).

        Repeater input caps ``h*k*C0`` plus optional output caps and the
        wire itself (the wire cap is design-independent but dominates the
        absolute power; exclude it to study the repeater *overhead*).
        """
        cap = design.buffer_capacitance(self.buffer) * (1.0 + self.buffer.c_out_ratio)
        if include_wire:
            cap += self.line.ct
        return cap

    def dynamic_power(
        self,
        design: RepeaterDesign,
        vdd: float,
        frequency: float,
        activity: float = 1.0,
        include_wire: bool = True,
    ) -> float:
        """Dynamic power ``alpha * f * Vdd^2 * C_switched`` (watts)."""
        require_positive("vdd", vdd)
        require_positive("frequency", frequency)
        if not 0 < activity <= 1:
            raise ParameterError(f"activity must be in (0, 1], got {activity}")
        c = self.switched_capacitance(design, include_wire=include_wire)
        return activity * frequency * vdd * vdd * c


def numerical_optimal_design(
    line: DriverLineLoad,
    buffer: Buffer,
    xtol: float = 1e-10,
    max_iterations: int = 4000,
) -> RepeaterDesign:
    """Numerically minimize the total delay over ``(h, k)`` (eq. 10).

    This is the optimization the paper solved to produce Fig. 4, seeded
    here at the closed-form optimum and refined with Nelder-Mead in
    log-coordinates (guaranteeing positivity).  Raises
    :class:`~repro.errors.ConvergenceError` if the simplex fails.
    """
    system = RepeaterSystem(line, buffer)
    seed = optimal_rlc_design(line, buffer)

    def objective(log_hk: np.ndarray) -> float:
        h, k = math.exp(log_hk[0]), math.exp(log_hk[1])
        return system.total_delay(RepeaterDesign(h=h, k=k))

    x0 = np.log([seed.h, seed.k])
    # fatol is absolute; scale it to the seed delay so the tolerance is
    # relative (~1e-12) regardless of the system's time scale.
    result = optimize.minimize(
        objective,
        x0=x0,
        method="Nelder-Mead",
        options={
            "xatol": xtol,
            "fatol": 1e-12 * objective(x0),
            "maxiter": max_iterations,
            "maxfev": max_iterations,
        },
    )
    if not result.success:
        raise ConvergenceError(
            f"repeater optimization did not converge: {result.message}"
        )
    h, k = math.exp(result.x[0]), math.exp(result.x[1])
    return RepeaterDesign(h=h, k=k)


def practical_design(
    line: DriverLineLoad,
    buffer: Buffer,
    max_sections: int | None = None,
) -> RepeaterDesign:
    """The best *implementable* design: integer ``k``, re-optimized ``h``.

    Evaluates every integer section count around the continuous optimum
    (and always ``k = 1``, i.e. a single sized driver), minimizing ``h``
    for each by golden-section search on the model objective, and
    returns the fastest.  ``max_sections`` caps the search (defaults to
    twice the RC optimum).
    """
    system = RepeaterSystem(line, buffer)
    continuous = numerical_optimal_design(line, buffer)
    rc = bakoglu_rc_design(line, buffer)
    if max_sections is None:
        max_sections = max(1, int(math.ceil(2.0 * rc.k)))
    if max_sections < 1:
        raise ParameterError(f"max_sections must be >= 1, got {max_sections}")

    def best_h_for(k: int) -> RepeaterDesign:
        def objective(log_h: float) -> float:
            return system.total_delay(
                RepeaterDesign(h=math.exp(log_h), k=float(k))
            )

        center = math.log(max(continuous.h, 1e-12))
        result = optimize.minimize_scalar(
            objective,
            bracket=(center - 2.0, center, center + 2.0),
            method="golden",
            options={"xtol": 1e-10},
        )
        return RepeaterDesign(h=math.exp(result.x), k=float(k))

    k_center = max(1, round(continuous.k))
    candidates = {1, k_center}
    candidates.update(
        k for k in (k_center - 1, k_center + 1, k_center + 2) if 1 <= k
    )
    best: RepeaterDesign | None = None
    best_delay = math.inf
    for k in sorted(k for k in candidates if k <= max_sections):
        design = best_h_for(k)
        delay = system.total_delay(design)
        if delay < best_delay:
            best, best_delay = design, delay
    assert best is not None
    return best


# ---------------------------------------------------------------------------
# Crosstalk-aware repeater insertion (bus extension)
# ---------------------------------------------------------------------------

#: Switching pattern -> effective coupling-capacitance multiplier (the
#: Miller factor): ``even`` neighbors track the victim (no charge moves
#: across ``Cc``), ``quiet`` neighbors present ``Cc`` at face value,
#: ``odd`` neighbors double the swing across it.
MILLER_SWITCH_FACTORS = {"even": 0.0, "quiet": 1.0, "odd": 2.0}


def miller_switch_factor(pattern) -> float:
    """Effective coupling-capacitance multiplier of a switching pattern.

    Parameters
    ----------
    pattern:
        ``"even"`` / ``"quiet"`` / ``"odd"`` (string or enum with a
        matching ``value``), or a number already expressing the factor
        (returned validated: must be finite and >= 0).

    The classic bounding factors on an RC-coupled bus: 0 when the
    neighbors switch with the line (even mode), 1 when they hold still,
    2 when they switch against it (odd mode, the Miller worst case).
    Intermediate values model partial switching-window overlap.
    """
    if isinstance(pattern, (int, float)) and not isinstance(pattern, bool):
        return require_nonnegative("switch_factor", pattern)
    key = getattr(pattern, "value", pattern)
    try:
        return MILLER_SWITCH_FACTORS[str(key)]
    except KeyError:
        known = ", ".join(sorted(MILLER_SWITCH_FACTORS))
        raise ParameterError(
            f"unknown switching pattern {pattern!r}; known: {known} "
            "(or a numeric factor)"
        ) from None


def coupled_line(
    line: DriverLineLoad,
    cct: float,
    switch_factor=2.0,
    n_neighbors: float = 2.0,
) -> DriverLineLoad:
    """The single-line equivalent of one bus bit under a given pattern.

    Replaces the line's ground capacitance with the switch-dependent
    effective capacitance

        ``Ct_eff = Ct + n_neighbors * switch_factor * Cct``

    where ``Cct`` is the per-neighbor coupling capacitance (F, line
    total) and ``switch_factor`` the Miller factor of the neighbors'
    switching pattern (:func:`miller_switch_factor`).  Inductance is
    left as the self value: to first order the neighbors' mutual
    contribution shifts the *loop* inductance symmetrically
    (``L*(1 +/- km)``) and does not enter the single-parameter
    eq. 6/9 model; the bus simulations in :mod:`repro.analysis.bus`
    capture the full effect.
    """
    require_nonnegative("cct", cct)
    factor = miller_switch_factor(switch_factor)
    n_neighbors = require_nonnegative("n_neighbors", n_neighbors)
    return replace(line, ct=line.ct + n_neighbors * factor * cct)


def crosstalk_aware_design(
    line: DriverLineLoad,
    buffer: Buffer,
    cct: float,
    switch_factor=2.0,
    n_neighbors: float = 2.0,
) -> RepeaterDesign:
    """Re-optimize ``(h, k)`` under switch-dependent effective capacitance.

    The paper's closed-form repeater optimum (eqs. 14, 15) applied to
    the :func:`coupled_line` equivalent: the coupling capacitance
    inflates ``Ct`` (raising both ``h_rc`` and ``k_rc`` of eq. 11)
    while ``T_{L/R} = (Lt/Rt)/(R0*C0)`` (eq. 13) is unchanged, so the
    inductance derating factors ``h'``/``k'`` are the single-line ones.
    With ``switch_factor=2`` (the default) the design guards the odd
    worst case; ``0`` recovers the single-line optimum exactly.

    The arithmetic lives in
    :func:`repro.sweep.kernels.batch_crosstalk_aware_design` so scalar
    and batch callers share one implementation.
    """
    from repro.sweep.kernels import batch_crosstalk_aware_design

    h, k = batch_crosstalk_aware_design(
        line.rt,
        line.lt,
        line.ct,
        cct,
        buffer.r0,
        buffer.c0,
        switch_factor=miller_switch_factor(switch_factor),
        n_neighbors=n_neighbors,
    )
    return RepeaterDesign(h=float(h), k=float(k))


@dataclass(frozen=True)
class CoupledRepeaterSystem:
    """A repeated bus bit: per-line interconnect plus neighbor coupling.

    Wraps :class:`RepeaterSystem` with the switch-pattern-dependent
    effective capacitance, so one object answers both "what is the
    best (h, k) for this bus bit?" and "what does a given design cost
    under each switching pattern?".

    Attributes
    ----------
    line:
        Per-bit interconnect totals (self parasitics only).
    buffer:
        The repeater family.
    cct:
        Per-neighbor coupling capacitance (F, line total).
    n_neighbors:
        Coupled neighbors per bit (2 for interior bus bits, 1 for edge
        bits or a shielded side).

    Examples
    --------
    >>> line = DriverLineLoad(rt=100.0, lt=1e-8, ct=2e-12)
    >>> buffer = Buffer(r0=1000.0, c0=1e-14)
    >>> bus_bit = CoupledRepeaterSystem(line, buffer, cct=1e-12)
    >>> worst = bus_bit.design()          # guards the odd pattern
    >>> solo = optimal_rlc_design(line, buffer)
    >>> worst.h > solo.h and worst.k > solo.k
    True
    """

    line: DriverLineLoad
    buffer: Buffer
    cct: float
    n_neighbors: float = 2.0

    def __post_init__(self) -> None:
        require_nonnegative("cct", self.cct)
        require_nonnegative("n_neighbors", self.n_neighbors)
        if self.line.rt <= 0:
            raise ParameterError(
                "CoupledRepeaterSystem requires a resistive line (rt > 0)"
            )

    def effective_line(self, switch_factor=2.0) -> DriverLineLoad:
        """The pattern's single-line equivalent (:func:`coupled_line`)."""
        return coupled_line(
            self.line, self.cct, switch_factor, self.n_neighbors
        )

    def system(self, switch_factor=2.0) -> RepeaterSystem:
        """A :class:`RepeaterSystem` over the effective line."""
        return RepeaterSystem(self.effective_line(switch_factor), self.buffer)

    def design(self, switch_factor=2.0) -> RepeaterDesign:
        """The closed-form optimum for a pattern (default: odd worst case)."""
        return crosstalk_aware_design(
            self.line, self.buffer, self.cct, switch_factor, self.n_neighbors
        )

    def total_delay(self, design: RepeaterDesign, switch_factor=2.0) -> float:
        """Model-based bit delay of ``design`` under a pattern (eq. 19)."""
        return self.system(switch_factor).total_delay(design)

    def worst_case_penalty(self, design: RepeaterDesign) -> float:
        """Percent odd-pattern delay increase of ``design`` over the
        crosstalk-aware optimum -- the cost of sizing a bus bit as if it
        ran alone."""
        aware = self.design(switch_factor=2.0)
        t_design = self.total_delay(design, switch_factor=2.0)
        t_aware = self.total_delay(aware, switch_factor=2.0)
        return 100.0 * (t_design - t_aware) / t_aware


def normalized_system(tlr: float) -> tuple[DriverLineLoad, Buffer]:
    """A canonical (line, buffer) pair realizing a given ``T_{L/R}``.

    The repeater mathematics depends on the line and buffer only through
    ``h_rc``, ``k_rc`` and ``T_{L/R}`` (paper appendix, eq. 28), so
    ``Rt = Ct = R0 = C0 = 1`` and ``Lt = T_{L/R}`` is fully general; the
    test suite verifies invariance under rescaling.
    """
    require_positive("tlr", tlr)
    line = DriverLineLoad(rt=1.0, lt=float(tlr), ct=1.0)
    return line, Buffer(r0=1.0, c0=1.0)


def numerical_error_factors(tlr: float) -> tuple[float, float]:
    """``(h', k')`` from the numerical optimum at a given ``T_{L/R}``.

    This regenerates the solid curves of Fig. 4; the closed forms of
    :func:`error_factors` are their dashed fits.
    """
    line, buffer = normalized_system(tlr)
    rc = bakoglu_rc_design(line, buffer)
    best = numerical_optimal_design(line, buffer)
    return best.h / rc.h, best.k / rc.k
