"""The Fig. 1 circuit and the paper's canonical variables.

A CMOS gate driving a distributed RLC line (paper Fig. 1) is fully
described by five impedances: the line totals ``Rt = R*l``, ``Lt = L*l``,
``Ct = C*l`` and the gate parasitics ``Rtr`` (driver output resistance)
and ``CL`` (receiver input capacitance).

Section II of the paper shows that after scaling time by

    omega_n = 1 / sqrt(Lt * (Ct + CL))                               (eq. 3)

the normalized 50% delay depends on only three dimensionless groups,

    RT = Rtr / Rt,   CT = CL / Ct,                                   (eq. 5)

and the damping factor

    zeta = (Rt / 2) * sqrt(Ct / Lt)
           * (RT + CT + RT*CT + 0.5) / sqrt(1 + CT),                 (eq. 6)

and that the dependence on ``RT`` and ``CT`` beyond their contribution to
``zeta`` is weak.  ``zeta`` therefore *collects all five impedances into a
single parameter* -- the central observation enabling the closed-form
delay model of :mod:`repro.core.delay`.

``zeta`` is exactly half the coefficient of the scaled complex frequency
in the denominator of the transfer function (the paper's eq. 7); the test
suite verifies this against the independently computed series expansion in
:func:`repro.tline.transfer.denominator_coefficients`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import (
    ParameterError,
    require_nonnegative,
    require_positive,
)

__all__ = ["DriverLineLoad", "omega_n", "zeta", "zeta_from_ratios"]


def omega_n(lt: float, ct: float, cl: float = 0.0) -> float:
    """Natural angular frequency ``1 / sqrt(Lt * (Ct + CL))`` (eq. 3).

    ``lt`` in henries, ``ct``/``cl`` in farads; result in rad/s.  This
    is the time scale that collapses eq. 9 to a function of ``zeta``
    alone.
    """
    require_positive("lt", lt)
    require_positive("ct", ct)
    require_nonnegative("cl", cl)
    return 1.0 / math.sqrt(lt * (ct + cl))


def zeta_from_ratios(rt_over_2_sqrt: float, r_ratio: float, c_ratio: float) -> float:
    """``zeta`` given the prefactor ``(Rt/2)*sqrt(Ct/Lt)`` and RT, CT.

    The dimensionless-group form of eq. 6, kept as a cross-check target
    for the test suite (the production path is
    :func:`repro.sweep.kernels.batch_zeta`).
    """
    require_nonnegative("r_ratio", r_ratio)
    require_nonnegative("c_ratio", c_ratio)
    numerator = r_ratio + c_ratio + r_ratio * c_ratio + 0.5
    return rt_over_2_sqrt * numerator / math.sqrt(1.0 + c_ratio)


def zeta(
    rt: float,
    lt: float,
    ct: float,
    rtr: float = 0.0,
    cl: float = 0.0,
) -> float:
    """Damping factor of the driver/line/load system (eq. 6).

    Dimensionless; inputs SI (``rt``/``rtr`` in ohm, ``lt`` in H,
    ``ct``/``cl`` in F).  ``zeta < 1`` indicates an underdamped
    (inductance-dominated) response with overshoot; large ``zeta``
    recovers RC behaviour.  As the single parameter of eq. 9 it is
    meaningful wherever that fit is (``RT, CT`` in ``[0, 1]``).  The
    arithmetic (including the ``rt == 0`` limit, where ``RT = Rtr/Rt``
    diverges but ``Rt*RT = Rtr`` stays finite) lives in
    :func:`repro.sweep.kernels.batch_zeta` so the scalar path and the
    batch sweep path share one implementation.
    """
    require_nonnegative("rt", rt)
    require_positive("lt", lt)
    require_positive("ct", ct)
    require_nonnegative("rtr", rtr)
    require_nonnegative("cl", cl)
    from repro.sweep.kernels import batch_zeta

    return float(batch_zeta(rt, lt, ct, rtr, cl))


@dataclass(frozen=True)
class DriverLineLoad:
    """A gate driving a distributed RLC line into a capacitive load.

    This is the object model of the paper's Fig. 1.  All values are SI.

    Attributes
    ----------
    rt, lt, ct:
        Total line resistance (ohm), inductance (H), capacitance (F).
    rtr:
        Driver (gate) equivalent output resistance (ohm).
    cl:
        Load (next gate input) capacitance (F).

    Examples
    --------
    >>> line = DriverLineLoad(rt=1000.0, lt=1e-6, ct=1e-12,
    ...                       rtr=100.0, cl=1e-13)
    >>> round(line.zeta, 4)
    0.3385
    >>> round(line.r_ratio, 3), round(line.c_ratio, 3)
    (0.1, 0.1)
    """

    rt: float
    lt: float
    ct: float
    rtr: float = 0.0
    cl: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative("rt", self.rt)
        require_positive("lt", self.lt)
        require_positive("ct", self.ct)
        require_nonnegative("rtr", self.rtr)
        require_nonnegative("cl", self.cl)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_per_unit_length(
        cls,
        r: float,
        l: float,
        c: float,
        length: float,
        rtr: float = 0.0,
        cl: float = 0.0,
    ) -> "DriverLineLoad":
        """Build from per-unit-length parasitics and a wire length.

        ``r`` in ohm/m, ``l`` in H/m, ``c`` in F/m, ``length`` in m
        (paper: ``Rt = R*l`` etc.).
        """
        require_positive("length", length)
        return cls(
            rt=r * length, lt=l * length, ct=c * length, rtr=rtr, cl=cl
        )

    @classmethod
    def for_zeta(
        cls,
        zeta_target: float,
        r_ratio: float = 0.0,
        c_ratio: float = 0.0,
        rt: float = 1.0,
        ct: float = 1.0,
    ) -> "DriverLineLoad":
        """Construct a circuit with a prescribed damping factor.

        Fixes ``Rt``, ``Ct`` and the dimensionless ratios ``RT``, ``CT``
        and solves eq. 6 for the ``Lt`` that yields ``zeta_target``.
        Used to sweep ``zeta`` at constant (RT, CT) -- the axes of the
        paper's Fig. 2.
        """
        require_positive("zeta_target", zeta_target)
        require_nonnegative("r_ratio", r_ratio)
        require_nonnegative("c_ratio", c_ratio)
        require_positive("rt", rt)
        require_positive("ct", ct)
        from repro.sweep.kernels import batch_lt_for_zeta

        lt = float(batch_lt_for_zeta(zeta_target, r_ratio, c_ratio, rt, ct))
        return cls(
            rt=rt, lt=lt, ct=ct, rtr=r_ratio * rt, cl=c_ratio * ct
        )

    def with_length_scaled(self, factor: float) -> "DriverLineLoad":
        """The same wire, ``factor`` times longer (gate parasitics fixed)."""
        require_positive("factor", factor)
        return replace(
            self, rt=self.rt * factor, lt=self.lt * factor, ct=self.ct * factor
        )

    def section(self, k: int) -> "DriverLineLoad":
        """One of ``k`` equal line sections (gate impedances preserved).

        Used by the repeater algebra: each section has impedance
        ``Rt/k, Lt/k, Ct/k`` (paper Fig. 3 / eq. 19).
        """
        if not isinstance(k, int) or k < 1:
            raise ParameterError(f"k must be a positive integer, got {k!r}")
        return replace(
            self, rt=self.rt / k, lt=self.lt / k, ct=self.ct / k
        )

    # -- canonical variables ---------------------------------------------------

    @property
    def r_ratio(self) -> float:
        """``RT = Rtr / Rt`` (eq. 5); infinity for a resistance-free line."""
        if self.rt == 0:
            return math.inf if self.rtr > 0 else 0.0
        return self.rtr / self.rt

    @property
    def c_ratio(self) -> float:
        """``CT = CL / Ct`` (eq. 5)."""
        return self.cl / self.ct

    @property
    def omega_n(self) -> float:
        """Natural frequency (eq. 3), rad/s."""
        return omega_n(self.lt, self.ct, self.cl)

    @property
    def zeta(self) -> float:
        """Damping factor (eq. 6)."""
        return zeta(self.rt, self.lt, self.ct, self.rtr, self.cl)

    @property
    def is_underdamped(self) -> bool:
        """True when the far-end response overshoots (``zeta < 1``)."""
        return self.zeta < 1.0

    @property
    def time_of_flight(self) -> float:
        """Wave propagation time ``sqrt(Lt * Ct)`` of the bare line."""
        return math.sqrt(self.lt * self.ct)

    @property
    def characteristic_impedance(self) -> float:
        """Lossless characteristic impedance ``sqrt(Lt / Ct)``."""
        return math.sqrt(self.lt / self.ct)

    @property
    def total_capacitance(self) -> float:
        """Line plus load capacitance ``Ct + CL``."""
        return self.ct + self.cl

    # -- substrate views -------------------------------------------------------

    def transfer(self):
        """Exact frequency-domain view (:mod:`repro.tline.transfer`)."""
        from repro.tline.transfer import DriverLineLoadTransfer

        return DriverLineLoadTransfer(
            rt=self.rt, lt=self.lt, ct=self.ct, rtr=self.rtr, cl=self.cl
        )

    def ladder(self, n_segments: int = 64, topology="PI"):
        """Lumped-ladder view (:mod:`repro.spice.ladder`).

        The driver resistance must be positive for the lumped model; a
        zero ``rtr`` is replaced by a negligibly small resistance scaled
        to the line (``1e-6 * max(Rt, Z0)``).
        """
        from repro.spice.ladder import LadderSpec

        rtr = self.rtr
        if rtr == 0.0:
            rtr = 1e-6 * max(self.rt, self.characteristic_impedance)
        return LadderSpec(
            rt=self.rt,
            lt=self.lt,
            ct=self.ct,
            rtr=rtr,
            cl=self.cl,
            n_segments=n_segments,
            topology=topology,
        )
