"""Classical RC delay baselines referenced by the paper.

- Sakurai [3]: the widely used closed-form 50% delay of a distributed RC
  line with source resistance and load capacitance,
  ``t50 = 0.377*Rt*Ct + 0.693*(Rtr*Ct + Rtr*CL + Rt*CL)``;
- Bakoglu [11]: the RC repeater insertion optimum (implemented in
  :func:`repro.core.repeater.bakoglu_rc_design`);
- the lossless LC "speed-of-light" bound.

These are the models the paper's eq. 9 collapses to in the ``L -> 0``
limit and improves upon elsewhere; experiment EXP-X3 quantifies the gap.
"""

from __future__ import annotations

import math

from repro.core.canonical import DriverLineLoad
from repro.errors import ParameterError

__all__ = [
    "SAKURAI_LINE_COEFFICIENT",
    "SAKURAI_LUMPED_COEFFICIENT",
    "sakurai_rc_delay_50",
    "distributed_rc_delay_50",
    "lc_bound_delay",
    "rc_dominated",
]

#: Sakurai's distributed-RC coefficient for the line's own delay.
SAKURAI_LINE_COEFFICIENT = 0.377
#: ln(2), the single-pole coefficient for the lumped terms.
SAKURAI_LUMPED_COEFFICIENT = 0.693


def sakurai_rc_delay_50(line: DriverLineLoad) -> float:
    """Sakurai's RC 50% delay (ignores ``Lt``), seconds.

    The reference model for RC interconnect timing; for a bare line it
    reduces to ``0.377 * Rt * Ct`` (quadratic in length since both
    ``Rt`` and ``Ct`` scale with ``l``).
    """
    return (
        SAKURAI_LINE_COEFFICIENT * line.rt * line.ct
        + SAKURAI_LUMPED_COEFFICIENT
        * (line.rtr * line.ct + line.rtr * line.cl + line.rt * line.cl)
    )


def distributed_rc_delay_50(rt: float, ct: float) -> float:
    """Bare distributed-RC line delay ``0.377 * Rt * Ct``.

    The paper quotes the rounded coefficient ``0.37`` when presenting the
    ``L -> 0`` limit of eq. 9 (``1.48 / 4 = 0.37``).
    """
    if rt < 0 or ct < 0:
        raise ParameterError("rt and ct must be >= 0")
    return SAKURAI_LINE_COEFFICIENT * rt * ct


def lc_bound_delay(line: DriverLineLoad) -> float:
    """Lossless lower bound: wavefront arrival ``sqrt(Lt * Ct)``.

    No signalling scheme on this wire can beat the time of flight; the
    paper's repeater result (fewer repeaters as inductance grows) follows
    from delay saturating at this *linear-in-length* bound.
    """
    return math.sqrt(line.lt * line.ct)


def rc_dominated(line: DriverLineLoad, threshold: float = 2.0) -> bool:
    """Heuristic: is this net effectively RC (``zeta`` above threshold)?

    With ``zeta >= ~2`` the eq. 9 exponential term is < 1% of the delay
    and RC models are adequate; below it inductance matters.  See
    :mod:`repro.analysis.merit` for the length-window criterion of the
    companion paper [8].
    """
    if threshold <= 0:
        raise ParameterError(f"threshold must be > 0, got {threshold}")
    return line.zeta >= threshold
