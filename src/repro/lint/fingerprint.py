"""Numerics fingerprint guard: AST hashes vs ``SIMULATOR_VERSION``.

The sweep disk cache replays results across processes keyed on
``SIMULATOR_VERSION`` / ``KERNEL_VERSION``
(:meth:`repro.sweep.grid.Sweep.cache_key`): if a numeric kernel
changes behaviour without a version bump, every cached sweep silently
serves stale numbers.  Nothing in the language enforces that contract
-- this module does, statically:

- every kernel module named by
  :attr:`repro.lint.config.LintConfig.kernel_modules` is *normalized*
  (docstrings stripped, ``__all__`` and the version-sentinel
  assignments dropped -- so documentation-only edits and the bump
  itself never trip the guard) and hashed into the committed manifest
  ``src/repro/lint/numerics_manifest.json``;
- at lint time the recomputed hashes and the current version sentinels
  are compared against the manifest: a hash change without a version
  bump is NUM001, a version bump without any hash change is NUM002,
  a stale or missing manifest entry is NUM003, and a bump *with*
  changes is a NUM004 note reminding the author to refresh the
  manifest with ``--fix-baseline``.

The normalization is purely syntactic (comments never reach the AST;
``ast.dump`` without attributes drops line numbers), so formatting
and comment edits are invisible while any expression change -- a
coefficient, an operator, a reordered term -- flips the hash.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib

from repro.lint.config import LintConfig
from repro.lint.engine import (
    ERROR,
    NOTE,
    Finding,
    Project,
    ProjectRule,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "normalized_fingerprint",
    "read_version",
    "load_manifest",
    "build_manifest",
    "write_manifest",
    "FingerprintGuard",
    "CONTRACT",
]

#: Schema tag of the manifest document.
MANIFEST_SCHEMA_VERSION = 1

#: Top-level assignment targets dropped during normalization: the
#: version sentinels (so the bump itself does not change the hash the
#: bump is compared against) and the API-surface list (exporting a
#: name is not a numerics change).
_STRIPPED_ASSIGNMENTS = frozenset(
    {"SIMULATOR_VERSION", "KERNEL_VERSION", "__all__"}
)

#: One-paragraph statement of the contract, embedded in findings so
#: the failure is self-explanatory at the CI log.
CONTRACT = (
    "cached sweep results are keyed on SIMULATOR_VERSION/KERNEL_VERSION "
    "(repro.sweep.grid.Sweep.cache_key); a kernel change without a "
    "version bump makes the disk cache silently replay stale numerics. "
    "Bump the version in the kernel's version module, or -- if the "
    "change is provably numerics-neutral (a pure refactor) -- refresh "
    "the manifest with `python -m repro lint --fix-baseline`."
)


def _strip_docstring(body: list) -> list:
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        rest = body[1:]
        return rest if rest else [ast.Pass()]
    return body


def normalized_fingerprint(text: str) -> str:
    """SHA-256 over the normalized AST of ``text``.

    Stable under comment, whitespace, docstring, ``__all__`` and
    version-sentinel edits; changed by any other syntactic change.
    """
    tree = ast.parse(text)
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            node.body = _strip_docstring(node.body)
    tree.body = [
        node
        for node in tree.body
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id in _STRIPPED_ASSIGNMENTS
                for t in node.targets
            )
        )
    ]
    dump = ast.dump(tree, annotate_fields=False, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()


def read_version(project: Project, relpath: str, variable: str):
    """The integer assigned to ``variable`` in ``relpath`` (or None).

    Read from the AST, not by importing the module, so the guard works
    on source trees that do not import (or are mid-edit).
    """
    source = project.file_map.get(relpath)
    if source is None:
        return None
    try:
        tree = source.tree
    except SyntaxError:
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == variable
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                ):
                    return node.value.value
    return None


def _current_versions(project: Project, config: LintConfig) -> dict:
    return {
        name: read_version(project, relpath, variable)
        for name, relpath, variable in config.version_sources
    }


def load_manifest(path: pathlib.Path):
    """The committed manifest document, or ``None`` when absent."""
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def build_manifest(project: Project, config: LintConfig) -> dict:
    """Compute the manifest document for the project as it stands."""
    fingerprints = {}
    for relpath in project.glob(config.kernel_modules):
        source = project.file_map[relpath]
        try:
            fingerprints[relpath] = normalized_fingerprint(source.text)
        except SyntaxError:
            continue
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "versions": _current_versions(project, config),
        "fingerprints": fingerprints,
    }


def write_manifest(project: Project, config: LintConfig) -> pathlib.Path:
    """Write the recomputed manifest to its configured location."""
    path = project.root / config.manifest_relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(build_manifest(project, config), indent=2, sort_keys=True)
        + "\n"
    )
    return path


class FingerprintGuard(ProjectRule):
    """NUM001-NUM004: the cache-invalidation contract, machine-checked."""

    id = "NUM001"
    severity = ERROR
    summary = (
        "numeric-kernel fingerprint changed without a "
        "SIMULATOR_VERSION/KERNEL_VERSION bump (and related manifest "
        "integrity checks NUM002-NUM004)"
    )

    @property
    def ids(self) -> tuple:
        """NUM001 drift, NUM002 idle bump, NUM003 stale manifest,
        NUM004 refresh-pending note."""
        return ("NUM001", "NUM002", "NUM003", "NUM004")

    def check_project(self, project: Project, config: LintConfig):
        """Compare current fingerprints/versions with the manifest."""
        manifest_path = project.root / config.manifest_relpath
        manifest_rel = manifest_path.relative_to(project.root).as_posix()
        manifest = load_manifest(manifest_path)
        current = build_manifest(project, config)

        for name, relpath, variable in config.version_sources:
            if current["versions"][name] is None:
                yield Finding(
                    rule="NUM003",
                    severity=ERROR,
                    path=relpath,
                    line=0,
                    message=(
                        f"version sentinel {variable} not found as a "
                        f"literal int assignment in {relpath}"
                    ),
                )
        if manifest is None:
            yield Finding(
                rule="NUM003",
                severity=ERROR,
                path=manifest_rel,
                line=0,
                message=(
                    "numerics manifest is missing; generate it with "
                    "`python -m repro lint --fix-baseline`"
                ),
            )
            return

        recorded = manifest.get("fingerprints", {})
        computed = current["fingerprints"]
        for relpath in sorted(set(computed) - set(recorded)):
            yield Finding(
                rule="NUM003",
                severity=ERROR,
                path=relpath,
                line=0,
                message=(
                    f"kernel module {relpath} is not fingerprinted in "
                    f"{manifest_rel}; run --fix-baseline to bring it "
                    "under the numerics guard"
                ),
            )
        for relpath in sorted(set(recorded) - set(computed)):
            yield Finding(
                rule="NUM003",
                severity=ERROR,
                path=relpath,
                line=0,
                message=(
                    f"manifest entry {relpath} no longer matches a "
                    "kernel module on disk; run --fix-baseline"
                ),
            )

        changed = sorted(
            relpath
            for relpath in set(recorded) & set(computed)
            if recorded[relpath] != computed[relpath]
        )
        bumped = current["versions"] != manifest.get("versions", {})
        if changed and not bumped:
            for relpath in changed:
                yield Finding(
                    rule="NUM001",
                    severity=ERROR,
                    path=relpath,
                    line=0,
                    message=(
                        f"numeric kernel {relpath} changed but neither "
                        "SIMULATOR_VERSION nor KERNEL_VERSION was "
                        "bumped: " + CONTRACT
                    ),
                )
        elif bumped and not changed:
            yield Finding(
                rule="NUM002",
                severity=ERROR,
                path=manifest_rel,
                line=0,
                message=(
                    "SIMULATOR_VERSION/KERNEL_VERSION was bumped "
                    f"({manifest.get('versions')} -> "
                    f"{current['versions']}) but no fingerprinted "
                    "kernel changed; a no-op bump invalidates every "
                    "cached sweep for nothing -- revert it, or run "
                    "--fix-baseline if the manifest is stale"
                ),
            )
        elif bumped and changed:
            yield Finding(
                rule="NUM004",
                severity=NOTE,
                path=manifest_rel,
                line=0,
                message=(
                    "version bump plus kernel changes detected "
                    f"({', '.join(changed)}); refresh the manifest "
                    "with `python -m repro lint --fix-baseline` before "
                    "merging"
                ),
            )
