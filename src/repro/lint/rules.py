"""The codebase-specific rule set (UNI/OBS/API/DEF/EXC families).

Each rule is a small, self-contained ``ast`` check with a stable id
(used by ``# repro-lint: disable=ID`` suppressions and the baseline),
a severity and a one-line summary; :func:`all_rules` is the registry
the engine and the docs-page drift guard both read.  The numerics
fingerprint guard (NUM001-NUM004) lives in
:mod:`repro.lint.fingerprint` and is included in the registry here.

Rule catalogue (see ``docs/static-analysis.md`` for the long form):

- UNI001: bare power-of-ten SI literal passed as a physical keyword
  argument -- use :mod:`repro.units` constants.
- UNI002: ``+``/``-`` mixing operands whose declared physical
  dimensions disagree (from :mod:`repro.units` constant usage or
  docstring-declared parameter units).
- OBS001: ungated ``obs.*`` call inside a loop of a hot-path module
  (the ``NOOP_SPAN``/``_state`` <= 2%-overhead contract).
- OBS002: ``time.time()`` used where a duration may be computed --
  durations must come from ``time.perf_counter()``.
- API001: ``__all__`` drift -- missing ``__all__``, entries naming
  nothing, public definitions not exported, package ``__init__``
  re-imports not re-exported.
- API002: public module-level function/class without a docstring.
- DEF001: mutable default argument.
- EXC001: bare ``except`` or an except block that silently ``pass``es.
"""

from __future__ import annotations

import ast
import fnmatch
import re

from repro.lint.config import LintConfig
from repro.lint.engine import ERROR, WARNING, Rule, SourceFile
from repro.lint.fingerprint import FingerprintGuard

__all__ = [
    "UnitLiteralRule",
    "UnitMismatchRule",
    "ObsInLoopRule",
    "WallClockRule",
    "AllDriftRule",
    "PublicDocstringRule",
    "MutableDefaultRule",
    "SilentExceptRule",
    "all_rules",
    "rule_catalogue",
]

_SI_LITERAL_RE = re.compile(r"^\d+(?:\.\d+)?[eE]-(\d+)$")


def _matches(relpath: str, patterns: tuple) -> bool:
    return any(fnmatch.fnmatch(relpath, pat) for pat in patterns)


class UnitLiteralRule(Rule):
    """UNI001: magic SI literals in physical keyword arguments."""

    id = "UNI001"
    severity = WARNING
    summary = (
        "bare power-of-ten SI literal passed as a physical keyword "
        "argument; use repro.units constants (e.g. ct=1 * PF)"
    )

    def check(self, source: SourceFile, config: LintConfig):
        """Flag ``kwarg=1e-12``-style literals on SI parameters."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg not in config.si_call_kwargs:
                    continue
                value = keyword.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, float)
                ):
                    continue
                segment = ast.get_source_segment(source.text, value) or ""
                match = _SI_LITERAL_RE.match(segment)
                if match and int(match.group(1)) >= 3:
                    yield self.finding(
                        source,
                        value,
                        f"SI literal {segment} passed as "
                        f"{keyword.arg}=...; use a repro.units constant "
                        "(e.g. 1 * PF) so the declared unit is visible "
                        "at the call site",
                    )


_UNIT_WORDS = {
    "ohm": "resistance",
    "ohms": "resistance",
    "farad": "capacitance",
    "farads": "capacitance",
    "henry": "inductance",
    "henries": "inductance",
    "second": "time",
    "seconds": "time",
    "meter": "length",
    "meters": "length",
    "volt": "voltage",
    "volts": "voltage",
    "watt": "power",
    "watts": "power",
    "hertz": "frequency",
    "hz": "frequency",
}

_PARAM_LINE_RE = re.compile(r"^\s*`{0,2}(\w+)`{0,2}\s*:\s*(.*)$")
_WORD_RE = re.compile(r"[A-Za-z]+")


def _docstring_param_dims(docstring: str) -> dict:
    """``param -> dimension`` from numpy-style docstring lines.

    Recognizes ``name : <type>`` parameter lines whose declaration
    line or indented description mentions exactly one unit word
    (``ohms``, ``farads``, ``seconds``, ...).  Ambiguous or unitless
    parameters are simply absent from the result.
    """
    dims: dict[str, str] = {}
    lines = docstring.splitlines()
    for i, line in enumerate(lines):
        match = _PARAM_LINE_RE.match(line)
        if not match:
            continue
        name = match.group(1)
        indent = len(line) - len(line.lstrip())
        text = [match.group(2)]
        for follow in lines[i + 1 :]:
            if not follow.strip():
                break
            if len(follow) - len(follow.lstrip()) <= indent:
                break
            text.append(follow)
        found = {
            _UNIT_WORDS[word]
            for chunk in text
            for word in map(str.lower, _WORD_RE.findall(chunk))
            if word in _UNIT_WORDS
        }
        if len(found) == 1:
            dims[name] = found.pop()
    return dims


class UnitMismatchRule(Rule):
    """UNI002: additive arithmetic across disagreeing dimensions."""

    id = "UNI002"
    severity = ERROR
    summary = (
        "addition/subtraction mixes operands whose declared physical "
        "dimensions disagree"
    )

    def check(self, source: SourceFile, config: LintConfig):
        """Walk functions, tracking declared dims of names in scope."""
        yield from self._walk(source, source.tree, [], config)

    def _walk(self, source, node, scopes, config):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            doc = ast.get_docstring(node) or ""
            params = {
                a.arg
                for a in (
                    node.args.posonlyargs
                    + node.args.args
                    + node.args.kwonlyargs
                )
            }
            declared = {
                name: dim
                for name, dim in _docstring_param_dims(doc).items()
                if name in params
            }
            scopes = scopes + [declared]
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.BinOp) and isinstance(
                child.op, (ast.Add, ast.Sub)
            ):
                left = self._dim(child.left, scopes, config)
                right = self._dim(child.right, scopes, config)
                if left and right and left != right:
                    operator = "+" if isinstance(child.op, ast.Add) else "-"
                    yield self.finding(
                        source,
                        child,
                        f"'{operator}' mixes {left} and {right} "
                        "operands; strict-SI arithmetic must stay "
                        "within one dimension",
                    )
            yield from self._walk(source, child, scopes, config)

    def _dim(self, node, scopes, config):
        if isinstance(node, ast.Name):
            for scope in reversed(scopes):
                if node.id in scope:
                    return scope[node.id]
            return config.unit_dimensions.get(node.id)
        if isinstance(node, ast.Attribute):
            return config.unit_dimensions.get(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self._dim(node.operand, scopes, config)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            left = self._dim(node.left, scopes, config)
            right = self._dim(node.right, scopes, config)
            if left and right:
                # A product of two dimensions is a new dimension this
                # lightweight checker does not model.
                return None
            return left or right
        return None


_OBS_CALLS = frozenset({"span", "inc", "observe", "set_gauge"})


def _is_obs_call(node) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _OBS_CALLS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "obs"
    )


def _is_enabled_test(node) -> bool:
    """True for an ``obs.enabled()`` expression."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "enabled"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "obs"
    )


def _is_not_enabled_test(node) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.Not)
        and _is_enabled_test(node.operand)
    )


def _block_exits(body: list) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Continue, ast.Break, ast.Raise)
    )


class ObsInLoopRule(Rule):
    """OBS001: ungated per-iteration observability in hot paths."""

    id = "OBS001"
    severity = WARNING
    summary = (
        "obs.* call inside a loop of a hot-path module without an "
        "obs.enabled() gate (the <= 2%-overhead NOOP_SPAN contract)"
    )

    def check(self, source: SourceFile, config: LintConfig):
        """Flag loop-resident obs calls unless an enabled() gate
        dominates them (``if obs.enabled():`` block, or an
        ``if not obs.enabled(): return`` early exit)."""
        if not _matches(source.relpath, config.hot_path_modules):
            return
        findings: list = []
        self._block(source, source.tree.body, 0, False, findings)
        yield from findings

    def _block(self, source, body, loop_depth, gated, findings):
        for stmt in body:
            self._stmt(source, stmt, loop_depth, gated, findings)
            if (
                isinstance(stmt, ast.If)
                and _is_not_enabled_test(stmt.test)
                and _block_exits(stmt.body)
                and not stmt.orelse
            ):
                # `if not obs.enabled(): return` -- everything after
                # this statement only runs with instrumentation on.
                gated = True

    def _stmt(self, source, stmt, loop_depth, gated, findings):
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            self._block(source, stmt.body, 0, False, findings)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            header = stmt.iter if hasattr(stmt, "iter") else stmt.test
            self._exprs(source, header, loop_depth, gated, findings)
            self._block(source, stmt.body, loop_depth + 1, gated, findings)
            self._block(source, stmt.orelse, loop_depth, gated, findings)
            return
        if isinstance(stmt, ast.If):
            self._exprs(source, stmt.test, loop_depth, gated, findings)
            body_gated = gated or _is_enabled_test(stmt.test)
            self._block(source, stmt.body, loop_depth, body_gated, findings)
            self._block(source, stmt.orelse, loop_depth, gated, findings)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._exprs(
                    source, item.context_expr, loop_depth, gated, findings
                )
            self._block(source, stmt.body, loop_depth, gated, findings)
            return
        if isinstance(stmt, ast.Try):
            self._block(source, stmt.body, loop_depth, gated, findings)
            for handler in stmt.handlers:
                self._block(
                    source, handler.body, loop_depth, gated, findings
                )
            self._block(source, stmt.orelse, loop_depth, gated, findings)
            self._block(source, stmt.finalbody, loop_depth, gated, findings)
            return
        self._exprs(source, stmt, loop_depth, gated, findings)

    def _exprs(self, source, node, loop_depth, gated, findings):
        if node is None or loop_depth == 0 or gated:
            return
        for sub in ast.walk(node):
            if _is_obs_call(sub):
                findings.append(
                    self.finding(
                        source,
                        sub,
                        f"obs.{sub.func.attr}(...) inside a loop of "
                        "hot-path module; gate it behind "
                        "obs.enabled() (or hoist/accumulate outside "
                        "the loop) to preserve the disabled-path "
                        "overhead contract",
                    )
                )


class WallClockRule(Rule):
    """OBS002: ``time.time()`` where monotonic time is required."""

    id = "OBS002"
    severity = WARNING
    summary = (
        "time.time() call; durations must use time.perf_counter() -- "
        "suppress inline where a wall-clock timestamp is intended"
    )

    def check(self, source: SourceFile, config: LintConfig):
        """Flag every ``time.time()`` call site."""
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield self.finding(
                    source,
                    node,
                    "time.time() is wall-clock (it can jump under NTP "
                    "adjustment); compute durations from "
                    "time.perf_counter() and keep time.time() only "
                    "for timestamps, with an inline "
                    "`# repro-lint: disable=OBS002` justification",
                )


def _assigned_names(node) -> list:
    names: list[str] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
    elif isinstance(node, ast.AnnAssign) and isinstance(
        node.target, ast.Name
    ):
        names.append(node.target.id)
    return names


class AllDriftRule(Rule):
    """API001: ``__all__`` vs definitions vs ``__init__`` re-exports."""

    id = "API001"
    severity = WARNING
    summary = (
        "__all__ drift: missing __all__, entries naming nothing, "
        "unexported public definitions, or __init__ re-imports "
        "missing from __all__"
    )

    def check(self, source: SourceFile, config: LintConfig):
        """Check one module's export surface for drift."""
        tree = source.tree
        basename = source.relpath.rsplit("/", 1)[-1]
        is_init = basename == "__init__.py"
        exempt = (
            basename.startswith("_") and not is_init
        ) or source.relpath in config.exempt_missing_all

        all_node = None
        all_names = None
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                all_node = node
                try:
                    all_names = list(ast.literal_eval(node.value))
                except ValueError:
                    all_names = None

        if all_node is None:
            if not exempt:
                yield self.finding(
                    source,
                    1,
                    "module defines no __all__; every public module "
                    "must declare its export surface",
                )
            return
        if all_names is None:
            # Dynamically built __all__: nothing further to check.
            return

        defined: set[str] = set()
        imported: dict[str, int] = {}
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                defined.add(node.name)
            defined.update(_assigned_names(node))
            if isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    defined.add(name)
                    imported[name] = node.lineno

        for name in all_names:
            if name not in defined:
                yield self.finding(
                    source,
                    all_node,
                    f"__all__ lists {name!r} but the module defines "
                    "no such name",
                )

        for node in tree.body:
            public = [
                n
                for n in _assigned_names(node)
                if not n.startswith("_") and n != "__all__"
            ]
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not node.name.startswith("_"):
                public.append(node.name)
            for name in public:
                if name not in all_names:
                    yield self.finding(
                        source,
                        node,
                        f"public name {name!r} is defined at module "
                        "level but missing from __all__",
                    )

        if is_init:
            package_dir = source.path.parent
            for name, lineno in sorted(imported.items()):
                if name.startswith("_") or name in all_names:
                    continue
                if (package_dir / f"{name}.py").is_file() or (
                    package_dir / name
                ).is_dir():
                    continue  # submodule import, not a re-export
                yield self.finding(
                    source,
                    lineno,
                    f"__init__ re-imports {name!r} but does not list "
                    "it in __all__ (re-export drift)",
                )


class PublicDocstringRule(Rule):
    """API002: public top-level callables must carry docstrings."""

    id = "API002"
    severity = WARNING
    summary = "public module-level function/class without a docstring"

    def check(self, source: SourceFile, config: LintConfig):
        """Flag undocumented public top-level defs and classes."""
        for node in source.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and not node.name.startswith("_"):
                if ast.get_docstring(node) is None:
                    kind = (
                        "class"
                        if isinstance(node, ast.ClassDef)
                        else "function"
                    )
                    yield self.finding(
                        source,
                        node,
                        f"public {kind} {node.name!r} has no docstring "
                        "(state what it does and the units of its "
                        "parameters)",
                    )


_MUTABLE_CTORS = frozenset({"list", "dict", "set"})


class MutableDefaultRule(Rule):
    """DEF001: mutable default arguments."""

    id = "DEF001"
    severity = ERROR
    summary = "mutable default argument (shared across calls)"

    def check(self, source: SourceFile, config: LintConfig):
        """Flag list/dict/set (display or constructor) defaults."""
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CTORS
                )
                if mutable:
                    yield self.finding(
                        source,
                        default,
                        f"function {node.name!r} has a mutable default "
                        "argument; default to None and construct "
                        "inside the body",
                    )


class SilentExceptRule(Rule):
    """EXC001: bare ``except`` and silently swallowed exceptions."""

    id = "EXC001"
    severity = WARNING
    summary = "bare except, or an except block that silently passes"

    def check(self, source: SourceFile, config: LintConfig):
        """Flag handlers that catch everything or do nothing."""
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source,
                    node,
                    "bare except catches SystemExit/KeyboardInterrupt; "
                    "name the exception types",
                )
                continue
            body = [
                stmt
                for stmt in node.body
                if not (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
            ]
            if all(isinstance(stmt, ast.Pass) for stmt in body):
                yield self.finding(
                    source,
                    node,
                    "except block silently swallows the exception; "
                    "handle it, log it, or justify with an inline "
                    "suppression",
                )


def all_rules() -> list:
    """The full registry: every per-file rule plus the project rules."""
    return [
        UnitLiteralRule(),
        UnitMismatchRule(),
        ObsInLoopRule(),
        WallClockRule(),
        AllDriftRule(),
        PublicDocstringRule(),
        MutableDefaultRule(),
        SilentExceptRule(),
        FingerprintGuard(),
    ]


def rule_catalogue() -> list:
    """``(id, severity, summary)`` rows for docs and drift guards."""
    rows = []
    for rule in all_rules():
        rows.append((rule.id, rule.severity, rule.summary))
    return rows
