"""repro.lint -- stdlib-only static analysis of this codebase.

Four layers of this repository rest on conventions no off-the-shelf
tool knows about, so this package makes them machine-checked before
every merge (``python -m repro lint``; the CI ``lint`` job fails on
any non-baselined finding):

- **numerics fingerprint guard** (NUM001-NUM004): the sweep disk
  cache replays results keyed on ``SIMULATOR_VERSION`` /
  ``KERNEL_VERSION``; every cache-keyed kernel module's normalized
  AST hash is pinned in ``numerics_manifest.json`` and a kernel edit
  without a version bump (or a bump without an edit) fails the lint;
- **SI-unit hygiene** (UNI001/UNI002): bare power-of-ten literals on
  physical keyword arguments, and ``+``/``-`` mixing operands whose
  declared dimensions disagree;
- **observability hygiene** (OBS001/OBS002): ``obs.*`` calls inside
  hot-path loops must be gated per the ``NOOP_SPAN``/``_state``
  idiom (the <= 2%-overhead guarantee), and durations must come from
  ``time.perf_counter()``, never ``time.time()``;
- **API surface** (API001/API002) and generic pitfalls
  (DEF001 mutable defaults, EXC001 silent excepts).

Findings can be suppressed inline (``# repro-lint: disable=UNI001``,
``disable-file=...``) or grandfathered in the committed baseline;
``--fix-baseline`` regenerates both the manifest and the baseline.
Everything here is standard library and purely syntactic -- the rules
parse source with :mod:`ast` and never import the code they check.
"""

from __future__ import annotations

from repro.lint.config import DEFAULT_CONFIG, UNIT_DIMENSIONS, LintConfig
from repro.lint.engine import (
    ERROR,
    NOTE,
    WARNING,
    Finding,
    LintResult,
    Project,
    ProjectRule,
    Rule,
    SourceFile,
    default_package_root,
    run_lint,
)
from repro.lint.fingerprint import (
    FingerprintGuard,
    build_manifest,
    load_manifest,
    normalized_fingerprint,
    write_manifest,
)
from repro.lint.rules import all_rules, rule_catalogue

__all__ = [
    # severities
    "ERROR",
    "WARNING",
    "NOTE",
    # engine
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "ProjectRule",
    "SourceFile",
    "run_lint",
    "default_package_root",
    # configuration
    "LintConfig",
    "DEFAULT_CONFIG",
    "UNIT_DIMENSIONS",
    # fingerprint guard
    "FingerprintGuard",
    "normalized_fingerprint",
    "build_manifest",
    "load_manifest",
    "write_manifest",
    # registry
    "all_rules",
    "rule_catalogue",
]
