"""CLI glue for ``python -m repro lint``.

Kept separate from :mod:`repro.__main__` so the argument surface can
be tested without spawning a subprocess, mirroring
:mod:`repro.sweep.cli`.

Usage::

    python -m repro lint                      # lint src/repro, text report
    python -m repro lint --format json        # machine-readable findings
    python -m repro lint core spice/mna.py    # restrict per-file rules
    python -m repro lint --fix-baseline       # refresh manifest + baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.lint.engine import default_package_root, run_lint

__all__ = ["add_lint_arguments", "run_lint_command"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (package-relative or absolute) to "
        "restrict the per-file rules to; project-level checks such as "
        "the numerics fingerprint guard always see the whole package",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fix-baseline",
        action="store_true",
        help="regenerate the numerics manifest and rewrite the "
        "baseline from the remaining findings, leaving the run clean",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute the lint run described by parsed ``args``."""
    root = default_package_root()
    paths = []
    for raw in args.paths:
        candidate = pathlib.Path(raw)
        if not candidate.is_absolute() and (root / raw).exists():
            candidate = root / raw
        paths.append(candidate)
    result = run_lint(
        root=root, paths=paths or None, fix_baseline=args.fix_baseline
    )
    if args.format == "json":
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.render_text())
    return result.exit_code
