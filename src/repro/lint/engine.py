"""Rule engine: findings, suppressions, baseline, and the lint run.

The framework is deliberately stdlib-only and purely *syntactic*:
every rule works on ``ast`` trees and raw source text and never
imports the code under analysis, so a lint run cannot be perturbed by
import-time side effects (and conversely cannot break when a module
under repair does not import).

Data flow of one run (:func:`run_lint`):

1. discover the ``*.py`` files under the package root into a
   :class:`Project`;
2. run every per-file :class:`Rule` and every :class:`ProjectRule`
   (the numerics fingerprint guard) to collect :class:`Finding`\\ s;
3. drop findings suppressed by an inline
   ``# repro-lint: disable=RULE`` (same line) or
   ``# repro-lint: disable-file=RULE`` comment;
4. mark findings matching the committed baseline file as grandfathered
   (they are reported but do not fail the run), and report stale
   baseline entries as notes;
5. return a :class:`LintResult` whose :attr:`~LintResult.exit_code`
   is non-zero iff an *active* error/warning finding remains.

``--fix-baseline`` refreshes the numerics manifest first and then
rewrites the baseline from the surviving findings, so both committed
artifacts stay regenerable with one command.
"""

from __future__ import annotations

import ast
import dataclasses
import fnmatch
import io
import json
import pathlib
import re
import tokenize

from repro.lint.config import DEFAULT_CONFIG, LintConfig

__all__ = [
    "ERROR",
    "WARNING",
    "NOTE",
    "META_RULE_ID",
    "SYNTAX_RULE_ID",
    "Finding",
    "SourceFile",
    "Project",
    "Rule",
    "ProjectRule",
    "LintResult",
    "run_lint",
    "default_package_root",
    "load_baseline",
    "write_baseline",
]

#: Finding severities, in decreasing order of gravity.  Errors and
#: warnings fail the run unless baselined or suppressed; notes are
#: informational only.
ERROR = "error"
WARNING = "warning"
NOTE = "note"

#: Rule id of the engine's own housekeeping notes: stale baseline
#: entries and unknown rule ids inside suppression comments.
META_RULE_ID = "LNT001"

#: Rule id reported when a file does not parse at all.
SYNTAX_RULE_ID = "LNT002"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclasses.dataclass
class Finding:
    """One reported defect: rule id, severity, location, message.

    ``line`` is 1-based; 0 marks whole-file or project-level findings
    (e.g. a missing manifest).  ``baselined`` findings are shown but
    do not affect the exit code.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    baselined: bool = False

    def sort_key(self) -> tuple:
        """Stable report order: by file, then line, then rule id."""
        return (self.path, self.line, self.rule, self.message)

    def as_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        """One text-format report line."""
        mark = "  [baselined]" if self.baselined else ""
        return (
            f"{self.path or '<project>'}:{self.line}: "
            f"{self.rule} {self.severity}: {self.message}{mark}"
        )


class SourceFile:
    """One module under analysis: text, lazy AST, suppressions."""

    def __init__(self, path: pathlib.Path, relpath: str) -> None:
        self.path = path
        #: POSIX path relative to the package root (finding locations,
        #: manifest keys and baseline entries all use this form).
        self.relpath = relpath
        self.text = path.read_text()
        self._tree: ast.Module | None = None
        self._suppressions: tuple[frozenset, dict, list] | None = None

    @property
    def tree(self) -> ast.Module:
        """The parsed module (raises ``SyntaxError`` on bad source)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    def _parse_suppressions(self) -> tuple[frozenset, dict, list]:
        if self._suppressions is not None:
            return self._suppressions
        file_ids: set[str] = set()
        line_ids: dict[int, set[str]] = {}
        mentioned: list[tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            comments = [
                tok for tok in tokens if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            comments = []
        for tok in comments:
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            ids = {part.strip() for part in match.group(2).split(",")}
            for rule_id in ids:
                mentioned.append((tok.start[0], rule_id))
            if match.group(1) == "disable-file":
                file_ids |= ids
            else:
                line_ids.setdefault(tok.start[0], set()).update(ids)
        self._suppressions = (frozenset(file_ids), line_ids, mentioned)
        return self._suppressions

    def suppressed(self, finding: Finding) -> bool:
        """True when an inline comment disables ``finding`` here."""
        file_ids, line_ids, _ = self._parse_suppressions()
        if finding.rule in file_ids:
            return True
        return finding.rule in line_ids.get(finding.line, ())

    def suppression_mentions(self) -> list[tuple[int, str]]:
        """Every ``(line, rule_id)`` named by a suppression comment."""
        return self._parse_suppressions()[2]


class Project:
    """The package under analysis: root directory plus its modules.

    ``paths`` (files or directories) restricts which modules the
    per-file rules visit; project-level rules such as the numerics
    fingerprint guard always see the full tree, since a partial view
    of the manifest would mis-report drift.
    """

    def __init__(
        self,
        root: pathlib.Path,
        config: LintConfig,
        paths: list | None = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.config = config
        self.all_files = [
            SourceFile(p, p.relative_to(self.root).as_posix())
            for p in sorted(self.root.rglob("*.py"))
        ]
        if paths:
            wanted = [pathlib.Path(p).resolve() for p in paths]
            self.files = [
                f
                for f in self.all_files
                if any(
                    f.path.resolve() == w or w in f.path.resolve().parents
                    for w in wanted
                )
            ]
        else:
            self.files = list(self.all_files)
        self.file_map = {f.relpath: f for f in self.all_files}

    def glob(self, patterns: tuple) -> list:
        """Package-relative paths of all files matching ``patterns``."""
        return sorted(
            f.relpath
            for f in self.all_files
            if any(fnmatch.fnmatch(f.relpath, pat) for pat in patterns)
        )


class Rule:
    """Base class of per-file rules (``ast``-level checks).

    Subclasses set ``id``/``severity``/``summary`` and implement
    :meth:`check`, yielding :class:`Finding`\\ s for one module.
    """

    id = "RULE"
    severity = WARNING
    summary = ""

    @property
    def ids(self) -> tuple:
        """All finding ids this rule can emit (for validation)."""
        return (self.id,)

    def check(self, source: SourceFile, config: LintConfig):
        """Yield findings for ``source`` (override in subclasses)."""
        raise NotImplementedError

    def finding(
        self,
        source: SourceFile,
        node,
        message: str,
        rule_id: str | None = None,
        severity: str | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or an int line)."""
        line = node if isinstance(node, int) else node.lineno
        return Finding(
            rule=rule_id or self.id,
            severity=severity or self.severity,
            path=source.relpath,
            line=line,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that checks the whole project at once (not per file)."""

    def check(self, source: SourceFile, config: LintConfig):
        """Project rules do not run per file."""
        return ()

    def check_project(self, project: Project, config: LintConfig):
        """Yield findings for the project (override in subclasses)."""
        raise NotImplementedError


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run: findings plus derived summaries."""

    root: str
    findings: list
    suppressed_count: int = 0

    @property
    def active(self) -> list:
        """Error/warning findings that are not baselined."""
        return [
            f
            for f in self.findings
            if f.severity in (ERROR, WARNING) and not f.baselined
        ]

    @property
    def exit_code(self) -> int:
        """0 when clean (only notes / baselined findings), else 1."""
        return 1 if self.active else 0

    def counts(self) -> dict:
        """Finding tallies by severity plus baselined/suppressed."""
        out = {ERROR: 0, WARNING: 0, NOTE: 0, "baselined": 0}
        for f in self.findings:
            if f.baselined:
                out["baselined"] += 1
            else:
                out[f.severity] += 1
        out["suppressed"] = self.suppressed_count
        return out

    def as_dict(self) -> dict:
        """The schema-versioned ``--format json`` document."""
        return {
            "schema": 1,
            "generated_by": "repro.lint",
            "root": self.root,
            "clean": self.exit_code == 0,
            "counts": self.counts(),
            "findings": [f.as_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        """The human-readable report (one line per finding)."""
        lines = [f.render() for f in self.findings]
        counts = self.counts()
        summary = (
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[NOTE]} note(s), {counts['baselined']} baselined, "
            f"{counts['suppressed']} suppressed"
        )
        lines.append(("" if not lines else "") + summary)
        if self.exit_code == 0:
            lines.append("clean")
        return "\n".join(lines)


def default_package_root() -> pathlib.Path:
    """The ``repro`` package directory this module is installed in."""
    return pathlib.Path(__file__).resolve().parent.parent


def load_baseline(path: pathlib.Path) -> list:
    """Read the committed baseline entries (empty when absent)."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    return list(data.get("findings", []))


def write_baseline(path: pathlib.Path, findings: list) -> None:
    """Write ``findings`` as the new grandfathered baseline."""
    entries = sorted(
        (
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": 1, "findings": entries}, indent=2) + "\n"
    )


def _apply_baseline(
    findings: list, entries: list
) -> list:
    """Mark baselined findings in place; return stale-entry notes.

    Matching is by ``(rule, path, message)`` -- deliberately not by
    line number, so unrelated edits that shift code do not invalidate
    the baseline.  Each entry grandfathers one finding (multiset
    semantics); entries matching nothing are reported as stale notes
    so baselines shrink as debt is paid down.
    """
    pool: dict[tuple, int] = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["message"])
        pool[key] = pool.get(key, 0) + 1
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        if pool.get(key, 0) > 0:
            pool[key] -= 1
            finding.baselined = True
    notes = []
    for (rule, path, message), left in sorted(pool.items()):
        for _ in range(left):
            notes.append(
                Finding(
                    rule=META_RULE_ID,
                    severity=NOTE,
                    path=path,
                    line=0,
                    message=(
                        f"stale baseline entry for {rule} "
                        f"({message!r}); remove it or run --fix-baseline"
                    ),
                )
            )
    return notes


def run_lint(
    root: pathlib.Path | None = None,
    config: LintConfig | None = None,
    paths: list | None = None,
    fix_baseline: bool = False,
) -> LintResult:
    """Run every rule over the package rooted at ``root``.

    ``root`` defaults to the installed ``repro`` package directory;
    ``config`` to :data:`repro.lint.config.DEFAULT_CONFIG`.  With
    ``fix_baseline`` the numerics manifest is regenerated *before*
    checking (so NUM findings resolve) and the surviving error/warning
    findings are written to the baseline file afterwards, leaving the
    run clean.
    """
    from repro.lint import fingerprint
    from repro.lint.rules import all_rules

    config = config or DEFAULT_CONFIG
    root = pathlib.Path(root) if root is not None else default_package_root()
    project = Project(root, config, paths)
    rules = all_rules()
    if fix_baseline:
        fingerprint.write_manifest(project, config)

    findings: list[Finding] = []
    valid_ids = {META_RULE_ID, SYNTAX_RULE_ID}
    for rule in rules:
        valid_ids.update(rule.ids)

    broken: set[str] = set()
    for source in project.all_files:
        try:
            source.tree
        except SyntaxError as exc:
            broken.add(source.relpath)
            findings.append(
                Finding(
                    rule=SYNTAX_RULE_ID,
                    severity=ERROR,
                    path=source.relpath,
                    line=exc.lineno or 0,
                    message=f"syntax error: {exc.msg}",
                )
            )

    for source in project.files:
        if source.relpath in broken:
            continue
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            findings.extend(rule.check(source, config))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project, config))

    # Inline suppressions (and unknown ids named by them).
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        source = project.file_map.get(finding.path)
        if source is not None and source.suppressed(finding):
            suppressed += 1
        else:
            kept.append(finding)
    for source in project.files:
        if source.relpath in broken:
            continue
        for line, rule_id in source.suppression_mentions():
            if rule_id not in valid_ids:
                kept.append(
                    Finding(
                        rule=META_RULE_ID,
                        severity=NOTE,
                        path=source.relpath,
                        line=line,
                        message=(
                            f"suppression names unknown rule "
                            f"{rule_id!r}"
                        ),
                    )
                )

    baseline_path = root / config.baseline_relpath
    if fix_baseline:
        grandfather = [
            f for f in kept if f.severity in (ERROR, WARNING)
        ]
        write_baseline(baseline_path, grandfather)
        for finding in grandfather:
            finding.baselined = True
    else:
        kept.extend(_apply_baseline(kept, load_baseline(baseline_path)))

    kept.sort(key=Finding.sort_key)
    return LintResult(
        root=str(root), findings=kept, suppressed_count=suppressed
    )
