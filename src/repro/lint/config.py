"""Repository-specific configuration of the static-analysis pass.

Everything the rule engine needs to know about *this* codebase lives
here, in one frozen dataclass: which modules carry the cache-keyed
numeric kernels (the fingerprint manifest scope), where the version
sentinels (``SIMULATOR_VERSION``/``KERNEL_VERSION``) are defined,
which modules are hot paths (observability calls inside their loops
must be gated), which keyword arguments carry SI quantities, and the
dimension of every :mod:`repro.units` constant.

Tests build small :class:`LintConfig` instances pointing at synthetic
packages; the shipped :data:`DEFAULT_CONFIG` describes ``src/repro``.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "LintConfig",
    "DEFAULT_CONFIG",
    "UNIT_DIMENSIONS",
]

#: Dimension of every *dimension-carrying* public constant of
#: :mod:`repro.units`.  The generic decade multipliers (``ATTO`` ...
#: ``TERA``, ``UNIT``) are deliberately absent: multiplying by them
#: does not establish a physical dimension.  ``tests/test_lint.py``
#: asserts this table and :mod:`repro.units` cannot drift apart.
UNIT_DIMENSIONS: dict[str, str] = {
    # resistance
    "OHM": "resistance",
    "MILLIOHM": "resistance",
    "KILOOHM": "resistance",
    "MEGAOHM": "resistance",
    # capacitance
    "FARAD": "capacitance",
    "AF": "capacitance",
    "FF": "capacitance",
    "PF": "capacitance",
    "NF": "capacitance",
    "UF": "capacitance",
    # inductance
    "HENRY": "inductance",
    "FH": "inductance",
    "PH": "inductance",
    "NH": "inductance",
    "UH": "inductance",
    # time
    "SECOND": "time",
    "FS": "time",
    "PS": "time",
    "NS": "time",
    "US": "time",
    "MS": "time",
    # length
    "METER": "length",
    "NM": "length",
    "UM": "length",
    "MM": "length",
    "CM": "length",
    # frequency
    "HZ": "frequency",
    "KHZ": "frequency",
    "MHZ": "frequency",
    "GHZ": "frequency",
    # voltage / power
    "VOLT": "voltage",
    "MV": "voltage",
    "WATT": "power",
    "MW": "power",
    "UW": "power",
}


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """What the rules check, expressed as package-relative paths.

    All path entries are POSIX-style and relative to the linted
    package root (for the shipped configuration: ``src/repro``), so
    the configuration is independent of where the repository is
    checked out.  Glob patterns (``tline/*.py``) are expanded against
    the files actually present, which is how *new* modules in a
    fingerprinted subtree are pulled under the numerics guard
    automatically.
    """

    #: Modules whose normalized AST fingerprints are pinned in the
    #: numerics manifest: the closed-form kernels and every simulation
    #: route whose numerics the sweep disk cache keys on (see
    #: :meth:`repro.sweep.grid.Sweep.cache_key`).
    kernel_modules: tuple[str, ...] = (
        "core/delay.py",
        "core/penalty.py",
        "core/repeater.py",
        "core/simulate.py",
        "spice/mna.py",
        "spice/transient.py",
        "spice/ac.py",
        "spice/dc.py",
        "spice/backend.py",
        "spice/statespace.py",
        "spice/ladder.py",
        "spice/parser.py",
        "rom/*.py",
        "topology/*.py",
        "tline/*.py",
        "analysis/bus.py",
        "sweep/kernels.py",
    )

    #: ``name -> (module, variable)`` for the cache-key version
    #: sentinels.  A fingerprint change without a bump of (at least)
    #: one of these is the NUM001 contract violation.
    version_sources: tuple[tuple[str, str, str], ...] = (
        ("simulator_version", "core/simulate.py", "SIMULATOR_VERSION"),
        ("kernel_version", "sweep/kernels.py", "KERNEL_VERSION"),
    )

    #: Modules allowed to import the version sentinels without being
    #: fingerprinted themselves: the cache-key *consumers*.  Any other
    #: importer must appear in the manifest (drift guard in
    #: ``tests/test_lint.py``).
    cache_consumers: frozenset = frozenset({"sweep/grid.py"})

    #: Modules whose loops are performance-critical: ``obs.*`` calls
    #: inside their ``for``/``while`` bodies must be gated per the
    #: ``repro.obs._state`` idiom (OBS001).
    hot_path_modules: tuple[str, ...] = (
        "spice/*.py",
        "sweep/runner.py",
        "sweep/kernels.py",
        "tline/*.py",
        "analysis/bus.py",
        "core/simulate.py",
    )

    #: Keyword arguments that carry dimensioned SI quantities; passing
    #: a bare power-of-ten scientific literal to one of these is the
    #: UNI001 magic-number finding.
    si_call_kwargs: frozenset = frozenset(
        {
            "rt",
            "rtr",
            "lt",
            "ct",
            "cl",
            "cct",
            "r0",
            "c0",
            "dt",
            "t_stop",
            "t_rise",
            "length",
            "sep",
            "spacing",
            "width",
            "pitch",
        }
    )

    #: ``units``-constant name -> physical dimension (UNI002).
    unit_dimensions: dict = dataclasses.field(
        default_factory=lambda: dict(UNIT_DIMENSIONS)
    )

    #: Module files exempt from the module-level ``__all__``
    #: requirement (entry-point scripts; ``_private.py`` modules are
    #: always exempt).
    exempt_missing_all: frozenset = frozenset({"__main__.py"})

    #: Manifest / baseline locations, relative to the package root.
    manifest_relpath: str = "lint/numerics_manifest.json"
    baseline_relpath: str = "lint/baseline.json"


#: The configuration the CLI uses for ``src/repro``.
DEFAULT_CONFIG = LintConfig()
