"""Waveform measurements: delay, rise time, overshoot, settling.

These are the post-processing steps a circuit designer applies to a
simulated node voltage: the paper's headline quantity is the 50%
propagation delay (time for the far-end voltage to first reach half the
final value, with a step applied at ``t = 0``).

All functions take sampled data and interpolate linearly between samples;
:class:`Waveform` packages a ``(t, v)`` pair with the common measurements
as methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError, ParameterError

__all__ = [
    "Waveform",
    "first_crossing",
    "propagation_delay_50",
    "rise_time",
    "overshoot",
    "settling_time",
]


def _validate(t: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    t = np.asarray(t, dtype=float)
    v = np.asarray(v, dtype=float)
    if t.ndim != 1 or v.ndim != 1 or t.shape != v.shape:
        raise ParameterError(
            f"t and v must be equal-length 1-D arrays, got {t.shape} and {v.shape}"
        )
    if t.size < 2:
        raise ParameterError("need at least two samples")
    if not np.all(np.diff(t) > 0):
        raise ParameterError("time samples must be strictly increasing")
    if not (np.all(np.isfinite(t)) and np.all(np.isfinite(v))):
        raise ParameterError("samples must be finite")
    return t, v


def first_crossing(
    t,
    v,
    level: float,
    rising: bool = True,
) -> float:
    """Time of the first crossing of ``level``, linearly interpolated.

    A *crossing* requires an actual transition: a sample strictly on
    the non-satisfying side of ``level`` followed by one at or beyond
    it.  Two boundary cases are defined explicitly:

    - a waveform that starts *exactly at* ``level`` and departs in the
      crossing direction (upward for ``rising``, downward otherwise)
      crosses at ``t[0]`` -- it genuinely passes through the level;
    - a waveform that merely *starts beyond* the level (e.g. one that
      begins at 1 when searching for a falling crossing of 1) has not
      crossed anything; the search continues with later transitions and
      raises if there are none.  (Historically this returned ``t[0]``,
      reporting a crossing that never happened.)

    Parameters
    ----------
    t, v:
        Sampled waveform.
    level:
        Threshold value (same units as ``v``).
    rising:
        If True, detect the first upward crossing; otherwise downward.

    Raises
    ------
    AnalysisError
        If the waveform never crosses the level in the given direction.
    """
    t, v = _validate(t, v)
    if rising:
        satisfied = v >= level
    else:
        satisfied = v <= level
    if v[0] == level:
        departures = np.nonzero(v != level)[0]
        if departures.size:
            first = v[departures[0]]
            if (first > level) if rising else (first < level):
                return float(t[0])
    hits = np.nonzero(satisfied[1:] & ~satisfied[:-1])[0]
    if hits.size == 0:
        direction = "rising" if rising else "falling"
        boundary = (
            "; it starts at or beyond the level and never crosses it "
            "(a crossing requires an actual transition)"
            if satisfied[0]
            else ""
        )
        raise AnalysisError(
            f"waveform never crosses level {level!r} ({direction}); "
            f"range is [{v.min():g}, {v.max():g}]{boundary}"
        )
    i = int(hits[0])
    v0, v1 = v[i], v[i + 1]
    # v0 is strictly on the non-satisfying side and v1 at/beyond the
    # level, so v1 != v0 and the interpolation below is well defined.
    frac = (level - v0) / (v1 - v0)
    return float(t[i] + frac * (t[i + 1] - t[i]))


def propagation_delay_50(t, v, v_final: float | None = None) -> float:
    """50% propagation delay of a rising step response.

    ``v_final`` defaults to the steady-state value, estimated as the last
    sample; pass it explicitly (e.g. 1.0 for a normalized unit-step
    response) when the simulated window is short.
    """
    t, v = _validate(t, v)
    if v_final is None:
        v_final = float(v[-1])
    if v_final <= v[0]:
        raise AnalysisError(
            f"final value {v_final:g} does not exceed initial value {v[0]:g}"
        )
    level = v[0] + 0.5 * (v_final - v[0])
    return first_crossing(t, v, level, rising=True)


def rise_time(
    t,
    v,
    v_final: float | None = None,
    low: float = 0.1,
    high: float = 0.9,
) -> float:
    """10%-90% (by default) rise time of a rising step response."""
    t, v = _validate(t, v)
    if not 0.0 <= low < high <= 1.0:
        raise ParameterError(f"need 0 <= low < high <= 1, got {low}, {high}")
    if v_final is None:
        v_final = float(v[-1])
    v0 = float(v[0])
    span = v_final - v0
    if span <= 0:
        raise AnalysisError("waveform does not rise")
    t_low = first_crossing(t, v, v0 + low * span, rising=True)
    t_high = first_crossing(t, v, v0 + high * span, rising=True)
    return t_high - t_low


def overshoot(t, v, v_final: float | None = None) -> float:
    """Peak overshoot as a fraction of the final value (0 if none).

    An underdamped RLC line overshoots; an overdamped (RC-like) one does
    not.  The paper's Table 1 sweep includes both regimes.
    """
    t, v = _validate(t, v)
    if v_final is None:
        v_final = float(v[-1])
    if v_final == 0:
        raise AnalysisError("v_final must be nonzero to normalize overshoot")
    peak = float(np.max(v))
    return max(0.0, (peak - v_final) / abs(v_final))


def settling_time(t, v, v_final: float | None = None, band: float = 0.05) -> float:
    """Time after which the waveform stays within ``band`` of final value."""
    t, v = _validate(t, v)
    if v_final is None:
        v_final = float(v[-1])
    if not 0 < band < 1:
        raise ParameterError(f"band must be in (0, 1), got {band}")
    tol = band * abs(v_final) if v_final != 0 else band
    outside = np.abs(v - v_final) > tol
    if not np.any(outside):
        return float(t[0])
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside == t.size - 1:
        raise AnalysisError(
            f"waveform has not settled to within {band:.0%} by t = {t[-1]:g}"
        )
    return float(t[last_outside + 1])


@dataclass(frozen=True)
class Waveform:
    """A sampled single-node waveform with measurement helpers.

    >>> import numpy as np
    >>> t = np.linspace(0.0, 10.0, 1001)
    >>> w = Waveform(t, 1 - np.exp(-t))
    >>> round(w.delay_50(v_final=1.0), 3)
    0.693
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        t, v = _validate(self.times, self.values)
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)

    @classmethod
    def from_samples(cls, times: Sequence[float], values: Sequence[float]) -> "Waveform":
        """Build from any sequence types."""
        return cls(np.asarray(times, dtype=float), np.asarray(values, dtype=float))

    @property
    def final_value(self) -> float:
        """Last sampled value (steady-state estimate)."""
        return float(self.values[-1])

    def crossing(self, level: float, rising: bool = True) -> float:
        """First crossing time of ``level``."""
        return first_crossing(self.times, self.values, level, rising)

    def delay_50(self, v_final: float | None = None) -> float:
        """50% propagation delay."""
        return propagation_delay_50(self.times, self.values, v_final)

    def rise_time(self, v_final: float | None = None) -> float:
        """10-90% rise time."""
        return rise_time(self.times, self.values, v_final)

    def overshoot(self, v_final: float | None = None) -> float:
        """Fractional peak overshoot."""
        return overshoot(self.times, self.values, v_final)

    def settling_time(self, v_final: float | None = None, band: float = 0.05) -> float:
        """Settling time to within ``band`` of the final value."""
        return settling_time(self.times, self.values, v_final, band)

    def resampled(self, times) -> "Waveform":
        """Linear re-interpolation onto a new time grid."""
        times = np.asarray(times, dtype=float)
        values = np.interp(times, self.times, self.values)
        return Waveform(times, values)
