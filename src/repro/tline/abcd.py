"""Frequency-domain two-port (ABCD / chain-matrix) algebra.

A two-port is represented by its chain matrix

    [V1]   [A  B] [V2]
    [I1] = [C  D] [I2]

with all four entries functions of the complex frequency ``s``.  Cascading
two-ports multiplies their chain matrices; a network terminated by a load
admittance ``YL(s)`` and driven through a source impedance ``Zs(s)`` has the
voltage transfer function

    Vout/Vin = 1 / ((A + B*YL) + Zs*(C + D*YL)).

The distributed RLC line of the paper (eq. 1-2) is the two-port

    A = D = cosh(theta),  B = Z * sinhc(theta),  C = Y * sinhc(theta)

with total series impedance ``Z = Rt + s*Lt``, total shunt admittance
``Y = Gt + s*Ct``, electrical length ``theta = sqrt(Z*Y)``, and
``sinhc(x) = sinh(x)/x``.  Writing B and C via ``sinhc`` keeps every entry
an *even* function of ``theta``, so the square-root branch cancels exactly.

These exact frequency-domain entries grow like ``exp(Re theta)``; for the
overflow-free evaluation used in step-response computations see
:mod:`repro.tline.transfer`, which evaluates the complete Fig. 1 transfer
function in exponentially scaled form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from repro.errors import ParameterError, require_nonnegative

__all__ = [
    "TwoPort",
    "series_impedance",
    "shunt_admittance",
    "series_resistor",
    "series_inductor",
    "ImmittanceLike",
    "shunt_capacitor",
    "rlc_line",
    "cosh_theta",
    "sinhc_theta",
]

ImmittanceLike = Union[float, complex, Callable[[np.ndarray], np.ndarray]]


def _as_function(value: ImmittanceLike) -> Callable[[np.ndarray], np.ndarray]:
    """Promote a constant immittance to a vectorized function of ``s``."""
    if callable(value):
        return value
    constant = complex(value)

    def const_fn(s: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(s, dtype=complex), constant)

    return const_fn


def cosh_theta(theta_sq: np.ndarray) -> np.ndarray:
    """``cosh(sqrt(theta_sq))`` evaluated branch-safely.

    ``cosh`` is even, so the principal square root is always valid.  Small
    arguments use the Taylor series to avoid any precision loss.
    """
    theta_sq = np.asarray(theta_sq, dtype=complex)
    theta = np.sqrt(theta_sq)
    small = np.abs(theta) < 1e-6
    out = np.where(small, 1.0 + theta_sq / 2.0 + theta_sq**2 / 24.0, np.cosh(theta))
    return out


def sinhc_theta(theta_sq: np.ndarray) -> np.ndarray:
    """``sinh(sqrt(theta_sq)) / sqrt(theta_sq)``, branch-safe (even function)."""
    theta_sq = np.asarray(theta_sq, dtype=complex)
    theta = np.sqrt(theta_sq)
    small = np.abs(theta) < 1e-6
    # Where theta is tiny, sinh(theta)/theta -> 1 + theta^2/6 + theta^4/120.
    safe_theta = np.where(small, 1.0, theta)
    out = np.where(
        small,
        1.0 + theta_sq / 6.0 + theta_sq**2 / 120.0,
        np.sinh(safe_theta) / safe_theta,
    )
    return out


@dataclass(frozen=True)
class TwoPort:
    """A linear two-port described by its chain (ABCD) matrix.

    Attributes
    ----------
    entries:
        Function mapping a complex frequency array ``s`` to the tuple
        ``(A, B, C, D)`` of equally shaped complex arrays.
    label:
        Human-readable description used in ``repr``.
    """

    entries: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    label: str = "two-port"

    def abcd(self, s) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the chain matrix at complex frequencies ``s``."""
        s = np.asarray(s, dtype=complex)
        return self.entries(s)

    def cascade(self, other: "TwoPort") -> "TwoPort":
        """Chain ``self`` (input side) with ``other`` (output side)."""
        if not isinstance(other, TwoPort):
            raise ParameterError(f"can only cascade TwoPort with TwoPort, got {other!r}")

        def entries(s: np.ndarray):
            a1, b1, c1, d1 = self.entries(s)
            a2, b2, c2, d2 = other.entries(s)
            return (
                a1 * a2 + b1 * c2,
                a1 * b2 + b1 * d2,
                c1 * a2 + d1 * c2,
                c1 * b2 + d1 * d2,
            )

        return TwoPort(entries, label=f"{self.label} -> {other.label}")

    def __matmul__(self, other: "TwoPort") -> "TwoPort":
        return self.cascade(other)

    def transfer_function(
        self,
        source_impedance: ImmittanceLike = 0.0,
        load_admittance: ImmittanceLike = 0.0,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Voltage transfer function ``Vout/Vin`` with the given terminations."""
        zs = _as_function(source_impedance)
        yl = _as_function(load_admittance)

        def transfer(s) -> np.ndarray:
            s = np.asarray(s, dtype=complex)
            a, b, c, d = self.entries(s)
            return 1.0 / ((a + b * yl(s)) + zs(s) * (c + d * yl(s)))

        return transfer

    def input_impedance(
        self, load_admittance: ImmittanceLike = 0.0
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Driving-point impedance seen at port 1 with port 2 terminated."""
        yl = _as_function(load_admittance)

        def zin(s) -> np.ndarray:
            s = np.asarray(s, dtype=complex)
            a, b, c, d = self.entries(s)
            return (a + b * yl(s)) / (c + d * yl(s))

        return zin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TwoPort({self.label})"


def series_impedance(z: ImmittanceLike, label: str = "series Z") -> TwoPort:
    """Two-port of a single series impedance ``z``."""
    zf = _as_function(z)

    def entries(s: np.ndarray):
        one = np.ones_like(s)
        zero = np.zeros_like(s)
        return one, zf(s), zero, one

    return TwoPort(entries, label=label)


def shunt_admittance(y: ImmittanceLike, label: str = "shunt Y") -> TwoPort:
    """Two-port of a single shunt admittance ``y``."""
    yf = _as_function(y)

    def entries(s: np.ndarray):
        one = np.ones_like(s)
        zero = np.zeros_like(s)
        return one, zero, yf(s), one

    return TwoPort(entries, label=label)


def series_resistor(resistance: float) -> TwoPort:
    """Series resistor two-port."""
    require_nonnegative("resistance", resistance)
    return series_impedance(resistance, label=f"R={resistance:g}")


def series_inductor(inductance: float) -> TwoPort:
    """Series inductor two-port (impedance ``s*L``)."""
    require_nonnegative("inductance", inductance)
    return series_impedance(lambda s: s * inductance, label=f"L={inductance:g}")


def shunt_capacitor(capacitance: float) -> TwoPort:
    """Shunt capacitor two-port (admittance ``s*C``)."""
    require_nonnegative("capacitance", capacitance)
    return shunt_admittance(lambda s: s * capacitance, label=f"C={capacitance:g}")


def rlc_line(
    rt: float,
    lt: float,
    ct: float,
    gt: float = 0.0,
) -> TwoPort:
    """Exact two-port of a uniform distributed RLC(G) line.

    Parameters are the *total* series resistance ``rt`` and inductance
    ``lt``, and the total shunt capacitance ``ct`` and conductance ``gt``
    (paper notation: ``Rt = R*l`` etc.).
    """
    require_nonnegative("rt", rt)
    require_nonnegative("lt", lt)
    require_nonnegative("ct", ct)
    require_nonnegative("gt", gt)
    if ct == 0 and gt == 0:
        raise ParameterError("a line needs ct > 0 (or gt > 0) to be a two-port")

    def entries(s: np.ndarray):
        z = rt + s * lt
        y = gt + s * ct
        theta_sq = z * y
        a = cosh_theta(theta_sq)
        sc = sinhc_theta(theta_sq)
        return a, z * sc, y * sc, a

    return TwoPort(entries, label=f"RLC line (Rt={rt:g}, Lt={lt:g}, Ct={ct:g})")
