"""Distributed transmission-line substrate.

This subpackage is one of the three independent "simulator" routes used to
stand in for AS/X (IBM's dynamic circuit simulator used in the paper):

- :mod:`repro.tline.laplace`  -- numerical inverse Laplace transforms
  (Talbot, Euler/Abate--Whitt, de Hoog--Knight--Stokes),
- :mod:`repro.tline.abcd`     -- frequency-domain two-port (ABCD) algebra,
  including the exact distributed-RLC line two-port,
- :mod:`repro.tline.transfer` -- the exact transfer function of the paper's
  Fig. 1 circuit (step-driven gate resistance, distributed RLC line,
  capacitive load) and its step response,
- :mod:`repro.tline.waveform` -- waveform measurements (50% delay, rise
  time, overshoot) applied to sampled responses.
"""

from repro.tline.abcd import TwoPort, rlc_line, series_impedance, shunt_admittance
from repro.tline.laplace import InversionMethod, invert_laplace, step_response
from repro.tline.transfer import (
    DriverLineLoadTransfer,
    denominator_coefficients,
    line_transfer_function,
)
from repro.tline.waveform import Waveform, propagation_delay_50, rise_time

__all__ = [
    "TwoPort",
    "rlc_line",
    "series_impedance",
    "shunt_admittance",
    "InversionMethod",
    "invert_laplace",
    "step_response",
    "DriverLineLoadTransfer",
    "line_transfer_function",
    "denominator_coefficients",
    "Waveform",
    "propagation_delay_50",
    "rise_time",
]
