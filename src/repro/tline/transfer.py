"""Exact transfer function of the paper's Fig. 1 circuit.

The circuit: an ideal step source ``Vin`` behind the gate output
resistance ``Rtr``, driving a uniform distributed RLC line (totals ``Rt``,
``Lt``, ``Ct``), terminated by the next gate's input capacitance ``CL``.
``Vout`` is the far-end (load) voltage.

From transmission-line theory (paper eq. 1, rewritten in the equivalent
chain-matrix form) the exact transfer function is::

    Vout           1
    ---- = ---------------------------------------------------------
    Vin    cosh(th)*(1 + s*Rtr*CL) + sinhc(th)*(Z*s*CL + Rtr*Y)

with ``Z = Rt + s*Lt``, ``Y = Gt + s*Ct``, ``th = sqrt(Z*Y)`` and
``sinhc(x) = sinh(x)/x``.  Every appearance of ``th`` is even, so the
square-root branch is irrelevant.

Two evaluation strategies are provided:

- :func:`line_transfer_function` evaluates the expression in an
  *exponentially scaled* form (multiplying numerator and denominator by
  ``2*exp(-th)``) so it never overflows, even for the very large ``|s|``
  sampled by inverse-Laplace contours;
- :func:`denominator_coefficients` expands the denominator as an exact
  power series in ``s`` (the paper's eq. 4/7), which feeds the
  moment-matching baselines in :mod:`repro.core.moments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.tline.laplace import InversionMethod, step_response

__all__ = [
    "line_transfer_function",
    "denominator_coefficients",
    "transfer_moments",
    "DriverLineLoadTransfer",
]


def line_transfer_function(
    rt: float,
    lt: float,
    ct: float,
    rtr: float = 0.0,
    cl: float = 0.0,
    gt: float = 0.0,
) -> Callable[[np.ndarray], np.ndarray]:
    """Return the vectorized exact transfer function ``H(s) = Vout/Vin``.

    Parameters
    ----------
    rt, lt, ct:
        Total line resistance, inductance and capacitance (SI units).
    rtr:
        Driver (gate) output resistance.
    cl:
        Load (next gate input) capacitance.
    gt:
        Optional total shunt conductance of the line.

    Notes
    -----
    The returned callable accepts any complex numpy array (or scalar) and
    never overflows: the hyperbolic terms are evaluated relative to
    ``exp(-theta)`` with ``Re(theta) >= 0`` guaranteed by the principal
    square root.
    """
    require_nonnegative("rt", rt)
    require_nonnegative("lt", lt)
    require_positive("ct", ct)
    require_nonnegative("rtr", rtr)
    require_nonnegative("cl", cl)
    require_nonnegative("gt", gt)

    def transfer(s) -> np.ndarray:
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        z = rt + s * lt
        y = gt + s * ct
        theta = np.sqrt(z * y)  # principal root: Re(theta) >= 0
        em = np.exp(-theta)
        em2 = em * em
        # Scaled hyperbolics: 2*exp(-th)*cosh(th) and 2*exp(-th)*sinhc(th).
        cosh_sc = 1.0 + em2
        small = np.abs(theta) < 1e-6
        safe_theta = np.where(small, 1.0, theta)
        sinhc_sc = np.where(
            small,
            (2.0 + theta * theta / 3.0) * em,
            (1.0 - em2) / safe_theta,
        )
        denom = cosh_sc * (1.0 + s * rtr * cl) + sinhc_sc * (z * s * cl + rtr * y)
        return 2.0 * em / denom

    return transfer


def _poly_mul(a: np.ndarray, b: np.ndarray, order: int) -> np.ndarray:
    """Multiply two power series (ascending coefficients), truncated."""
    return np.convolve(a, b)[: order + 1]


def denominator_coefficients(
    rt: float,
    lt: float,
    ct: float,
    rtr: float = 0.0,
    cl: float = 0.0,
    order: int = 6,
) -> np.ndarray:
    """Exact Maclaurin coefficients of the transfer-function denominator.

    Returns ``a`` with ``Vin/Vout = a[0] + a[1]*s + ... + a[order]*s**order
    + O(s**(order+1))`` and ``a[0] == 1`` (this is the series the paper
    writes as eq. 4/7).  The first coefficient,

        a1 = Rtr*CL + Rt*Ct/2 + Rt*CL + Rtr*Ct,

    is the Elmore delay of the driver/line/load system; ``a[2]`` feeds the
    two-pole baseline model.

    Only terms through ``s**order`` are exact; request a higher order if
    you need more moments.
    """
    require_nonnegative("rt", rt)
    require_nonnegative("lt", lt)
    require_positive("ct", ct)
    require_nonnegative("rtr", rtr)
    require_nonnegative("cl", cl)
    if order < 1:
        raise ParameterError(f"order must be >= 1, got {order}")

    n = order + 1
    # theta^2 = (rt + s*lt) * (s*ct) as a power series in s.
    theta_sq = np.zeros(n)
    if n > 1:
        theta_sq[1] = rt * ct
    if n > 2:
        theta_sq[2] = lt * ct

    # cosh(theta) = sum (theta^2)^k / (2k)!,  sinhc = sum (theta^2)^k / (2k+1)!
    cosh_series = np.zeros(n)
    sinhc_series = np.zeros(n)
    power = np.zeros(n)
    power[0] = 1.0  # (theta^2)^0
    k = 0
    while True:
        cosh_series += power / math.factorial(2 * k)
        sinhc_series += power / math.factorial(2 * k + 1)
        k += 1
        # (theta^2)^k has lowest-order term s^k; stop once beyond truncation.
        if k > order:
            break
        power = _poly_mul(power, theta_sq, order)
        if not np.any(power):
            break

    z_series = np.zeros(n)
    z_series[0] = rt
    if n > 1:
        z_series[1] = lt
    y_series = np.zeros(n)
    if n > 1:
        y_series[1] = ct

    s_cl = np.zeros(n)
    if n > 1:
        s_cl[1] = cl

    # denominator = cosh*(1 + s*rtr*cl) + sinhc*(z*s*cl + rtr*y)
    one_plus = np.zeros(n)
    one_plus[0] = 1.0
    if n > 1:
        one_plus[1] = rtr * cl

    bracket = _poly_mul(z_series, s_cl, order) + rtr * y_series
    denom = _poly_mul(cosh_series, one_plus, order) + _poly_mul(
        sinhc_series, bracket, order
    )
    return denom


def transfer_moments(
    rt: float,
    lt: float,
    ct: float,
    rtr: float = 0.0,
    cl: float = 0.0,
    order: int = 6,
) -> np.ndarray:
    """Maclaurin coefficients ``m`` of ``H(s) = sum m[k] * s**k``.

    Computed by inverting the denominator power series (``H = 1/D``).
    ``m[0] == 1`` and ``-m[1]`` is the Elmore delay.
    """
    a = denominator_coefficients(rt, lt, ct, rtr, cl, order)
    m = np.zeros_like(a)
    m[0] = 1.0 / a[0]
    for k in range(1, len(a)):
        m[k] = -np.dot(a[1 : k + 1], m[k - 1 :: -1]) / a[0]
    return m


@dataclass(frozen=True)
class DriverLineLoadTransfer:
    """Frequency-domain view of the Fig. 1 circuit with step responses.

    This is the `tline` route of the three-way simulator cross-check: the
    *exact* distributed line, no lumped approximation, evaluated by
    numerical inverse Laplace.
    """

    rt: float
    lt: float
    ct: float
    rtr: float = 0.0
    cl: float = 0.0
    gt: float = 0.0
    _transfer: Callable[[np.ndarray], np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        transfer = line_transfer_function(
            self.rt, self.lt, self.ct, self.rtr, self.cl, self.gt
        )
        object.__setattr__(self, "_transfer", transfer)

    def __call__(self, s) -> np.ndarray:
        """Evaluate ``H(s)``."""
        return self._transfer(s)

    def frequency_response(self, omega) -> np.ndarray:
        """``H(j*omega)`` for real angular frequencies."""
        omega = np.asarray(omega, dtype=float)
        return self._transfer(1j * omega)

    def dc_gain(self) -> float:
        """``H(0)`` -- unity for any lossless-shunt line."""
        return float(np.real(self._transfer(np.array([1e-12 + 0j]))[0]))

    def step_response(
        self,
        times,
        method: InversionMethod | str = InversionMethod.DEHOOG,
        **kwargs,
    ) -> np.ndarray:
        """Far-end voltage for a unit step input, ``Vout(t)``."""
        return step_response(self._transfer, times, method=method, **kwargs)

    def moments(self, order: int = 6) -> np.ndarray:
        """Maclaurin coefficients of ``H(s)`` (see :func:`transfer_moments`)."""
        return transfer_moments(self.rt, self.lt, self.ct, self.rtr, self.cl, order)
