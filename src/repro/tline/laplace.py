"""Numerical inverse Laplace transforms.

Three classic algorithms are provided, all operating on a user-supplied
transform ``F(s)`` that must accept a complex numpy array and return a
complex numpy array of the same shape:

``talbot``
    Fixed-Talbot method (Abate & Valko, 2004).  Excellent for smooth
    transforms; spectral convergence in the number of nodes ``M``.

``euler``
    The Euler method from the Abate--Whitt unified framework (2006): a
    Bromwich/Fourier-series evaluation with binomial (Euler) acceleration.
    Robust default, moderate accuracy (~1e-8 for smooth transforms at the
    default order).

``dehoog``
    de Hoog, Knight & Stokes (1982): Fourier series accelerated by a
    quotient-difference (Pade) continued fraction.  The method of choice
    for oscillatory or nearly discontinuous time functions such as the
    wavefront of an underdamped transmission line.

All three agree to many digits on smooth inputs; the test suite
cross-checks them against analytic transform pairs and against each other.

The paper's evaluation (Table 1, Fig. 2) relies on "dynamic circuit
simulation" of a distributed RLC line.  The exact line has a closed-form
*frequency-domain* description (paper eq. 1); inverting it numerically is
one of the three independent routes this library uses to reproduce those
simulations (the others being lumped MNA transient simulation and exact
state-space integration, see :mod:`repro.spice`).
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "InversionMethod",
    "talbot",
    "euler",
    "TransformFunction",
    "dehoog",
    "invert_laplace",
    "step_response",
]

TransformFunction = Callable[[np.ndarray], np.ndarray]


class InversionMethod(str, enum.Enum):
    """Available inverse-Laplace algorithms."""

    TALBOT = "talbot"
    EULER = "euler"
    DEHOOG = "dehoog"


def _as_time_array(times: float | Sequence[float] | np.ndarray) -> np.ndarray:
    t = np.atleast_1d(np.asarray(times, dtype=float))
    if t.ndim != 1:
        raise ParameterError(f"times must be scalar or 1-D, got shape {t.shape}")
    if not np.all(np.isfinite(t)):
        raise ParameterError("times must be finite")
    if np.any(t <= 0):
        raise ParameterError(
            "inverse Laplace evaluation requires strictly positive times; "
            "use step_response() if you need a value at t = 0"
        )
    return t


def talbot(F: TransformFunction, times, M: int = 48) -> np.ndarray:
    """Fixed-Talbot inversion (Abate & Valko 2004).

    Parameters
    ----------
    F:
        Vectorized Laplace transform ``s -> F(s)``.
    times:
        Positive time point(s) at which to evaluate ``f(t)``.
    M:
        Number of contour nodes.  The rule of thumb is ``M ~ 1.7 * d`` for
        ``d`` significant digits on smooth transforms; in double precision
        accuracy saturates around ``M = 45``-``65``.

    Returns
    -------
    numpy.ndarray
        ``f(t)`` for each requested time (always 1-D).
    """
    if M < 2:
        raise ParameterError(f"talbot requires M >= 2, got {M}")
    t = _as_time_array(times)
    out = np.empty_like(t)

    theta = (np.arange(1, M) * np.pi) / M  # phi_k, k = 1..M-1
    cot = 1.0 / np.tan(theta)
    sigma = theta + (theta * cot - 1.0) * cot

    for j, tj in enumerate(t):
        r = 2.0 * M / (5.0 * tj)
        s_nodes = r * theta * (cot + 1j)
        # k = 0 node is real: s = r.
        total = 0.5 * math.exp(r * tj) * complex(F(np.array([r + 0j]))[0])
        fs = F(s_nodes)
        total += np.sum(np.exp(tj * s_nodes) * fs * (1.0 + 1j * sigma))
        out[j] = (r / M) * total.real
    return out


def _euler_weights(M: int) -> tuple[np.ndarray, np.ndarray]:
    """Return (beta, eta) node/weight arrays for the Euler method."""
    xi = np.zeros(2 * M + 1)
    xi[0] = 0.5
    xi[1 : M + 1] = 1.0
    xi[2 * M] = 0.5**M
    for k in range(1, M):
        xi[2 * M - k] = xi[2 * M - k + 1] + (0.5**M) * math.comb(M, k)
    k = np.arange(2 * M + 1)
    beta = (M * math.log(10.0)) / 3.0 + 1j * np.pi * k
    eta = (-1.0) ** k * (10.0 ** (M / 3.0)) * xi
    return beta, eta


def euler(F: TransformFunction, times, M: int = 18) -> np.ndarray:
    """Euler inversion (Abate & Whitt 2006 unified framework).

    ``M = 18`` is near the double-precision optimum; larger values overflow
    the ``10**(M/3)`` scaling against binomial cancellation.
    """
    if not 1 <= M <= 26:
        raise ParameterError(f"euler requires 1 <= M <= 26, got {M}")
    t = _as_time_array(times)
    beta, eta = _euler_weights(M)
    out = np.empty_like(t)
    for j, tj in enumerate(t):
        fs = F(beta / tj)
        out[j] = float(np.dot(eta, fs.real)) / tj
    return out


def _dehoog_cf_coefficients(a: np.ndarray, M: int) -> np.ndarray:
    """Quotient-difference algorithm: continued-fraction coefficients.

    Given Fourier samples ``a[0..2M]`` (with ``a[0]`` already halved),
    returns ``d[0..2M]`` such that the Pade approximant of the power
    series ``sum a_k z**k`` is the continued fraction
    ``d0 / (1 + d1 z / (1 + d2 z / ...))``.
    """
    n = 2 * M + 1
    # q and e columns of the QD table.
    q = np.zeros((n, M + 1), dtype=complex)
    e = np.zeros((n, M + 1), dtype=complex)
    with np.errstate(divide="ignore", invalid="ignore"):
        q[: n - 1, 1] = a[1:] / a[:-1]
        for r in range(1, M + 1):
            # e column r from q column r.
            top = n - 2 * r
            e[:top, r] = q[1 : top + 1, r] - q[:top, r] + e[1 : top + 1, r - 1]
            if r < M:
                qtop = top - 1
                q[:qtop, r + 1] = (
                    q[1 : qtop + 1, r] * e[1 : qtop + 1, r] / e[:qtop, r]
                )
    d = np.zeros(n, dtype=complex)
    d[0] = a[0]
    for r in range(1, M + 1):
        d[2 * r - 1] = -q[0, r]
        d[2 * r] = -e[0, r]
    # Degenerate transforms can produce NaNs (e.g. exactly rational F with
    # fewer poles than M); zero coefficients simply truncate the fraction.
    d[~np.isfinite(d)] = 0.0
    return d


def dehoog(
    F: TransformFunction,
    times,
    M: int = 40,
    alpha: float = 0.0,
    tol: float = 1e-10,
    period_factor: float = 2.0,
) -> np.ndarray:
    """de Hoog--Knight--Stokes inversion.

    Parameters
    ----------
    F:
        Vectorized Laplace transform.
    times:
        Positive evaluation times.  The Fourier samples are shared across
        all requested times, so evaluating a full waveform costs one set of
        ``2M + 1`` transform evaluations.
    M:
        Series order; ``2M + 1`` transform samples are used.
    alpha:
        An upper bound on the real part of the rightmost singularity of
        ``F`` (0 for strictly stable systems).
    tol:
        Target accuracy used to place the Bromwich contour.
    period_factor:
        The half-period of the underlying Fourier series is
        ``period_factor * max(times)``.  Must exceed 1 to avoid aliasing.
    """
    if M < 2:
        raise ParameterError(f"dehoog requires M >= 2, got {M}")
    if period_factor <= 1.0:
        raise ParameterError("period_factor must be > 1 to avoid aliasing")
    t = _as_time_array(times)
    big_t = period_factor * float(np.max(t))
    gamma = alpha - math.log(tol) / (2.0 * big_t)

    k = np.arange(2 * M + 1)
    s_nodes = gamma + 1j * np.pi * k / big_t
    a = F(s_nodes).astype(complex)
    a[0] *= 0.5
    d = _dehoog_cf_coefficients(a, M)

    n_levels = 2 * M + 1
    out = np.empty_like(t)
    for j, tj in enumerate(t):
        z = np.exp(1j * np.pi * tj / big_t)
        # Continued-fraction evaluation by the standard three-term
        # recurrence: A_n = A_{n-1} + d_n z A_{n-2} (same for B), with
        # A_{-1} = 0, B_{-1} = 1, A_0 = d_0, B_0 = 1.  Index shift: slot
        # [n + 1] stores level n.
        A = np.empty(n_levels + 1, dtype=complex)
        B = np.empty(n_levels + 1, dtype=complex)
        A[0], B[0] = 0.0, 1.0
        A[1], B[1] = d[0], 1.0
        for n in range(1, n_levels):
            A[n + 1] = A[n] + d[n] * z * A[n - 1]
            B[n + 1] = B[n] + d[n] * z * B[n - 1]
        num, den = A[n_levels], B[n_levels]
        # Remainder acceleration for the last level (de Hoog eq. 23):
        # replace d_{2M} z by R_{2M}(z) in the final recurrence step.
        h2m = 0.5 * (1.0 + z * (d[2 * M - 1] - d[2 * M]))
        if h2m != 0:
            r2m = -h2m * (1.0 - np.sqrt(1.0 + z * d[2 * M] / (h2m * h2m)))
            num_acc = A[n_levels - 1] + r2m * A[n_levels - 2]
            den_acc = B[n_levels - 1] + r2m * B[n_levels - 2]
            if den_acc != 0 and np.isfinite(num_acc) and np.isfinite(den_acc):
                num, den = num_acc, den_acc
        if den == 0:
            raise ParameterError("de Hoog continued fraction degenerated (B = 0)")
        out[j] = (np.exp(gamma * tj) / big_t) * (num / den).real
    return out


_METHODS = {
    InversionMethod.TALBOT: talbot,
    InversionMethod.EULER: euler,
    InversionMethod.DEHOOG: dehoog,
}


def invert_laplace(
    F: TransformFunction,
    times,
    method: InversionMethod | str = InversionMethod.TALBOT,
    **kwargs,
) -> np.ndarray:
    """Invert ``F(s)`` at the requested times using the selected method.

    >>> import numpy as np
    >>> decay = invert_laplace(lambda s: 1 / (s + 1), [0.5, 1.0])
    >>> bool(np.allclose(decay, np.exp([-0.5, -1.0]), atol=1e-8))
    True
    """
    method = InversionMethod(method)
    return _METHODS[method](F, times, **kwargs)


def step_response(
    H: TransformFunction,
    times,
    method: InversionMethod | str = InversionMethod.DEHOOG,
    initial_value: float = 0.0,
    **kwargs,
) -> np.ndarray:
    """Unit-step response of a transfer function ``H(s)``.

    Inverts ``H(s)/s``.  ``times`` may include ``t = 0`` (and only zero or
    positive values); the response at ``t = 0`` is taken to be
    ``initial_value`` (0 for any strictly proper, delay-dominated network
    such as a driven transmission line).
    """
    t = np.atleast_1d(np.asarray(times, dtype=float))
    if np.any(t < 0):
        raise ParameterError("step_response requires non-negative times")
    out = np.empty_like(t)
    positive = t > 0

    def integrand(s: np.ndarray) -> np.ndarray:
        return H(s) / s

    if np.any(positive):
        out[positive] = invert_laplace(integrand, t[positive], method, **kwargs)
    out[~positive] = initial_value
    return out
