"""Clock H-tree generator: binary branching wires driving leaf sinks.

An H-tree distributes a clock from one driver to ``2**levels`` sinks
through symmetric binary branching: a trunk wire from the driver to the
first branch point, then at every level two child wires per branch
point whose totals shrink by ``length_ratio`` (0.5 reproduces the
classical halving of wire length per level).  Perfect symmetry gives
zero sink-to-sink skew; the generator can break the symmetry with
per-sink load weights (``sink_cl_weights``) to study skew, which is
what experiment EXP-X9 does.

Like the ladder builders, the structure/value split is explicit:
:func:`build_htree_template` freezes the topology with ``rt``/``lt``/
``ct``/``rtr``/``cl`` :class:`~repro.spice.netlist.Param` slots (so
``revalue``/:func:`~repro.spice.transient.simulate_transient_batch`/
:func:`~repro.spice.ac.ac_sweep_batch` and the sweep runner serve
H-trees exactly like ladders), and :func:`build_htree_circuit` is a
thin ``template.bind``.

Node names: ``in`` (source), ``root`` (after the driver resistance),
``b`` (first branch point), then binary-path names ``b0``/``b1``/
``b00``/... -- a sink is any ``b{path}`` with ``len(path) == levels``.
A ``levels=0`` tree is exactly a single loaded wire (a PI ladder),
which the cross-validation suite pins to the ladder builder at 1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.mna import CircuitTemplate
from repro.spice.netlist import Circuit, Param, Step
from repro.topology.lines import add_rlc_line

__all__ = [
    "HTreeSpec",
    "build_htree_template",
    "build_htree_circuit",
    "htree_sink_nodes",
]


def htree_sink_nodes(levels: int) -> tuple[str, ...]:
    """Leaf node names of a ``levels``-deep H-tree, in binary-path order.

    ``levels=0`` has the single sink ``b`` (the trunk end); deeper trees
    have ``2**levels`` sinks ``b{path}`` with ``path`` running through
    all binary strings of length ``levels`` (``b00``, ``b01``, ...).
    """
    if not isinstance(levels, int) or levels < 0:
        raise ParameterError(
            f"levels must be a nonnegative integer, got {levels!r}"
        )
    if levels == 0:
        return ("b",)
    return tuple(
        "b" + format(i, f"0{levels}b") for i in range(2**levels)
    )


@dataclass(frozen=True)
class HTreeSpec:
    """A concrete H-tree instance: wire totals, driver, sink loads.

    Attributes
    ----------
    levels:
        Branching depth; the tree drives ``2**levels`` sinks
        (``levels=0`` is a single loaded wire).
    rt, lt, ct:
        Totals of the *trunk* wire (SI units); a level-``k`` child wire
        carries ``length_ratio**k`` of each total.
    rtr:
        Driver output resistance (> 0).
    cl:
        Per-sink load capacitance (> 0 -- sinks are what the tree
        drives).
    n_segments:
        PI segments per wire (every wire uses the same count).
    length_ratio:
        Per-level shrink factor of the wire totals (in (0, 1]).
    sink_cl_weights:
        Optional per-sink load multipliers (length ``2**levels``, all
        > 0) breaking the symmetric ``cl`` load; ``None`` keeps all
        sinks at ``cl`` exactly.
    """

    levels: int
    rt: float
    lt: float
    ct: float
    rtr: float
    cl: float
    n_segments: int = 8
    length_ratio: float = 0.5
    sink_cl_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.levels, int) or self.levels < 0:
            raise ParameterError(
                f"levels must be a nonnegative integer, got {self.levels!r}"
            )
        require_nonnegative("rt", self.rt)
        require_positive("lt", self.lt)
        require_positive("ct", self.ct)
        require_positive("rtr", self.rtr)
        require_positive("cl", self.cl)
        if not isinstance(self.n_segments, int) or self.n_segments < 1:
            raise ParameterError(
                f"n_segments must be a positive integer, "
                f"got {self.n_segments!r}"
            )
        if not 0.0 < self.length_ratio <= 1.0:
            raise ParameterError(
                f"length_ratio must be in (0, 1], got {self.length_ratio!r}"
            )
        if self.sink_cl_weights is not None:
            weights = tuple(float(w) for w in self.sink_cl_weights)
            if len(weights) != 2**self.levels:
                raise ParameterError(
                    f"sink_cl_weights needs {2**self.levels} entries "
                    f"(one per sink), got {len(weights)}"
                )
            if any(w <= 0.0 for w in weights):
                raise ParameterError("sink_cl_weights must all be > 0")
            object.__setattr__(self, "sink_cl_weights", weights)

    @property
    def sink_nodes(self) -> tuple[str, ...]:
        """Leaf node names, in binary-path order."""
        return htree_sink_nodes(self.levels)

    @property
    def output_node(self) -> str:
        """The first sink (the conventional measurement node)."""
        return self.sink_nodes[0]


@lru_cache(maxsize=64)
def build_htree_template(
    levels: int,
    n_segments: int = 8,
    length_ratio: float = 0.5,
    sink_cl_weights: tuple[float, ...] | None = None,
    v_step: float = 1.0,
) -> CircuitTemplate:
    """Parameterized H-tree: structure fixed, wire/load values as Params.

    Parameter slots are ``rt``, ``lt``, ``ct`` (trunk totals; children
    scale by ``length_ratio**level`` through the Param scale), ``rtr``
    and ``cl`` (per-sink load, weighted by ``sink_cl_weights`` when
    given).  Results are memoized per argument tuple so sweep chunks
    reuse the cached MNA structure.
    """
    if sink_cl_weights is not None:
        sink_cl_weights = tuple(float(w) for w in sink_cl_weights)
    # Validate through the spec's rules without duplicating them.
    spec = HTreeSpec(
        levels=levels,
        rt=1.0,
        lt=1.0,
        ct=1.0,
        rtr=1.0,
        cl=1.0,
        n_segments=n_segments,
        length_ratio=length_ratio,
        sink_cl_weights=sink_cl_weights,
    )
    ckt = Circuit(
        f"H-tree template levels={levels} n={n_segments} "
        f"ratio={length_ratio:g}"
    )
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, v_step))
    ckt.add_resistor("rdrv", "in", "root", Param("rtr"))
    add_rlc_line(
        ckt,
        "t",
        "root",
        "b",
        Param("rt"),
        Param("lt"),
        Param("ct"),
        n_segments,
    )
    frontier = ["b"]
    for level in range(1, levels + 1):
        scale = length_ratio**level
        next_frontier = []
        for parent in frontier:
            for bit in "01":
                child = parent + bit
                add_rlc_line(
                    ckt,
                    f"w{child[1:]}",
                    parent,
                    child,
                    Param("rt", scale),
                    Param("lt", scale),
                    Param("ct", scale),
                    n_segments,
                )
                next_frontier.append(child)
        frontier = next_frontier
    weights = sink_cl_weights or (1.0,) * len(frontier)
    for sink, weight in zip(frontier, weights):
        ckt.add_capacitor(f"cl{sink[1:] or '0'}", sink, "0", Param("cl", weight))
    return CircuitTemplate(ckt)


def build_htree_circuit(spec: HTreeSpec, v_step: float = 1.0) -> Circuit:
    """Materialize an H-tree as a concrete step-driven netlist.

    A thin ``template.bind`` over :func:`build_htree_template`, so the
    concrete and template paths are structurally identical by
    construction (mirroring the ladder builders).
    """
    template = build_htree_template(
        spec.levels,
        spec.n_segments,
        spec.length_ratio,
        spec.sink_cl_weights,
        v_step=v_step,
    )
    return template.bind(
        {
            "rt": spec.rt,
            "lt": spec.lt,
            "ct": spec.ct,
            "rtr": spec.rtr,
            "cl": spec.cl,
        },
        title=(
            f"H-tree levels={spec.levels} n={spec.n_segments} "
            f"(Rt={spec.rt:g}, Lt={spec.lt:g}, Ct={spec.ct:g})"
        ),
    )
