"""Arbitrary-topology circuit generators beyond the straight ladder.

The paper's world is a single driver/line/load ladder; this subpackage
widens it to the non-ladder structures the related interconnect
literature validates on:

- :mod:`repro.topology.htree`  -- clock H-trees (binary branching,
  per-level wire shrink, per-sink load weights for skew studies),
- :mod:`repro.topology.fanout` -- fanout/star trees (one hub, N branch
  wires, optional trunk),
- :mod:`repro.topology.mesh`   -- rectangular R/RLC grids (power-grid
  style, analytic DC cross-checks),
- :mod:`repro.topology.lines`  -- the shared uniform-PI wire stamping
  helper (:func:`~repro.topology.lines.add_rlc_line`).

Every generator follows the ladder's structure/value split: a
``build_*_template`` exposing :class:`~repro.spice.netlist.Param`
slots (so ``revalue``/``simulate_transient_batch``/``ac_sweep_batch``
and the sweep runner serve these topologies exactly like ladders), and
a ``build_*_circuit`` that is a thin ``template.bind``.  All emit the
plain :class:`~repro.spice.netlist.Circuit` and feed the COO
``build_mna_structure`` path unchanged, so every solver backend applies.
"""

from repro.topology.fanout import (
    FanoutTreeSpec,
    build_fanout_circuit,
    build_fanout_template,
)
from repro.topology.htree import (
    HTreeSpec,
    build_htree_circuit,
    build_htree_template,
    htree_sink_nodes,
)
from repro.topology.lines import add_rlc_line
from repro.topology.mesh import (
    MeshSpec,
    build_mesh_circuit,
    build_mesh_template,
    mesh_node,
)

__all__ = [
    "HTreeSpec",
    "build_htree_circuit",
    "build_htree_template",
    "htree_sink_nodes",
    "FanoutTreeSpec",
    "build_fanout_circuit",
    "build_fanout_template",
    "MeshSpec",
    "build_mesh_circuit",
    "build_mesh_template",
    "mesh_node",
    "add_rlc_line",
]
