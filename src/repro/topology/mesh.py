"""Rectangular mesh generator: a rows x cols grid of RLC edges.

Power/clock grids are meshes, not trees: every interior node connects
to four neighbors, so current has many parallel paths and the DC drop
at a corner is a classic resistor-grid problem with known closed forms
for small grids -- which is exactly how the cross-validation suite pins
this builder (2x2 series/parallel reduction, 1xN voltage divider).

Each horizontal/vertical edge carries resistance ``r_edge`` (optionally
in series with ``l_edge``); each node optionally carries ``c_node`` to
ground.  The driver feeds corner ``m0_0`` through ``rtr``; the far
corner ``m{rows-1}_{cols-1}`` optionally carries a load capacitance
``cl`` and/or a resistive termination ``r_load`` to ground.

Structure/value split as elsewhere in :mod:`repro.topology`:
:func:`build_mesh_template` exposes ``re``/``le``/``cn``/``rtr``/
``cl``/``rl`` :class:`~repro.spice.netlist.Param` slots (the subset the
chosen structure uses), and :func:`build_mesh_circuit` binds it.
Zero-vs-nonzero ``l_edge``/``c_node``/``cl``/``r_load`` are
*structural* choices (they add or remove elements), mirroring the
``loaded`` flag of the ladder template.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.mna import CircuitTemplate
from repro.spice.netlist import Circuit, Param, Step

__all__ = [
    "MeshSpec",
    "build_mesh_template",
    "build_mesh_circuit",
    "mesh_node",
]


def mesh_node(row: int, col: int) -> str:
    """Grid node name ``m{row}_{col}``."""
    return f"m{row}_{col}"


@dataclass(frozen=True)
class MeshSpec:
    """A concrete rectangular mesh instance.

    Attributes
    ----------
    rows, cols:
        Grid extent; ``rows * cols >= 2`` (a 1xN mesh is a resistor
        chain).
    r_edge:
        Resistance of every horizontal/vertical edge (> 0).
    l_edge:
        Series inductance per edge; 0 gives a pure RC/R mesh
        (structurally: no inductors at all).
    c_node:
        Capacitance to ground at every node; 0 omits the capacitors.
    rtr:
        Driver output resistance feeding corner ``m0_0`` (> 0).
    cl:
        Load capacitance at the far corner; 0 omits it.
    r_load:
        Resistive termination at the far corner; 0 omits it.  A pure-R
        mesh (``l_edge = c_node = cl = 0``) needs ``r_load > 0`` for a
        well-posed DC drop.
    """

    rows: int
    cols: int
    r_edge: float
    rtr: float
    l_edge: float = 0.0
    c_node: float = 0.0
    cl: float = 0.0
    r_load: float = 0.0

    def __post_init__(self) -> None:
        for label, value in (("rows", self.rows), ("cols", self.cols)):
            if not isinstance(value, int) or value < 1:
                raise ParameterError(
                    f"{label} must be a positive integer, got {value!r}"
                )
        if self.rows * self.cols < 2:
            raise ParameterError("mesh needs at least two nodes")
        require_positive("r_edge", self.r_edge)
        require_positive("rtr", self.rtr)
        require_nonnegative("l_edge", self.l_edge)
        require_nonnegative("c_node", self.c_node)
        require_nonnegative("cl", self.cl)
        require_nonnegative("r_load", self.r_load)
        if (
            self.c_node == 0.0
            and self.cl == 0.0
            and self.r_load == 0.0
        ):
            raise ParameterError(
                "mesh needs a load: set c_node, cl or r_load nonzero "
                "(otherwise no current flows and the far corner floats "
                "at the source voltage)"
            )

    @property
    def output_node(self) -> str:
        """The far-corner node ``m{rows-1}_{cols-1}``."""
        return mesh_node(self.rows - 1, self.cols - 1)


@lru_cache(maxsize=64)
def build_mesh_template(
    rows: int,
    cols: int,
    inductive: bool = False,
    with_node_caps: bool = True,
    loaded: bool = False,
    terminated: bool = False,
    v_step: float = 1.0,
) -> CircuitTemplate:
    """Parameterized mesh: structure fixed, values as Params.

    Parameter slots: ``re`` (edge resistance), ``rtr``, plus ``le``
    when ``inductive``, ``cn`` when ``with_node_caps``, ``cl`` when
    ``loaded`` and ``rl`` when ``terminated``.  At least one of the
    load flags must be set (a source-only mesh carries no current).
    Memoized per argument tuple.
    """
    for label, value in (("rows", rows), ("cols", cols)):
        if not isinstance(value, int) or value < 1:
            raise ParameterError(
                f"{label} must be a positive integer, got {value!r}"
            )
    if rows * cols < 2:
        raise ParameterError("mesh needs at least two nodes")
    if not (with_node_caps or loaded or terminated):
        raise ParameterError(
            "mesh template needs with_node_caps, loaded or terminated"
        )
    ckt = Circuit(f"mesh template {rows}x{cols}")
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, v_step))
    ckt.add_resistor("rdrv", "in", mesh_node(0, 0), Param("rtr"))
    edge = 0
    for i in range(rows):
        for j in range(cols):
            here = mesh_node(i, j)
            for there in (
                mesh_node(i, j + 1) if j + 1 < cols else None,
                mesh_node(i + 1, j) if i + 1 < rows else None,
            ):
                if there is None:
                    continue
                edge += 1
                if inductive:
                    split = f"e{edge}x"
                    ckt.add_resistor(f"re{edge}", here, split, Param("re"))
                    ckt.add_inductor(f"le{edge}", split, there, Param("le"))
                else:
                    ckt.add_resistor(f"re{edge}", here, there, Param("re"))
            if with_node_caps:
                ckt.add_capacitor(f"cn{i}_{j}", here, "0", Param("cn"))
    far = mesh_node(rows - 1, cols - 1)
    if loaded:
        ckt.add_capacitor("cload", far, "0", Param("cl"))
    if terminated:
        ckt.add_resistor("rload", far, "0", Param("rl"))
    return CircuitTemplate(ckt)


def build_mesh_circuit(spec: MeshSpec, v_step: float = 1.0) -> Circuit:
    """Materialize a mesh as a concrete step-driven netlist.

    A thin ``template.bind`` over :func:`build_mesh_template`; the
    spec's zero/nonzero load fields choose the structural flags.
    """
    template = build_mesh_template(
        spec.rows,
        spec.cols,
        inductive=spec.l_edge > 0,
        with_node_caps=spec.c_node > 0,
        loaded=spec.cl > 0,
        terminated=spec.r_load > 0,
        v_step=v_step,
    )
    params = {"re": spec.r_edge, "rtr": spec.rtr}
    if spec.l_edge > 0:
        params["le"] = spec.l_edge
    if spec.c_node > 0:
        params["cn"] = spec.c_node
    if spec.cl > 0:
        params["cl"] = spec.cl
    if spec.r_load > 0:
        params["rl"] = spec.r_load
    return template.bind(
        params,
        title=f"mesh {spec.rows}x{spec.cols} (Re={spec.r_edge:g})",
    )
