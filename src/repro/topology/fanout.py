"""Fanout-tree generator: one driver, N parallel branch wires, N sinks.

A fanout tree models a net that splits at a single hub into ``fanout``
identical branch wires, each terminated by a load capacitance -- the
repeater-output net of a clock distribution stage, or a signal net with
several receivers.  An optional trunk wire connects the driver to the
hub; with ``trunk_segments=0`` the driver resistance feeds the hub
directly (the pure star net).

``fanout=1`` with a trunk is just a two-wire chain and must agree with
the equivalent single ladder to 1e-12, which the cross-validation suite
pins.  The template/concrete split mirrors the ladder and H-tree
builders: :func:`build_fanout_template` exposes ``rt``/``lt``/``ct``
(trunk), ``brt``/``blt``/``bct`` (per-branch), ``rtr`` and ``cl`` as
:class:`~repro.spice.netlist.Param` slots, and
:func:`build_fanout_circuit` is a thin ``template.bind``.

Node names: ``in`` (source), ``root`` (after the driver), ``hub`` (the
split point; ``root`` itself when there is no trunk) and sinks
``s0 .. s{fanout-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ParameterError, require_nonnegative, require_positive
from repro.spice.mna import CircuitTemplate
from repro.spice.netlist import Circuit, Param, Step
from repro.topology.lines import add_rlc_line

__all__ = [
    "FanoutTreeSpec",
    "build_fanout_template",
    "build_fanout_circuit",
]


@dataclass(frozen=True)
class FanoutTreeSpec:
    """A concrete fanout tree: trunk + N branch wires + sink loads.

    Attributes
    ----------
    fanout:
        Number of branch wires / sinks (>= 1).
    rt, lt, ct:
        Trunk wire totals (ignored -- and required zero -- when
        ``trunk_segments == 0``).
    brt, blt, bct:
        Per-branch wire totals.
    rtr:
        Driver output resistance (> 0).
    cl:
        Per-sink load capacitance (> 0).
    trunk_segments:
        PI segments of the trunk wire; 0 removes the trunk entirely
        (the hub coincides with the driver output node).
    branch_segments:
        PI segments of each branch wire (>= 1).
    """

    fanout: int
    brt: float
    blt: float
    bct: float
    rtr: float
    cl: float
    rt: float = 0.0
    lt: float = 0.0
    ct: float = 0.0
    trunk_segments: int = 0
    branch_segments: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.fanout, int) or self.fanout < 1:
            raise ParameterError(
                f"fanout must be a positive integer, got {self.fanout!r}"
            )
        require_nonnegative("brt", self.brt)
        require_positive("blt", self.blt)
        require_positive("bct", self.bct)
        require_positive("rtr", self.rtr)
        require_positive("cl", self.cl)
        if not isinstance(self.trunk_segments, int) or self.trunk_segments < 0:
            raise ParameterError(
                f"trunk_segments must be a nonnegative integer, "
                f"got {self.trunk_segments!r}"
            )
        if (
            not isinstance(self.branch_segments, int)
            or self.branch_segments < 1
        ):
            raise ParameterError(
                f"branch_segments must be a positive integer, "
                f"got {self.branch_segments!r}"
            )
        if self.trunk_segments > 0:
            require_nonnegative("rt", self.rt)
            require_positive("lt", self.lt)
            require_positive("ct", self.ct)
        elif self.rt or self.lt or self.ct:
            raise ParameterError(
                "trunk totals (rt, lt, ct) require trunk_segments > 0"
            )

    @property
    def sink_nodes(self) -> tuple[str, ...]:
        """Sink node names ``s0 .. s{fanout-1}``."""
        return tuple(f"s{j}" for j in range(self.fanout))

    @property
    def output_node(self) -> str:
        """The first sink (the conventional measurement node)."""
        return "s0"


@lru_cache(maxsize=64)
def build_fanout_template(
    fanout: int,
    trunk_segments: int = 0,
    branch_segments: int = 8,
    v_step: float = 1.0,
) -> CircuitTemplate:
    """Parameterized fanout tree: structure fixed, values as Params.

    Parameter slots: ``brt``/``blt``/``bct`` (per-branch totals),
    ``rtr``, ``cl``, plus ``rt``/``lt``/``ct`` when the structure has a
    trunk (``trunk_segments > 0``).  Memoized per argument tuple.
    """
    if not isinstance(fanout, int) or fanout < 1:
        raise ParameterError(
            f"fanout must be a positive integer, got {fanout!r}"
        )
    ckt = Circuit(
        f"fanout tree template N={fanout} trunk={trunk_segments} "
        f"branch={branch_segments}"
    )
    ckt.add_voltage_source("vin", "in", "0", Step(0.0, v_step))
    ckt.add_resistor("rdrv", "in", "root", Param("rtr"))
    hub = "root"
    if trunk_segments > 0:
        hub = "hub"
        add_rlc_line(
            ckt,
            "t",
            "root",
            hub,
            Param("rt"),
            Param("lt"),
            Param("ct"),
            trunk_segments,
        )
    for j in range(fanout):
        add_rlc_line(
            ckt,
            f"b{j}",
            hub,
            f"s{j}",
            Param("brt"),
            Param("blt"),
            Param("bct"),
            branch_segments,
        )
        ckt.add_capacitor(f"cl{j}", f"s{j}", "0", Param("cl"))
    return CircuitTemplate(ckt)


def build_fanout_circuit(
    spec: FanoutTreeSpec, v_step: float = 1.0
) -> Circuit:
    """Materialize a fanout tree as a concrete step-driven netlist.

    A thin ``template.bind`` over :func:`build_fanout_template`.
    """
    template = build_fanout_template(
        spec.fanout,
        spec.trunk_segments,
        spec.branch_segments,
        v_step=v_step,
    )
    params = {
        "brt": spec.brt,
        "blt": spec.blt,
        "bct": spec.bct,
        "rtr": spec.rtr,
        "cl": spec.cl,
    }
    if spec.trunk_segments > 0:
        params.update(rt=spec.rt, lt=spec.lt, ct=spec.ct)
    return template.bind(
        params,
        title=(
            f"fanout tree N={spec.fanout} trunk={spec.trunk_segments} "
            f"branch={spec.branch_segments}"
        ),
    )
