"""Uniform RLC wire segments for arbitrary-topology builders.

Every generator in :mod:`repro.topology` models its wires the same way
the ladder does: a uniform PI-segment chain whose totals are split over
``n`` identical lumped segments (O(1/n**2) delay error, matching
:mod:`repro.spice.ladder`'s default topology).  :func:`add_rlc_line`
stamps one such wire between two existing nodes of a circuit; junction
capacitance composes naturally because each wire contributes its own
half-segment end capacitors as separate elements and parallel
capacitors simply sum in MNA.

Values may be floats *or* :class:`~repro.spice.netlist.Param` slots --
the per-segment share is expressed as ``value * weight``, which both
types support -- so one helper serves concrete circuits and
:class:`~repro.spice.mna.CircuitTemplate` structures alike.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.spice.netlist import Circuit

__all__ = ["add_rlc_line"]


def add_rlc_line(
    circuit: Circuit,
    prefix: str,
    n_from: str,
    n_to: str,
    rt,
    lt,
    ct,
    n_segments: int,
) -> list[str]:
    """Stamp a uniform PI-segment RLC wire between two existing nodes.

    Parameters
    ----------
    circuit:
        Circuit to stamp into (mutated in place).
    prefix:
        Unique wire identifier; element names are ``r{prefix}_{i}`` /
        ``l{prefix}_{i}`` / ``c{prefix}_{k}`` and interior nodes
        ``{prefix}_{i}`` / branch-split nodes ``{prefix}x{i}``, so two
        wires never collide as long as their prefixes differ.
    n_from, n_to:
        End nodes (created implicitly if new).  Each end receives a
        half-segment shunt capacitor ``ct / (2 n_segments)``; a node
        shared by several wires accumulates their half-caps in parallel,
        which is exactly the junction capacitance of the composed net.
    rt, lt, ct:
        Wire totals (ohms, henries, farads) -- floats or
        :class:`~repro.spice.netlist.Param` values.
    n_segments:
        Number of identical PI segments (>= 1).

    Returns
    -------
    list[str]
        The chain's node positions ``[n_from, interior..., n_to]``.
    """
    if not isinstance(n_segments, int) or n_segments < 1:
        raise ParameterError(
            f"n_segments must be a positive integer, got {n_segments!r}"
        )
    seg = 1.0 / n_segments
    positions = (
        [n_from]
        + [f"{prefix}_{i}" for i in range(1, n_segments)]
        + [n_to]
    )
    for i in range(n_segments):
        split = f"{prefix}x{i + 1}"
        circuit.add_resistor(
            f"r{prefix}_{i + 1}", positions[i], split, rt * seg
        )
        circuit.add_inductor(
            f"l{prefix}_{i + 1}", split, positions[i + 1], lt * seg
        )
    # PI capacitance: half a segment share at both ends, full shares at
    # the interior positions -- emitted per-position so junction nodes
    # shared with other wires sum their half-caps in parallel.
    for k, node in enumerate(positions):
        weight = seg if 0 < k < n_segments else seg / 2
        circuit.add_capacitor(f"c{prefix}_{k}", node, "0", ct * weight)
    return positions
