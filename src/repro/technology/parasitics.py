"""Per-unit-length wire parasitics from geometry.

Standard closed-form extraction for a rectangular signal wire of width
``w`` and thickness ``t`` running at height ``h`` above a return plane in
a dielectric of relative permittivity ``eps_r``:

- **Resistance**: ``rho / (w * t)``, with optional size-effect
  degradation of the resistivity.
- **Capacitance**: Sakurai-Tamaru fit for a microstrip over a plane,
  ``C = eps * (1.15*(w/h) + 2.80*(t/h)**0.222)`` -- accurate to ~6% for
  on-chip aspect ratios; an optional parallel coupling term for dense
  buses (``+ 2 * C_coupling``) is available through ``spacing``.
- **Inductance**: the loop inductance of the wide-microstrip model
  ``L = mu0 * h' / w_eff`` (with standard w/h corrections), or the
  *partial self-inductance* of an isolated conductor
  ``(mu0/2pi) * (ln(2l/(w+t)) + 0.5 + (w+t)/(3l))`` when no nearby
  return plane exists -- the regime where on-chip inductance is largest
  and hardest to contain (clock spines, upper metal).

For a lossless uniform line these satisfy ``L*C = mu0*eps`` only in a
homogeneous dielectric with an ideal plane; the independent formulas here
intentionally keep the realistic deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError, require_positive
from repro.technology import materials

__all__ = [
    "WireGeometry",
    "wire_resistance_per_length",
    "wire_capacitance_per_length",
    "coupling_capacitance_per_length",
    "wire_inductance_per_length",
    "partial_self_inductance_per_length",
    "extract_rlc",
]


def wire_resistance_per_length(
    resistivity: float,
    width: float,
    thickness: float,
    size_effect: bool = False,
) -> float:
    """Series resistance per meter, ``rho / (w * t)`` (ohm/m)."""
    require_positive("resistivity", resistivity)
    require_positive("width", width)
    require_positive("thickness", thickness)
    rho = resistivity
    if size_effect:
        rho = materials.effective_resistivity(rho, width, thickness)
    return rho / (width * thickness)


def wire_capacitance_per_length(
    width: float,
    thickness: float,
    height: float,
    eps_r: float = materials.SIO2_RELATIVE_PERMITTIVITY,
) -> float:
    """Sakurai-Tamaru microstrip capacitance per meter (F/m).

    ``C = eps0*eps_r * (1.15*(w/h) + 2.80*(t/h)**0.222)``: parallel-plate
    term plus fringing.
    """
    require_positive("width", width)
    require_positive("thickness", thickness)
    require_positive("height", height)
    require_positive("eps_r", eps_r)
    eps = materials.EPS0 * eps_r
    return eps * (1.15 * (width / height) + 2.80 * (thickness / height) ** 0.222)


def coupling_capacitance_per_length(
    thickness: float,
    spacing: float,
    eps_r: float = materials.SIO2_RELATIVE_PERMITTIVITY,
) -> float:
    """Parallel-plate coupling to one same-layer neighbor (F/m).

    First-order ``eps * t / s``; multiply by two for a wire flanked on
    both sides (dense bus victim).
    """
    require_positive("thickness", thickness)
    require_positive("spacing", spacing)
    require_positive("eps_r", eps_r)
    return materials.EPS0 * eps_r * thickness / spacing


def wire_inductance_per_length(width: float, height: float) -> float:
    """Loop inductance per meter of a microstrip over a plane (H/m).

    Uses the standard wide/narrow microstrip interpolation:

    - ``w/h <= 1``:  ``(mu0/2pi) * ln(8h/w + w/(4h))``
    - ``w/h > 1``:   ``mu0 * h / (w_eff)`` with
      ``w_eff = w + h * (1.393 + 0.667*ln(w/h + 1.444)) * ... `` folded
      into the denominator per Hammerstad's formula.
    """
    require_positive("width", width)
    require_positive("height", height)
    ratio = width / height
    if ratio <= 1.0:
        return (materials.MU0 / (2.0 * math.pi)) * math.log(
            8.0 * height / width + width / (4.0 * height)
        )
    return materials.MU0 / (ratio + 1.393 + 0.667 * math.log(ratio + 1.444))


def partial_self_inductance_per_length(
    width: float,
    thickness: float,
    length: float,
) -> float:
    """Partial self-inductance per meter of an isolated bar (H/m).

    Rosa/Ruehli: ``L = (mu0/2pi) * l * (ln(2l/(w+t)) + 0.5 + (w+t)/(3l))``
    divided by ``l``.  Grows logarithmically with length -- on-chip
    inductance is not strictly per-unit-length, which is why extraction
    needs the intended wire length.
    """
    require_positive("width", width)
    require_positive("thickness", thickness)
    require_positive("length", length)
    perimeter_scale = width + thickness
    if length <= perimeter_scale:
        raise ParameterError(
            "partial inductance formula needs length >> cross-section "
            f"(length={length:g}, w+t={perimeter_scale:g})"
        )
    return (materials.MU0 / (2.0 * math.pi)) * (
        math.log(2.0 * length / perimeter_scale) + 0.5 + perimeter_scale / (3.0 * length)
    )


@dataclass(frozen=True)
class WireGeometry:
    """A signal wire's cross-section and environment (SI units).

    Attributes
    ----------
    width, thickness:
        Conductor cross-section.
    height:
        Dielectric thickness to the return plane below.
    spacing:
        Edge-to-edge distance to same-layer neighbors (0 = isolated).
    eps_r:
        Dielectric relative permittivity.
    resistivity:
        Conductor bulk resistivity.
    has_return_plane:
        If False, inductance uses the partial-self-inductance model
        (requires the wire length at extraction time).
    """

    width: float
    thickness: float
    height: float
    spacing: float = 0.0
    eps_r: float = materials.SIO2_RELATIVE_PERMITTIVITY
    resistivity: float = materials.COPPER_RESISTIVITY
    has_return_plane: bool = True

    def __post_init__(self) -> None:
        require_positive("width", self.width)
        require_positive("thickness", self.thickness)
        require_positive("height", self.height)
        require_positive("eps_r", self.eps_r)
        require_positive("resistivity", self.resistivity)
        if self.spacing < 0:
            raise ParameterError(f"spacing must be >= 0, got {self.spacing}")


def extract_rlc(
    geometry: WireGeometry,
    length: float | None = None,
    size_effect: bool = False,
) -> tuple[float, float, float]:
    """Per-unit-length ``(R, L, C)`` for a wire geometry.

    ``length`` is required when ``has_return_plane`` is False (partial
    inductance depends on it).  Coupling capacitance to both neighbors is
    added when ``spacing > 0``.

    >>> geom = WireGeometry(width=1e-6, thickness=1e-6, height=1e-6)
    >>> r, l, c = extract_rlc(geom)
    >>> 1e4 < r < 1e5 and 1e-7 < l < 1e-6 and 1e-11 < c < 1e-9
    True
    """
    r = wire_resistance_per_length(
        geometry.resistivity, geometry.width, geometry.thickness, size_effect
    )
    c = wire_capacitance_per_length(
        geometry.width, geometry.thickness, geometry.height, geometry.eps_r
    )
    if geometry.spacing > 0:
        c += 2.0 * coupling_capacitance_per_length(
            geometry.thickness, geometry.spacing, geometry.eps_r
        )
    if geometry.has_return_plane:
        l = wire_inductance_per_length(geometry.width, geometry.height)
    else:
        if length is None:
            raise ParameterError(
                "length is required for partial inductance (no return plane)"
            )
        l = partial_self_inductance_per_length(
            geometry.width, geometry.thickness, length
        )
    return r, l, c
