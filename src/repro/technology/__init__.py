"""Technology substrate: wire parasitics and buffer parameters.

The paper's experiments assume impedance values from an IBM 0.25 um
process and the measurement-based tables of Deutsch [7] -- neither is
public.  This subpackage replaces them with:

- :mod:`repro.technology.materials`  -- conductor/dielectric constants,
- :mod:`repro.technology.parasitics` -- per-unit-length R, L, C from wire
  geometry (standard microstrip/partial-inductance formulas),
- :mod:`repro.technology.nodes`      -- a table of synthetic technology
  nodes exposing minimum-buffer ``R0``/``C0`` and representative wiring
  layers, calibrated so the 0.25 um node shows ``T_{L/R} ~= 5`` on global
  wires, matching the paper's "common for a current 0.25 um technology".

Only the products ``Rt, Lt, Ct, R0, C0`` enter the paper's equations, so
any parasitics model that produces realistic per-unit-length values
preserves the dimensionless groups the experiments sweep.
"""

from repro.technology.materials import (
    COPPER_RESISTIVITY,
    ALUMINUM_RESISTIVITY,
    EPS0,
    MU0,
    SIO2_RELATIVE_PERMITTIVITY,
)
from repro.technology.parasitics import (
    WireGeometry,
    extract_rlc,
    wire_capacitance_per_length,
    wire_inductance_per_length,
    wire_resistance_per_length,
)
from repro.technology.nodes import TechnologyNode, PREDEFINED_NODES, node_by_name

__all__ = [
    "COPPER_RESISTIVITY",
    "ALUMINUM_RESISTIVITY",
    "EPS0",
    "MU0",
    "SIO2_RELATIVE_PERMITTIVITY",
    "WireGeometry",
    "extract_rlc",
    "wire_resistance_per_length",
    "wire_capacitance_per_length",
    "wire_inductance_per_length",
    "TechnologyNode",
    "PREDEFINED_NODES",
    "node_by_name",
]
