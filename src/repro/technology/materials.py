"""Physical constants and material properties (SI units).

Resistivities are bulk room-temperature values; real damascene copper
runs 20-40% higher at deep-submicron dimensions due to barrier layers and
surface scattering -- the ``effective_resistivity`` helper applies a
simple size-dependent degradation so generated nodes stay realistic.
"""

from __future__ import annotations

import math

from repro.errors import require_positive

__all__ = [
    "EPS0",
    "MU0",
    "COPPER_RESISTIVITY",
    "ALUMINUM_RESISTIVITY",
    "TUNGSTEN_RESISTIVITY",
    "SIO2_RELATIVE_PERMITTIVITY",
    "LOWK_RELATIVE_PERMITTIVITY",
    "effective_resistivity",
]

#: Vacuum permittivity (F/m).
EPS0 = 8.8541878128e-12
#: Vacuum permeability (H/m).
MU0 = 4.0e-7 * math.pi

#: Bulk resistivity of copper (ohm * m).
COPPER_RESISTIVITY = 1.72e-8
#: Bulk resistivity of aluminum (ohm * m).
ALUMINUM_RESISTIVITY = 2.74e-8
#: Bulk resistivity of tungsten (vias / local wiring) (ohm * m).
TUNGSTEN_RESISTIVITY = 5.3e-8

#: Relative permittivity of thermal SiO2.
SIO2_RELATIVE_PERMITTIVITY = 3.9
#: Representative low-k dielectric (fluorinated/organic oxides).
LOWK_RELATIVE_PERMITTIVITY = 2.7

#: Electron mean free path in copper (m), for the size-effect model.
_COPPER_MEAN_FREE_PATH = 39e-9


def effective_resistivity(bulk: float, width: float, thickness: float) -> float:
    """Size-degraded resistivity for narrow interconnect.

    A first-order Fuchs-Sondheimer-flavored correction:
    ``rho_eff = rho_bulk * (1 + 3/8 * lambda * (1/w + 1/t))`` with
    ``lambda`` the electron mean free path.  Negligible for the wide
    global wires the paper studies, noticeable below ~100 nm.
    """
    require_positive("bulk", bulk)
    require_positive("width", width)
    require_positive("thickness", thickness)
    correction = 1.0 + 0.375 * _COPPER_MEAN_FREE_PATH * (1.0 / width + 1.0 / thickness)
    return bulk * correction
