"""Synthetic technology nodes.

The paper quotes impedances "from [7]" (Deutsch's IBM measurements) and
a 0.25 um process; neither dataset is public.  This module provides a
table of *synthetic but physically derived* nodes: minimum-buffer
``R0``/``C0`` follow typical published inverter data, and wire parasitics
come from :mod:`repro.technology.parasitics` applied to representative
layer geometries.  The 0.25 um node's thick upper-metal wiring yields
``T_{L/R} ~= 5``, matching the paper's "common for a current 0.25 um
technology" anchor; successive nodes shrink ``R0*C0``, driving
``T_{L/R}`` up exactly as the paper's scaling argument predicts
(experiment EXP-X4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.canonical import DriverLineLoad
from repro.core.repeater import Buffer, inductance_time_ratio
from repro.errors import ParameterError, require_positive
from repro.technology.materials import (
    ALUMINUM_RESISTIVITY,
    COPPER_RESISTIVITY,
    LOWK_RELATIVE_PERMITTIVITY,
    SIO2_RELATIVE_PERMITTIVITY,
)
from repro.technology.parasitics import WireGeometry, extract_rlc

__all__ = ["TechnologyNode", "PREDEFINED_NODES", "node_by_name"]


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process generation, as the paper's equations see it.

    Attributes
    ----------
    name:
        Display name (e.g. ``"250nm"``).
    feature_size:
        Drawn gate length (m).
    vdd:
        Supply voltage (V).
    r0, c0:
        Minimum-size buffer output resistance (ohm) / input cap (F).
    rise_time:
        Typical driver output transition time (s) -- used by the
        inductance-criterion analysis (ref. [8] window).
    global_wire, intermediate_wire:
        Representative wiring geometries for the thick top-level layer
        (clock/bus spines) and a mid-stack signal layer.
    """

    name: str
    feature_size: float
    vdd: float
    r0: float
    c0: float
    rise_time: float
    global_wire: WireGeometry
    intermediate_wire: WireGeometry

    def __post_init__(self) -> None:
        require_positive("feature_size", self.feature_size)
        require_positive("vdd", self.vdd)
        require_positive("r0", self.r0)
        require_positive("c0", self.c0)
        require_positive("rise_time", self.rise_time)

    def min_buffer(self) -> Buffer:
        """The node's minimum-size repeater."""
        return Buffer(r0=self.r0, c0=self.c0)

    @property
    def intrinsic_delay(self) -> float:
        """``R0 * C0`` -- the gate time constant that scaling shrinks."""
        return self.r0 * self.c0

    def wire_rlc(self, layer: str = "global") -> tuple[float, float, float]:
        """Per-unit-length ``(R, L, C)`` of the chosen layer."""
        geometry = self._layer(layer)
        return extract_rlc(geometry)

    def line(
        self,
        length: float,
        layer: str = "global",
        driver_size: float = 0.0,
        load_size: float = 0.0,
    ) -> DriverLineLoad:
        """A wire of ``length`` meters on the chosen layer.

        ``driver_size``/``load_size`` are buffer size multiples ``h``; 0
        leaves the corresponding gate impedance out.
        """
        require_positive("length", length)
        r, l, c = self.wire_rlc(layer)
        rtr = self.r0 / driver_size if driver_size > 0 else 0.0
        cl = self.c0 * load_size if load_size > 0 else 0.0
        return DriverLineLoad.from_per_unit_length(r, l, c, length, rtr=rtr, cl=cl)

    def tlr(self, layer: str = "global") -> float:
        """``T_{L/R}`` of the layer (length-independent, eq. 13)."""
        # Any positive length works: Lt/Rt is per-unit-length L/R.
        line = self.line(1e-3, layer=layer)
        return inductance_time_ratio(line, self.min_buffer())

    def _layer(self, layer: str) -> WireGeometry:
        if layer == "global":
            return self.global_wire
        if layer == "intermediate":
            return self.intermediate_wire
        raise ParameterError(
            f"unknown layer {layer!r}; expected 'global' or 'intermediate'"
        )


def _node(
    name: str,
    feature_nm: float,
    vdd: float,
    r0: float,
    c0_ff: float,
    rise_ps: float,
    global_wt_um: tuple[float, float, float],
    mid_wt_um: tuple[float, float, float],
    resistivity: float,
    eps_r: float,
) -> TechnologyNode:
    gw, gt, gh = global_wt_um
    mw, mt, mh = mid_wt_um
    return TechnologyNode(
        name=name,
        feature_size=feature_nm * 1e-9,
        vdd=vdd,
        r0=r0,
        c0=c0_ff * 1e-15,
        rise_time=rise_ps * 1e-12,
        global_wire=WireGeometry(
            width=gw * 1e-6,
            thickness=gt * 1e-6,
            height=gh * 1e-6,
            eps_r=eps_r,
            resistivity=resistivity,
        ),
        intermediate_wire=WireGeometry(
            width=mw * 1e-6,
            thickness=mt * 1e-6,
            height=mh * 1e-6,
            eps_r=eps_r,
            resistivity=resistivity,
        ),
    )


#: Five synthetic generations.  Buffer data follows typical published
#: inverter characteristics; upper-metal geometry stays thick while the
#: gate time constant shrinks ~30% per node, so T_{L/R} grows.
PREDEFINED_NODES: tuple[TechnologyNode, ...] = (
    _node("350nm", 350, 3.3, 4500, 7.0, 120, (4.0, 1.6, 1.6), (1.2, 0.8, 0.8),
          ALUMINUM_RESISTIVITY, SIO2_RELATIVE_PERMITTIVITY),
    _node("250nm", 250, 2.5, 5000, 5.0, 80, (4.0, 2.0, 2.0), (1.0, 0.7, 0.7),
          COPPER_RESISTIVITY, SIO2_RELATIVE_PERMITTIVITY),
    _node("180nm", 180, 1.8, 5500, 3.5, 55, (4.0, 2.0, 2.0), (0.8, 0.6, 0.6),
          COPPER_RESISTIVITY, SIO2_RELATIVE_PERMITTIVITY),
    _node("130nm", 130, 1.3, 6000, 2.4, 38, (4.0, 2.2, 2.2), (0.6, 0.5, 0.5),
          COPPER_RESISTIVITY, LOWK_RELATIVE_PERMITTIVITY),
    _node("100nm", 100, 1.1, 6500, 1.7, 26, (4.0, 2.2, 2.2), (0.5, 0.45, 0.45),
          COPPER_RESISTIVITY, LOWK_RELATIVE_PERMITTIVITY),
    _node("70nm", 70, 0.9, 7000, 1.2, 18, (4.0, 2.4, 2.4), (0.4, 0.4, 0.4),
          COPPER_RESISTIVITY, LOWK_RELATIVE_PERMITTIVITY),
)


def node_by_name(name: str) -> TechnologyNode:
    """Look up a predefined node (e.g. ``"250nm"``)."""
    for node in PREDEFINED_NODES:
        if node.name == name:
            return node
    known = ", ".join(n.name for n in PREDEFINED_NODES)
    raise ParameterError(f"unknown node {name!r}; known nodes: {known}")
