"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Input validation raises the more specific subclasses
below; plain ``ValueError``/``TypeError`` are reserved for genuine Python
misuse (wrong types, impossible arguments) at the lowest levels.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "ConvergenceError",
    "SimulationError",
    "NetlistError",
    "AnalysisError",
    "require_positive",
    "require_nonnegative",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A physical parameter is out of its valid domain (e.g. negative R)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical procedure failed to converge."""


class SimulationError(ReproError, RuntimeError):
    """A circuit simulation could not be completed (singular MNA, etc.)."""


class NetlistError(ReproError, ValueError):
    """A netlist is malformed (dangling node, duplicate name, ...)."""


class AnalysisError(ReproError, RuntimeError):
    """A waveform/ analysis post-processing step failed (no crossing, ...)."""


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a strictly positive finite number.

    Returns the value so it can be used inline::

        self.rt = require_positive("rt", rt)
    """
    _require_real(name, value)
    if value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return float(value)


def require_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it."""
    _require_real(name, value)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def _require_real(name: str, value: float) -> None:
    import math

    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParameterError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
