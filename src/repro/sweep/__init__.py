"""repro.sweep -- vectorized batch evaluation of the paper's models.

The paper's headline artifacts are all parameter sweeps: eq. 9 delays
over length grids (EXP-X1), error factors over ``T_{L/R}`` ranges
(EXP-F4), penalties over technology nodes (EXP-X4), simulated scaled
delays over (RT, CT) grids (EXP-X2).  This subsystem makes such design-
space exploration cheap:

- :mod:`repro.sweep.grid` -- the sweep *specification*: named
  :class:`Axis` dimensions (explicit, linear, or log-spaced), cartesian
  :class:`ParameterGrid` products with optional zipped axis groups, and
  the :class:`Sweep` spec binding a grid to a quantity with fixed
  parameters and simulator options;
- :mod:`repro.sweep.kernels` -- NumPy batch kernels evaluating whole
  grids without per-point ``DriverLineLoad`` objects.  They are the
  single implementation of the closed forms: the scalar functions in
  :mod:`repro.core` delegate to them;
- :mod:`repro.sweep.runner` -- the :class:`SweepRunner` executor with a
  keyed in-memory LRU plus on-disk JSON result cache and a
  :mod:`concurrent.futures` worker pool for the expensive
  simulator-backed quantity (``simulated_delay_50``);
- :mod:`repro.sweep.cli` -- the ``python -m repro sweep`` subcommand
  rendering any sweep as an experiment table.

Quickstart
----------
>>> import numpy as np
>>> from repro.sweep import Axis, ParameterGrid, Sweep, SweepRunner
>>> grid = ParameterGrid(Axis.log("rt", 100.0, 10000.0, 4),
...                      Axis.log("lt", 1e-9, 1e-6, 3))
>>> sweep = Sweep("propagation_delay", grid,
...               fixed={"ct": 1e-12, "rtr": 100.0, "cl": 1e-13})
>>> result = SweepRunner().run(sweep)
>>> result.output().shape
(12,)
"""

from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.kernels import (
    batch_area_increase_percent,
    batch_bakoglu_rc_design,
    batch_crosstalk_aware_design,
    batch_delay_increase_percent,
    batch_effective_capacitance,
    batch_error_factors,
    batch_inductance_time_ratio,
    batch_lc_limit_delay,
    batch_lt_for_zeta,
    batch_omega_n,
    batch_optimal_rlc_design,
    batch_propagation_delay,
    batch_rc_limit_delay,
    batch_scaled_delay,
    batch_time_of_flight,
    batch_zeta,
)
from repro.sweep.runner import (
    QUANTITIES,
    Quantity,
    RunnerStats,
    SweepResult,
    SweepRunner,
)

__all__ = [
    "Axis",
    "ParameterGrid",
    "Sweep",
    "SweepResult",
    "SweepRunner",
    "RunnerStats",
    "Quantity",
    "QUANTITIES",
    "batch_omega_n",
    "batch_zeta",
    "batch_scaled_delay",
    "batch_propagation_delay",
    "batch_rc_limit_delay",
    "batch_lc_limit_delay",
    "batch_time_of_flight",
    "batch_error_factors",
    "batch_inductance_time_ratio",
    "batch_bakoglu_rc_design",
    "batch_optimal_rlc_design",
    "batch_effective_capacitance",
    "batch_crosstalk_aware_design",
    "batch_delay_increase_percent",
    "batch_area_increase_percent",
    "batch_lt_for_zeta",
]
