"""``python -m repro sweep`` -- run batch sweeps from the command line.

Axis syntax (repeat ``--axis`` per dimension; declaration order is the
grid order, first axis varies slowest)::

    --axis rt=log:10:10000:25        25 log-spaced values
    --axis ct=lin:1e-13:1e-12:5      5 linearly spaced values
    --axis lt=1e-9,5e-9,1e-8         an explicit list
    --axis node=250nm,180nm          a technology-node axis (strings)

``--zip a,b`` fuses previously declared axes into one dimension that
advances in lockstep (e.g. ``rt``/``lt``/``ct`` columns of a length
sweep).  ``--fixed name=value`` supplies scalars shared by all points.

Examples::

    python -m repro sweep --list
    python -m repro sweep propagation_delay \\
        --axis rt=log:100:5000:7 --axis lt=log:1e-9:1e-6:5 \\
        --fixed ct=1e-12 --fixed rtr=100 --fixed cl=1e-13 --max-rows 12
    python -m repro sweep simulated_delay_50 \\
        --axis zeta=0.5,1,2 --fixed r_ratio=0.1 --fixed c_ratio=0.1 \\
        --route tline --workers 4
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.errors import ReproError
from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.runner import QUANTITIES, SweepRunner

__all__ = ["add_sweep_arguments", "build_sweep", "run_sweep"]


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``sweep`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "quantity",
        nargs="?",
        help="batch quantity to evaluate (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_quantities",
        help="list the available quantities and exit",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="add an axis: name=log:start:stop:num | name=lin:start:stop:num"
        " | name=v1,v2,...",
    )
    parser.add_argument(
        "--zip",
        action="append",
        default=[],
        dest="zips",
        metavar="A,B[,C...]",
        help="advance the named (previously declared) axes in lockstep",
    )
    parser.add_argument(
        "--fixed",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fix a scalar parameter for every grid point",
    )
    parser.add_argument(
        "--route",
        help="simulator route for simulated quantities "
        "(statespace | tline | mna)",
    )
    parser.add_argument(
        "--n-segments", type=int, help="ladder segments (simulated routes)"
    )
    parser.add_argument(
        "--n-samples", type=int, help="output samples across the window"
    )
    parser.add_argument(
        "--window", type=float, help="simulated span multiplier"
    )
    parser.add_argument(
        "--dt", type=float, help="time step for the MNA route (seconds)"
    )
    parser.add_argument(
        "--backend",
        help="MNA linear-solver backend (auto | dense | sparse | banded)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        help="worker-pool size for simulated sweeps (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (default: no disk cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force re-evaluation even if a cached result exists",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=32,
        help="cap printed rows (evenly subsampled); 0 prints all",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable instrumentation and print the span tree after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="enable instrumentation and write the metrics JSON to PATH",
    )


def _parse_axis(text: str) -> Axis:
    name, sep, spec = text.partition("=")
    if not sep or not name or not spec:
        raise ReproError(f"bad axis {text!r}; expected NAME=SPEC")
    if spec.startswith(("log:", "lin:")):
        kind, *parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"bad axis {text!r}; expected {kind}:start:stop:num"
            )
        try:
            start, stop, num = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ReproError(f"bad axis {text!r}: {exc}") from exc
        maker = Axis.log if kind == "log" else Axis.linear
        return maker(name, start, stop, num)
    values: list = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            raise ReproError(f"bad axis {text!r}; empty value")
        try:
            values.append(float(token))
        except ValueError:
            values.append(token)
    return Axis(name, values)


def _parse_fixed(text: str):
    name, sep, value = text.partition("=")
    if not sep or not name or not value:
        raise ReproError(f"bad fixed value {text!r}; expected NAME=VALUE")
    try:
        return name, float(value)
    except ValueError:
        return name, value


def build_sweep(args: argparse.Namespace) -> Sweep:
    """Translate parsed CLI arguments into a :class:`Sweep` spec."""
    axes = [_parse_axis(text) for text in args.axis]
    if not axes:
        raise ReproError("at least one --axis is required")
    by_name = {axis.name: axis for axis in axes}
    if len(by_name) != len(axes):
        raise ReproError("duplicate axis names")

    zipped: dict[str, int] = {}
    groups: list[list[Axis]] = []
    for zip_spec in args.zips:
        members = [token.strip() for token in zip_spec.split(",")]
        unknown = [m for m in members if m not in by_name]
        if len(members) < 2 or unknown:
            raise ReproError(
                f"bad --zip {zip_spec!r}; name >= 2 declared axes"
            )
        if any(m in zipped for m in members):
            raise ReproError(f"axis in more than one --zip: {zip_spec!r}")
        group_index = len(groups)
        groups.append([by_name[m] for m in members])
        zipped.update({m: group_index for m in members})

    components: list = []
    seen_groups: set[int] = set()
    for axis in axes:
        if axis.name in zipped:
            index = zipped[axis.name]
            if index not in seen_groups:
                seen_groups.add(index)
                components.append(tuple(groups[index]))
        else:
            components.append(axis)

    fixed = dict(_parse_fixed(text) for text in args.fixed)
    options = {}
    if args.route is not None:
        options["route"] = args.route
    if args.n_segments is not None:
        options["n_segments"] = args.n_segments
    if args.n_samples is not None:
        options["n_samples"] = args.n_samples
    if args.window is not None:
        options["window"] = args.window
    if args.dt is not None:
        options["dt"] = args.dt
    if args.backend is not None:
        options["backend"] = args.backend
    return Sweep(args.quantity, ParameterGrid(*components), fixed, options)


def _list_quantities() -> int:
    width = max(len(name) for name in QUANTITIES)
    for name in sorted(QUANTITIES):
        quantity = QUANTITIES[name]
        kind = "simulator" if quantity.simulated else "kernel"
        inputs = ", ".join(quantity.inputs)
        outputs = ", ".join(quantity.outputs)
        print(f"{name:<{width}}  [{kind}]  ({inputs}) -> ({outputs})")
    return 0


def run_sweep(args: argparse.Namespace) -> int:
    """Entry point for the ``sweep`` subcommand; returns an exit code."""
    from repro.experiments.common import render_table

    if args.list_quantities:
        return _list_quantities()
    if not args.quantity:
        print("a quantity is required (see --list)", file=sys.stderr)
        return 2
    instrumented = bool(args.trace or args.metrics_out)
    if instrumented:
        obs.enable()
    try:
        sweep = build_sweep(args)
        runner = SweepRunner(
            cache_dir=args.cache_dir, max_workers=args.workers
        )
        result = runner.run(sweep, refresh=args.no_cache)
        table = result.to_table(
            max_rows=args.max_rows if args.max_rows > 0 else None
        )
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print(render_table(table))
    print(runner.stats.summary())
    if args.trace:
        print()
        print(obs.render_trace())
    if args.metrics_out:
        path = obs.write_metrics(
            args.metrics_out,
            extra={"sweep": sweep.spec(), "stats": runner.stats.as_dict()},
        )
        print(f"metrics written to {path}")
    return 0
