"""``python -m repro sweep`` -- run batch sweeps from the command line.

Axis syntax (repeat ``--axis`` per dimension; declaration order is the
grid order, first axis varies slowest)::

    --axis rt=log:10:10000:25        25 log-spaced values
    --axis ct=lin:1e-13:1e-12:5      5 linearly spaced values
    --axis lt=1e-9,5e-9,1e-8         an explicit list
    --axis node=250nm,180nm          a technology-node axis (strings)

``--zip a,b`` fuses previously declared axes into one dimension that
advances in lockstep (e.g. ``rt``/``lt``/``ct`` columns of a length
sweep).  ``--fixed name=value`` supplies scalars shared by all points.

Examples::

    python -m repro sweep --list
    python -m repro sweep propagation_delay \\
        --axis rt=log:100:5000:7 --axis lt=log:1e-9:1e-6:5 \\
        --fixed ct=1e-12 --fixed rtr=100 --fixed cl=1e-13 --max-rows 12
    python -m repro sweep simulated_delay_50 \\
        --axis zeta=0.5,1,2 --fixed r_ratio=0.1 --fixed c_ratio=0.1 \\
        --route tline --workers 4

``--netlist FILE`` sweeps a parametric netlist file instead of a named
quantity: the axes/fixed values map onto the netlist's ``{...}``
parameter slots and every grid point is stepped in one
:func:`~repro.spice.transient.simulate_transient_batch` call::

    python -m repro sweep --netlist line.cir --axis rt=log:10:1000:7 \\
        --node out
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.errors import ReproError
from repro.sweep.grid import Axis, ParameterGrid, Sweep
from repro.sweep.runner import QUANTITIES, SweepRunner

__all__ = ["add_sweep_arguments", "build_sweep", "run_sweep"]


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``sweep`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "quantity",
        nargs="?",
        help="batch quantity to evaluate (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_quantities",
        help="list the available quantities and exit",
    )
    parser.add_argument(
        "--netlist",
        metavar="FILE",
        help="sweep a parametric netlist file's {...} slots instead of "
        "a named quantity",
    )
    parser.add_argument(
        "--node",
        help="netlist node to measure (default: last node in the file)",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=SPEC",
        help="add an axis: name=log:start:stop:num | name=lin:start:stop:num"
        " | name=v1,v2,...",
    )
    parser.add_argument(
        "--zip",
        action="append",
        default=[],
        dest="zips",
        metavar="A,B[,C...]",
        help="advance the named (previously declared) axes in lockstep",
    )
    parser.add_argument(
        "--fixed",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fix a scalar parameter for every grid point",
    )
    parser.add_argument(
        "--route",
        help="simulator route for simulated quantities "
        "(statespace | tline | mna)",
    )
    parser.add_argument(
        "--n-segments", type=int, help="ladder segments (simulated routes)"
    )
    parser.add_argument(
        "--n-samples", type=int, help="output samples across the window"
    )
    parser.add_argument(
        "--window", type=float, help="simulated span multiplier"
    )
    parser.add_argument(
        "--dt", type=float, help="time step for the MNA route (seconds)"
    )
    parser.add_argument(
        "--backend",
        help="MNA linear-solver backend (auto | dense | sparse | banded)",
    )
    parser.add_argument(
        "--model",
        help="evaluation-model tier for the MNA route "
        "(full | reduced | auto)",
    )
    parser.add_argument(
        "--rom-order",
        type=int,
        help="reduced order q for --model reduced/auto",
    )
    parser.add_argument(
        "--rom-error-bound",
        type=float,
        help="error bound gating reduced answers under --model auto",
    )
    parser.add_argument(
        "--workers",
        type=int,
        help="worker-pool size for simulated sweeps (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk result cache (default: no disk cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="force re-evaluation even if a cached result exists",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=32,
        help="cap printed rows (evenly subsampled); 0 prints all",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable instrumentation and print the span tree after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="enable instrumentation and write the metrics JSON to PATH",
    )


def _parse_axis(text: str) -> Axis:
    name, sep, spec = text.partition("=")
    if not sep or not name or not spec:
        raise ReproError(f"bad axis {text!r}; expected NAME=SPEC")
    if spec.startswith(("log:", "lin:")):
        kind, *parts = spec.split(":")
        if len(parts) != 3:
            raise ReproError(
                f"bad axis {text!r}; expected {kind}:start:stop:num"
            )
        try:
            start, stop, num = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError as exc:
            raise ReproError(f"bad axis {text!r}: {exc}") from exc
        maker = Axis.log if kind == "log" else Axis.linear
        return maker(name, start, stop, num)
    values: list = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            raise ReproError(f"bad axis {text!r}; empty value")
        try:
            values.append(float(token))
        except ValueError:
            values.append(token)
    return Axis(name, values)


def _parse_fixed(text: str):
    name, sep, value = text.partition("=")
    if not sep or not name or not value:
        raise ReproError(f"bad fixed value {text!r}; expected NAME=VALUE")
    try:
        return name, float(value)
    except ValueError:
        return name, value


def _build_grid(args: argparse.Namespace) -> tuple[ParameterGrid, dict]:
    """The ``--axis``/``--zip``/``--fixed`` arguments as (grid, fixed)."""
    axes = [_parse_axis(text) for text in args.axis]
    if not axes:
        raise ReproError("at least one --axis is required")
    by_name = {axis.name: axis for axis in axes}
    if len(by_name) != len(axes):
        raise ReproError("duplicate axis names")

    zipped: dict[str, int] = {}
    groups: list[list[Axis]] = []
    for zip_spec in args.zips:
        members = [token.strip() for token in zip_spec.split(",")]
        unknown = [m for m in members if m not in by_name]
        if len(members) < 2 or unknown:
            raise ReproError(
                f"bad --zip {zip_spec!r}; name >= 2 declared axes"
            )
        if any(m in zipped for m in members):
            raise ReproError(f"axis in more than one --zip: {zip_spec!r}")
        group_index = len(groups)
        groups.append([by_name[m] for m in members])
        zipped.update({m: group_index for m in members})

    components: list = []
    seen_groups: set[int] = set()
    for axis in axes:
        if axis.name in zipped:
            index = zipped[axis.name]
            if index not in seen_groups:
                seen_groups.add(index)
                components.append(tuple(groups[index]))
        else:
            components.append(axis)

    fixed = dict(_parse_fixed(text) for text in args.fixed)
    return ParameterGrid(*components), fixed


def build_sweep(args: argparse.Namespace) -> Sweep:
    """Translate parsed CLI arguments into a :class:`Sweep` spec."""
    grid, fixed = _build_grid(args)
    options = {}
    if args.route is not None:
        options["route"] = args.route
    if args.n_segments is not None:
        options["n_segments"] = args.n_segments
    if args.n_samples is not None:
        options["n_samples"] = args.n_samples
    if args.window is not None:
        options["window"] = args.window
    if args.dt is not None:
        options["dt"] = args.dt
    if args.backend is not None:
        options["backend"] = args.backend
    if args.model is not None:
        options["model"] = args.model
    if args.rom_order is not None:
        options["rom_order"] = args.rom_order
    if args.rom_error_bound is not None:
        options["rom_error_bound"] = args.rom_error_bound
    return Sweep(args.quantity, grid, fixed, options)


def _subsample(rows: list, max_rows: int | None) -> list:
    """Evenly subsample ``rows`` down to ``max_rows`` (None keeps all)."""
    if max_rows is None or len(rows) <= max_rows:
        return rows
    step = (len(rows) - 1) / (max_rows - 1) if max_rows > 1 else 0.0
    return [rows[round(i * step)] for i in range(max_rows)]


def _run_netlist_sweep(args: argparse.Namespace) -> int:
    """Sweep a parametric netlist file's ``{...}`` slots over a grid."""
    from repro.experiments.common import ExperimentTable, render_table
    from repro.spice.parser import parse_netlist_file, suggest_transient_window
    from repro.spice.transient import simulate_transient_batch

    import numpy as np

    parsed = parse_netlist_file(args.netlist)
    if not parsed.is_parametric:
        raise ReproError(
            f"netlist {args.netlist!r} has no {{...}} parameter slots to "
            "sweep; use 'python -m repro run --netlist' for a single shot"
        )
    grid, fixed = _build_grid(args)
    slots = set(parsed.circuit.parameter_names())
    unknown = sorted((set(grid.names) | set(fixed)) - slots)
    if unknown:
        raise ReproError(
            f"unknown netlist parameter(s) {', '.join(unknown)}; "
            f"slots: {', '.join(sorted(slots))}"
        )
    overlap = sorted(set(grid.names) & set(fixed))
    if overlap:
        raise ReproError(
            f"parameter(s) both swept and fixed: {', '.join(overlap)}"
        )
    bad_fixed = sorted(k for k, v in fixed.items() if not isinstance(v, float))
    if bad_fixed:
        raise ReproError(
            f"netlist --fixed values must be numbers: {', '.join(bad_fixed)}"
        )
    columns = grid.columns()
    for name, col in columns.items():
        if not np.issubdtype(col.dtype, np.number):
            raise ReproError(
                f"netlist axis {name!r} must be numeric, got {col.dtype}"
            )
    template = parsed.template(fixed or None)

    node = args.node or parsed.circuit.node_names()[-1]
    if node not in parsed.circuit.node_names():
        raise ReproError(
            f"node {node!r} not in netlist; nodes: "
            f"{', '.join(parsed.circuit.node_names())}"
        )

    n_samples = args.n_samples or 2000
    window = args.window or 1.0
    t_stops = np.empty(grid.size)
    for i, point in enumerate(grid.points()):
        t_stop_i, _ = suggest_transient_window(
            template.bind(point), n_samples=n_samples
        )
        t_stops[i] = window * t_stop_i
    if args.dt is not None:
        t_stop, dt = float(t_stops.max()), args.dt
    else:
        t_stop, dt = t_stops, t_stops / n_samples

    result = simulate_transient_batch(
        template,
        columns,
        t_stop,
        dt,
        backend=args.backend or "auto",
        record=[node],
        model=args.model or "full",
        rom_order=args.rom_order,
        rom_error_bound=args.rom_error_bound,
    )
    rows = []
    for i in range(grid.size):
        wave = result.waveform(i, node)
        try:
            delay = wave.delay_50()
        except ReproError:
            delay = float("nan")
        rows.append(
            tuple(float(columns[name][i]) for name in grid.names)
            + (delay, wave.final_value)
        )
    shown = _subsample(rows, args.max_rows if args.max_rows > 0 else None)
    notes = [
        f"{grid.size} grid point(s) stepped in one "
        f"simulate_transient_batch call; {n_samples} samples/point",
    ]
    if fixed:
        notes.append(
            "fixed: "
            + ", ".join(f"{k}={v:g}" for k, v in sorted(fixed.items()))
        )
    if len(shown) < len(rows):
        notes.append(f"showing {len(shown)} of {len(rows)} rows")
    table = ExperimentTable(
        experiment_id="SWEEP",
        title=f"netlist sweep: {args.netlist} v({node})",
        headers=tuple(grid.names) + ("delay_50_s", "v_final_v"),
        rows=tuple(shown),
        notes=tuple(notes),
    )
    print(render_table(table))
    return 0


def _list_quantities() -> int:
    width = max(len(name) for name in QUANTITIES)
    for name in sorted(QUANTITIES):
        quantity = QUANTITIES[name]
        kind = "simulator" if quantity.simulated else "kernel"
        inputs = ", ".join(quantity.inputs)
        outputs = ", ".join(quantity.outputs)
        print(f"{name:<{width}}  [{kind}]  ({inputs}) -> ({outputs})")
    return 0


def run_sweep(args: argparse.Namespace) -> int:
    """Entry point for the ``sweep`` subcommand; returns an exit code."""
    from repro.experiments.common import render_table

    if args.list_quantities:
        return _list_quantities()
    instrumented = bool(args.trace or args.metrics_out)
    if args.netlist:
        if args.quantity:
            print(
                "give a quantity or --netlist, not both", file=sys.stderr
            )
            return 2
        if instrumented:
            obs.enable()
        try:
            status = _run_netlist_sweep(args)
        except ReproError as exc:
            print(f"sweep failed: {exc}", file=sys.stderr)
            return 2
        if args.trace:
            print()
            print(obs.render_trace())
        if args.metrics_out:
            path = obs.write_metrics(
                args.metrics_out, extra={"netlist": args.netlist}
            )
            print(f"metrics written to {path}")
        return status
    if not args.quantity:
        print("a quantity is required (see --list)", file=sys.stderr)
        return 2
    if instrumented:
        obs.enable()
    try:
        sweep = build_sweep(args)
        runner = SweepRunner(
            cache_dir=args.cache_dir, max_workers=args.workers
        )
        result = runner.run(sweep, refresh=args.no_cache)
        table = result.to_table(
            max_rows=args.max_rows if args.max_rows > 0 else None
        )
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2
    print(render_table(table))
    print(runner.stats.summary())
    if args.trace:
        print()
        print(obs.render_trace())
    if args.metrics_out:
        path = obs.write_metrics(
            args.metrics_out,
            extra={"sweep": sweep.spec(), "stats": runner.stats.as_dict()},
        )
        print(f"metrics written to {path}")
    return 0
