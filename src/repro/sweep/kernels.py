"""NumPy-vectorized batch kernels for the paper's closed forms.

Every driver in :mod:`repro.analysis` and :mod:`repro.experiments` is a
*parameter sweep* -- eq. 9 delays over a length grid, error factors over
a ``T_{L/R}`` range, penalties over a node table.  Evaluating those one
:class:`~repro.core.canonical.DriverLineLoad` at a time costs a Python
object construction plus ~15 scalar math calls per point; these kernels
evaluate whole grids in a handful of NumPy array operations instead
(>=10x on 10k-point grids, see ``benchmarks/test_bench_sweep.py``).

The kernels are the *single implementation* of the closed forms: the
scalar entry points (:func:`repro.core.delay.propagation_delay`,
:func:`repro.core.penalty.delay_increase_closed_form`, ...) delegate to
them on 0-d inputs, so the scalar path and the batch path cannot drift
apart.  The fitted constants stay defined next to the equations they
belong to (:mod:`repro.core.delay`, :mod:`repro.core.repeater`) and are
imported here; those modules import this one lazily inside functions,
which keeps the import graph acyclic.

All kernels accept scalars or broadcastable arrays of SI values and
return :class:`numpy.ndarray` (or a plain ``float`` on the all-scalar
fast path).  The hot kernels keep a scalar branch next to the array
branch: plain ``math`` for the algebra (bitwise-identical to the array
ufuncs, which are correctly rounded) and NumPy scalar ufuncs for the
transcendentals, so per-point callers such as the repeater optimizer
do not pay array-machinery overhead (~100x on 0-d inputs) while both
branches stay side by side in one function.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.delay import (
    FIT_EXPONENT_COEFFICIENT,
    FIT_EXPONENT_POWER,
    FIT_LINEAR_COEFFICIENT,
)
from repro.core.repeater import (
    H_FACTOR_POWER,
    H_FACTOR_SCALE,
    K_FACTOR_POWER,
    K_FACTOR_SCALE,
)
from repro.errors import ParameterError

__all__ = [
    "KERNEL_VERSION",
    "batch_omega_n",
    "batch_zeta",
    "batch_scaled_delay",
    "batch_propagation_delay",
    "batch_rc_limit_delay",
    "batch_lc_limit_delay",
    "batch_time_of_flight",
    "batch_error_factors",
    "batch_inductance_time_ratio",
    "batch_bakoglu_rc_design",
    "batch_optimal_rlc_design",
    "batch_effective_capacitance",
    "batch_crosstalk_aware_design",
    "batch_delay_increase_percent",
    "batch_area_increase_percent",
    "batch_lt_for_zeta",
]

#: Bumped whenever a kernel's numerics change; part of every sweep cache
#: key so stale on-disk results can never be replayed against new code.
KERNEL_VERSION = 1


def _validated(name: str, values, *, positive: bool = False) -> np.ndarray:
    """Coerce to a float array and enforce the parameter domain."""
    arr = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ParameterError(f"{name} must be finite")
    if positive:
        if np.any(arr <= 0):
            raise ParameterError(f"{name} must be > 0")
    elif np.any(arr < 0):
        raise ParameterError(f"{name} must be >= 0")
    return arr


def _all_scalar(*values) -> bool:
    """True when every argument is a plain Python/NumPy scalar number."""
    return all(isinstance(v, (int, float)) for v in values)


def _checked_scalar(name: str, value, *, positive: bool = False) -> float:
    """Scalar twin of :func:`_validated` (same domains, same messages)."""
    v = float(value)
    if not math.isfinite(v):
        raise ParameterError(f"{name} must be finite")
    if positive:
        if v <= 0:
            raise ParameterError(f"{name} must be > 0")
    elif v < 0:
        raise ParameterError(f"{name} must be >= 0")
    return v


def batch_omega_n(lt, ct, cl=0.0):
    """Natural angular frequency ``1 / sqrt(Lt * (Ct + CL))`` (eq. 3).

    ``lt`` in henries, ``ct``/``cl`` in farads; result in rad/s.
    """
    if _all_scalar(lt, ct, cl):
        lt = _checked_scalar("lt", lt, positive=True)
        ct = _checked_scalar("ct", ct, positive=True)
        cl = _checked_scalar("cl", cl)
        return 1.0 / math.sqrt(lt * (ct + cl))
    lt = _validated("lt", lt, positive=True)
    ct = _validated("ct", ct, positive=True)
    cl = _validated("cl", cl)
    return 1.0 / np.sqrt(lt * (ct + cl))


def batch_zeta(rt, lt, ct, rtr=0.0, cl=0.0):
    """Damping factor of the driver/line/load system (eq. 6).

    This is the implementation behind the scalar
    :func:`repro.core.canonical.zeta`.  The ``rt == 0`` limit is
    well-defined: ``RT = Rtr/Rt`` diverges but ``Rt * RT = Rtr`` stays
    finite, leaving the ``bare`` expression below.
    """
    if _all_scalar(rt, lt, ct, rtr, cl):
        rt = _checked_scalar("rt", rt)
        lt = _checked_scalar("lt", lt, positive=True)
        ct = _checked_scalar("ct", ct, positive=True)
        rtr = _checked_scalar("rtr", rtr)
        cl = _checked_scalar("cl", cl)
        if rt == 0 and rtr == 0:
            return 0.0
        c_ratio = cl / ct
        root = math.sqrt(1.0 + c_ratio)
        if rt > 0:
            r_ratio = rtr / rt
            return (
                0.5
                * rt
                * math.sqrt(ct / lt)
                * (r_ratio + c_ratio + r_ratio * c_ratio + 0.5)
                / root
            )
        return 0.5 * math.sqrt(ct / lt) * (rtr + rtr * c_ratio) / root
    rt = _validated("rt", rt)
    lt = _validated("lt", lt, positive=True)
    ct = _validated("ct", ct, positive=True)
    rtr = _validated("rtr", rtr)
    cl = _validated("cl", cl)
    rt, lt, ct, rtr, cl = np.broadcast_arrays(rt, lt, ct, rtr, cl)

    c_ratio = cl / ct
    root = np.sqrt(1.0 + c_ratio)
    with np.errstate(divide="ignore", invalid="ignore"):
        r_ratio = np.where(rt > 0, rtr / np.where(rt > 0, rt, 1.0), 0.0)
    driven = (
        0.5
        * rt
        * np.sqrt(ct / lt)
        * (r_ratio + c_ratio + r_ratio * c_ratio + 0.5)
        / root
    )
    bare = 0.5 * np.sqrt(ct / lt) * (rtr + rtr * c_ratio) / root
    return np.where(rt > 0, driven, np.where(rtr > 0, bare, 0.0))


def batch_scaled_delay(zeta):
    """Dimensionless 50% delay ``t'_pd(zeta)`` (eq. 9).

    ``zeta`` dimensionless and >= 0; the result is in units of
    ``1/omega_n``.  The fit holds to ~5% for ``RT, CT`` in ``[0, 1]``
    across all damping regimes.  The scalar branch uses the NumPy
    *scalar* ufuncs for ``exp`` and ``**`` so it tracks the array
    branch to the last few ULP.
    """
    if isinstance(zeta, (int, float)):
        z = float(zeta)
        if z < 0 or not math.isfinite(z):
            raise ParameterError("zeta must be finite and >= 0")
        return float(
            np.exp(-FIT_EXPONENT_COEFFICIENT * np.float64(z) ** FIT_EXPONENT_POWER)
            + FIT_LINEAR_COEFFICIENT * z
        )
    z = np.asarray(zeta, dtype=float)
    if np.any(z < 0) or not np.all(np.isfinite(z)):
        raise ParameterError("zeta must be finite and >= 0")
    return (
        np.exp(-FIT_EXPONENT_COEFFICIENT * z**FIT_EXPONENT_POWER)
        + FIT_LINEAR_COEFFICIENT * z
    )


def batch_propagation_delay(rt, lt, ct, rtr=0.0, cl=0.0):
    """50% propagation delay of the Fig. 1 circuit (eq. 9), seconds."""
    return batch_scaled_delay(batch_zeta(rt, lt, ct, rtr, cl)) / batch_omega_n(
        lt, ct, cl
    )


def batch_rc_limit_delay(rt, ct, rtr=0.0, cl=0.0):
    """The ``Lt -> 0`` limit of eq. 9 (pure distributed-RC delay)."""
    if _all_scalar(rt, ct, rtr, cl):
        rt = _checked_scalar("rt", rt)
        ct = _checked_scalar("ct", ct, positive=True)
        rtr = _checked_scalar("rtr", rtr)
        cl = _checked_scalar("cl", cl)
        if rt == 0 and rtr > 0:
            raise ParameterError("rc_limit_delay requires rt > 0")
        c_ratio = cl / ct
        r_ratio = rtr / rt if rt > 0 else 0.0
        group = r_ratio + c_ratio + r_ratio * c_ratio + 0.5
        return 0.5 * FIT_LINEAR_COEFFICIENT * rt * ct * group
    rt = _validated("rt", rt)
    ct = _validated("ct", ct, positive=True)
    rtr = _validated("rtr", rtr)
    cl = _validated("cl", cl)
    rt, ct, rtr, cl = np.broadcast_arrays(rt, ct, rtr, cl)
    if np.any((rt == 0) & (rtr > 0)):
        raise ParameterError("rc_limit_delay requires rt > 0")
    c_ratio = cl / ct
    with np.errstate(divide="ignore", invalid="ignore"):
        r_ratio = np.where(rt > 0, rtr / np.where(rt > 0, rt, 1.0), 0.0)
    group = r_ratio + c_ratio + r_ratio * c_ratio + 0.5
    return 0.5 * FIT_LINEAR_COEFFICIENT * rt * ct * group


def batch_lc_limit_delay(lt, ct, cl=0.0):
    """The ``Rt, Rtr -> 0`` limit of eq. 9: ``sqrt(Lt * (Ct + CL))``."""
    return 1.0 / batch_omega_n(lt, ct, cl)


def batch_time_of_flight(lt, ct):
    """Wavefront arrival time ``sqrt(Lt * Ct)`` of a lossless line."""
    if _all_scalar(lt, ct):
        lt = _checked_scalar("lt", lt)
        ct = _checked_scalar("ct", ct)
        return math.sqrt(lt * ct)
    lt = _validated("lt", lt)
    ct = _validated("ct", ct)
    return np.sqrt(lt * ct)


def batch_error_factors(tlr) -> tuple:
    """``(h', k')`` -- the inductance derating factors (eqs. 14, 15).

    ``tlr`` is the dimensionless ``T_{L/R}`` of eq. 13 (>= 0); both
    outputs are dimensionless multipliers on the eq. 11 RC optimum,
    vetted against the numerical optimum over ``T_{L/R}`` in
    ``[0, ~7]`` (Fig. 4 / EXP-F4).
    """
    if isinstance(tlr, (int, float)):
        t = float(tlr)
        if t < 0 or not math.isfinite(t):
            raise ParameterError("T_{L/R} must be finite and >= 0")
        cubed = np.float64(t) ** 3
        return (
            float((1.0 + H_FACTOR_SCALE * cubed) ** np.float64(-H_FACTOR_POWER)),
            float((1.0 + K_FACTOR_SCALE * cubed) ** np.float64(-K_FACTOR_POWER)),
        )
    t = np.asarray(tlr, dtype=float)
    if np.any(t < 0) or not np.all(np.isfinite(t)):
        raise ParameterError("T_{L/R} must be finite and >= 0")
    h_prime = (1.0 + H_FACTOR_SCALE * t**3) ** (-H_FACTOR_POWER)
    k_prime = (1.0 + K_FACTOR_SCALE * t**3) ** (-K_FACTOR_POWER)
    return h_prime, k_prime


def batch_inductance_time_ratio(rt, lt, r0, c0) -> np.ndarray:
    """``T_{L/R} = (Lt/Rt) / (R0*C0)`` (eq. 13)."""
    rt = _validated("rt", rt)
    lt = _validated("lt", lt)
    r0 = _validated("r0", r0, positive=True)
    c0 = _validated("c0", c0, positive=True)
    if np.any(np.broadcast_arrays(rt, lt)[0] <= 0):
        raise ParameterError("inductance_time_ratio requires rt > 0")
    return (lt / rt) / (r0 * c0)


def batch_bakoglu_rc_design(rt, ct, r0, c0) -> tuple[np.ndarray, np.ndarray]:
    """Bakoglu's RC-optimal ``(h, k)`` repeater insertion (eq. 11)."""
    rt = _validated("rt", rt)
    ct = _validated("ct", ct, positive=True)
    r0 = _validated("r0", r0, positive=True)
    c0 = _validated("c0", c0, positive=True)
    if np.any(np.broadcast_arrays(rt, ct)[0] <= 0):
        raise ParameterError("bakoglu_rc_design requires rt > 0")
    h = np.sqrt((r0 * ct) / (rt * c0))
    k = np.sqrt((rt * ct) / (2.0 * r0 * c0))
    return h, k


def batch_optimal_rlc_design(rt, lt, ct, r0, c0) -> tuple[np.ndarray, np.ndarray]:
    """The paper's closed-form RLC repeater optimum (eqs. 14, 15)."""
    h_rc, k_rc = batch_bakoglu_rc_design(rt, ct, r0, c0)
    h_prime, k_prime = batch_error_factors(
        batch_inductance_time_ratio(rt, lt, r0, c0)
    )
    return h_rc * h_prime, k_rc * k_prime


def batch_effective_capacitance(ct, cct, switch_factor=2.0, n_neighbors=2.0):
    """Switch-pattern-dependent effective line capacitance (F).

    ``Ct_eff = Ct + n_neighbors * switch_factor * Cct``: the coupling
    capacitance to each of ``n_neighbors`` adjacent bus lines counts
    with the Miller factor of their switching pattern (0 even, 1 quiet,
    2 odd; see :func:`repro.core.repeater.miller_switch_factor`).
    All quantities in SI units; scalars or broadcastable arrays.
    """
    if _all_scalar(ct, cct, switch_factor, n_neighbors):
        ct = _checked_scalar("ct", ct, positive=True)
        cct = _checked_scalar("cct", cct)
        switch_factor = _checked_scalar("switch_factor", switch_factor)
        n_neighbors = _checked_scalar("n_neighbors", n_neighbors)
        return ct + n_neighbors * switch_factor * cct
    ct = _validated("ct", ct, positive=True)
    cct = _validated("cct", cct)
    switch_factor = _validated("switch_factor", switch_factor)
    n_neighbors = _validated("n_neighbors", n_neighbors)
    return ct + n_neighbors * switch_factor * cct


def batch_crosstalk_aware_design(
    rt, lt, ct, cct, r0, c0, switch_factor=2.0, n_neighbors=2.0
) -> tuple:
    """Crosstalk-aware ``(h, k)`` repeater optimum for a coupled bus bit.

    Applies the paper's closed-form RLC optimum (eqs. 14, 15) to the
    effective capacitance of :func:`batch_effective_capacitance`: the
    Bakoglu base point (eq. 11) sees the inflated ``Ct_eff`` while the
    inductance derating ``T_{L/R} = (Lt/Rt)/(R0*C0)`` (eq. 13) keeps the
    self values only.  ``switch_factor = 0`` reduces exactly to
    :func:`batch_optimal_rlc_design`.  All SI units; scalars or
    broadcastable arrays.
    """
    ct_eff = batch_effective_capacitance(ct, cct, switch_factor, n_neighbors)
    h_rc, k_rc = batch_bakoglu_rc_design(rt, ct_eff, r0, c0)
    h_prime, k_prime = batch_error_factors(
        batch_inductance_time_ratio(rt, lt, r0, c0)
    )
    return h_rc * h_prime, k_rc * k_prime


def batch_delay_increase_percent(tlr):
    """Percent total-delay increase from RC-based insertion (eq. 17)."""
    if isinstance(tlr, (int, float)):
        t = float(tlr)
        if t < 0 or not math.isfinite(t):
            raise ParameterError("T_{L/R} must be finite and >= 0")
        return float(
            30.0
            * t
            / (
                0.5
                + t
                + 23.0 * np.exp(np.float64(-0.48 * t))
                + 10.0 * np.exp(np.float64(-4.0 * t))
            )
        )
    t = np.asarray(tlr, dtype=float)
    if np.any(t < 0) or not np.all(np.isfinite(t)):
        raise ParameterError("T_{L/R} must be finite and >= 0")
    return (
        30.0
        * t
        / (0.5 + t + 23.0 * np.exp(-0.48 * t) + 10.0 * np.exp(-4.0 * t))
    )


def batch_area_increase_percent(tlr):
    """Percent repeater-area increase from RC-based insertion (eq. 18)."""
    h_prime, k_prime = batch_error_factors(tlr)
    return 100.0 * (1.0 / (h_prime * k_prime) - 1.0)


def batch_lt_for_zeta(zeta, r_ratio=0.0, c_ratio=0.0, rt=1.0, ct=1.0) -> np.ndarray:
    """Solve eq. 6 for the ``Lt`` that yields a prescribed ``zeta``.

    The vectorized counterpart of
    :meth:`repro.core.canonical.DriverLineLoad.for_zeta`: fixes ``Rt``,
    ``Ct`` and the dimensionless ratios and returns the matching total
    inductance.  Used to sweep ``zeta`` at constant (RT, CT) -- the axes
    of the paper's Fig. 2.
    """
    z = _validated("zeta_target", zeta)
    if np.any(z <= 0):
        raise ParameterError("zeta_target must be > 0")
    r_ratio = _validated("r_ratio", r_ratio)
    c_ratio = _validated("c_ratio", c_ratio)
    rt = _validated("rt", rt, positive=True)
    ct = _validated("ct", ct, positive=True)
    group = (r_ratio + c_ratio + r_ratio * c_ratio + 0.5) / np.sqrt(
        1.0 + c_ratio
    )
    return (rt * rt * ct) * group * group / (4.0 * z * z)
