"""Sweep specifications: axes, cartesian/zipped grids, and sweep specs.

A :class:`ParameterGrid` is built from :class:`Axis` components.  Each
component contributes one cartesian dimension; passing a *tuple* of axes
as a single component zips them (they advance together, like the
``(rt, lt, ct)`` columns of a length sweep where all three scale with
the same wire length).  A :class:`Sweep` binds a grid to a named batch
quantity plus fixed parameters and simulator options, and hashes the
whole specification into a deterministic cache key.

>>> grid = ParameterGrid(Axis.log("rt", 10.0, 1000.0, 3),
...                      Axis("lt", [1e-9, 1e-8]))
>>> grid.size, grid.names
(6, ('rt', 'lt'))
>>> zipped = ParameterGrid((Axis("rt", [1.0, 2.0]), Axis("ct", [3.0, 4.0])))
>>> zipped.size
2
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ParameterError

__all__ = ["Axis", "ParameterGrid", "Sweep"]


@dataclass(frozen=True, init=False)
class Axis:
    """One named sweep dimension: a parameter and its sample values.

    Values are coerced to floats when numeric; non-numeric values (e.g.
    technology node names for a ``node`` axis) are kept as strings.
    """

    name: str
    values: tuple

    def __init__(self, name: str, values) -> None:
        if not isinstance(name, str) or not name:
            raise ParameterError(f"axis name must be a non-empty string, got {name!r}")
        # Inspect elements before any numpy coercion: np.asarray on a
        # mixed list would silently stringify the numeric entries.
        if isinstance(values, np.ndarray):
            values = values.ravel().tolist()
        try:
            seq = [
                v.item() if isinstance(v, np.generic) else v for v in values
            ]
        except TypeError:
            raise ParameterError(
                f"axis {name!r} values must be a sequence, got {values!r}"
            ) from None
        if not seq:
            raise ParameterError(f"axis {name!r} needs at least one value")
        if any(isinstance(v, bool) for v in seq):
            raise ParameterError(
                f"axis {name!r} values must be numbers or names, not booleans"
            )
        numeric = [isinstance(v, (int, float)) for v in seq]
        if all(numeric):
            coerced = tuple(float(v) for v in seq)
            if not all(np.isfinite(coerced)):
                raise ParameterError(f"axis {name!r} values must be finite")
        elif any(numeric):
            # A single typo'd number must not silently turn the whole
            # axis into strings.
            bad = [v for v, ok in zip(seq, numeric) if not ok]
            raise ParameterError(
                f"axis {name!r} mixes numeric and non-numeric values "
                f"({bad[:3]!r}); use all numbers or all names"
            )
        else:
            coerced = tuple(str(v) for v in seq)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "values", coerced)

    @classmethod
    def linear(cls, name: str, start: float, stop: float, num: int) -> "Axis":
        """``num`` linearly spaced values from ``start`` to ``stop``."""
        if num < 1:
            raise ParameterError(f"axis {name!r} needs num >= 1, got {num}")
        return cls(name, np.linspace(start, stop, num))

    @classmethod
    def log(cls, name: str, start: float, stop: float, num: int) -> "Axis":
        """``num`` log-spaced values from ``start`` to ``stop`` (both > 0)."""
        if num < 1:
            raise ParameterError(f"axis {name!r} needs num >= 1, got {num}")
        if start <= 0 or stop <= 0:
            raise ParameterError(
                f"axis {name!r} log range needs positive bounds, "
                f"got {start!r}..{stop!r}"
            )
        return cls(name, np.geomspace(start, stop, num))

    @property
    def is_numeric(self) -> bool:
        return not self.values or isinstance(self.values[0], float)

    def spec(self) -> dict:
        """JSON-serializable description (feeds the sweep cache key)."""
        return {"name": self.name, "values": list(self.values)}


class ParameterGrid:
    """Cartesian product of axes and zipped axis groups.

    Parameters
    ----------
    components:
        Each either a single :class:`Axis` (one cartesian dimension) or
        a sequence of axes of equal length that advance together (one
        *zipped* dimension).

    The expanded point order is C order ("ij" indexing): the first
    component varies slowest, the last fastest.  Consumers that reshape
    flat result columns back to ``grid.shape`` rely on this guarantee.
    """

    def __init__(self, *components) -> None:
        if not components:
            raise ParameterError("ParameterGrid needs at least one axis")
        groups: list[tuple[Axis, ...]] = []
        for component in components:
            if isinstance(component, Axis):
                group = (component,)
            else:
                group = tuple(component)
                if not group or not all(isinstance(a, Axis) for a in group):
                    raise ParameterError(
                        "grid components must be Axis instances or "
                        f"sequences of them, got {component!r}"
                    )
                lengths = {len(a.values) for a in group}
                if len(lengths) > 1:
                    names = ", ".join(a.name for a in group)
                    raise ParameterError(
                        f"zipped axes ({names}) must have equal lengths, "
                        f"got {sorted(lengths)}"
                    )
            groups.append(group)
        self._groups = tuple(groups)
        names = [a.name for g in self._groups for a in g]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate axis names in grid: {names}")

    # -- structure ---------------------------------------------------------

    @property
    def groups(self) -> tuple[tuple[Axis, ...], ...]:
        return self._groups

    @property
    def axes(self) -> tuple[Axis, ...]:
        return tuple(a for g in self._groups for a in g)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(g[0].values) for g in self._groups)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    # -- expansion ---------------------------------------------------------

    def columns(self) -> dict[str, np.ndarray]:
        """Expand to flat per-axis columns of length :attr:`size`.

        Numeric axes yield float arrays, string axes string arrays; all
        columns share the C point order documented on the class.
        """
        index_grids = np.meshgrid(
            *[np.arange(n) for n in self.shape], indexing="ij"
        )
        flat_indices = [g.ravel() for g in index_grids]
        columns: dict[str, np.ndarray] = {}
        for group, indices in zip(self._groups, flat_indices):
            for axis in group:
                columns[axis.name] = np.asarray(axis.values)[indices]
        return columns

    def points(self) -> Iterator[dict]:
        """Iterate the grid as per-point ``{name: value}`` dicts."""
        columns = self.columns()
        for i in range(self.size):
            yield {
                name: col[i].item() if col[i].shape == () else col[i]
                for name, col in columns.items()
            }

    # -- identity ----------------------------------------------------------

    def spec(self) -> list:
        """Canonical JSON-serializable description of the grid."""
        return [[axis.spec() for axis in group] for group in self._groups]

    def __eq__(self, other) -> bool:
        return isinstance(other, ParameterGrid) and self._groups == other._groups

    def __hash__(self) -> int:
        return hash(self._groups)

    def __repr__(self) -> str:
        parts = []
        for group in self._groups:
            inner = " x ".join(f"{a.name}[{len(a.values)}]" for a in group)
            parts.append(f"zip({inner})" if len(group) > 1 else inner)
        return f"ParameterGrid({' x '.join(parts)}, size={self.size})"


@dataclass(frozen=True, init=False)
class Sweep:
    """A batch evaluation request: quantity, grid, fixed values, options.

    Parameters
    ----------
    quantity:
        Name of a registered batch quantity (see
        :data:`repro.sweep.runner.QUANTITIES`).
    grid:
        The :class:`ParameterGrid` to expand.
    fixed:
        Scalar parameters shared by every grid point (e.g. ``ct``,
        ``rtr``) -- anything the quantity needs that is not an axis.
    options:
        Evaluator settings that do not name circuit parameters; for the
        simulator-backed quantities these are the
        :func:`repro.core.simulate.simulated_delay_50` keywords
        (``route``, ``n_segments``, ``n_samples``, ``window``, ``dt``,
        ``backend``).
    """

    quantity: str
    grid: ParameterGrid
    fixed: tuple
    options: tuple

    def __init__(
        self,
        quantity: str,
        grid: ParameterGrid,
        fixed: Mapping | None = None,
        options: Mapping | None = None,
    ) -> None:
        if not isinstance(quantity, str) or not quantity:
            raise ParameterError(
                f"quantity must be a non-empty string, got {quantity!r}"
            )
        if not isinstance(grid, ParameterGrid):
            raise ParameterError(f"grid must be a ParameterGrid, got {grid!r}")
        object.__setattr__(self, "quantity", quantity)
        object.__setattr__(self, "grid", grid)
        object.__setattr__(
            self, "fixed", self._frozen_items("fixed", fixed, coerce_ints=True)
        )
        # Options keep their exact types: simulator keywords like
        # ``n_segments`` must stay integers.
        object.__setattr__(
            self, "options", self._frozen_items("options", options, coerce_ints=False)
        )
        overlap = set(dict(self.fixed)) & set(grid.names)
        if overlap:
            raise ParameterError(
                f"parameters {sorted(overlap)} are both axes and fixed values"
            )

    @staticmethod
    def _frozen_items(
        label: str, mapping: Mapping | None, coerce_ints: bool
    ) -> tuple:
        if mapping is None:
            return ()
        items = []
        for key in sorted(mapping):
            value = mapping[key]
            if isinstance(value, np.generic):
                value = value.item()
            if isinstance(value, bool) or not isinstance(
                value, (int, float, str)
            ):
                raise ParameterError(
                    f"{label}[{key!r}] must be a number or string, got {value!r}"
                )
            if coerce_ints and isinstance(value, int):
                value = float(value)
            items.append((str(key), value))
        return tuple(items)

    @property
    def fixed_values(self) -> dict:
        return dict(self.fixed)

    @property
    def option_values(self) -> dict:
        return dict(self.options)

    def spec(self) -> dict:
        """Canonical JSON-serializable description of the whole sweep."""
        return {
            "quantity": self.quantity,
            "grid": self.grid.spec(),
            "fixed": list(list(item) for item in self.fixed),
            "options": list(list(item) for item in self.options),
        }

    def cache_key(self) -> str:
        """Deterministic key over the spec plus the evaluator versions.

        Any change to the quantity, axes, fixed values, options, the
        kernel numerics (:data:`repro.sweep.kernels.KERNEL_VERSION`) or
        the simulator numerics
        (:data:`repro.core.simulate.SIMULATOR_VERSION`) yields a
        different key, invalidating prior cached results.
        """
        from repro.core.simulate import SIMULATOR_VERSION
        from repro.sweep.kernels import KERNEL_VERSION

        payload = json.dumps(
            {
                "kernel_version": KERNEL_VERSION,
                "simulator_version": SIMULATOR_VERSION,
                "spec": self.spec(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()
