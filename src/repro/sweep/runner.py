"""Sweep execution: quantity registry, caching, and parallel fan-out.

:class:`SweepRunner` evaluates a :class:`~repro.sweep.grid.Sweep` and
memoizes the result twice over:

- an in-memory LRU keyed by the sweep's :meth:`cache_key`, and
- an optional on-disk JSON store (one file per key under ``cache_dir``)
  that survives across processes.

Closed-form quantities run as single NumPy kernel calls over the whole
grid; the simulator-backed quantity (``simulated_delay_50``) fans out
over a :mod:`concurrent.futures` worker pool in *chunks*: the grid is
partitioned into contiguous chunks, each chunk ships one payload (its
input columns plus a single shared options mapping -- not one payload
dict per point), and the chunk worker hands its points to
:func:`repro.core.simulate.simulated_delay_50_batch`.  That entry point
partitions each chunk into structure-equivalence classes and routes
value-only classes (the ``"mna"`` route) through the stamp-once /
re-value-many template path
(:func:`~repro.spice.transient.simulate_transient_batch`), while
structure-bound routes (``statespace``/``tline``) evaluate per point.
Cache keys include the kernel version, so stale results are
invalidated automatically whenever the numerics change.

Grids may name circuit parameters directly (``rt``/``lt``/``ct``/
``rtr``/``cl``, buffer ``r0``/``c0``, ``tlr``) or describe them
indirectly; the resolver derives what the quantity needs:

- ``node`` (+ ``length``, optional ``layer``): per-unit-length wire
  parasitics of a predefined technology node scaled by wire length,
  plus the node's buffer ``r0``/``c0``;
- ``zeta`` (+ optional ``r_ratio``/``c_ratio``): the Fig. 2
  construction -- ``Lt`` solved from eq. 6 at fixed ``Rt``, ``Ct``;
- ``tlr`` from ``(rt, lt, r0, c0)`` when absent.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import pathlib
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.sweep import kernels
from repro.sweep.grid import ParameterGrid, Sweep

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "MAX_CHUNK_POINTS",
    "Quantity",
    "QUANTITIES",
    "RunnerStats",
    "SweepResult",
    "SweepRunner",
]

#: On-disk cache schema version (bumped on format changes).
CACHE_SCHEMA_VERSION = 1

_SIMULATOR_OPTIONS = (
    "route", "n_segments", "n_samples", "window", "dt", "backend",
    "model", "rom_order", "rom_error_bound",
)


def _frozen_column(values, size: int) -> np.ndarray:
    """A length-``size`` read-only copy of a (broadcastable) column.

    Results are shared between the caches and every caller, so all
    result arrays are uniformly immutable; callers copy before editing.
    """
    arr = np.array(np.broadcast_to(np.asarray(values), (size,)))
    arr.flags.writeable = False
    return arr


@dataclass(frozen=True)
class Quantity:
    """A batch-evaluable quantity: inputs, outputs, and the kernel."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    fn: Callable[..., tuple] | None
    defaults: tuple = ()
    simulated: bool = False

    @property
    def default_values(self) -> dict:
        return dict(self.defaults)


def _line_quantity(name, outputs, fn):
    return Quantity(
        name=name,
        inputs=("rt", "lt", "ct", "rtr", "cl"),
        outputs=outputs,
        fn=fn,
        defaults=(("rtr", 0.0), ("cl", 0.0)),
    )


QUANTITIES: dict[str, Quantity] = {
    q.name: q
    for q in (
        _line_quantity(
            "zeta",
            ("zeta",),
            lambda v: (kernels.batch_zeta(v["rt"], v["lt"], v["ct"], v["rtr"], v["cl"]),),
        ),
        Quantity(
            "omega_n",
            inputs=("lt", "ct", "cl"),
            outputs=("omega_n",),
            fn=lambda v: (kernels.batch_omega_n(v["lt"], v["ct"], v["cl"]),),
            defaults=(("cl", 0.0),),
        ),
        _line_quantity(
            "propagation_delay",
            ("delay_s",),
            lambda v: (
                kernels.batch_propagation_delay(
                    v["rt"], v["lt"], v["ct"], v["rtr"], v["cl"]
                ),
            ),
        ),
        Quantity(
            "rc_limit_delay",
            inputs=("rt", "ct", "rtr", "cl"),
            outputs=("delay_s",),
            fn=lambda v: (
                kernels.batch_rc_limit_delay(v["rt"], v["ct"], v["rtr"], v["cl"]),
            ),
            defaults=(("rtr", 0.0), ("cl", 0.0)),
        ),
        Quantity(
            "lc_limit_delay",
            inputs=("lt", "ct", "cl"),
            outputs=("delay_s",),
            fn=lambda v: (kernels.batch_lc_limit_delay(v["lt"], v["ct"], v["cl"]),),
            defaults=(("cl", 0.0),),
        ),
        Quantity(
            "time_of_flight",
            inputs=("lt", "ct"),
            outputs=("delay_s",),
            fn=lambda v: (kernels.batch_time_of_flight(v["lt"], v["ct"]),),
        ),
        Quantity(
            "error_factors",
            inputs=("tlr",),
            outputs=("h_factor", "k_factor"),
            fn=lambda v: kernels.batch_error_factors(v["tlr"]),
        ),
        Quantity(
            "bakoglu_rc_design",
            inputs=("rt", "ct", "r0", "c0"),
            outputs=("h", "k"),
            fn=lambda v: kernels.batch_bakoglu_rc_design(
                v["rt"], v["ct"], v["r0"], v["c0"]
            ),
        ),
        Quantity(
            "optimal_rlc_design",
            inputs=("rt", "lt", "ct", "r0", "c0"),
            outputs=("h", "k"),
            fn=lambda v: kernels.batch_optimal_rlc_design(
                v["rt"], v["lt"], v["ct"], v["r0"], v["c0"]
            ),
        ),
        Quantity(
            "effective_capacitance",
            inputs=("ct", "cct", "switch_factor", "n_neighbors"),
            outputs=("ct_eff",),
            fn=lambda v: (
                kernels.batch_effective_capacitance(
                    v["ct"], v["cct"], v["switch_factor"], v["n_neighbors"]
                ),
            ),
            defaults=(("switch_factor", 2.0), ("n_neighbors", 2.0)),
        ),
        Quantity(
            "crosstalk_aware_design",
            inputs=("rt", "lt", "ct", "cct", "r0", "c0", "switch_factor", "n_neighbors"),
            outputs=("h", "k"),
            fn=lambda v: kernels.batch_crosstalk_aware_design(
                v["rt"],
                v["lt"],
                v["ct"],
                v["cct"],
                v["r0"],
                v["c0"],
                v["switch_factor"],
                v["n_neighbors"],
            ),
            defaults=(("switch_factor", 2.0), ("n_neighbors", 2.0)),
        ),
        Quantity(
            "delay_increase_percent",
            inputs=("tlr",),
            outputs=("delay_increase_percent",),
            fn=lambda v: (kernels.batch_delay_increase_percent(v["tlr"]),),
        ),
        Quantity(
            "area_increase_percent",
            inputs=("tlr",),
            outputs=("area_increase_percent",),
            fn=lambda v: (kernels.batch_area_increase_percent(v["tlr"]),),
        ),
        Quantity(
            "simulated_delay_50",
            inputs=("rt", "lt", "ct", "rtr", "cl"),
            outputs=("delay_s",),
            fn=None,
            defaults=(("rtr", 0.0), ("cl", 0.0)),
            simulated=True,
        ),
    )
}


@dataclass
class RunnerStats:
    """Cumulative evaluation and cache counters of one runner."""

    kernel_evaluations: int = 0
    simulator_evaluations: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    #: Disk files that parsed but failed validation against the
    #: requesting sweep (stale schema, tampered axes, wrong lengths).
    disk_invalid: int = 0
    misses: int = 0
    #: Wall-clock seconds spent in fresh (non-cached) evaluations.
    elapsed_s: float = 0.0

    @property
    def hits(self) -> int:
        """Cache hits of either tier (memory + disk)."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of ``run()`` calls served from a cache (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every counter plus the derived rates."""
        return {
            "kernel_evaluations": self.kernel_evaluations,
            "simulator_evaluations": self.simulator_evaluations,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "disk_invalid": self.disk_invalid,
            "misses": self.misses,
            "elapsed_s": self.elapsed_s,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        """Zero every counter (a fresh accounting window)."""
        self.kernel_evaluations = 0
        self.simulator_evaluations = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.disk_invalid = 0
        self.misses = 0
        self.elapsed_s = 0.0

    def summary(self) -> str:
        """One-line human-readable digest (printed after CLI sweeps)."""
        return (
            f"sweep stats: {self.kernel_evaluations} kernel + "
            f"{self.simulator_evaluations} simulator point evaluations, "
            f"cache {self.memory_hits} memory / {self.disk_hits} disk hits, "
            f"{self.misses} misses"
            + (f", {self.disk_invalid} invalid disk entries" if self.disk_invalid else "")
            + f" ({self.hit_rate:.0%} hit rate), "
            f"{self.elapsed_s:.3f} s evaluating"
        )


@dataclass(frozen=True, eq=False)
class SweepResult:
    """The evaluated sweep: expanded inputs, outputs, provenance.

    Attributes
    ----------
    sweep:
        The specification that produced this result.
    columns:
        Resolved per-point input columns (grid axes plus derived
        circuit parameters), each of length ``sweep.grid.size`` in the
        grid's C point order.
    outputs:
        One array per quantity output, same length and order.  Both
        ``columns`` and ``outputs`` arrays are read-only (they are
        shared with the runner's caches); ``.copy()`` before mutating.
    cache_hit:
        ``None`` for a fresh evaluation, ``"memory"`` or ``"disk"``.
    elapsed_s:
        Wall-clock evaluation time of the *original* computation.
    """

    sweep: Sweep
    columns: dict[str, np.ndarray]
    outputs: dict[str, np.ndarray]
    cache_hit: str | None
    elapsed_s: float

    @property
    def size(self) -> int:
        return self.sweep.grid.size

    def output(self, name: str | None = None) -> np.ndarray:
        """One output column; the sole output when ``name`` is omitted."""
        if name is None:
            if len(self.outputs) != 1:
                raise ParameterError(
                    f"result has outputs {sorted(self.outputs)}; name one"
                )
            return next(iter(self.outputs.values()))
        return self.outputs[name]

    def to_table(
        self,
        experiment_id: str = "EXP-SWEEP",
        title: str | None = None,
        max_rows: int | None = None,
    ):
        """Render as an :class:`~repro.experiments.common.ExperimentTable`.

        Rows are the grid axes plus the outputs; with ``max_rows`` the
        grid is subsampled evenly and a note records the truncation.
        """
        from repro.experiments.common import ExperimentTable

        axis_names = [n for n in self.sweep.grid.names if n in self.columns]
        headers = tuple(axis_names) + tuple(self.outputs)
        n = self.size
        if max_rows is not None and 0 < max_rows < n:
            indices = np.unique(
                np.linspace(0, n - 1, max_rows).round().astype(int)
            )
        else:
            indices = np.arange(n)
        series = [self.columns[name] for name in axis_names] + [
            self.outputs[name] for name in self.outputs
        ]
        rows = tuple(
            tuple(
                col[i].item() if isinstance(col[i], np.generic) else col[i]
                for col in series
            )
            for i in indices
        )
        notes = [
            f"{n} grid points, quantity={self.sweep.quantity!r}, "
            f"cache={self.cache_hit or 'miss'}, "
            f"evaluated in {self.elapsed_s * 1e3:.2f} ms",
        ]
        if len(indices) < n:
            notes.append(f"showing {len(indices)} of {n} rows (evenly subsampled)")
        for key, value in self.sweep.fixed:
            notes.append(f"fixed: {key} = {value!r}")
        return ExperimentTable(
            experiment_id=experiment_id,
            title=title or f"parameter sweep of {self.sweep.quantity}",
            headers=headers,
            rows=rows,
            notes=tuple(notes),
        )


def _disk_payload_problem(payload: dict, sweep: Sweep) -> str | None:
    """Validate a parsed cache file against the requesting sweep.

    The file name is derived from the sweep's cache key, but a stale,
    truncated or hand-edited file can still parse cleanly while holding
    the wrong data; replaying it would silently return wrong columns.
    The input columns (grid axes plus derivations) are cheap and
    deterministic to recompute, so they are re-derived here and the
    stored ones must match exactly -- names and values; only the
    expensive *outputs* are taken on trust (their names and lengths are
    still checked).  Returns a human-readable description of the first
    problem found, or ``None`` when the payload is trustworthy.
    """
    columns = payload.get("columns")
    outputs = payload.get("outputs")
    if not isinstance(columns, dict) or not isinstance(outputs, dict):
        return "columns/outputs are not JSON objects"
    if not outputs:
        return "no output columns stored"

    quantity = QUANTITIES.get(sweep.quantity)
    if quantity is not None and set(outputs) != set(quantity.outputs):
        return (
            f"stored outputs {sorted(outputs)} do not match the "
            f"quantity's outputs {sorted(quantity.outputs)}"
        )

    size = sweep.grid.size
    for label, mapping in (("column", columns), ("output", outputs)):
        for name, values in mapping.items():
            if not isinstance(values, list) or len(values) != size:
                length = len(values) if isinstance(values, list) else "non-list"
                return (
                    f"{label} {name!r} has length {length}, "
                    f"expected {size} grid points"
                )

    if quantity is None:  # pragma: no cover - run() validates first
        return None
    try:
        _, expected_columns = _resolve_inputs(sweep, quantity)
    except ParameterError as exc:
        return f"could not re-derive the input columns ({exc})"
    expected = {
        name: np.broadcast_to(np.asarray(col), (size,))
        for name, col in expected_columns.items()
    }
    if set(columns) != set(expected):
        return (
            f"stored columns {sorted(columns)} do not match the "
            f"sweep's columns {sorted(expected)}"
        )
    for name, want in expected.items():
        stored = columns[name]
        if want.dtype.kind in "fc":
            try:
                stored_arr = np.asarray(stored, dtype=float)
            except (TypeError, ValueError):
                return f"column {name!r} is not numeric"
            # JSON round-trips float64 exactly, but re-derived values
            # may drift by an ulp across numpy/libm builds; a tight
            # relative tolerance still catches tampering and staleness
            # without invalidating caches on every toolchain change.
            if not np.allclose(stored_arr, want, rtol=1e-12, atol=0.0):
                return f"column {name!r} does not match the sweep"
        elif [str(v) for v in stored] != [str(v) for v in want]:
            return f"column {name!r} does not match the sweep"
    return None


#: Largest point count handed to one batched chunk evaluation.  Each
#: distinct point in a transient batch holds its numeric factorization
#: alive for the whole run, so chunks are capped to bound peak memory
#: (and to give the worker pool enough chunks to balance).
MAX_CHUNK_POINTS = 32


def _simulate_chunk(payload) -> list[float]:
    """Worker-pool entry point: one chunk of simulator-backed delays.

    The payload carries the chunk's input columns and a single shared
    options mapping (sent once per chunk rather than once per point);
    the batch entry point then groups the chunk's points into
    structure-equivalence classes internally.
    """
    columns, options = payload
    from repro.core.canonical import DriverLineLoad
    from repro.core.simulate import simulated_delay_50_batch

    size = len(next(iter(columns.values())))
    lines = [
        DriverLineLoad(**{name: col[i] for name, col in columns.items()})
        for i in range(size)
    ]
    return [float(v) for v in simulated_delay_50_batch(lines, **options)]


def _simulate_chunk_timed(payload) -> tuple[list[float], float]:
    """:func:`_simulate_chunk` plus the chunk's wall-clock seconds.

    The timing happens inside the worker (this function is module-level
    so it pickles into process pools); the parent feeds the elapsed
    seconds into the ``sweep.chunk_seconds`` histogram, which a worker
    process could not reach (its registry is a different process's).
    """
    start = time.perf_counter()
    chunk = _simulate_chunk(payload)
    return chunk, time.perf_counter() - start


class SweepRunner:
    """Evaluate sweeps with memoization and simulator fan-out.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk JSON cache; ``None`` disables disk
        caching (the in-memory cache still applies).
    max_workers:
        Worker count for simulator-backed sweeps.  ``None`` uses the
        CPU count; values <= 1 run serially in-process.
    executor:
        ``"thread"`` (default) or ``"process"`` -- the pool flavor for
        simulator fan-out.  Threads avoid spawn overhead and still
        overlap the LAPACK-heavy integration kernels; processes
        sidestep the GIL entirely for pure-Python-bound routes.
    memory_entries:
        LRU capacity of the in-memory result cache.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        max_workers: int | None = None,
        executor: str = "thread",
        memory_entries: int = 128,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ParameterError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if memory_entries < 1:
            raise ParameterError("memory_entries must be >= 1")
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else None
        )
        self.max_workers = max_workers
        self.executor = executor
        self.stats = RunnerStats()
        self._memory: OrderedDict[str, SweepResult] = OrderedDict()
        self._memory_entries = memory_entries
        self._lock = threading.Lock()

    # -- public API --------------------------------------------------------

    def run(self, sweep: Sweep, refresh: bool = False) -> SweepResult:
        """Evaluate ``sweep``, consulting the caches unless ``refresh``.

        Concurrent calls are safe but not deduplicated: two threads
        racing on the same not-yet-cached sweep both evaluate it (the
        later result wins the cache slot).
        """
        with obs.span(
            "sweep.run", quantity=sweep.quantity, points=sweep.grid.size
        ) as sp:
            quantity = self._quantity(sweep)
            key = sweep.cache_key()
            if not refresh:
                cached = self._load(key, sweep)
                if cached is not None:
                    sp.set(cache=cached.cache_hit)
                    self.publish_stats()
                    return cached
            with self._lock:
                self.stats.misses += 1
            obs.inc("sweep.cache.misses")
            sp.set(cache="miss")
            columns, outputs, elapsed = self._evaluate(sweep, quantity)
            result = SweepResult(
                sweep=sweep,
                columns=columns,
                outputs=outputs,
                cache_hit=None,
                elapsed_s=elapsed,
            )
            self._store(key, result)
            self.publish_stats()
            return result

    def publish_stats(self) -> None:
        """Mirror :attr:`stats` into the metrics registry (gauges).

        Called automatically after every :meth:`run`; a no-op while the
        observability layer is disabled.  The per-event counters
        (``sweep.cache.*``, ``sweep.evaluations``) increment at their
        sites; the gauges published here carry the cumulative view --
        including the derived ``sweep.cache.hit_rate`` -- so one metrics
        snapshot answers "how effective was the cache" directly.
        """
        if not obs.enabled():
            return
        with self._lock:
            snapshot = self.stats.as_dict()
        for name, value in snapshot.items():
            obs.set_gauge(f"sweep.stats.{name}", value)
        obs.set_gauge("sweep.cache.hit_rate", snapshot["hit_rate"])

    def invalidate(self, sweep: Sweep) -> bool:
        """Drop any cached result for ``sweep``; True if one existed."""
        key = sweep.cache_key()
        removed = False
        with self._lock:
            if self._memory.pop(key, None) is not None:
                removed = True
        path = self._disk_path(key)
        if path is not None and path.exists():
            path.unlink()
            removed = True
        return removed

    def clear(self) -> None:
        """Empty both cache layers (including stale interrupted tmp files)."""
        with self._lock:
            self._memory.clear()
        if self.cache_dir is not None and self.cache_dir.is_dir():
            for path in self.cache_dir.glob("sweep-*.json"):
                path.unlink()
            for path in self.cache_dir.glob("sweep-*.tmp"):
                path.unlink()

    # -- cache layers ------------------------------------------------------

    def _disk_path(self, key: str) -> pathlib.Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"sweep-{key}.json"

    def _load(self, key: str, sweep: Sweep) -> SweepResult | None:
        with self._lock:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                obs.inc("sweep.cache.memory_hits")
                return SweepResult(
                    sweep=sweep,
                    columns=hit.columns,
                    outputs=hit.outputs,
                    cache_hit="memory",
                    elapsed_s=hit.elapsed_s,
                )
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            # A different on-disk format, not corruption: silently treat
            # as a miss (the same policy as before validation existed).
            return None
        problem = _disk_payload_problem(payload, sweep)
        if problem is not None:
            with self._lock:
                self.stats.disk_invalid += 1
            obs.inc("sweep.cache.disk_invalid")
            warnings.warn(
                f"ignoring sweep cache file {path}: {problem}; re-evaluating",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        size = sweep.grid.size
        result = SweepResult(
            sweep=sweep,
            columns={
                name: _frozen_column(np.asarray(col), size)
                for name, col in payload["columns"].items()
            },
            outputs={
                name: _frozen_column(np.asarray(col, dtype=float), size)
                for name, col in payload["outputs"].items()
            },
            cache_hit="disk",
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )
        self.stats.disk_hits += 1
        obs.inc("sweep.cache.disk_hits")
        self._remember(key, result)
        return result

    def _store(self, key: str, result: SweepResult) -> None:
        self._remember(key, result)
        path = self._disk_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": result.sweep.spec(),
            "elapsed_s": result.elapsed_s,
            "columns": {
                name: np.asarray(col).tolist()
                for name, col in result.columns.items()
            },
            "outputs": {
                name: np.asarray(col).tolist()
                for name, col in result.outputs.items()
            },
        }
        # Atomic publish: the payload lands in a unique tmp file in the
        # same directory (concurrent writers of the same key must not
        # interleave), is flushed and fsynced so a crash cannot leave a
        # sparse/truncated file behind the rename, and only then
        # replaces the real path.  _load therefore never sees a partial
        # JSON payload, no matter where a run was interrupted.
        tmp = path.with_suffix(f".{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _remember(self, key: str, result: SweepResult) -> None:
        with self._lock:
            self._memory[key] = result
            self._memory.move_to_end(key)
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    # -- evaluation --------------------------------------------------------

    @staticmethod
    def _quantity(sweep: Sweep) -> Quantity:
        quantity = QUANTITIES.get(sweep.quantity)
        if quantity is None:
            known = ", ".join(sorted(QUANTITIES))
            raise ParameterError(
                f"unknown sweep quantity {sweep.quantity!r}; known: {known}"
            )
        options = sweep.option_values
        if quantity.simulated:
            unknown = set(options) - set(_SIMULATOR_OPTIONS)
            if unknown:
                raise ParameterError(
                    f"unknown simulator option(s) {sorted(unknown)}; "
                    f"allowed: {list(_SIMULATOR_OPTIONS)}"
                )
            if "route" in options:
                from repro.core.simulate import SimulatorRoute

                try:
                    SimulatorRoute(options["route"])
                except ValueError:
                    known_routes = ", ".join(r.value for r in SimulatorRoute)
                    raise ParameterError(
                        f"unknown simulator route {options['route']!r}; "
                        f"known: {known_routes}"
                    ) from None
            backend_name = options.get("backend")
            if isinstance(backend_name, str) and backend_name.lower() != "auto":
                from repro.spice.backend import resolve_backend

                # Raises ParameterError for unknown names, with the
                # same message the simulation entry points produce.
                # ("auto" needs a system matrix, so it is vetted by the
                # simulation itself.)
                resolve_backend(backend_name)
            if "model" in options:
                from repro.rom.model import resolve_model

                # Same early vetting for the evaluation-model tier.
                resolve_model(options["model"])
        elif options:
            raise ParameterError(
                f"quantity {sweep.quantity!r} takes no options, "
                f"got {sorted(options)}"
            )
        return quantity

    def _evaluate(self, sweep: Sweep, quantity: Quantity):
        size = sweep.grid.size
        inputs, columns = _resolve_inputs(sweep, quantity)
        start = time.perf_counter()
        if quantity.simulated:
            values = self._fan_out(inputs, sweep.option_values, size)
            outputs = {quantity.outputs[0]: _frozen_column(values, size)}
            with self._lock:
                self.stats.simulator_evaluations += size
            obs.inc("sweep.evaluations", size, kind="simulator")
        else:
            raw = quantity.fn(inputs)
            outputs = {
                name: _frozen_column(np.asarray(value, dtype=float), size)
                for name, value in zip(quantity.outputs, raw)
            }
            with self._lock:
                self.stats.kernel_evaluations += size
            obs.inc("sweep.evaluations", size, kind="kernel")
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.elapsed_s += elapsed
        full_columns = {
            name: _frozen_column(col, size) for name, col in columns.items()
        }
        return full_columns, outputs, elapsed

    def _fan_out(
        self, inputs: Mapping[str, np.ndarray], options: dict, size: int
    ) -> np.ndarray:
        """Evaluate a simulator-backed sweep in chunked fashion.

        Points are split into contiguous chunks; each chunk is one
        payload (columns as plain tuples plus one shared, read-only
        options mapping) shipped to a worker, keeping pickling cost
        O(chunks) rather than O(points) for process pools.  Inside a
        worker, :func:`repro.core.simulate.simulated_delay_50_batch`
        partitions the chunk into structure-equivalence classes and
        routes value-only classes through the batched template path.
        """
        broadcast = {
            name: np.broadcast_to(np.asarray(value, dtype=float), (size,))
            for name, value in inputs.items()
        }
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(workers, size))
        chunk_size = min(MAX_CHUNK_POINTS, -(-size // workers))
        bounds = list(range(0, size, chunk_size)) + [size]
        payloads = [
            (
                {
                    name: tuple(float(v) for v in col[lo:hi])
                    for name, col in broadcast.items()
                },
                options,
            )
            for lo, hi in zip(bounds, bounds[1:])
        ]
        with obs.span(
            "sweep.fan_out",
            points=size,
            chunks=len(payloads),
            workers=min(workers, len(payloads)),
            executor=self.executor,
        ):
            if workers <= 1 or len(payloads) <= 1:
                timed = [_simulate_chunk_timed(p) for p in payloads]
            else:
                pool_cls = (
                    concurrent.futures.ProcessPoolExecutor
                    if self.executor == "process"
                    else concurrent.futures.ThreadPoolExecutor
                )
                with pool_cls(max_workers=min(workers, len(payloads))) as pool:
                    timed = list(pool.map(_simulate_chunk_timed, payloads))
            if obs.enabled():
                for chunk, seconds in timed:
                    obs.observe("sweep.chunk_seconds", seconds)
                    obs.observe(
                        "sweep.chunk_points",
                        len(chunk),
                        buckets=obs.COUNT_BUCKETS,
                    )
            return np.asarray(
                [value for chunk, _ in timed for value in chunk], dtype=float
            )


# -- input resolution -------------------------------------------------------


def _merge_derived(
    available: dict, derived: dict, new: dict, source: str
) -> None:
    """Merge a derivation, refusing to clobber explicit parameters.

    A derived parameter that collides with an axis or fixed value would
    silently evaluate a different circuit than the caller specified, so
    the conflict is an error rather than a precedence rule.
    """
    conflicts = sorted(name for name in new if name in available)
    if conflicts:
        raise ParameterError(
            f"the {source!r} derivation computes {conflicts}, which are "
            "also given as axes or fixed values; remove one or the other"
        )
    available.update(new)
    derived.update(new)


def _resolve_inputs(sweep: Sweep, quantity: Quantity):
    """Assemble the quantity's input arrays from axes/fixed/derivations.

    Returns ``(inputs, columns)``: the kernel inputs, and the columns to
    record on the result (grid axes plus every derived circuit input).
    """
    available: dict[str, np.ndarray] = dict(sweep.grid.columns())
    axis_names = set(available)
    for name, value in sweep.fixed:
        available[name] = np.asarray(value)

    derived: dict[str, np.ndarray] = {}
    if "node" in available:
        _merge_derived(
            available, derived, _resolve_node(available, quantity), "node"
        )
    if "zeta" in available and quantity.name != "zeta":
        _merge_derived(
            available, derived, _resolve_zeta_construction(available), "zeta"
        )
    if "pattern" in available and "switch_factor" in quantity.inputs:
        _merge_derived(
            available, derived, _resolve_pattern(available), "pattern"
        )
    if "tlr" in quantity.inputs and "tlr" not in available and all(
        name in available for name in ("rt", "lt", "r0", "c0")
    ):
        available["tlr"] = kernels.batch_inductance_time_ratio(
            available["rt"], available["lt"], available["r0"], available["c0"]
        )
        derived["tlr"] = available["tlr"]

    defaults = quantity.default_values
    inputs: dict[str, np.ndarray] = {}
    missing = []
    for name in quantity.inputs:
        if name in available:
            try:
                inputs[name] = np.asarray(available[name], dtype=float)
            except (TypeError, ValueError):
                raise ParameterError(
                    f"input {name!r} of {quantity.name!r} must be numeric, "
                    f"got {np.asarray(available[name]).ravel()[:3]!r}"
                ) from None
        elif name in defaults:
            inputs[name] = np.asarray(defaults[name], dtype=float)
        else:
            missing.append(name)
    if missing:
        raise ParameterError(
            f"sweep of {quantity.name!r} is missing input(s) {missing}; "
            "add axes or fixed values (or a 'node'/'zeta' derivation)"
        )

    columns = {name: available[name] for name in axis_names}
    columns.update(derived)
    for name, value in inputs.items():
        columns.setdefault(name, value)
    return inputs, columns


def _resolve_node(available: dict, quantity: Quantity) -> dict:
    """Expand a ``node`` axis into wire/buffer parameters.

    Provides per-point ``r0``/``c0`` and ``tlr`` always, plus
    ``rt``/``lt``/``ct`` when a ``length`` axis or fixed value names the
    wire length (meters).
    """
    from repro.technology.nodes import node_by_name

    names = np.atleast_1d(np.asarray(available["node"]))
    layer_value = available.get("layer", "global")
    layers = np.broadcast_to(np.atleast_1d(np.asarray(layer_value)), names.shape)
    unique = {}
    for node_name, layer in {(str(n), str(l)) for n, l in zip(names, layers)}:
        node = node_by_name(node_name)
        r, l, c = node.wire_rlc(layer)
        unique[(node_name, layer)] = (r, l, c, node.r0, node.c0)
    per_point = np.array(
        [unique[(str(n), str(l))] for n, l in zip(names, layers)]
    )
    r_pul, l_pul, c_pul, r0, c0 = per_point.T
    derived = {"r0": r0, "c0": c0, "tlr": (l_pul / r_pul) / (r0 * c0)}
    if "length" in available:
        length = np.asarray(available["length"], dtype=float)
        if np.any(length <= 0):
            raise ParameterError("length must be > 0")
        derived["rt"] = r_pul * length
        derived["lt"] = l_pul * length
        derived["ct"] = c_pul * length
    elif any(n in quantity.inputs for n in ("rt", "lt", "ct")):
        raise ParameterError(
            "a 'node' axis needs a 'length' axis or fixed value to "
            f"resolve the line impedances for {quantity.name!r}"
        )
    return derived


def _resolve_pattern(available: dict) -> dict:
    """Expand a ``pattern`` axis into the Miller ``switch_factor``.

    Maps the neighbor-switching pattern names ``even`` / ``quiet`` /
    ``odd`` to their coupling-capacitance multipliers 0 / 1 / 2
    (:data:`repro.core.repeater.MILLER_SWITCH_FACTORS`), so bus
    repeater sweeps can use the designer's vocabulary directly::

        --axis pattern=even,quiet,odd
    """
    from repro.core.repeater import miller_switch_factor

    names = np.atleast_1d(np.asarray(available["pattern"]))
    factors = np.array(
        [
            miller_switch_factor(n.item() if isinstance(n, np.generic) else n)
            for n in names
        ]
    )
    return {"switch_factor": factors}


def _resolve_zeta_construction(available: dict) -> dict:
    """Expand a ``zeta`` axis via the Fig. 2 constant-(RT, CT) circuit.

    Mirrors :meth:`repro.core.canonical.DriverLineLoad.for_zeta`:
    ``Rt``/``Ct`` default to 1, ``rtr = RT*Rt``, ``cl = CT*Ct`` and
    ``Lt`` solves eq. 6 for the requested damping factor.
    """
    zeta = np.asarray(available["zeta"], dtype=float)
    r_ratio = np.asarray(available.get("r_ratio", 0.0), dtype=float)
    c_ratio = np.asarray(available.get("c_ratio", 0.0), dtype=float)
    rt = np.asarray(available.get("rt", 1.0), dtype=float)
    ct = np.asarray(available.get("ct", 1.0), dtype=float)
    lt = kernels.batch_lt_for_zeta(zeta, r_ratio, c_ratio, rt, ct)
    derived = {"lt": lt, "rtr": r_ratio * rt, "cl": c_ratio * ct}
    if "rt" not in available:
        derived["rt"] = rt
    if "ct" not in available:
        derived["ct"] = ct
    return derived
